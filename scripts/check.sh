#!/bin/sh
# Tier-1 verification: build + tests + the wall-clock grep-gate.
#
#   scripts/check.sh
#
# The grep-gates keep low-level primitives out of shipped code:
#   - Sys.time (CPU time, not wall-clock): every timing must go through
#     Aladin_obs.Clock. Doc comments that mention Sys.time are fine; call
#     sites are not. Tests may use it when they are specifically about
#     the distinction.
#   - Domain.spawn / Mutex.create / Condition.create: all parallelism
#     must go through Aladin_par.Pool (lib/par/), which owns the only
#     domain/lock lifecycle in the tree. Ad-hoc domains elsewhere would
#     undermine the determinism and trace-buffer contracts.
#   - failwith / invalid_arg in the pipeline path (lib/formats importers,
#     the warehouse/config/system layer): failures there must flow
#     through the typed resilience API (results, Run_report), not
#     exceptions.
set -eu
cd "$(dirname "$0")/.."

if grep -rnE 'Sys\.time[[:space:]]*\(' lib bin bench \
    --include='*.ml' --include='*.mli' 2>/dev/null; then
  echo "error: Sys.time call site found (use Aladin_obs.Clock instead)" >&2
  exit 1
fi
echo "grep-gate ok: no Sys.time call sites in lib/ bin/ bench/"

if grep -rnE 'Domain\.spawn|Mutex\.create|Condition\.create' lib bin bench \
    --include='*.ml' --include='*.mli' --exclude-dir=par 2>/dev/null; then
  echo "error: raw domain/lock primitive outside lib/par (use Aladin_par.Pool)" >&2
  exit 1
fi
echo "grep-gate ok: no Domain.spawn/Mutex.create/Condition.create outside lib/par/"

if grep -rnE '\b(failwith|invalid_arg)\b' \
    lib/formats/import.ml lib/formats/dump.ml \
    lib/core/warehouse.ml lib/core/config.ml lib/core/aladin_system.ml \
    lib/core/delta.ml lib/core/pair_store.ml \
    2>/dev/null; then
  echo "error: failwith/invalid_arg in a pipeline path (return a result or use Boundary.protect)" >&2
  exit 1
fi
echo "grep-gate ok: no raising error paths in importers/warehouse/config"

# Link and duplicate discovery in the core/CLI layer must go through the
# delta pipeline (lib/core/delta.ml), which decomposes the work per
# source pair and reuses every pair the mutation did not touch. A
# whole-warehouse Linker.discover / Dup_detect.detect call anywhere else
# silently reintroduces the O(all pairs) rebuild the delta store exists
# to kill. (The pairwise *_between entry points are fine.)
if grep -rnE 'Linker\.discover\b|Dup_detect\.detect\b' \
    lib/core lib/serve bin --include='*.ml' 2>/dev/null \
    | grep -v '^lib/core/delta\.ml'; then
  echo "error: whole-warehouse relink outside lib/core/delta.ml (use the delta pipeline)" >&2
  exit 1
fi
echo "grep-gate ok: all link/dup discovery goes through the delta pipeline"

# open_out / Sys.rename on a persistence path bypasses the crash-safety
# contract (write-temp -> fsync -> rename, manifest commit, fault hooks).
# Everything the warehouse persists must go through lib/store
# (Aladin_store.Atomic_file / Snapshot); only lib/store itself may touch
# the primitives. Non-persistence writers (trace export, HTML export)
# live outside the gated directories.
if grep -rnE '\bopen_out|Sys\.rename' \
    lib/formats lib/core lib/metadata bin \
    --include='*.ml' --include='*.mli' 2>/dev/null; then
  echo "error: raw open_out/Sys.rename on a persistence path (use Aladin_store)" >&2
  exit 1
fi
echo "grep-gate ok: no raw open_out/Sys.rename outside lib/store"

# Blocking sleeps belong to the retry/backoff policy alone: Retry.sleepf
# is budget-clamped and EINTR-tolerant, and seeded backoff keeps waits
# deterministic. A raw Unix.sleep/sleepf anywhere else is an unbounded,
# untracked stall. (retry.ml holds the one blessed call site; tests are
# not scanned.)
if grep -rnE 'Unix\.sleepf?\b' lib bin bench examples \
    --include='*.ml' --include='*.mli' 2>/dev/null \
    | grep -v '^lib/resilience/retry\.ml' \
    | grep -v '^lib/resilience/retry\.mli'; then
  echo "error: raw Unix.sleep/sleepf outside Retry (use Aladin_resilience.Retry.sleepf)" >&2
  exit 1
fi
echo "grep-gate ok: no raw Unix.sleep/sleepf outside lib/resilience/retry.ml"

# Raw sockets are the serving subsystem's business only: every HTTP/socket
# call site must live in lib/serve (the server, its client, and nothing
# else). Other layers talk to a server through Aladin_serve.Client.
if grep -rnE 'Unix\.(socket|accept|bind|listen|connect)\b' \
    lib bin bench examples --include='*.ml' --include='*.mli' 2>/dev/null \
    | grep -v '^lib/serve/'; then
  echo "error: raw socket primitive outside lib/serve (use Aladin_serve)" >&2
  exit 1
fi
echo "grep-gate ok: no socket primitives outside lib/serve"

# Access structures are built by the Engine facade exactly once per
# session; entry points (CLI, examples, bench, serve) must not construct
# or fetch them directly.
if grep -rnE 'Warehouse\.(browser|search|link_query|path_index)\b|Search\.build|Browser\.create|Link_query\.create' \
    bin examples bench lib/serve --include='*.ml' 2>/dev/null; then
  echo "error: access structure built outside the Engine facade (use Aladin.Engine)" >&2
  exit 1
fi
echo "grep-gate ok: all access-layer entry points go through Aladin.Engine"

# The duplicate-detection hot path (the code between the HOT-PATH-BEGIN /
# HOT-PATH-END sentinels, run once per candidate pair inside the fan-out)
# must work exclusively on prepared representations: re-lowercasing or
# re-tokenizing values per pair is the allocation storm that made the
# multi-domain dup step anti-scale.
for f in lib/dupdetect/field_sim.ml lib/dupdetect/object_sim.ml; do
  grep -q 'HOT-PATH-BEGIN' "$f" && grep -q 'HOT-PATH-END' "$f" || {
    echo "error: $f lost its HOT-PATH sentinels" >&2; exit 1; }
  if sed -n '/HOT-PATH-BEGIN/,/HOT-PATH-END/p' "$f" \
      | grep -nE 'String\.lowercase_ascii|Tokenize\.(words|terms)'; then
    echo "error: $f re-normalizes values inside the per-pair hot path (use the prepared representation)" >&2
    exit 1
  fi
done
echo "grep-gate ok: dup-detection per-pair hot path uses prepared reprs only"

# The text-similarity hot path (scored once per candidate pair emitted by
# the inverted-index join) must stay a fused sorted-merge over the
# prepared per-document arrays: rebuilding count vectors or allocating a
# hashtable per pair is the quadratic-allocation profile the sparse join
# was built to kill.
f=lib/textmine/tfidf.ml
grep -q 'HOT-PATH-BEGIN' "$f" && grep -q 'HOT-PATH-END' "$f" || {
  echo "error: $f lost its HOT-PATH sentinels" >&2; exit 1; }
if sed -n '/HOT-PATH-BEGIN/,/HOT-PATH-END/p' "$f" \
    | grep -nE 'vector_of_counts|term_counts|Hashtbl\.create'; then
  echo "error: $f allocates per pair inside the scoring hot path (use the prepared arrays)" >&2
  exit 1
fi
echo "grep-gate ok: text-similarity per-pair scoring uses prepared arrays only"

dune build
dune runtest

# Pool-size determinism: the same pipeline must print byte-identical
# output whether it runs sequentially or on a 2- or 4-domain pool (4
# exercises the sharded candidate generation with several shards per
# domain and chunked claiming with chunk > 1).
q1=$(mktemp) && q2=$(mktemp)
trap 'rm -f "$q1" "$q2"' EXIT
ALADIN_DOMAINS=1 ./_build/default/examples/quickstart.exe > "$q1"
for d in 2 4; do
  ALADIN_DOMAINS=$d ./_build/default/examples/quickstart.exe > "$q2"
  if ! diff -u "$q1" "$q2"; then
    echo "error: quickstart output differs between 1 and $d domains" >&2
    exit 1
  fi
done
echo "determinism ok: quickstart identical at ALADIN_DOMAINS=1, 2 and 4"

# Same bar for a run the text pass dominates: --text-heavy appends a
# deterministic block of text-rich entries, so this diff pins down the
# sharded tf-idf candidate join (several shards per domain at 4).
ALADIN_DOMAINS=1 ./_build/default/examples/quickstart.exe --text-heavy > "$q1"
for d in 2 4; do
  ALADIN_DOMAINS=$d ./_build/default/examples/quickstart.exe --text-heavy > "$q2"
  if ! diff -u "$q1" "$q2"; then
    echo "error: text-heavy quickstart output differs between 1 and $d domains" >&2
    exit 1
  fi
done
echo "determinism ok: text-heavy quickstart identical at ALADIN_DOMAINS=1, 2 and 4"

# Fault injection: a corrupted corpus must integrate with degradation
# recorded (and exit 0), and --strict must turn that into a failure.
f1=$(mktemp)
trap 'rm -f "$q1" "$q2" "$f1"' EXIT
./_build/default/examples/fault_injection.exe > "$f1"
grep -q "degraded" "$f1" || {
  echo "error: fault injection run reported no degradation" >&2; exit 1; }
grep -q "quarantined" "$f1" || {
  echo "error: fault injection run reported no quarantine" >&2; exit 1; }
if ./_build/default/examples/fault_injection.exe --strict > /dev/null 2>&1; then
  echo "error: fault injection with --strict should exit nonzero" >&2
  exit 1
fi
echo "resilience ok: faults degrade gracefully, --strict fails the run"

# Durability: a saved store passes fsck; damage makes fsck exit nonzero;
# --repair salvages and the store verifies clean again.
sdir=$(mktemp -d)
trap 'rm -f "$q1" "$q2" "$f1"; rm -rf "$sdir"' EXIT
rmdir "$sdir"
./_build/default/bin/aladin_cli.exe demo --save "$sdir" > /dev/null
./_build/default/bin/aladin_cli.exe fsck "$sdir" > /dev/null
member=$(find "$sdir"/snap-* -name '*.csv' | head -n 1)
printf 'torn,garbage' >> "$member"
if ./_build/default/bin/aladin_cli.exe fsck "$sdir" > /dev/null 2>&1; then
  echo "error: fsck should exit nonzero on a damaged store" >&2
  exit 1
fi
./_build/default/bin/aladin_cli.exe fsck --repair "$sdir" > /dev/null
./_build/default/bin/aladin_cli.exe fsck "$sdir" > /dev/null
./_build/default/bin/aladin_cli.exe load --strict "$sdir" > /dev/null
echo "durability ok: fsck detects damage, --repair restores a clean store"

# Kill-anywhere resume: a journaled integration killed by an injected
# fault (exit 3) must resume from its checkpoints — under a different
# domain count, even — to the byte-identical link set of an unkilled run.
kdir=$(mktemp -d)
trap 'rm -f "$q1" "$q2" "$f1" "$slog"; rm -rf "$sdir" "$kdir"' EXIT
cat > "$kdir/uniprot.csv" <<'EOF'
acc,name,description
P100,alpha,alpha kinase involved in signal transduction
P200,beta,beta kinase involved in cell cycle control
P300,gamma,gamma receptor binding membrane protein
EOF
cat > "$kdir/pdb.csv" <<'EOF'
id,acc,resolution
1ABC,P100,1.9
2DEF,P200,2.4
EOF
integrate() { ./_build/default/bin/aladin_cli.exe integrate "$@"; }
integrate --links-out "$kdir/links-plain.csv" \
  "$kdir/uniprot.csv" "$kdir/pdb.csv" > /dev/null
integrate --journal "$kdir/j0" --links-out "$kdir/links-journaled.csv" \
  "$kdir/uniprot.csv" "$kdir/pdb.csv" > /dev/null
diff -u "$kdir/links-plain.csv" "$kdir/links-journaled.csv" || {
  echo "error: journaled links differ from plain integrate" >&2; exit 1; }
if integrate --journal "$kdir/j1" --chaos-kill-step 4 \
    "$kdir/uniprot.csv" "$kdir/pdb.csv" > /dev/null 2>&1; then
  echo "error: --chaos-kill-step run should have been killed" >&2
  exit 1
else
  [ $? -eq 3 ] || { echo "error: injected kill must exit 3" >&2; exit 1; }
fi
rout=$(ALADIN_DOMAINS=4 integrate --resume "$kdir/j1" \
  --links-out "$kdir/links-resumed.csv")
echo "$rout" | grep -q 'resumed 1 committed step' || {
  echo "error: resume did not report its restored checkpoint" >&2
  echo "$rout" >&2
  exit 1
}
diff -u "$kdir/links-plain.csv" "$kdir/links-resumed.csv" || {
  echo "error: resumed links differ from an unkilled run" >&2; exit 1; }
echo "resume ok: killed journaled run resumed byte-identical at 4 domains"

# Incremental delta: adding a source to a saved store must recompute only
# the new source's pairs (the CLI prints the delta audit) yet land on the
# byte-identical link set of a cold rebuild over all sources — at 1 and
# 4 domains.
cat > "$kdir/genes.csv" <<'EOF'
gene,acc,symbol
G1,P100,ALPHA1
G2,P300,GAMMA3
EOF
for d in 1 4; do
  rm -rf "$kdir/inc-store"
  ALADIN_DOMAINS=$d integrate --save "$kdir/inc-store" \
    "$kdir/uniprot.csv" "$kdir/pdb.csv" > /dev/null
  aout=$(ALADIN_DOMAINS=$d ./_build/default/bin/aladin_cli.exe add \
    "$kdir/inc-store" "$kdir/genes.csv" --links-out "$kdir/links-delta.csv")
  echo "$aout" | grep -q 'recomputed' || {
    echo "error: aladin add printed no delta audit" >&2
    echo "$aout" >&2
    exit 1
  }
  ALADIN_DOMAINS=$d integrate --links-out "$kdir/links-cold.csv" \
    "$kdir/uniprot.csv" "$kdir/pdb.csv" "$kdir/genes.csv" > /dev/null
  diff -u "$kdir/links-cold.csv" "$kdir/links-delta.csv" || {
    echo "error: delta-added links differ from a cold rebuild at $d domains" >&2
    exit 1
  }
done
echo "incremental ok: aladin add matches a cold rebuild byte-identically at 1 and 4 domains"

# Serving: the daemon must come up on a saved store, answer /healthz,
# serve a search from cache on repeat (x-cache: hit), expose /metrics,
# and drain cleanly on SIGTERM.
slog=$(mktemp)
trap 'rm -f "$q1" "$q2" "$f1" "$slog"; rm -rf "$sdir"' EXIT
./_build/default/bin/aladin_cli.exe serve --store "$sdir" --port 0 > "$slog" 2>&1 &
spid=$!
port=""
i=0
while [ $i -lt 100 ]; do
  port=$(sed -n 's|.*http://127\.0\.0\.1:\([0-9][0-9]*\).*|\1|p' "$slog")
  [ -n "$port" ] && break
  kill -0 "$spid" 2>/dev/null || break
  sleep 0.1
  i=$((i + 1))
done
if [ -z "$port" ]; then
  echo "error: aladin serve never reported its port" >&2
  cat "$slog" >&2
  kill "$spid" 2>/dev/null || true
  exit 1
fi
fetch() { ./_build/default/bin/aladin_cli.exe fetch --port "$port" "$@"; }
fetch /healthz | grep -q '^ok$' || {
  echo "error: /healthz did not answer ok" >&2; kill "$spid"; exit 1; }
fetch '/search?q=protein' > /dev/null || {
  echo "error: search over the socket failed" >&2; kill "$spid"; exit 1; }
fetch -i '/search?q=protein' | grep -qi 'x-cache: hit' || {
  echo "error: repeated search was not served from cache" >&2
  kill "$spid"; exit 1; }
fetch /metrics | grep -q 'aladin_cache_hits_total' || {
  echo "error: /metrics missing cache counters" >&2; kill "$spid"; exit 1; }
kill -TERM "$spid"
wait "$spid" || {
  echo "error: serve exited nonzero after SIGTERM" >&2; exit 1; }
grep -q 'drained:' "$slog" || {
  echo "error: serve did not print its drain summary" >&2
  cat "$slog" >&2
  exit 1
}
echo "serve ok: healthz, cached search, metrics, graceful SIGTERM drain"

echo "check.sh: all green"
