#!/bin/sh
# Tier-1 verification: build + tests + the wall-clock grep-gate.
#
#   scripts/check.sh
#
# The grep-gate keeps Sys.time (CPU time, not wall-clock) out of shipped
# code: every timing must go through Aladin_obs.Clock. Doc comments that
# mention Sys.time are fine; call sites are not. Tests may use it when
# they are specifically about the distinction.
set -eu
cd "$(dirname "$0")/.."

if grep -rnE 'Sys\.time[[:space:]]*\(' lib bin bench \
    --include='*.ml' --include='*.mli' 2>/dev/null; then
  echo "error: Sys.time call site found (use Aladin_obs.Clock instead)" >&2
  exit 1
fi
echo "grep-gate ok: no Sys.time call sites in lib/ bin/ bench/"

dune build
dune runtest
echo "check.sh: all green"
