#!/bin/sh
# Tier-1 verification: build + tests + the wall-clock grep-gate.
#
#   scripts/check.sh
#
# The grep-gates keep low-level primitives out of shipped code:
#   - Sys.time (CPU time, not wall-clock): every timing must go through
#     Aladin_obs.Clock. Doc comments that mention Sys.time are fine; call
#     sites are not. Tests may use it when they are specifically about
#     the distinction.
#   - Domain.spawn / Mutex.create / Condition.create: all parallelism
#     must go through Aladin_par.Pool (lib/par/), which owns the only
#     domain/lock lifecycle in the tree. Ad-hoc domains elsewhere would
#     undermine the determinism and trace-buffer contracts.
set -eu
cd "$(dirname "$0")/.."

if grep -rnE 'Sys\.time[[:space:]]*\(' lib bin bench \
    --include='*.ml' --include='*.mli' 2>/dev/null; then
  echo "error: Sys.time call site found (use Aladin_obs.Clock instead)" >&2
  exit 1
fi
echo "grep-gate ok: no Sys.time call sites in lib/ bin/ bench/"

if grep -rnE 'Domain\.spawn|Mutex\.create|Condition\.create' lib bin bench \
    --include='*.ml' --include='*.mli' --exclude-dir=par 2>/dev/null; then
  echo "error: raw domain/lock primitive outside lib/par (use Aladin_par.Pool)" >&2
  exit 1
fi
echo "grep-gate ok: no Domain.spawn/Mutex.create/Condition.create outside lib/par/"

dune build
dune runtest

# Pool-size determinism: the same pipeline must print byte-identical
# output whether it runs sequentially or on a 2-domain pool.
q1=$(mktemp) && q2=$(mktemp)
trap 'rm -f "$q1" "$q2"' EXIT
ALADIN_DOMAINS=1 ./_build/default/examples/quickstart.exe > "$q1"
ALADIN_DOMAINS=2 ./_build/default/examples/quickstart.exe > "$q2"
if ! diff -u "$q1" "$q2"; then
  echo "error: quickstart output differs between 1 and 2 domains" >&2
  exit 1
fi
echo "determinism ok: quickstart identical at ALADIN_DOMAINS=1 and 2"

echo "check.sh: all green"
