(* The ALADIN command-line front end.

   aladin integrate FILE...     integrate sources, print the summary
   aladin discover FILE         steps 1-3 for one source, print structure
   aladin browse FILE... -a ACC render one object's page
   aladin search FILE... -q Q   ranked full-text search
   aladin query FILE... -s SQL  run SQL over the warehouse
   aladin links FILE...         list discovered links
   aladin trace FILE...         integrate and report the execution trace
   aladin demo                  integrate a generated synthetic corpus
   aladin load DIR              restore a saved warehouse store
   aladin fsck DIR              verify (or --repair) a warehouse store *)

open Cmdliner
open Aladin
module Run_report = Aladin_resilience.Run_report
module Import_error = Aladin_resilience.Import_error
module Snapshot = Aladin_store.Snapshot
module Load_report = Aladin_store.Load_report

let die fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 1) fmt

let config_arg =
  Arg.(value & opt (some file) None & info [ "config" ] ~docv:"CONF"
         ~doc:"Load pipeline tunables from a key = value file (see Config).")

let load_config = function
  | Some path -> (
      match Config.of_file path with
      | Ok c -> c
      | Error msg -> die "aladin: %s" msg)
  | None -> Config.default

(* strict import for the single-source and access commands: any import
   problem aborts, recovered record errors are only warned about *)
let import_or_die path =
  match Aladin_system.import_file path with
  | Ok (im : Aladin_formats.Import.import) ->
      List.iter
        (fun e ->
          Printf.eprintf "aladin: warning: %s: %s\n" path
            (Import_error.record_error_to_string e))
        im.record_errors;
      im.catalog
  | Error err -> die "aladin: %s" (Import_error.to_string err)

let build_warehouse ?config ?trace paths =
  let config = load_config config in
  Warehouse.integrate ~config ?trace (List.map import_or_die paths)

(* resilient build for [integrate]: a source that cannot even be imported
   is quarantined with a report and the rest still integrate *)
let build_warehouse_resilient ?config ?trace paths =
  let config = load_config config in
  let w = Warehouse.create ~config () in
  List.iter
    (fun path ->
      match Aladin_system.import_file path with
      | Ok (im : Aladin_formats.Import.import) ->
          ignore
            (Warehouse.add_source ?trace ~import_errors:im.record_errors w
               im.catalog)
      | Error err ->
          ignore
            (Warehouse.report_import_failure w
               ~source:(Aladin_system.source_name_of_path path) err))
    paths;
  w

let trace_file_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write the pipeline execution trace to $(docv) as JSON.")

let with_trace_file file f =
  match file with
  | None -> f None
  | Some path ->
      let tr = Aladin_obs.Trace.create ~name:"aladin" () in
      let v = f (Some tr) in
      Aladin_obs.Sink.write_json tr path;
      Printf.printf "trace written to %s\n" path;
      v

let paths_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:"Source files or dump directories.")

(* --- integrate --- *)

let integrate_cmd =
  let save =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"META"
           ~doc:"Write the metadata repository to $(docv).")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ]
           ~doc:"Exit nonzero when any source was quarantined or any step \
                 degraded (skipped a pass, dropped records, hit a budget).")
  in
  let run paths save config strict trace_file =
    with_trace_file trace_file (fun trace ->
        let w = build_warehouse_resilient ?config ?trace paths in
        print_string (Aladin_system.summary w);
        let reports = Warehouse.run_reports w in
        List.iter (fun r -> print_string (Run_report.render r)) reports;
        (match save with
        | Some path ->
            Aladin_store.Atomic_file.write path
              (Aladin_metadata.Repository.save (Warehouse.repository w));
            Printf.printf "metadata written to %s\n" path
        | None -> ());
        if strict && not (List.for_all Run_report.is_clean reports) then begin
          prerr_endline "aladin: integration degraded (--strict)";
          exit 1
        end)
  in
  Cmd.v
    (Cmd.info "integrate" ~doc:"Integrate data sources hands-off (all five steps).")
    Term.(const run $ paths_arg $ save $ config_arg $ strict $ trace_file_arg)

(* --- discover --- *)

let discover_cmd =
  let run path =
    let cat = import_or_die path in
    let sp = Aladin_discovery.Source_profile.analyze cat in
    Format.printf "%a@." Aladin_discovery.Source_profile.pp sp
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "discover"
       ~doc:"Import one source and print its discovered structure (steps 1-3).")
    Term.(const run $ path)

(* --- browse --- *)

let browse_cmd =
  let accession =
    Arg.(required & opt (some string) None & info [ "a"; "accession" ] ~docv:"ACC"
           ~doc:"Accession number of the object to display.")
  in
  let source =
    Arg.(value & opt (some string) None & info [ "s"; "source" ] ~docv:"SRC"
           ~doc:"Source holding the object (default: resolve by accession).")
  in
  let run paths accession source =
    let w = build_warehouse paths in
    let browser = Warehouse.browser w in
    let view =
      match source with
      | Some s -> Aladin_access.Browser.view_accession browser ~source:s accession
      | None -> (
          match Aladin_access.Search.resolve (Warehouse.search w) accession with
          | Some obj -> Aladin_access.Browser.view browser obj
          | None -> None)
    in
    match view with
    | Some v -> print_string (Aladin_access.Browser.render v)
    | None ->
        Printf.eprintf "object %s not found\n" accession;
        exit 1
  in
  Cmd.v
    (Cmd.info "browse" ~doc:"Integrate sources and render one object's page.")
    Term.(const run $ paths_arg $ accession $ source)

(* --- search --- *)

let search_cmd =
  let query =
    Arg.(required & opt (some string) None & info [ "q"; "query" ] ~docv:"QUERY")
  in
  let source =
    Arg.(value & opt (some string) None & info [ "s"; "source" ] ~docv:"SRC"
           ~doc:"Restrict hits to one source (horizontal partition).")
  in
  let field =
    Arg.(value & opt (some string) None & info [ "f"; "field" ] ~docv:"REL.ATTR"
           ~doc:"Restrict to one indexed field (vertical partition).")
  in
  let run paths query source field =
    let w = build_warehouse paths in
    let s = Warehouse.search w in
    let hits =
      match (source, field) with
      | None, None -> Aladin_access.Search.search s query
      | _ -> Aladin_access.Search.focused s ?source ?field query
    in
    if hits = [] then print_endline "(no hits)"
    else
      List.iter
        (fun (h : Aladin_access.Search.hit) ->
          Printf.printf "%-28s %.3f  [%s]\n"
            (Aladin_links.Objref.to_string h.obj)
            h.score
            (String.concat ", " h.matched))
        hits
  in
  Cmd.v
    (Cmd.info "search" ~doc:"Ranked full-text search over the warehouse.")
    Term.(const run $ paths_arg $ query $ source $ field)

(* --- query --- *)

let query_cmd =
  let sql =
    Arg.(required & opt (some string) None & info [ "s"; "sql" ] ~docv:"SQL"
           ~doc:"Query; address tables as source.relation.")
  in
  let run paths sql =
    let w = build_warehouse paths in
    match Warehouse.sql w sql with
    | result -> print_endline (Aladin_access.Sql_eval.render_result result)
    | exception Aladin_access.Sql_parser.Parse_error msg ->
        Printf.eprintf "parse error: %s\n" msg;
        exit 1
    | exception Aladin_access.Sql_eval.Eval_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run a SQL query against the integrated warehouse.")
    Term.(const run $ paths_arg $ sql)

(* --- links --- *)

let links_cmd =
  let kind =
    Arg.(value & opt (some string) None & info [ "k"; "kind" ] ~docv:"KIND"
           ~doc:"Only links of this kind (xref, seq, text, shared-term, mention, duplicate).")
  in
  let format =
    Arg.(value & opt (some (enum [ ("csv", `Csv); ("dot", `Dot) ])) None
           & info [ "format" ] ~docv:"FMT"
               ~doc:"Output as $(docv): csv or dot (GraphViz). Default: text.")
  in
  let run paths kind format =
    let w = build_warehouse paths in
    let links =
      Warehouse.links w
      |> List.filter (fun (l : Aladin_links.Link.t) ->
             match kind with
             | Some k -> Aladin_links.Link.kind_name l.kind = k
             | None -> true)
    in
    match format with
    | Some `Csv -> print_string (Aladin_access.Link_export.to_csv links)
    | Some `Dot -> print_string (Aladin_access.Link_export.to_dot links)
    | None ->
        List.iter (fun l -> Format.printf "%a@." Aladin_links.Link.pp l) links
  in
  Cmd.v
    (Cmd.info "links" ~doc:"List discovered object links (text, CSV or DOT).")
    Term.(const run $ paths_arg $ kind $ format)

(* --- trace --- *)

let trace_cmd =
  let json =
    Arg.(value & opt (some string) None & info [ "o"; "json" ] ~docv:"FILE"
           ~doc:"Also write the trace to $(docv) as JSON.")
  in
  let run paths config json =
    let tr = Aladin_obs.Trace.create ~name:"aladin" () in
    let (_ : Warehouse.t) = build_warehouse ?config ~trace:tr paths in
    print_string (Aladin_obs.Sink.pretty tr);
    match json with
    | Some path ->
        Aladin_obs.Sink.write_json tr path;
        Printf.printf "trace written to %s\n" path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Integrate sources and report the pipeline execution trace:               per-step spans, counters and latency histograms.")
    Term.(const run $ paths_arg $ config_arg $ json)

(* --- profile --- *)

let profile_cmd =
  let run path =
    let cat = import_or_die path in
    let sp = Aladin_discovery.Source_profile.analyze cat in
    print_string (Aladin_discovery.Profile_report.render sp)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Data-profiling report of one source: per-attribute statistics              and content classes.")
    Term.(const run $ path)

(* --- dups --- *)

let dups_cmd =
  let explain =
    Arg.(value & flag & info [ "explain" ]
           ~doc:"Show the field-level evidence for each flagged pair.")
  in
  let run paths explain =
    let w = build_warehouse paths in
    match Warehouse.duplicates w with
    | None -> print_endline "(no duplicate analysis)"
    | Some d ->
        Printf.printf "%d duplicate pairs in %d clusters\n"
          (List.length d.links) (List.length d.clusters);
        List.iter
          (fun cluster ->
            Printf.printf "  { %s }\n" (String.concat ", " cluster))
          d.clusters;
        if explain then begin
          let by_key = Hashtbl.create 64 in
          List.iter
            (fun (r : Aladin_dup.Object_sim.repr) ->
              Hashtbl.replace by_key (Aladin_links.Objref.to_string r.obj) r)
            d.reprs;
          let context = Aladin_dup.Object_sim.context_of d.reprs in
          List.iter
            (fun (l : Aladin_links.Link.t) ->
              match
                ( Hashtbl.find_opt by_key (Aladin_links.Objref.to_string l.src),
                  Hashtbl.find_opt by_key (Aladin_links.Objref.to_string l.dst) )
              with
              | Some a, Some b ->
                  print_newline ();
                  print_string (Aladin_dup.Object_sim.explain ~context a b)
              | _ -> ())
            d.links
        end
  in
  Cmd.v
    (Cmd.info "dups" ~doc:"List flagged duplicate objects (never merged).")
    Term.(const run $ paths_arg $ explain)

(* --- export --- *)

let export_cmd =
  let dir =
    Arg.(required & opt (some string) None & info [ "d"; "dir" ] ~docv:"DIR"
           ~doc:"Directory to write the static site into.")
  in
  let run paths dir =
    let w = build_warehouse paths in
    let n = Aladin_access.Html_export.write_site (Warehouse.browser w) ~dir in
    Printf.printf "wrote %d object pages + index.html to %s\n" n dir
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Integrate sources and export the object web as a static HTML site.")
    Term.(const run $ paths_arg $ dir)

(* --- shell --- *)

let shell_cmd =
  let run paths =
    let w = build_warehouse paths in
    print_string (Aladin_system.summary w);
    print_endline "type 'help' for commands";
    Shell.repl (Shell.create w) stdin stdout
  in
  Cmd.v
    (Cmd.info "shell"
       ~doc:"Integrate sources and browse them in an interactive shell.")
    Term.(const run $ paths_arg)

(* --- load --- *)

let load_cmd =
  let dir =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
           ~doc:"Warehouse store directory written by 'save' (or demo --save).")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ]
           ~doc:"Exit nonzero when any store member was salvaged, quarantined \
                 or missing.")
  in
  let reanalyze =
    Arg.(value & flag & info [ "reanalyze" ]
           ~doc:"Re-run the five pipeline steps on the restored data instead \
                 of trusting the saved links and reports.")
  in
  let run dir config strict reanalyze =
    match Warehouse.load_dir ~config:(load_config config) ~reanalyze dir with
    | w, report ->
        print_string (Aladin_system.summary w);
        print_string (Load_report.render report);
        if strict && not (Load_report.is_clean report) then begin
          prerr_endline "aladin: load degraded (--strict)";
          exit 1
        end
    | exception Sys_error msg -> die "aladin: %s" msg
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:"Restore a saved warehouse store, salvaging around any damage;          prints the load report.")
    Term.(const run $ dir $ config_arg $ strict $ reanalyze)

(* --- fsck --- *)

let fsck_cmd =
  let dir =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
           ~doc:"Warehouse or dump store directory to verify.")
  in
  let repair =
    Arg.(value & flag & info [ "repair" ]
           ~doc:"Salvage damaged members record-by-record, quarantine the \
                 unrecoverable, and commit the result as a fresh consistent \
                 snapshot.")
  in
  let run dir repair =
    if repair then
      match Snapshot.repair dir with
      | Ok report ->
          print_string (Load_report.render report);
          if Load_report.is_clean report then
            print_endline "store is clean, nothing to repair"
          else print_endline "store repaired"
      | Error msg -> die "aladin: fsck: %s" msg
    else
      match Snapshot.verify dir with
      | Ok report ->
          print_string (Load_report.render report);
          if not (Load_report.is_clean report) then begin
            prerr_endline "aladin: fsck: store is damaged (--repair to salvage)";
            exit 1
          end
      | Error msg -> die "aladin: fsck: %s" msg
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:"Verify a store offline against its manifest checksums: exit            nonzero on damage; --repair salvages and recommits.")
    Term.(const run $ dir $ repair)

(* --- demo --- *)

let demo_cmd =
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Corpus seed.")
  in
  let save =
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"DIR"
           ~doc:"Also save the integrated warehouse as a store under $(docv).")
  in
  let run seed save trace_file =
    with_trace_file trace_file (fun trace ->
        let corpus =
          Aladin_datagen.Corpus.generate
            { Aladin_datagen.Corpus.default_params with seed }
        in
        let w = Warehouse.integrate ?trace corpus.catalogs in
        print_string (Aladin_system.summary w);
        match save with
        | None -> ()
        | Some dir -> (
            match Warehouse.save_dir w dir with
            | Ok () -> Printf.printf "warehouse saved to %s\n" dir
            | Error msg -> die "aladin: save: %s" msg))
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Generate a synthetic life-science corpus and integrate it.")
    Term.(const run $ seed $ save $ trace_file_arg)

let () =
  let info =
    Cmd.info "aladin" ~version:"1.0.0"
      ~doc:"(Almost) hands-off information integration for the life sciences"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ integrate_cmd; discover_cmd; browse_cmd; search_cmd; query_cmd;
            links_cmd; trace_cmd; profile_cmd; dups_cmd; export_cmd;
            shell_cmd; demo_cmd; load_cmd; fsck_cmd ]))
