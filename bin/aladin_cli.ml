(* The ALADIN command-line front end.

   aladin integrate FILE...     integrate sources, print the summary
   aladin discover FILE         steps 1-3 for one source, print structure
   aladin browse FILE... -a ACC render one object's page
   aladin search FILE... -q Q   ranked full-text search
   aladin query FILE... -s SQL  run SQL over the warehouse
   aladin links FILE...         list discovered links
   aladin trace FILE...         integrate and report the execution trace
   aladin serve FILE...         long-lived cached query-serving daemon
   aladin fetch TARGET          one HTTP request against a running server
   aladin demo                  integrate a generated synthetic corpus
   aladin add STORE FILE...     add sources to a saved store (delta only)
   aladin load DIR              restore a saved warehouse store
   aladin fsck DIR              verify (or --repair) a warehouse store

   Access commands (browse, search, query, links, export, serve) all go
   through the Aladin.Engine facade: the warehouse and its access
   structures are built once per invocation and shared. Flag specs and
   exit codes (0 ok / 1 degraded under --strict / 2 error) live in
   Cli_common. *)

open Cmdliner
open Aladin
open Cli_common
module Run_report = Aladin_resilience.Run_report
module Snapshot = Aladin_store.Snapshot
module Load_report = Aladin_store.Load_report

(* --- integrate --- *)

let integrate_cmd =
  let save =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"META"
           ~doc:"Write the metadata repository to $(docv).")
  in
  (* positional FILEs are optional here (unlike paths_arg): a --resume
     can re-import uncommitted sources from the paths the journal
     recorded at first integrate *)
  let loose_paths =
    Arg.(value & pos_all file [] & info [] ~docv:"FILE"
           ~doc:"Source files or dump directories.")
  in
  let journal_arg =
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"DIR"
           ~doc:"Run under a write-ahead journal at $(docv): each source \
                 addition is checkpointed, so a killed process resumes \
                 with $(b,--resume) $(docv) in O(remaining work).")
  in
  let resume_arg =
    Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"DIR"
           ~doc:"Resume a killed journaled integration from $(docv). \
                 Committed steps are restored from their checkpoints; \
                 omitted FILEs are re-imported from the paths the \
                 journal recorded.")
  in
  let links_out_arg =
    Arg.(value & opt (some string) None & info [ "links-out" ] ~docv:"FILE"
           ~doc:"Export the final link set to $(docv) as CSV.")
  in
  let save_store_arg =
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"DIR"
           ~doc:"Also save the integrated warehouse as a store under \
                 $(docv) (for later 'aladin add'/'load'/'serve --store').")
  in
  let kill_step_arg =
    Arg.(value & opt (some int) None & info [ "chaos-kill-step" ] ~docv:"N"
           ~doc:"(testing) Kill the process at the $(docv)-th pipeline \
                 step boundary; exits 3.")
  in
  let kill_ops_arg =
    Arg.(value & opt (some int) None & info [ "chaos-kill-ops" ] ~docv:"N"
           ~doc:"(testing) Kill the process at the $(docv)-th durable \
                 store operation; exits 3.")
  in
  let kill_bytes_arg =
    Arg.(value & opt (some int) None & info [ "chaos-kill-bytes" ] ~docv:"N"
           ~doc:"(testing) Kill the process after $(docv) journal/store \
                 bytes have been written; exits 3.")
  in
  let run paths journal resume save links_out save_store config strict
      trace_file kill_step kill_ops kill_bytes =
    (match kill_step with
    | Some i -> Aladin_store.Fault.arm_step ~index:i
    | None -> ());
    (match kill_ops with
    | Some n -> Aladin_store.Fault.arm_ops ~ops:n
    | None -> ());
    (match kill_bytes with
    | Some n -> Aladin_store.Fault.arm ~bytes:n
    | None -> ());
    let journal_dir =
      match (journal, resume) with
      | Some _, Some _ ->
          die "aladin: --journal and --resume are mutually exclusive"
      | Some d, None ->
          if Aladin_store.Journal.exists d then
            die "aladin: %s already holds a journal (use --resume %s)" d d;
          Some d
      | None, Some d ->
          if not (Aladin_store.Journal.exists d) then
            die "aladin: %s: no journal to resume" d;
          Some d
      | None, None -> None
    in
    let paths =
      match (paths, resume) with
      | [], Some dir -> (
          (* re-import only what the journal says is still uncommitted *)
          match Warehouse.journal_status dir with
          | Error e -> die "aladin: %s" e
          | Ok entries ->
              List.filter_map
                (fun (e : Warehouse.journal_source) ->
                  if e.js_committed then None else e.js_path)
                entries)
      | [], None -> die "aladin: no source files given"
      | ps, _ -> ps
    in
    match
      with_trace_file trace_file (fun trace ->
          let w, resume_note =
            match journal_dir with
            | None -> (build_warehouse_resilient ?config ?trace paths, "")
            | Some dir ->
                (* journaled import is strict: a source that cannot be
                   imported would poison the recorded plan *)
                let catalogs = List.map import_or_die paths in
                let source_paths =
                  List.map2
                    (fun p c -> (Aladin_relational.Catalog.name c, p))
                    paths catalogs
                in
                let cfg = load_config config in
                (match
                   Warehouse.integrate_journaled ~config:cfg ?trace
                     ~source_paths ~journal:dir catalogs
                 with
                | Error e -> die "aladin: %s" e
                | Ok (w, (info : Warehouse.resume_info)) ->
                    let note =
                      if resume = None then ""
                      else
                        Printf.sprintf
                          "resumed %d committed step%s, executed %d, \
                           dropped %d torn record%s\n"
                          (List.length info.resumed_sources)
                          (if List.length info.resumed_sources = 1 then ""
                           else "s")
                          (List.length info.executed_sources)
                          info.dropped_records
                          (if info.dropped_records = 1 then "" else "s")
                    in
                    (w, note))
          in
          print_string resume_note;
          print_string (Aladin_system.summary w);
          let reports = Warehouse.run_reports w in
          List.iter (fun r -> print_string (Run_report.render r)) reports;
          (match save with
          | Some path ->
              Aladin_store.Atomic_file.write path
                (Aladin_metadata.Repository.save (Warehouse.repository w));
              Printf.printf "metadata written to %s\n" path
          | None -> ());
          (match links_out with
          | Some path ->
              Aladin_store.Atomic_file.write path
                (Aladin_access.Link_export.to_csv (Warehouse.links w));
              Printf.printf "links written to %s\n" path
          | None -> ());
          (match save_store with
          | Some dir -> (
              match Warehouse.save_dir w dir with
              | Ok () -> Printf.printf "warehouse saved to %s\n" dir
              | Error msg -> die "aladin: save: %s" msg)
          | None -> ());
          if strict && not (List.for_all Run_report.is_clean reports) then
            degraded "aladin: integration degraded (--strict)")
    with
    | v -> v
    | exception Aladin_store.Fault.Killed ->
        prerr_endline "aladin: killed by injected fault";
        exit exit_killed
  in
  Cmd.v
    (Cmd.info "integrate" ~doc:"Integrate data sources hands-off (all five steps).")
    Term.(const run $ loose_paths $ journal_arg $ resume_arg $ save
          $ links_out_arg $ save_store_arg $ config_arg $ strict_arg
          $ trace_file_arg $ kill_step_arg $ kill_ops_arg $ kill_bytes_arg)

(* --- discover --- *)

let discover_cmd =
  let run path =
    let cat = import_or_die path in
    let sp = Aladin_discovery.Source_profile.analyze cat in
    Format.printf "%a@." Aladin_discovery.Source_profile.pp sp
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "discover"
       ~doc:"Import one source and print its discovered structure (steps 1-3).")
    Term.(const run $ path)

(* --- browse --- *)

let browse_cmd =
  let accession =
    Arg.(required & opt (some string) None & info [ "a"; "accession" ] ~docv:"ACC"
           ~doc:"Accession number of the object to display.")
  in
  let run paths accession source =
    let eng = build_engine paths in
    match Engine.browse eng ?source accession with
    | Some v -> print_string (Aladin_access.Browser.render v)
    | None -> die "object %s not found" accession
  in
  Cmd.v
    (Cmd.info "browse" ~doc:"Integrate sources and render one object's page.")
    Term.(const run $ paths_arg $ accession $ source_arg)

(* --- search --- *)

let search_cmd =
  let query =
    Arg.(required & opt (some string) None & info [ "q"; "query" ] ~docv:"QUERY")
  in
  let field =
    Arg.(value & opt (some string) None & info [ "f"; "field" ] ~docv:"REL.ATTR"
           ~doc:"Restrict to one indexed field (vertical partition).")
  in
  let run paths query source field =
    let eng = build_engine paths in
    let hits =
      match (source, field) with
      | None, None -> Engine.search eng query
      | _ -> Engine.focused eng ?source ?field query
    in
    if hits = [] then print_endline "(no hits)"
    else
      List.iter
        (fun (h : Aladin_access.Search.hit) ->
          Printf.printf "%-28s %.3f  [%s]\n"
            (Aladin_links.Objref.to_string h.obj)
            h.score
            (String.concat ", " h.matched))
        hits
  in
  Cmd.v
    (Cmd.info "search" ~doc:"Ranked full-text search over the warehouse.")
    Term.(const run $ paths_arg $ query $ source_arg $ field)

(* --- query --- *)

let query_cmd =
  let sql =
    Arg.(required & opt (some string) None & info [ "s"; "sql" ] ~docv:"SQL"
           ~doc:"Query; address tables as source.relation.")
  in
  let run paths sql =
    let eng = build_engine paths in
    match Engine.query eng sql with
    | Ok result -> print_endline (Aladin_access.Sql_eval.render_result result)
    | Error msg -> die "aladin: %s" msg
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run a SQL query against the integrated warehouse.")
    Term.(const run $ paths_arg $ sql)

(* --- links --- *)

let links_cmd =
  let kind =
    Arg.(value & opt (some string) None & info [ "k"; "kind" ] ~docv:"KIND"
           ~doc:"Only links of this kind (xref, seq, text, shared-term, mention, duplicate).")
  in
  let format =
    Arg.(value & opt (some (enum [ ("csv", `Csv); ("dot", `Dot) ])) None
           & info [ "format" ] ~docv:"FMT"
               ~doc:"Output as $(docv): csv or dot (GraphViz). Default: text.")
  in
  let run paths kind format =
    let eng = build_engine paths in
    let links = Engine.links ?kind eng in
    match format with
    | Some `Csv -> print_string (Aladin_access.Link_export.to_csv links)
    | Some `Dot -> print_string (Aladin_access.Link_export.to_dot links)
    | None ->
        List.iter (fun l -> Format.printf "%a@." Aladin_links.Link.pp l) links
  in
  Cmd.v
    (Cmd.info "links" ~doc:"List discovered object links (text, CSV or DOT).")
    Term.(const run $ paths_arg $ kind $ format)

(* --- trace --- *)

let trace_cmd =
  let json =
    Arg.(value & opt (some string) None & info [ "o"; "json" ] ~docv:"FILE"
           ~doc:"Also write the trace to $(docv) as JSON.")
  in
  let run paths config json =
    let tr = Aladin_obs.Trace.create ~name:"aladin" () in
    let (_ : Warehouse.t) = build_warehouse ?config ~trace:tr paths in
    print_string (Aladin_obs.Sink.pretty tr);
    match json with
    | Some path ->
        Aladin_obs.Sink.write_json tr path;
        Printf.printf "trace written to %s\n" path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Integrate sources and report the pipeline execution trace:               per-step spans, counters and latency histograms.")
    Term.(const run $ paths_arg $ config_arg $ json)

(* --- profile --- *)

let profile_cmd =
  let run path =
    let cat = import_or_die path in
    let sp = Aladin_discovery.Source_profile.analyze cat in
    print_string (Aladin_discovery.Profile_report.render sp)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Data-profiling report of one source: per-attribute statistics              and content classes.")
    Term.(const run $ path)

(* --- dups --- *)

let dups_cmd =
  let explain =
    Arg.(value & flag & info [ "explain" ]
           ~doc:"Show the field-level evidence for each flagged pair.")
  in
  let run paths explain =
    let w = build_warehouse paths in
    match Warehouse.duplicates w with
    | None -> print_endline "(no duplicate analysis)"
    | Some d ->
        Printf.printf "%d duplicate pairs in %d clusters\n"
          (List.length d.links) (List.length d.clusters);
        List.iter
          (fun cluster ->
            Printf.printf "  { %s }\n" (String.concat ", " cluster))
          d.clusters;
        if explain then begin
          let by_key = Hashtbl.create 64 in
          List.iter
            (fun (r : Aladin_dup.Object_sim.repr) ->
              Hashtbl.replace by_key (Aladin_links.Objref.to_string r.obj) r)
            d.reprs;
          let context = Aladin_dup.Object_sim.context_of d.reprs in
          List.iter
            (fun (l : Aladin_links.Link.t) ->
              match
                ( Hashtbl.find_opt by_key (Aladin_links.Objref.to_string l.src),
                  Hashtbl.find_opt by_key (Aladin_links.Objref.to_string l.dst) )
              with
              | Some a, Some b ->
                  print_newline ();
                  print_string (Aladin_dup.Object_sim.explain ~context a b)
              | _ -> ())
            d.links
        end
  in
  Cmd.v
    (Cmd.info "dups" ~doc:"List flagged duplicate objects (never merged).")
    Term.(const run $ paths_arg $ explain)

(* --- export --- *)

let export_cmd =
  let dir =
    Arg.(required & opt (some string) None & info [ "d"; "dir" ] ~docv:"DIR"
           ~doc:"Directory to write the static site into.")
  in
  let run paths dir =
    let eng = build_engine paths in
    let n = Aladin_access.Html_export.write_site (Engine.browser eng) ~dir in
    Printf.printf "wrote %d object pages + index.html to %s\n" n dir
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Integrate sources and export the object web as a static HTML site.")
    Term.(const run $ paths_arg $ dir)

(* --- shell --- *)

let shell_cmd =
  let run paths =
    let w = build_warehouse paths in
    print_string (Aladin_system.summary w);
    print_endline "type 'help' for commands";
    Shell.repl (Shell.create w) stdin stdout
  in
  Cmd.v
    (Cmd.info "shell"
       ~doc:"Integrate sources and browse them in an interactive shell.")
    Term.(const run $ paths_arg)

(* --- serve --- *)

let serve_cmd =
  let module Serve = Aladin_serve in
  let paths =
    Arg.(value & pos_all file [] & info [] ~docv:"FILE"
           ~doc:"Source files to integrate and serve.")
  in
  let store =
    Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR"
           ~doc:"Serve a saved warehouse store instead of integrating files.")
  in
  let max_queue =
    Arg.(value & opt int 64 & info [ "max-queue" ] ~docv:"N"
           ~doc:"Admission-queue bound per batch; requests past it get 503 \
                 with Retry-After.")
  in
  let cache_size =
    Arg.(value & opt int Serve.Service.default_config.cache_capacity
           & info [ "cache-size" ] ~docv:"N"
               ~doc:"Response-cache entries (0 disables caching).")
  in
  let cache_ttl =
    Arg.(value & opt float Serve.Service.default_config.cache_ttl
           & info [ "cache-ttl" ] ~docv:"SECONDS"
               ~doc:"Response-cache entry lifetime (0 = never expires).")
  in
  let request_budget =
    Arg.(value & opt float 5.0 & info [ "request-budget" ] ~docv:"SECONDS"
           ~doc:"Per-request deadline; an expired request gets 503. 0 \
                 disables the deadline.")
  in
  let debug =
    Arg.(value & flag & info [ "debug-endpoints" ]
           ~doc:"Expose /slow (deadline-polling sleeper) for load and drain \
                 testing.")
  in
  let run paths store config port host max_queue cache_size cache_ttl
      request_budget debug =
    let cfg = load_config config in
    let w =
      match (store, paths) with
      | Some dir, [] -> (
          match Warehouse.load_dir ~config:cfg dir with
          | w, report ->
              if not (Load_report.is_clean report) then
                print_string (Load_report.render report);
              w
          | exception Sys_error msg -> die "aladin: %s" msg)
      | Some _, _ :: _ -> die "aladin: serve takes FILE... or --store, not both"
      | None, [] -> die "aladin: serve needs source files or --store DIR"
      | None, paths -> Warehouse.integrate ~config:cfg (List.map import_or_die paths)
    in
    let engine = Engine.create w in
    let pool = Aladin_par.Pool.get ~domains:cfg.Config.domains () in
    let service =
      Serve.Service.create ~pool
        ~config:
          {
            Serve.Service.cache_capacity = cache_size;
            cache_ttl;
            request_budget = (if request_budget > 0.0 then Some request_budget else None);
            debug_endpoints = debug;
          }
        engine
    in
    let server_cfg = { Serve.Server.default_config with host; port; max_queue } in
    let stats =
      Serve.Server.run ~config:server_cfg
        ~on_ready:(fun p ->
          Printf.printf "serving %d objects on http://%s:%d (SIGINT drains)\n%!"
            (List.length (Engine.objects engine)) host p)
        service
    in
    Printf.printf
      "drained: %d served, %d inline, %d rejected, %d read errors, %d write \
       errors, %d batches (largest %d)\n"
      stats.Serve.Server.served stats.inline_served stats.rejected
      stats.read_errors stats.write_errors stats.batches stats.max_batch
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Integrate once, then serve browse/search/query over HTTP with a \
             response cache, bounded admission and graceful drain.")
    Term.(const run $ paths $ store $ config_arg $ port_arg $ host_arg
          $ max_queue $ cache_size $ cache_ttl $ request_budget $ debug)

(* --- fetch --- *)

let fetch_cmd =
  let module Serve = Aladin_serve in
  let target =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TARGET"
           ~doc:"Request target, e.g. /search?q=kinase or /healthz.")
  in
  let include_head =
    Arg.(value & flag & info [ "i"; "include" ]
           ~doc:"Print the status line and response headers before the body.")
  in
  let run target port host include_head =
    match Serve.Client.request ~host ~port target with
    | Error msg -> die "aladin: fetch: %s" msg
    | Ok resp ->
        if include_head then begin
          Printf.printf "HTTP/1.1 %d %s\n" resp.Serve.Http.status
            (Serve.Http.reason resp.Serve.Http.status);
          List.iter
            (fun (k, v) -> Printf.printf "%s: %s\n" k v)
            resp.Serve.Http.headers;
          print_newline ()
        end;
        print_string resp.Serve.Http.body;
        if resp.Serve.Http.status >= 400 then exit exit_error
  in
  Cmd.v
    (Cmd.info "fetch"
       ~doc:"One HTTP GET against a running aladin serve (no curl needed); \
             exits 2 on a non-2xx response.")
    Term.(const run $ target $ port_arg $ host_arg $ include_head)

(* --- add --- *)

let add_cmd =
  let dir =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"STORE"
           ~doc:"Warehouse store directory written by 'save' or 'demo --save'; \
                 updated in place.")
  in
  let files =
    Arg.(non_empty & pos_right 0 file [] & info [] ~docv:"FILE"
           ~doc:"Source files to add. A source with the same name replaces \
                 the stored one.")
  in
  let links_out_arg =
    Arg.(value & opt (some string) None & info [ "links-out" ] ~docv:"FILE"
           ~doc:"Export the final link set to $(docv) as CSV.")
  in
  let run dir files config strict links_out =
    match Warehouse.load_dir ~config:(load_config config) dir with
    | exception Sys_error msg -> die "aladin: %s" msg
    | w, load_report ->
        if not (Load_report.is_clean load_report) then
          print_string (Load_report.render load_report);
        let reports =
          List.map
            (fun path ->
              let cat = import_or_die path in
              let report = Warehouse.add_source w cat in
              print_string (Run_report.render report);
              (match Warehouse.last_delta w with
              | Some (a : Delta.audit) ->
                  let pair (x, y) = x ^ "<->" ^ y in
                  Printf.printf
                    "delta: %d pair%s recomputed (%s), %d reused\n"
                    (List.length a.recomputed_pairs)
                    (if List.length a.recomputed_pairs = 1 then "" else "s")
                    (String.concat ", " (List.map pair a.recomputed_pairs))
                    (List.length a.reused_pairs)
              | None -> ());
              report)
            files
        in
        (match Warehouse.save_dir w dir with
        | Ok () -> Printf.printf "warehouse saved to %s\n" dir
        | Error msg -> die "aladin: save: %s" msg);
        (match links_out with
        | Some path ->
            Aladin_store.Atomic_file.write path
              (Aladin_access.Link_export.to_csv (Warehouse.links w));
            Printf.printf "links written to %s\n" path
        | None -> ());
        if
          strict
          && not
               (Load_report.is_clean load_report
               && List.for_all Run_report.is_clean reports)
        then degraded "aladin: add degraded (--strict)"
  in
  Cmd.v
    (Cmd.info "add"
       ~doc:"Add sources to a saved warehouse store incrementally: only the \
             source pairs touching each new source are recomputed (the \
             printed delta says which); everything else is reused. The \
             merged result is byte-identical to re-integrating from \
             scratch.")
    Term.(const run $ dir $ files $ config_arg $ strict_arg $ links_out_arg)

(* --- load --- *)

let load_cmd =
  let dir =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
           ~doc:"Warehouse store directory written by 'save' (or demo --save).")
  in
  let reanalyze =
    Arg.(value & flag & info [ "reanalyze" ]
           ~doc:"Re-run the five pipeline steps on the restored data instead \
                 of trusting the saved links and reports.")
  in
  let run dir config strict reanalyze =
    match Warehouse.load_dir ~config:(load_config config) ~reanalyze dir with
    | w, report ->
        print_string (Aladin_system.summary w);
        print_string (Load_report.render report);
        if strict && not (Load_report.is_clean report) then
          degraded "aladin: load degraded (--strict)"
    | exception Sys_error msg -> die "aladin: %s" msg
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:"Restore a saved warehouse store, salvaging around any damage;          prints the load report.")
    Term.(const run $ dir $ config_arg $ strict_arg $ reanalyze)

(* --- fsck --- *)

let fsck_cmd =
  let dir =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
           ~doc:"Warehouse or dump store directory to verify.")
  in
  let repair =
    Arg.(value & flag & info [ "repair" ]
           ~doc:"Salvage damaged members record-by-record, quarantine the \
                 unrecoverable, and commit the result as a fresh consistent \
                 snapshot.")
  in
  let run dir repair =
    if repair then
      match Snapshot.repair dir with
      | Ok report ->
          print_string (Load_report.render report);
          if Load_report.is_clean report then
            print_endline "store is clean, nothing to repair"
          else print_endline "store repaired"
      | Error msg -> die "aladin: fsck: %s" msg
    else
      match Snapshot.verify dir with
      | Ok report ->
          print_string (Load_report.render report);
          if not (Load_report.is_clean report) then
            degraded "aladin: fsck: store is damaged (--repair to salvage)"
      | Error msg -> die "aladin: fsck: %s" msg
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:"Verify a store offline against its manifest checksums: exit            nonzero on damage; --repair salvages and recommits.")
    Term.(const run $ dir $ repair)

(* --- demo --- *)

let demo_cmd =
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Corpus seed.")
  in
  let save =
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"DIR"
           ~doc:"Also save the integrated warehouse as a store under $(docv).")
  in
  let run seed save trace_file =
    with_trace_file trace_file (fun trace ->
        let corpus =
          Aladin_datagen.Corpus.generate
            { Aladin_datagen.Corpus.default_params with seed }
        in
        let w = Warehouse.integrate ?trace corpus.catalogs in
        print_string (Aladin_system.summary w);
        match save with
        | None -> ()
        | Some dir -> (
            match Warehouse.save_dir w dir with
            | Ok () -> Printf.printf "warehouse saved to %s\n" dir
            | Error msg -> die "aladin: save: %s" msg))
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Generate a synthetic life-science corpus and integrate it.")
    Term.(const run $ seed $ save $ trace_file_arg)

let () =
  let info =
    Cmd.info "aladin" ~version:"1.0.0"
      ~doc:"(Almost) hands-off information integration for the life sciences"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ integrate_cmd; discover_cmd; browse_cmd; search_cmd; query_cmd;
            links_cmd; trace_cmd; profile_cmd; dups_cmd; export_cmd;
            shell_cmd; serve_cmd; fetch_cmd; demo_cmd; add_cmd; load_cmd;
            fsck_cmd ]))
