(* Shared flag specs, exit codes and warehouse/engine construction for
   every aladin subcommand, so flags spell and behave identically across
   the CLI.

   Exit codes (uniform across subcommands):
     0  success
     1  degraded — the operation completed but something was skipped,
        salvaged, quarantined or over budget, and --strict was given
     2  error — bad input, missing object, parse failure, I/O error
     3  killed — an armed chaos fault (a --chaos-kill flag) fired; the
        journal, if any, is left for [integrate --resume]
   (Cmdliner additionally uses 124/125 for command-line parse errors.)

   --strict, everywhere it appears, means the same thing: "a merely
   degraded outcome is a failure"; without it degradation is reported
   on stderr/stdout but exits 0. *)

open Cmdliner
open Aladin
module Import_error = Aladin_resilience.Import_error

let exit_ok = 0
let exit_degraded = 1
let exit_error = 2
let exit_killed = 3

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline msg;
      exit exit_error)
    fmt

let degraded fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline msg;
      exit exit_degraded)
    fmt

(* --- shared flag specs --- *)

let config_arg =
  Arg.(value & opt (some file) None & info [ "config" ] ~docv:"CONF"
         ~doc:"Load pipeline tunables from a key = value file (see Config).")

let paths_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE"
         ~doc:"Source files or dump directories.")

let trace_file_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write the pipeline execution trace to $(docv) as JSON.")

let strict_arg =
  Arg.(value & flag & info [ "strict" ]
         ~doc:"Treat a degraded outcome (anything skipped, salvaged, \
               quarantined or over budget) as failure: exit 1 instead of 0.")

let source_arg =
  Arg.(value & opt (some string) None & info [ "s"; "source" ] ~docv:"SRC"
         ~doc:"Restrict to one source.")

let port_arg =
  Arg.(value & opt int 8080 & info [ "p"; "port" ] ~docv:"PORT"
         ~doc:"TCP port (0 picks a free one and prints it).")

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR"
         ~doc:"Address to bind or connect to.")

(* --- config / import --- *)

let load_config = function
  | Some path -> (
      match Config.of_file path with
      | Ok c -> c
      | Error msg -> die "aladin: %s" msg)
  | None -> Config.default

(* strict import for the single-source and access commands: any import
   problem aborts, recovered record errors are only warned about *)
let import_or_die path =
  match Aladin_system.import_file path with
  | Ok (im : Aladin_formats.Import.import) ->
      List.iter
        (fun e ->
          Printf.eprintf "aladin: warning: %s: %s\n" path
            (Import_error.record_error_to_string e))
        im.record_errors;
      im.catalog
  | Error err -> die "aladin: %s" (Import_error.to_string err)

let with_trace_file file f =
  match file with
  | None -> f None
  | Some path ->
      let tr = Aladin_obs.Trace.create ~name:"aladin" () in
      let v = f (Some tr) in
      Aladin_obs.Sink.write_json tr path;
      Printf.printf "trace written to %s\n" path;
      v

(* --- warehouse / engine construction --- *)

let build_warehouse ?config ?trace paths =
  let config = load_config config in
  Warehouse.integrate ~config ?trace (List.map import_or_die paths)

(* resilient build for [integrate]: a source that cannot even be imported
   is quarantined with a report and the rest still integrate *)
let build_warehouse_resilient ?config ?trace paths =
  let config = load_config config in
  let w = Warehouse.create ~config () in
  List.iter
    (fun path ->
      match Aladin_system.import_file path with
      | Ok (im : Aladin_formats.Import.import) ->
          ignore
            (Warehouse.add_source ?trace ~import_errors:im.record_errors w
               im.catalog)
      | Error err ->
          ignore
            (Warehouse.report_import_failure w
               ~source:(Aladin_system.source_name_of_path path) err))
    paths;
  w

let build_engine ?config ?trace paths =
  Engine.create (build_warehouse ?config ?trace paths)
