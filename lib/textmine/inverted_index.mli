(** Inverted index with TF-IDF ranking — the warehouse's full-text search
    engine (§4.6: "a specialized search engine can crawl the links and index
    biological objects and their data and textual annotation"). *)

type t

type posting = { doc_id : string; field : string; tf : int }

val create : unit -> t

val add : t -> doc_id:string -> field:string -> string -> unit
(** Index one field of a document. Repeated calls accumulate. *)

val doc_count : t -> int

val term_count : t -> int

val postings : t -> string -> posting list
(** Raw postings for a (lowercased) term. *)

val idf : t -> string -> float
(** [log (1 + N / df)] over DISTINCT documents containing the term (a
    document indexed under several fields counts once); 0.0 for a term
    absent from the index. *)

type query_result = { doc_id : string; score : float; matched : string list }

val search : t -> ?field:string -> ?limit:int -> string -> query_result list
(** Rank documents by summed TF-IDF of the query terms; [field] restricts to
    a vertical partition (the paper's "focused search"). [limit] defaults to
    20. Multi-term queries are disjunctive but reward documents matching
    more terms. *)

val phrase_matches : t -> string -> string list
(** Document ids whose indexed text contains every query term (conjunctive
    filter used by the browser's search box). *)
