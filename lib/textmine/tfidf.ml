type corpus = {
  docs : (string, (string, int) Hashtbl.t) Hashtbl.t;  (* doc -> term counts *)
  df : (string, int) Hashtbl.t;  (* term -> document frequency *)
  mutable prep : prepared option;  (* cache, invalidated by corpus_add *)
}

(* The prepared corpus: one flat representation per document, built once
   after all [corpus_add] calls. Term strings are interned to dense ids
   (lexicographic, so ids are canonical for a given vocabulary); each
   document carries its positive-weight terms as a sorted unboxed id
   array plus the parallel tf-idf weight array and a cached norm. The
   postings table inverts that: term id -> ascending doc indexes. This is
   what makes the all-pairs similarity join sub-quadratic — candidates
   come from shared postings, and scoring is a sorted-merge dot product
   with zero allocation per pair. *)
and prepared = {
  ids : string array;  (* doc index -> doc id, sorted *)
  doc_terms : int array array;  (* doc index -> sorted term ids, weight > 0 *)
  doc_weights : float array array;  (* parallel to [doc_terms] *)
  norms : float array;  (* doc index -> euclidean norm of the weight vector *)
  postings : int array array;  (* term id -> ascending doc indexes *)
  term_df : int array;  (* term id -> document frequency *)
  gen_terms : int array array;
      (* doc index -> term ids in candidate-generation order: descending
         weight (ties by ascending id), so the prefix filter can stop
         walking postings as soon as the rest of the vector is too light
         to reach the similarity threshold *)
  gen_suffix : float array array;
      (* parallel to [gen_terms]: [gen_suffix.(d).(k)] is the norm of the
         weights at generation positions k.. divided by the full norm —
         an upper bound (Cauchy-Schwarz) on the cosine of any pair whose
         shared terms all sit at positions >= k *)
}

type vector = (string, float) Hashtbl.t

let corpus_create () =
  { docs = Hashtbl.create 64; df = Hashtbl.create 256; prep = None }

let term_counts text =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun w ->
      let c = try Hashtbl.find counts w with Not_found -> 0 in
      Hashtbl.replace counts w (c + 1))
    (Tokenize.terms text);
  counts

let remove_df c counts =
  Hashtbl.iter
    (fun term _ ->
      match Hashtbl.find_opt c.df term with
      | Some 1 -> Hashtbl.remove c.df term
      | Some n -> Hashtbl.replace c.df term (n - 1)
      | None -> ())
    counts

let corpus_add c ~doc_id text =
  c.prep <- None;
  (match Hashtbl.find_opt c.docs doc_id with
  | Some old -> remove_df c old
  | None -> ());
  let counts = term_counts text in
  Hashtbl.replace c.docs doc_id counts;
  Hashtbl.iter
    (fun term _ ->
      let d = try Hashtbl.find c.df term with Not_found -> 0 in
      Hashtbl.replace c.df term (d + 1))
    counts

let corpus_size c = Hashtbl.length c.docs

let doc_ids c = Hashtbl.fold (fun id _ acc -> id :: acc) c.docs []

let idf c term =
  let n = float_of_int (max 1 (corpus_size c)) in
  match Hashtbl.find_opt c.df term with
  | Some df when df > 0 -> Float.max 0.0 (log (n /. float_of_int df))
  | Some _ | None -> log (n +. 1.0)

let vector_of_counts c counts =
  let v : vector = Hashtbl.create (Hashtbl.length counts) in
  Hashtbl.iter
    (fun term tf ->
      let w = float_of_int tf *. idf c term in
      if w > 0.0 then Hashtbl.replace v term w)
    counts;
  v

let vector_of_doc c doc_id =
  Option.map (vector_of_counts c) (Hashtbl.find_opt c.docs doc_id)

let vector_of_text c text = vector_of_counts c (term_counts text)

let norm v = sqrt (Hashtbl.fold (fun _ w acc -> acc +. (w *. w)) v 0.0)

let cosine a b =
  let na = norm a and nb = norm b in
  if na = 0.0 || nb = 0.0 then 0.0
  else begin
    let small, large = if Hashtbl.length a <= Hashtbl.length b then (a, b) else (b, a) in
    let dot = ref 0.0 in
    Hashtbl.iter
      (fun term w ->
        match Hashtbl.find_opt large term with
        | Some w' -> dot := !dot +. (w *. w')
        | None -> ())
      small;
    !dot /. (na *. nb)
  end

(* ------------------------------------------------------------------ *)
(* prepared corpus                                                     *)
(* ------------------------------------------------------------------ *)

let build_prepared c =
  let n = Hashtbl.length c.docs in
  let ids = Array.of_list (List.sort String.compare (doc_ids c)) in
  (* canonical term ids: lexicographic over the vocabulary *)
  let vocab =
    Hashtbl.fold (fun t _ acc -> t :: acc) c.df []
    |> List.sort String.compare |> Array.of_list
  in
  let nterms = Array.length vocab in
  let term_id : (string, int) Hashtbl.t = Hashtbl.create (2 * max 1 nterms) in
  Array.iteri (fun i t -> Hashtbl.replace term_id t i) vocab;
  let term_df =
    Array.map
      (fun t -> match Hashtbl.find_opt c.df t with Some d -> d | None -> 0)
      vocab
  in
  let nf = float_of_int (max 1 n) in
  let idf_of t = Float.max 0.0 (log (nf /. float_of_int term_df.(t))) in
  let doc_terms = Array.make n [||] in
  let doc_weights = Array.make n [||] in
  let norms = Array.make n 0.0 in
  Array.iteri
    (fun i id ->
      let counts = Hashtbl.find c.docs id in
      (* same weighting (and the same w > 0 filter) as [vector_of_counts],
         so prepared scores match the naive ones exactly *)
      let pairs =
        Hashtbl.fold
          (fun term tf acc ->
            let t = Hashtbl.find term_id term in
            let w = float_of_int tf *. idf_of t in
            if w > 0.0 then (t, w) :: acc else acc)
          counts []
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      in
      let k = List.length pairs in
      let ts = Array.make k 0 and ws = Array.make k 0.0 in
      List.iteri
        (fun j (t, w) ->
          ts.(j) <- t;
          ws.(j) <- w)
        pairs;
      doc_terms.(i) <- ts;
      doc_weights.(i) <- ws;
      norms.(i) <- sqrt (Array.fold_left (fun acc w -> acc +. (w *. w)) 0.0 ws))
    ids;
  let gen_terms = Array.make n [||] in
  let gen_suffix = Array.make n [||] in
  Array.iteri
    (fun i ts ->
      let ws = doc_weights.(i) in
      let k = Array.length ts in
      let order = Array.init k Fun.id in
      Array.sort
        (fun a b ->
          match Float.compare ws.(b) ws.(a) with
          | 0 -> Int.compare ts.(a) ts.(b)
          | cmp -> cmp)
        order;
      let gts = Array.map (fun pos -> ts.(pos)) order in
      let suf = Array.make k 0.0 in
      let acc = ref 0.0 in
      for m = k - 1 downto 0 do
        let w = ws.(order.(m)) in
        acc := !acc +. (w *. w);
        suf.(m) <- (if norms.(i) = 0.0 then 0.0 else sqrt !acc /. norms.(i))
      done;
      gen_terms.(i) <- gts;
      gen_suffix.(i) <- suf)
    doc_terms;
  (* postings over positive-weight occurrences; doc indexes ascend because
     documents are visited in index order *)
  let sizes = Array.make nterms 0 in
  Array.iter (fun ts -> Array.iter (fun t -> sizes.(t) <- sizes.(t) + 1) ts) doc_terms;
  let postings = Array.init nterms (fun t -> Array.make sizes.(t) 0) in
  let fill = Array.make nterms 0 in
  Array.iteri
    (fun i ts ->
      Array.iter
        (fun t ->
          postings.(t).(fill.(t)) <- i;
          fill.(t) <- fill.(t) + 1)
        ts)
    doc_terms;
  { ids; doc_terms; doc_weights; norms; postings; term_df; gen_terms;
    gen_suffix }

let prepare c =
  match c.prep with
  | Some p -> p
  | None ->
      let p = build_prepared c in
      c.prep <- Some p;
      p

let prepared_docs p = Array.length p.ids

let prepared_doc_id p i = p.ids.(i)

(* Every term with positive weight has df < N, so a ceiling of N - 1 keeps
   every discriminating term and the candidate join is provably complete:
   any pair with cosine > 0 shares at least one positive-weight term. A
   term in all N documents has idf = ln(N/N) = 0 and never carries weight,
   so skipping it costs nothing. Lower ceilings trade recall for speed. *)
let default_df_ceiling p = Array.length p.ids - 1

(* HOT-PATH-BEGIN (text-similarity scoring): everything down to the END
   sentinel runs once per candidate pair inside the link-discovery
   fan-out. It may only touch the prepared arrays — no per-pair table
   construction, no re-tokenization, no tf-idf count-vector rebuild
   (a grep-gate in scripts/check.sh enforces it on this region). *)

(* fused sorted-merge dot product over the unboxed weight arrays *)
let dot_sorted ta wa tb wb =
  let la = Array.length ta and lb = Array.length tb in
  let s = ref 0.0 and ia = ref 0 and ib = ref 0 in
  while !ia < la && !ib < lb do
    let a = Array.unsafe_get ta !ia and b = Array.unsafe_get tb !ib in
    if a = b then begin
      s := !s +. (Array.unsafe_get wa !ia *. Array.unsafe_get wb !ib);
      incr ia;
      incr ib
    end
    else if a < b then incr ia
    else incr ib
  done;
  !s

let score_pair p i j =
  let nn = p.norms.(i) *. p.norms.(j) in
  if nn = 0.0 then 0.0
  else
    dot_sorted p.doc_terms.(i) p.doc_weights.(i) p.doc_terms.(j)
      p.doc_weights.(j)
    /. nn

(* HOT-PATH-END *)

(* Candidate generation for query doc [i]: walk the postings of its terms
   with df <= ceiling and collect every co-occurring doc once. [seen] is a
   generation-stamped scratch array ([stamp] must be fresh per query), so
   no per-query table is allocated. Candidates come out sorted, making the
   emission order independent of postings traversal.

   Terms are walked in descending-weight order with a prefix filter: once
   the remaining suffix of [i]'s vector has norm fraction below [min_sim],
   the walk stops — a pair whose shared terms all sit in that suffix has
   cosine <= gen_suffix (Cauchy-Schwarz), so it cannot pass the threshold.
   Lossless for any [min_sim], and the ubiquitous low-idf terms (the ones
   with the longest postings) are exactly the ones that land in the
   pruned suffix.

   Candidates land in the caller-provided unboxed scratch array [buf]
   (capacity >= number of documents); the returned prefix [0, count) is
   sorted ascending. No per-query list or table allocation. *)
let candidates_into p ~df_ceiling ~min_sim ~seen ~stamp ~buf i ~only_greater =
  let gts = p.gen_terms.(i) and suf = p.gen_suffix.(i) in
  let k = Array.length gts in
  let count = ref 0 in
  let m = ref 0 in
  while !m < k && suf.(!m) >= min_sim do
    let t = gts.(!m) in
    if p.term_df.(t) <= df_ceiling then
      Array.iter
        (fun j ->
          if
            j <> i
            && ((not only_greater) || j > i)
            && seen.(j) <> stamp
          then begin
            seen.(j) <- stamp;
            buf.(!count) <- j;
            incr count
          end)
        p.postings.(t);
    incr m
  done;
  let sub = Array.sub buf 0 !count in
  Array.sort Int.compare sub;
  Array.blit sub 0 buf 0 !count;
  !count

let similar_pairs_range ?df_ceiling p ~lo ~hi ~min_sim =
  let n = Array.length p.ids in
  let df_ceiling =
    match df_ceiling with Some d -> d | None -> default_df_ceiling p
  in
  let lo = max 0 lo and hi = min n hi in
  let seen = Array.make (max 1 n) (-1) in
  let buf = Array.make (max 1 n) 0 in
  let out = ref [] in
  for i = lo to hi - 1 do
    let count =
      candidates_into p ~df_ceiling ~min_sim ~seen ~stamp:i ~buf i
        ~only_greater:true
    in
    for k = 0 to count - 1 do
      let j = buf.(k) in
      let sim = score_pair p i j in
      if sim >= min_sim then out := (p.ids.(i), p.ids.(j), sim) :: !out
    done
  done;
  List.rev !out

let similar_pairs ?df_ceiling p ~min_sim =
  similar_pairs_range ?df_ceiling p ~lo:0 ~hi:(Array.length p.ids) ~min_sim

let find_doc p doc_id =
  let lo = ref 0 and hi = ref (Array.length p.ids) in
  let found = ref None in
  while !found = None && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let c = String.compare doc_id p.ids.(mid) in
    if c = 0 then found := Some mid
    else if c < 0 then hi := mid
    else lo := mid + 1
  done;
  !found

let similar_docs c ~doc_id ~min_sim =
  if not (Hashtbl.mem c.docs doc_id) then []
  else begin
    let p = prepare c in
    match find_doc p doc_id with
    | None -> []
    | Some i ->
        let n = Array.length p.ids in
        let candidates =
          if min_sim <= 0.0 then
            (* a zero threshold admits non-overlapping pairs (cosine 0),
               which the candidate join never visits by construction:
               degrade to scoring every other document *)
            List.filter (fun j -> j <> i) (List.init n Fun.id)
          else begin
            let seen = Array.make (max 1 n) (-1) in
            let buf = Array.make (max 1 n) 0 in
            let count =
              candidates_into p ~df_ceiling:(default_df_ceiling p) ~min_sim
                ~seen ~stamp:i ~buf i ~only_greater:false
            in
            Array.to_list (Array.sub buf 0 count)
          end
        in
        List.filter_map
          (fun j ->
            let sim = score_pair p i j in
            if sim >= min_sim then Some (p.ids.(j), sim) else None)
          candidates
        |> List.sort (fun (ida, a) (idb, b) ->
               match Float.compare b a with
               | 0 -> String.compare ida idb
               | cmp -> cmp)
  end

let top_terms v n =
  Hashtbl.fold (fun term w acc -> (term, w) :: acc) v []
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
  |> List.filteri (fun i _ -> i < n)
