type mention = { surface : string; start : int; score : float }

type t = { dict : (string, unit) Hashtbl.t }

let create () = { dict = Hashtbl.create 256 }

let add_dictionary t names =
  List.iter
    (fun n -> Hashtbl.replace t.dict (String.lowercase_ascii n) ())
    names

let dictionary_size t = Hashtbl.length t.dict

let has_digit s = String.exists (fun c -> c >= '0' && c <= '9') s

let has_upper s = String.exists (fun c -> c >= 'A' && c <= 'Z') s

let has_lower s = String.exists (fun c -> c >= 'a' && c <= 'z') s

let internal_upper s =
  String.length s > 1
  && String.exists (fun c -> c >= 'A' && c <= 'Z') (String.sub s 1 (String.length s - 1))

let all_upper s = has_upper s && not (has_lower s)

let surface_score token =
  let n = String.length token in
  if n < 2 || n > 20 then 0.0
  else if Tokenize.stopword token then 0.0
  else begin
    let score = ref 0.0 in
    let letters = has_upper token || has_lower token in
    if letters && has_digit token then score := !score +. 0.5;
    if all_upper token && n >= 2 && n <= 8 then score := !score +. 0.3;
    if internal_upper token && has_lower token then score := !score +. 0.3;
    (* short lowercase+digit names like p53 *)
    if n <= 5 && has_digit token && has_lower token then score := !score +. 0.2;
    Float.min 1.0 !score
  end

(* Dictionary-only recognition for the linking path: when every mention is
   immediately looked up in the dictionary anyway, scoring the surface
   shape of every non-dictionary token is pure waste (tokens vastly
   outnumber dictionary hits). Produces exactly the mentions [recognize]
   would that survive a dictionary-membership filter. *)
let recognize_dictionary t text =
  let rec go i acc = function
    | [] -> List.rev acc
    | surface :: rest ->
        let acc =
          if Tokenize.stopword surface then acc
          else if Hashtbl.mem t.dict (String.lowercase_ascii surface) then
            { surface; start = i; score = 1.0 } :: acc
          else acc
        in
        go (i + 1) acc rest
  in
  go 0 [] (Tokenize.words_raw text)

let recognize t ?(min_score = 0.5) text =
  Tokenize.words_raw text
  |> List.mapi (fun i tok -> (i, tok))
  |> List.filter_map (fun (start, surface) ->
         if Tokenize.stopword surface then None
         else if Hashtbl.mem t.dict (String.lowercase_ascii surface) then
           Some { surface; start; score = 1.0 }
         else
           let score = surface_score surface in
           if score >= min_score then Some { surface; start; score } else None)
