type posting = { doc_id : string; field : string; tf : int }

type t = {
  index : (string, posting list ref) Hashtbl.t;
  docs : (string, unit) Hashtbl.t;
}

let create () = { index = Hashtbl.create 1024; docs = Hashtbl.create 256 }

let add t ~doc_id ~field text =
  Hashtbl.replace t.docs doc_id ();
  let counts = Hashtbl.create 16 in
  List.iter
    (fun w ->
      let c = try Hashtbl.find counts w with Not_found -> 0 in
      Hashtbl.replace counts w (c + 1))
    (Tokenize.terms text);
  Hashtbl.iter
    (fun term tf ->
      let p = { doc_id; field; tf } in
      match Hashtbl.find_opt t.index term with
      | Some ps -> ps := p :: !ps
      | None -> Hashtbl.add t.index term (ref [ p ]))
    counts

let doc_count t = Hashtbl.length t.docs

let term_count t = Hashtbl.length t.index

let postings t term =
  match Hashtbl.find_opt t.index (String.lowercase_ascii term) with
  | Some ps -> !ps
  | None -> []

type query_result = { doc_id : string; score : float; matched : string list }

let idf t term =
  let n = float_of_int (max 1 (doc_count t)) in
  (* distinct doc count via a table: the posting list holds one entry per
     (doc, field), so a List.mem dedup would be quadratic in postings *)
  let seen = Hashtbl.create 16 in
  List.iter (fun (p : posting) -> Hashtbl.replace seen p.doc_id ()) (postings t term);
  let docs_with = Hashtbl.length seen in
  if docs_with = 0 then 0.0 else log (1.0 +. (n /. float_of_int docs_with))

let search t ?field ?(limit = 20) query =
  let terms = Tokenize.terms query in
  let scores : (string, float ref * string list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun term ->
      let w = idf t term in
      if w > 0.0 then
        postings t term
        |> List.iter (fun p ->
               let keep =
                 match field with None -> true | Some f -> p.field = f
               in
               if keep then
                 let entry =
                   match Hashtbl.find_opt scores p.doc_id with
                   | Some e -> e
                   | None ->
                       let e = (ref 0.0, ref []) in
                       Hashtbl.add scores p.doc_id e;
                       e
                 in
                 let score, matched = entry in
                 score := !score +. (float_of_int p.tf *. w);
                 if not (List.mem term !matched) then matched := term :: !matched))
    terms;
  Hashtbl.fold
    (fun doc_id (score, matched) acc ->
      (* reward matching more distinct query terms *)
      let coverage =
        float_of_int (List.length !matched)
        /. float_of_int (max 1 (List.length terms))
      in
      { doc_id; score = !score *. (0.5 +. (0.5 *. coverage)); matched = !matched }
      :: acc)
    scores []
  |> List.sort (fun a b ->
         match Float.compare b.score a.score with
         | 0 -> String.compare a.doc_id b.doc_id
         | c -> c)
  |> List.filteri (fun i _ -> i < limit)

let phrase_matches t query =
  match Tokenize.terms query with
  | [] -> []
  | first :: rest ->
      let docs_of term =
        postings t term
        |> List.map (fun (p : posting) -> p.doc_id)
        |> List.sort_uniq String.compare
      in
      List.fold_left
        (fun acc term ->
          let ds = Hashtbl.create 16 in
          List.iter
            (fun (p : posting) -> Hashtbl.replace ds p.doc_id ())
            (postings t term);
          List.filter (fun d -> Hashtbl.mem ds d) acc)
        (docs_of first) rest
