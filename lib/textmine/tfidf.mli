(** TF-IDF document vectors and cosine similarity.

    Backs implicit text-similarity links (§4.4) and search ranking (§4.6).

    Two usage modes:
    - ad-hoc vectors ({!vector_of_text} / {!vector_of_doc} + {!cosine})
      for scoring arbitrary text against the corpus statistics;
    - the {!prepared} corpus for the all-pairs similarity join: built once
      after all {!corpus_add} calls, it holds per-document sorted term-id
      arrays with precomputed tf-idf weights, cached norms and a postings
      table, so {!similar_pairs} generates candidates through shared
      postings (only pairs sharing >= 1 non-ubiquitous term are ever
      scored) and scores each canonical pair exactly once with a fused
      sorted-merge dot product — no hashtable allocation per pair. *)

type corpus

type vector

val corpus_create : unit -> corpus

val corpus_add : corpus -> doc_id:string -> string -> unit
(** Add (or replace) a document. Terms come from {!Tokenize.terms}.
    Invalidates any {!prepared} representation cached on the corpus. *)

val corpus_size : corpus -> int

val doc_ids : corpus -> string list

val vector_of_doc : corpus -> string -> vector option
(** TF-IDF vector of an indexed document. IDF = ln(N / df). *)

val vector_of_text : corpus -> string -> vector
(** Vector of arbitrary text against the corpus statistics; terms unseen in
    the corpus get IDF ln(N+1). *)

val cosine : vector -> vector -> float
(** In [0,1]; 0 when either vector is zero. *)

val similar_docs : corpus -> doc_id:string -> min_sim:float -> (string * float) list
(** Other documents with cosine >= [min_sim], descending. Runs over the
    {!prepared} corpus (built on first use, cached until the next
    {!corpus_add}); scores are identical to pairwise {!cosine}, and every
    qualifying pair is reported from both of its documents. *)

val top_terms : vector -> int -> (string * float) list
(** Heaviest terms of a vector (descending weight). *)

(** {2 Prepared corpus — the sparse all-pairs similarity join} *)

type prepared

val prepare : corpus -> prepared
(** The prepared representation of the corpus as currently indexed.
    Cached on the corpus; invalidated by {!corpus_add}. The result is
    immutable and safe to share across pool domains. *)

val prepared_docs : prepared -> int
(** Number of documents. Documents are indexed [0 .. prepared_docs - 1]
    in ascending doc-id order. *)

val prepared_doc_id : prepared -> int -> string

val default_df_ceiling : prepared -> int
(** [N - 1]: every term carrying positive weight (df < N) remains a
    discriminator, so the candidate join is complete — any pair with
    cosine > 0 shares at least one positive-weight term. Terms in all N
    documents have idf 0 and are skipped at zero cost. *)

val similar_pairs :
  ?df_ceiling:int -> prepared -> min_sim:float -> (string * string * float) list
(** All document pairs with cosine >= [min_sim], each canonical pair
    [(id_i, id_j)] (with [id_i < id_j]) reported exactly once, in
    ascending [(i, j)] order. Candidates are generated through postings:
    only pairs sharing at least one term with df <= [df_ceiling] are
    scored (default {!default_df_ceiling}, which misses nothing for any
    [min_sim > 0]). Terms above the ceiling still contribute weight to the
    scores of pairs found through other terms. A lossless prefix filter
    skips postings walks for a query document's lightest terms: once the
    remaining suffix of its weight vector has norm fraction below
    [min_sim], no pair sharing only those terms can pass the threshold
    (Cauchy-Schwarz) — which prunes exactly the ubiquitous low-idf terms
    with the longest postings. *)

val similar_pairs_range :
  ?df_ceiling:int ->
  prepared ->
  lo:int ->
  hi:int ->
  min_sim:float ->
  (string * string * float) list
(** {!similar_pairs} restricted to query documents with index in
    [\[lo, hi)]: the shardable form. Concatenating the results of
    consecutive ranges covering [\[0, prepared_docs)] equals
    {!similar_pairs} exactly, whatever the range boundaries — each pair is
    owned by its smaller document index. Pure and read-only on [prepared],
    so ranges may run on different pool domains. *)
