(** Biological named-entity recognition in free text (GAPSCORE stand-in,
    §4.4: "methods for finding names of biological entities in natural text
    can be used for extracting names that are matched with unique fields of
    primary relations"). Combines a dictionary of known names with surface
    heuristics for gene/protein-like tokens. *)

type mention = { surface : string; start : int; score : float }
(** [start] is the token index in the text; [score] in (0,1]. *)

type t

val create : unit -> t

val add_dictionary : t -> string list -> unit
(** Register known entity names (matched case-insensitively). *)

val dictionary_size : t -> int

val surface_score : string -> float
(** Heuristic score that a single token is a gene/protein name: mixed
    alphanumerics ("BRCA2", "p53"), internal capitals, digit suffixes.
    0 for plain words. *)

val recognize : t -> ?min_score:float -> string -> mention list
(** Mentions above [min_score] (default 0.5), in text order. Dictionary
    matches score 1.0; others use {!surface_score}. Stopwords never match. *)

val recognize_dictionary : t -> string -> mention list
(** Dictionary hits only (all score 1.0), in text order — exactly the
    mentions of {!recognize} whose lowercased surface is in the
    dictionary, without scoring every other token's surface shape on the
    way. The fast path for linking, where non-dictionary mentions are
    discarded anyway. *)
