let levenshtein a b =
  let n = String.length a and m = String.length b in
  if n = 0 then m
  else if m = 0 then n
  else begin
    let prev = Array.init (m + 1) (fun j -> j) in
    let cur = Array.make (m + 1) 0 in
    for i = 1 to n do
      cur.(0) <- i;
      for j = 1 to m do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (m + 1)
    done;
    prev.(m)
  end

let levenshtein_bounded ~bound a b =
  if abs (String.length a - String.length b) > bound then None
  else
    let d = levenshtein a b in
    if d <= bound then Some d else None

let similarity a b =
  let n = max (String.length a) (String.length b) in
  if n = 0 then 1.0
  else 1.0 -. (float_of_int (levenshtein a b) /. float_of_int n)

(* Per-domain scratch for the match flags: jaro runs once per candidate
   field pair inside the duplicate-detection fan-out, and two fresh arrays
   per call were a measurable source of minor-heap churn — which under
   multiple domains turns into cross-domain minor-GC synchronization
   stalls. The buffer packs a's flags at [0, n) and b's at [n, n + m). *)
let jaro_scratch : Bytes.t ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref Bytes.empty)

let jaro a b =
  let n = String.length a and m = String.length b in
  if n = 0 && m = 0 then 1.0
  else if n = 0 || m = 0 then 0.0
  else begin
    let window = max 0 ((max n m / 2) - 1) in
    let cell = Domain.DLS.get jaro_scratch in
    if Bytes.length !cell < n + m then cell := Bytes.create (max 64 (n + m));
    let flags = !cell in
    Bytes.fill flags 0 (n + m) '\000';
    let a_matched i = Bytes.get flags i = '\001' in
    let b_matched j = Bytes.get flags (n + j) = '\001' in
    let matches = ref 0 in
    for i = 0 to n - 1 do
      let lo = max 0 (i - window) and hi = min (m - 1) (i + window) in
      let rec scan j =
        if j > hi then ()
        else if (not (b_matched j)) && a.[i] = b.[j] then begin
          Bytes.set flags i '\001';
          Bytes.set flags (n + j) '\001';
          incr matches
        end
        else scan (j + 1)
      in
      scan lo
    done;
    if !matches = 0 then 0.0
    else begin
      let transpositions = ref 0 in
      let k = ref 0 in
      for i = 0 to n - 1 do
        if a_matched i then begin
          while not (b_matched !k) do incr k done;
          if a.[i] <> b.[!k] then incr transpositions;
          incr k
        end
      done;
      let mf = float_of_int !matches in
      let t = float_of_int (!transpositions / 2) in
      (mf /. float_of_int n +. mf /. float_of_int m +. ((mf -. t) /. mf)) /. 3.0
    end
  end

let jaro_winkler a b =
  let j = jaro a b in
  let max_prefix = 4 in
  let rec prefix_len i =
    if i >= max_prefix || i >= String.length a || i >= String.length b then i
    else if a.[i] = b.[i] then prefix_len (i + 1)
    else i
  in
  let p = float_of_int (prefix_len 0) in
  j +. (p *. 0.1 *. (1.0 -. j))

let bigram_multiset s =
  let tbl = Hashtbl.create 16 in
  for i = 0 to String.length s - 2 do
    let bg = String.sub s i 2 in
    let c = try Hashtbl.find tbl bg with Not_found -> 0 in
    Hashtbl.replace tbl bg (c + 1)
  done;
  tbl

let dice_bigrams a b =
  let ta = bigram_multiset (String.lowercase_ascii a) in
  let tb = bigram_multiset (String.lowercase_ascii b) in
  let total ta = Hashtbl.fold (fun _ c acc -> acc + c) ta 0 in
  let na = total ta and nb = total tb in
  if na = 0 && nb = 0 then 1.0
  else if na = 0 || nb = 0 then 0.0
  else begin
    let inter = ref 0 in
    Hashtbl.iter
      (fun bg ca ->
        match Hashtbl.find_opt tb bg with
        | Some cb -> inter := !inter + min ca cb
        | None -> ())
      ta;
    2.0 *. float_of_int !inter /. float_of_int (na + nb)
  end

let longest_common_substring a b =
  let n = String.length a and m = String.length b in
  if n = 0 || m = 0 then ""
  else begin
    let prev = Array.make (m + 1) 0 in
    let cur = Array.make (m + 1) 0 in
    let best_len = ref 0 and best_end = ref 0 in
    for i = 1 to n do
      cur.(0) <- 0;
      for j = 1 to m do
        if a.[i - 1] = b.[j - 1] then begin
          cur.(j) <- prev.(j - 1) + 1;
          if cur.(j) > !best_len then begin
            best_len := cur.(j);
            best_end := i
          end
        end
        else cur.(j) <- 0
      done;
      Array.blit cur 0 prev 0 (m + 1)
    done;
    String.sub a (!best_end - !best_len) !best_len
  end

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  if n = 0 then true
  else if n > h then false
  else begin
    let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
    at 0
  end
