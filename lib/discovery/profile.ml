open Aladin_relational

type t = {
  catalog : Catalog.t;
  stats : (string * string, Col_stats.t) Hashtbl.t;
  values : (string * string, Vset.t) Hashtbl.t;  (* lazily filled *)
  order : (string * string) list;  (* relation-major attribute order *)
}

let key relation attribute =
  (String.lowercase_ascii relation, String.lowercase_ascii attribute)

let compute catalog =
  let stats = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun rel ->
      List.iter
        (fun (cs : Col_stats.t) ->
          let k = key cs.relation cs.attribute in
          Hashtbl.replace stats k cs;
          order := k :: !order)
        (Col_stats.of_relation rel))
    (Catalog.relations catalog);
  { catalog; stats; values = Hashtbl.create 64; order = List.rev !order }

let catalog t = t.catalog

let source t = Catalog.name t.catalog

let stats t ~relation ~attribute =
  match Hashtbl.find_opt t.stats (key relation attribute) with
  | Some cs -> cs
  | None -> raise Not_found

let all_stats t =
  List.map (fun k -> Hashtbl.find t.stats k) t.order

let values t ~relation ~attribute =
  let k = key relation attribute in
  match Hashtbl.find_opt t.values k with
  | Some vs -> vs
  | None ->
      let rel =
        match Catalog.find t.catalog relation with
        | Some r -> r
        | None -> raise Not_found
      in
      let vs = Vset.of_column (Relation.column rel attribute) in
      Hashtbl.add t.values k vs;
      vs

let precompute_values t pairs =
  List.iter
    (fun (relation, attribute) -> ignore (values t ~relation ~attribute))
    pairs

let is_unique t ~relation ~attribute =
  Catalog.declared_unique t.catalog ~relation ~attribute
  || (stats t ~relation ~attribute).all_unique

let unique_attributes t =
  List.filter_map
    (fun (cs : Col_stats.t) ->
      if is_unique t ~relation:cs.relation ~attribute:cs.attribute then
        Some (cs.relation, cs.attribute)
      else None)
    (all_stats t)
