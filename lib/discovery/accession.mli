(** Accession-number candidate detection (§4.2).

    "We analyze for each unique attribute whether each of its values
    contains at least one non-digit character and is at least four
    characters long. As accession numbers within one database usually all
    have the same length, we finally require the values of the attribute to
    differ by at most 20 percent in length. [...] Each table may have only
    one accession number candidate; if more than one candidate was found,
    only the one with the longer average field length is considered." *)

type params = {
  min_length : int;  (** default 4 — "shortest accession numbers we know" *)
  max_length_spread : float;  (** default 0.2 *)
  min_alpha_frac : float;
      (** fraction of values that must contain an {e alphabetic} character
          (the paper says "each", i.e. 1.0, which is the default — exposed
          for ablation).

          {b Known deviation from the paper:} §4.2 asks for "at least one
          non-digit character", but this test uses
          [Aladin_relational.Value.contains_alpha], i.e. at least one ASCII
          letter. Real-world accessions (UniProt [P12345], GenBank
          [NM_000546], GO terms [GO:0008150], PDB [1ABC]) all carry a
          letter and pass either way; the stricter letter rule additionally
          rejects digits-plus-separator columns such as [12:34567] or EC
          numbers [1.14.13.39], which under the paper's literal rule would
          qualify and, being surrogate-key-shaped, are frequent false
          positives. Set [min_alpha_frac = 0.0] to recover the permissive
          behaviour for sources whose accessions are purely numeric with
          separators. *)
}

val default_params : params

type candidate = {
  relation : string;
  attribute : string;
  avg_len : float;
  stats : Aladin_relational.Col_stats.t;
}

val attribute_is_candidate : ?params:params -> Profile.t -> Aladin_relational.Col_stats.t -> bool
(** The per-attribute test (uniqueness + value-shape rules). *)

val candidates : ?params:params -> Profile.t -> candidate list
(** At most one candidate per relation (longest average length wins),
    in catalog order. *)
