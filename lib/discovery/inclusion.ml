open Aladin_relational

type cardinality = One_to_one | One_to_many

type fk = {
  src_relation : string;
  src_attribute : string;
  dst_relation : string;
  dst_attribute : string;
  cardinality : cardinality;
  origin : [ `Declared | `Inferred ];
}

let pp_fk ppf fk =
  Format.fprintf ppf "%s.%s -> %s.%s (%s, %s)" fk.src_relation fk.src_attribute
    fk.dst_relation fk.dst_attribute
    (match fk.cardinality with One_to_one -> "1:1" | One_to_many -> "1:N")
    (match fk.origin with `Declared -> "declared" | `Inferred -> "inferred")

let norm = String.lowercase_ascii

let fk_equal a b =
  norm a.src_relation = norm b.src_relation
  && norm a.src_attribute = norm b.src_attribute
  && norm a.dst_relation = norm b.dst_relation
  && norm a.dst_attribute = norm b.dst_attribute

let tokens_of name =
  String.split_on_char '_' (norm name)
  |> List.concat_map (String.split_on_char '.')
  |> List.filter (fun t -> t <> "" && t <> "id" && t <> "fk" && t <> "ref")
  |> List.sort_uniq String.compare

(* sorted-merge intersection: both inputs are sort_uniq'ed by tokens_of *)
let inter_count a b =
  let rec go n a b =
    match (a, b) with
    | [], _ | _, [] -> n
    | x :: a', y :: b' -> (
        match String.compare x y with
        | 0 -> go (n + 1) a' b'
        | c when c < 0 -> go n a' b
        | _ -> go n a b')
  in
  go 0 a b

let overlap a b =
  let inter = inter_count a b in
  let union = List.length a + List.length b - inter in
  if union = 0 then 0.0 else float_of_int inter /. float_of_int union

(* Strdist.contains is reflexive, so it subsumes the equality case *)
let contains_token hay t =
  List.exists (fun h -> Aladin_text.Strdist.contains ~needle:t h) hay

let name_affinity ~src_attribute ~dst_relation ~dst_attribute =
  let src = tokens_of src_attribute in
  let dst =
    List.sort_uniq String.compare (tokens_of dst_relation @ tokens_of dst_attribute)
  in
  if src = [] || dst = [] then 0.0
  else begin
    let exact = overlap src dst in
    (* substring containment also counts: "taxonid" vs "taxon" *)
    let sub =
      if List.exists (fun t -> contains_token dst t) src
         || List.exists (fun t -> contains_token src t) dst
      then 0.5
      else 0.0
    in
    Float.min 1.0 (Float.max exact sub)
  end

type params = {
  use_declared : bool;
  require_name_affinity_for_pk_pk : bool;
  max_source_distinct : int option;
  min_containment : float;
}

let default_params =
  { use_declared = true; require_name_affinity_for_pk_pk = true;
    max_source_distinct = None; min_containment = 1.0 }

(* Type compatibility: integer keys join integer keys, text joins text.
   Floats never act as keys. *)
let key_class (cs : Col_stats.t) =
  if cs.distinct = 0 then `Empty
  else if cs.numeric_frac >= 0.99 then `Integer
  else if cs.alpha_frac > 0.0 || cs.numeric_frac < 0.99 then `Text
  else `Empty

let compatible a b =
  match (key_class a, key_class b) with
  | `Integer, `Integer | `Text, `Text -> true
  | `Empty, _ | _, `Empty | `Integer, `Text | `Text, `Integer -> false

let declared_fks profile =
  Profile.catalog profile |> Catalog.declared_fks
  |> List.filter_map (function
       | Constraint_def.Foreign_key
           { src_relation; src_attribute; dst_relation; dst_attribute } ->
           Some
             { src_relation; src_attribute; dst_relation; dst_attribute;
               cardinality = One_to_many; origin = `Declared }
       | Constraint_def.Unique _ | Constraint_def.Primary_key _ -> None)

let source_cardinality profile fk =
  let src_unique =
    Profile.is_unique profile ~relation:fk.src_relation ~attribute:fk.src_attribute
  in
  let src_vals =
    Profile.values profile ~relation:fk.src_relation ~attribute:fk.src_attribute
  in
  let dst_vals =
    Profile.values profile ~relation:fk.dst_relation ~attribute:fk.dst_attribute
  in
  if src_unique && Vset.equal src_vals dst_vals then One_to_one else One_to_many

(* The two pruning predicates, shared by [infer] and
   [candidate_pairs_considered] so the reported comparison space never
   drifts from the work actually done. *)
let source_eligible params ~covered (src : Col_stats.t) =
  src.distinct > 0
  && (not (covered src))
  && (match params.max_source_distinct with
     | Some m -> src.distinct <= m
     | None -> true)

let candidate_target (src : Col_stats.t) (dst : Col_stats.t) =
  (not
     (norm dst.relation = norm src.relation
     && norm dst.attribute = norm src.attribute))
  && compatible src dst
  && dst.distinct >= src.distinct

let covered_by declared (cs : Col_stats.t) =
  List.exists
    (fun fk ->
      norm fk.src_relation = norm cs.relation
      && norm fk.src_attribute = norm cs.attribute)
    declared

let infer ?(params = default_params) ?pool profile =
  let all = Profile.all_stats profile in
  let uniques =
    List.filter
      (fun (cs : Col_stats.t) ->
        Profile.is_unique profile ~relation:cs.relation ~attribute:cs.attribute)
      all
  in
  let declared = if params.use_declared then declared_fks profile else [] in
  let declared =
    List.map (fun fk -> { fk with cardinality = source_cardinality profile fk }) declared
  in
  let covered = covered_by declared in
  (* the value-set cache fills lazily; force every set the fan-out can
     read so workers never mutate the shared table *)
  let eligible_srcs = List.filter (source_eligible params ~covered) all in
  Profile.precompute_values profile
    (List.map (fun (cs : Col_stats.t) -> (cs.relation, cs.attribute)) eligible_srcs
    @ List.filter_map
        (fun (dst : Col_stats.t) ->
          if List.exists (fun src -> candidate_target src dst) eligible_srcs
          then Some (dst.relation, dst.attribute)
          else None)
        uniques);
  let inferred =
    Aladin_par.Pool.filter_map ?pool
      (fun (src : Col_stats.t) ->
        if not (source_eligible params ~covered src) then None
        else begin
          let src_vals =
            Profile.values profile ~relation:src.relation ~attribute:src.attribute
          in
          let src_unique =
            Profile.is_unique profile ~relation:src.relation ~attribute:src.attribute
          in
          let eval_candidate (dst : Col_stats.t) =
                if not (candidate_target src dst) then None
                else begin
                  let dst_vals =
                    Profile.values profile ~relation:dst.relation
                      ~attribute:dst.attribute
                  in
                  let contained =
                    if params.min_containment >= 1.0 then
                      Vset.subset src_vals dst_vals
                    else
                      float_of_int (Vset.inter_count src_vals dst_vals)
                      >= params.min_containment
                         *. float_of_int (max 1 (Vset.cardinal src_vals))
                  in
                  if not contained then None
                  else begin
                    let affinity =
                      name_affinity ~src_attribute:src.attribute
                        ~dst_relation:dst.relation ~dst_attribute:dst.attribute
                    in
                    let pk_pk =
                      src_unique && key_class src = `Integer
                      && key_class dst = `Integer
                    in
                    if pk_pk && params.require_name_affinity_for_pk_pk && affinity = 0.0
                    then None
                    else begin
                      let equal_bonus =
                        if Vset.equal src_vals dst_vals then 0.25 else 0.0
                      in
                      (* tighter targets are likelier true parents *)
                      let tightness =
                        float_of_int src.distinct /. float_of_int (max 1 dst.distinct)
                      in
                      Some (dst, affinity +. equal_bonus +. (0.1 *. tightness))
                    end
                  end
                end
          in
          let candidates =
            List.filter_map
              (fun dst ->
                Aladin_obs.Trace.ambient_incr "fk.pairs_considered";
                match eval_candidate dst with
                | None ->
                    Aladin_obs.Trace.ambient_incr "fk.pairs_pruned";
                    None
                | some -> some)
              uniques
          in
          match
            List.sort
              (fun ((a : Col_stats.t), sa) ((b : Col_stats.t), sb) ->
                match Float.compare sb sa with
                | 0 -> compare (a.relation, a.attribute) (b.relation, b.attribute)
                | c -> c)
              candidates
          with
          | [] -> None
          | (best, _) :: _ ->
              let fk =
                { src_relation = src.relation; src_attribute = src.attribute;
                  dst_relation = best.relation; dst_attribute = best.attribute;
                  cardinality = One_to_many; origin = `Inferred }
              in
              Some { fk with cardinality = source_cardinality profile fk }
        end)
      all
  in
  let fks = declared @ inferred in
  Aladin_obs.Trace.ambient_incr ~by:(List.length fks) "fk.accepted";
  fks

let candidate_pairs_considered ?(params = default_params) profile =
  let all = Profile.all_stats profile in
  let uniques =
    List.filter
      (fun (cs : Col_stats.t) ->
        Profile.is_unique profile ~relation:cs.relation ~attribute:cs.attribute)
      all
  in
  let declared = if params.use_declared then declared_fks profile else [] in
  let covered = covered_by declared in
  List.fold_left
    (fun acc (src : Col_stats.t) ->
      if not (source_eligible params ~covered src) then acc
      else acc + List.length (List.filter (candidate_target src) uniques))
    0 all
