(** Data profile of one source: per-attribute statistics and value sets,
    computed once and reused by every discovery step (§3, §4.4: "These
    statistics need to be computed only once for each data source").

    The profile is the expensive part of integration; everything downstream
    reads from it instead of rescanning the catalog. *)

open Aladin_relational

type t

val compute : Catalog.t -> t

val catalog : t -> Catalog.t

val source : t -> string
(** The catalog name. *)

val stats : t -> relation:string -> attribute:string -> Col_stats.t
(** @raise Not_found for unknown attributes. *)

val all_stats : t -> Col_stats.t list
(** Relation-major, schema order. *)

val values : t -> relation:string -> attribute:string -> Vset.t
(** Distinct non-null value set (cached). The cache fills lazily and is
    {b not} domain-safe: parallel callers must {!precompute_values} every
    pair they will read before fanning out. @raise Not_found *)

val precompute_values : t -> (string * string) list -> unit
(** Force the {!values} cache for the given (relation, attribute) pairs,
    so a subsequent parallel fan-out only ever reads the table. *)

val is_unique : t -> relation:string -> attribute:string -> bool
(** Declared UNIQUE/PRIMARY KEY, or probed unique from the data — the §4.2
    "SQL query for each attribute" step. *)

val unique_attributes : t -> (string * string) list
(** All (relation, attribute) pairs that are unique. *)
