(** Foreign-key inference from inclusion dependencies (§4.2).

    "All unique attributes are considered as potential targets [...] and all
    attributes are considered as potential sources. If the values of a
    potential source are a true subset of the values of a potential target,
    we assume a 1:N relationship [...]. If the values are the same set, we
    assume a 1:1 relationship."

    The known surrogate-key ambiguity (two dictionary tables with integer
    keys 1..n) is resolved with the schema hint the paper itself suggests —
    "schema elements containing the substring ID in their name or elements
    that match partially to another schema element could also help": among
    value-compatible targets the one with the best name affinity wins, and
    a pure PK-to-PK integer match with zero name affinity is rejected. *)

type cardinality = One_to_one | One_to_many

type fk = {
  src_relation : string;
  src_attribute : string;
  dst_relation : string;
  dst_attribute : string;
  cardinality : cardinality;
  origin : [ `Declared | `Inferred ];
}

val pp_fk : Format.formatter -> fk -> unit

val fk_equal : fk -> fk -> bool
(** Ignores [origin] and [cardinality] — same endpoints. *)

val name_affinity : src_attribute:string -> dst_relation:string -> dst_attribute:string -> float
(** Token overlap (ignoring the ubiquitous "id" token) between the source
    attribute name and the target's relation/attribute names, in [0,1]. *)

type params = {
  use_declared : bool;  (** seed with data-dictionary FKs (default true) *)
  require_name_affinity_for_pk_pk : bool;
      (** reject integer PK ⊆ PK inferences with zero name affinity
          (default true) *)
  max_source_distinct : int option;
      (** skip source attributes with more distinct values than this
          (sampling guard; default None) *)
  min_containment : float;
      (** fraction of the source's distinct values that must appear in the
          target. 1.0 (default) = exact inclusion dependencies; lower values
          implement approximate dependency inference (cf. [KM92]) for
          sources with dangling references. *)
}

val default_params : params

val infer : ?params:params -> ?pool:Aladin_par.Pool.t -> Profile.t -> fk list
(** All declared FKs plus, for every remaining source attribute, the best
    value-compatible target (if any). Deterministic order: with a [pool]
    the per-source candidate scans fan out across domains, but the result
    (and the trace counters) are identical to the sequential run. *)

val candidate_pairs_considered : ?params:params -> Profile.t -> int
(** Size of the source x target comparison space after pruning — the cost
    metric reported by experiment E6/E10. Uses the same source/target
    predicates as {!infer} (empty and declared-FK-covered sources and
    [max_source_distinct] overflows are skipped), so it counts exactly the
    pairs [infer] evaluates. *)
