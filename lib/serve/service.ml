module Engine = Aladin.Engine
module Generation = Aladin.Generation
module Pool = Aladin_par.Pool
module Boundary = Aladin_resilience.Boundary
module Budget = Aladin_resilience.Budget
module Run_report = Aladin_resilience.Run_report
module Clock = Aladin_obs.Clock
module Histogram = Aladin_obs.Histogram
module Lk = Aladin_links

type config = {
  cache_capacity : int;
  cache_ttl : float;
  request_budget : float option;
  debug_endpoints : bool;
}

let default_config =
  {
    cache_capacity = 512;
    cache_ttl = 60.0;
    request_budget = Some 5.0;
    debug_endpoints = false;
  }

type t = {
  engine : Engine.t;
  pool : Pool.t option;
  cfg : config;
  cache : Http.response Cache.t;
  histos : (string, Histogram.t) Hashtbl.t;  (* route -> latency *)
  counts : (string, int ref) Hashtbl.t;  (* route -> requests served *)
  mutable timeouts : int;  (* request deadlines hit *)
  mutable failures : int;  (* handler crashes (500) *)
}

let create ?pool ?(config = default_config) engine =
  {
    engine;
    pool;
    cfg = config;
    cache = Cache.create ~capacity:config.cache_capacity ~ttl:config.cache_ttl ();
    histos = Hashtbl.create 16;
    counts = Hashtbl.create 16;
    timeouts = 0;
    failures = 0;
  }

let engine t = t.engine

let config t = t.cfg

let cache_stats t = Cache.stats t.cache

let flush_cache t = Cache.flush t.cache

(* --- routing --- *)

let route_of (req : Http.request) =
  let p = req.path in
  let starts pre =
    String.length p >= String.length pre && String.sub p 0 (String.length pre) = pre
  in
  if p = "/healthz" then "healthz"
  else if p = "/metrics" then "metrics"
  else if p = "/search" then "search"
  else if p = "/object" || starts "/object/" then "object"
  else if p = "/resolve" then "resolve"
  else if p = "/query" then "query"
  else if p = "/links" then "links"
  else if p = "/slow" then "slow"
  else "other"

(* responses for the cacheable routes depend only on (engine key over
   the data the route reads, normalized target), which is exactly the
   cache key *)
let cacheable route =
  match route with
  | "search" | "object" | "resolve" | "query" | "links" -> true
  | _ -> false

(* which warehouse data a cacheable route reads, as typed dependencies:
   a /query over source-qualified tables reads exactly those sources
   ("source.relation" lexes as a single dotted identifier), and
   /links?kind=K reads one link kind. Anything else — bare table names,
   unparseable SQL, search/browse routes — conservatively depends on
   the whole warehouse. Cached responses therefore survive additions
   and updates of sources they never read. *)
let deps_of_req route (req : Http.request) =
  match route with
  | "query" -> (
      match Http.query_param req "sql" with
      | None | Some "" -> [ Generation.Whole ]
      | Some sql -> (
          match Aladin_access.Sql_parser.parse sql with
          | q ->
              let tables =
                q.Aladin_access.Sql_parser.from_table
                :: List.map (fun (tbl, _, _) -> tbl)
                     q.Aladin_access.Sql_parser.joins
              in
              List.map
                (fun tbl ->
                  match String.index_opt tbl '.' with
                  | Some i -> Generation.Source (String.sub tbl 0 i)
                  | None -> Generation.Whole)
                tables
          | exception _ -> [ Generation.Whole ]))
  | "links" -> (
      match Http.query_param req "kind" with
      | None | Some "" -> [ Generation.Whole ]
      | Some k -> [ Generation.Link_kind k ])
  | _ -> [ Generation.Whole ]

let cache_key t route req =
  Engine.key t.engine (deps_of_req route req) ^ ":" ^ Http.normalize_target req

(* --- handlers (pure engine reads; run inside the pool fan-out) --- *)

let bad_request msg = Http.response 400 (msg ^ "\n")

let hits_json query hits =
  let hit (h : Aladin_access.Search.hit) =
    Printf.sprintf "{\"object\":%s,\"score\":%.6f,\"matched\":[%s]}"
      (Http.json_string (Lk.Objref.to_string h.obj))
      h.score
      (String.concat "," (List.map Http.json_string h.matched))
  in
  Printf.sprintf "{\"query\":%s,\"hits\":[%s]}\n" (Http.json_string query)
    (String.concat "," (List.map hit hits))

let handle_search t (req : Http.request) =
  match Http.query_param req "q" with
  | None | Some "" -> bad_request "missing query parameter q"
  | Some q -> (
      let source = Http.query_param req "source" in
      let field = Http.query_param req "field" in
      match Option.map int_of_string_opt (Http.query_param req "limit") with
      | Some None -> bad_request "limit must be an integer"
      | (None | Some (Some _)) as l ->
          let limit = Option.join l in
          let hits =
            match (source, field) with
            | None, None -> Engine.search t.engine ?limit q
            | _ -> Engine.focused t.engine ?source ?field ?limit q
          in
          Http.response 200 ~content_type:"application/json" (hits_json q hits))

let handle_object t (req : Http.request) =
  let source, accession =
    match String.split_on_char '/' req.path with
    | [ ""; "object"; source; accession ] -> (Some source, Some accession)
    | _ -> (Http.query_param req "source", Http.query_param req "accession")
  in
  match accession with
  | None | Some "" -> bad_request "missing accession"
  | Some acc -> (
      match Engine.browse t.engine ?source acc with
      | Some view -> Http.response 200 (Aladin_access.Browser.render view)
      | None -> Http.response 404 (Printf.sprintf "object %s not found\n" acc))

let handle_resolve t (req : Http.request) =
  match Http.query_param req "accession" with
  | None | Some "" -> bad_request "missing accession"
  | Some acc -> (
      match Engine.resolve t.engine acc with
      | Some obj ->
          Http.response 200 ~content_type:"application/json"
            (Printf.sprintf "{\"accession\":%s,\"object\":%s}\n"
               (Http.json_string acc)
               (Http.json_string (Lk.Objref.to_string obj)))
      | None ->
          Http.response 404 (Printf.sprintf "accession %s not found\n" acc))

let handle_query t (req : Http.request) =
  match Http.query_param req "sql" with
  | None | Some "" -> bad_request "missing sql"
  | Some sql -> (
      match Engine.query t.engine sql with
      | Ok rel -> Http.response 200 (Aladin_access.Sql_eval.render_result rel)
      | Error msg -> bad_request msg)

let handle_links t (req : Http.request) =
  let kind = Http.query_param req "kind" in
  Http.response 200 ~content_type:"text/csv"
    (Aladin_access.Link_export.to_csv (Engine.links ?kind t.engine))

(* deadline-polling sleeper: long enough work to pile a queue up behind,
   but still honouring the per-request budget *)
let handle_slow (req : Http.request) =
  let seconds =
    match Option.map float_of_string_opt (Http.query_param req "seconds") with
    | Some (Some s) when s >= 0.0 -> Float.min s 30.0
    | _ -> 0.1
  in
  let until = Clock.now () +. seconds in
  while Clock.now () < until do
    Budget.check ();
    Aladin_resilience.Retry.sleepf 0.005
  done;
  Http.response 200 (Printf.sprintf "slept %.3fs\n" seconds)

let compute t route (req : Http.request) =
  if req.meth <> "GET" then
    Http.response 405 "only GET is supported\n"
  else
    match route with
    | "healthz" -> Http.response 200 "ok\n"
    | "search" -> handle_search t req
    | "object" -> handle_object t req
    | "resolve" -> handle_resolve t req
    | "query" -> handle_query t req
    | "links" -> handle_links t req
    | "slow" when t.cfg.debug_endpoints -> handle_slow req
    | _ -> Http.response 404 (Printf.sprintf "no route for %s\n" req.path)

(* per-request deadline: a [`Domain]-scoped budget so every concurrently
   handled request carries its own, then an error boundary so one bad
   request can never take the batch down *)
let compute_protected t route req =
  match
    Boundary.protect ~scope:`Domain ~step:("serve " ^ route)
      ?budget:t.cfg.request_budget (fun () -> compute t route req)
  with
  | Ok resp -> resp
  | Error (Run_report.Timeout b) ->
      Http.response 503
        ~headers:[ ("retry-after", "1") ]
        (Printf.sprintf "deadline of %.3fs exceeded\n" b)
  | Error (Run_report.Crashed msg) ->
      Http.response 500 ("internal error: " ^ msg ^ "\n")

(* --- metrics --- *)

let histo t route =
  match Hashtbl.find_opt t.histos route with
  | Some h -> h
  | None ->
      let h = Histogram.create () in
      Hashtbl.replace t.histos route h;
      h

let count t route =
  match Hashtbl.find_opt t.counts route with
  | Some c -> c
  | None ->
      let c = ref 0 in
      Hashtbl.replace t.counts route c;
      c

(* bucket-resolution quantile estimate: the upper bound of the first
   bucket at or past the target rank (the overflow bucket reports the
   observed max) *)
let quantile h q =
  let total = Histogram.count h in
  if total = 0 then 0.0
  else
    let rank = Float.max 1.0 (Float.round (q *. float_of_int total)) in
    let rec go cum = function
      | [] -> Histogram.max_value h
      | (bound, n) :: rest ->
          let cum = cum + n in
          if float_of_int cum >= rank then
            if bound = Float.infinity then Histogram.max_value h else bound
          else go cum rest
    in
    go 0 (Histogram.buckets h)

(* cache hits are counted but not observed in the latency histogram,
   which therefore measures the compute (miss) path *)
let observe t route seconds status =
  (match seconds with None -> () | Some s -> Histogram.observe (histo t route) s);
  incr (count t route);
  match status with
  | 503 -> t.timeouts <- t.timeouts + 1
  | 500 -> t.failures <- t.failures + 1
  | _ -> ()

let metrics_text ?(extra = []) t =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "aladin_engine_epoch %d" (Engine.epoch t.engine);
  let cs = Cache.stats t.cache in
  line "aladin_cache_hits_total %d" cs.hits;
  line "aladin_cache_misses_total %d" cs.misses;
  line "aladin_cache_evictions_total %d" cs.evictions;
  line "aladin_cache_expirations_total %d" cs.expirations;
  line "aladin_cache_flushes_total %d" cs.flushes;
  line "aladin_cache_size %d" cs.size;
  line "aladin_cache_capacity %d" cs.capacity;
  (let looked = cs.hits + cs.misses in
   if looked > 0 then
     line "aladin_cache_hit_rate %.4f"
       (float_of_int cs.hits /. float_of_int looked));
  line "aladin_request_timeouts_total %d" t.timeouts;
  line "aladin_request_failures_total %d" t.failures;
  let routes =
    Hashtbl.fold (fun r _ acc -> r :: acc) t.counts []
    |> List.sort String.compare
  in
  List.iter
    (fun route ->
      let c = !(count t route) in
      let h = histo t route in
      line "aladin_requests_total{route=%S} %d" route c;
      line "aladin_request_seconds_count{route=%S} %d" route (Histogram.count h);
      line "aladin_request_seconds_sum{route=%S} %.6f" route (Histogram.sum h);
      line "aladin_request_seconds_max{route=%S} %.6f" route
        (Histogram.max_value h);
      List.iter
        (fun (q, label) ->
          line "aladin_request_seconds{route=%S,quantile=%S} %.6f" route label
            (quantile h q))
        [ (0.5, "0.5"); (0.95, "0.95"); (0.99, "0.99") ])
    routes;
  List.iter (fun (name, v) -> line "%s %.6f" name v) extra;
  Buffer.contents b

(* --- the batch path --- *)

type item =
  | Hit of string * Http.response  (* route, cached response *)
  | Run of string * string option * Http.request  (* route, cache key *)

let handle_batch t reqs =
  let items =
    List.map
      (fun req ->
        let route = route_of req in
        if cacheable route && req.meth = "GET" then
          let key = cache_key t route req in
          match Cache.find t.cache key with
          | Some resp -> Hit (route, resp)
          | None -> Run (route, Some key, req)
        else Run (route, None, req))
      reqs
  in
  (* fan the misses out; each worker times its own request so latency
     attribution is exact, and all shared-state updates happen back here *)
  let to_run =
    List.filter_map (function Run (r, k, req) -> Some (r, k, req) | Hit _ -> None)
      items
  in
  let ran =
    Pool.map ?pool:t.pool
      (fun (route, key, req) ->
        let resp, secs = Clock.timed (fun () -> compute_protected t route req) in
        (route, key, resp, secs))
      to_run
  in
  let ran = ref ran in
  List.map
    (fun item ->
      match item with
      | Hit (route, resp) ->
          observe t route None resp.Http.status;
          Http.with_header resp "x-cache" "hit"
      | Run _ -> (
          match !ran with
          | (route, key, resp, secs) :: rest ->
              ran := rest;
              observe t route (Some secs) resp.Http.status;
              (match key with
              | Some k when resp.Http.status = 200 -> Cache.add t.cache k resp
              | _ -> ());
              Http.with_header resp "x-cache" "miss"
          | [] -> Http.response 500 "internal error: batch result mismatch\n"))
    items

let handle t req =
  match handle_batch t [ req ] with
  | [ resp ] -> resp
  | _ -> Http.response 500 "internal error\n"
