(** Minimal dependency-free HTTP/1.1, the wire layer of [aladin serve].

    Only what a query-serving daemon needs: parse a request head, render
    a response with [Content-Length], and move both over a file
    descriptor. Connections are one-request ([Connection: close]);
    request bodies are read and discarded. Parsing is pure ({!parse_request})
    so it can be tested without sockets. *)

type request = {
  meth : string;  (** verbatim, e.g. ["GET"] *)
  target : string;  (** raw request target, path + query *)
  path : string;  (** percent-decoded path, no query string *)
  query : (string * string) list;  (** decoded parameters, arrival order *)
  headers : (string * string) list;  (** names lowercased *)
}

type response = {
  status : int;
  headers : (string * string) list;
  body : string;
}

val response :
  ?headers:(string * string) list -> ?content_type:string -> int -> string ->
  response
(** [response status body]; [content_type] defaults to
    ["text/plain; charset=utf-8"]. *)

val reason : int -> string
(** Standard reason phrase (["OK"], ["Service Unavailable"], ...). *)

val header : response -> string -> string option

val with_header : response -> string -> string -> response
(** Replace-or-add one header. *)

val query_param : request -> string -> string option

val normalize_target : request -> string
(** Canonical form of the request target for cache keying: decoded path
    plus query parameters sorted by name (stable for equal names), so
    [/search?q=x&limit=5] and [/search?limit=5&q=x] key identically. *)

val parse_request : string -> (request, string) result
(** Parse a request head (request line + headers, no body). *)

val parse_response : string -> (response, string) result
(** Parse full response wire bytes (status line, headers, body); the
    body is truncated to [Content-Length] when present. Used by
    {!Client}. *)

val pct_decode : string -> string
(** Percent-decoding; [+] becomes a space (query-string convention). *)

val pct_encode : string -> string
(** Encode everything but RFC 3986 unreserved characters. *)

val json_string : string -> string
(** JSON string literal with quotes, escaping as needed. *)

val render : response -> string
(** Full wire bytes: status line, headers (adding [Content-Length] and
    [Connection: close]), blank line, body. *)

(** {2 Descriptor I/O} — confined to lib/serve by scripts/check.sh. *)

val read_request : ?max_head:int -> Unix.file_descr -> (request, string) result
(** Read and parse one request head from the descriptor (honouring its
    receive timeout), then read and discard any [Content-Length] body.
    [Error] on EOF, timeout, malformed head, or a head over [max_head]
    (default 16 KiB) bytes. *)

val write_response : Unix.file_descr -> response -> bool
(** Write the full rendered response; [false] if the peer vanished
    (EPIPE/ECONNRESET) — never raises. *)
