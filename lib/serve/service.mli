(** The serving compute layer: routes HTTP requests onto the
    {!Aladin.Engine} facade, with an LRU+TTL response cache and
    pool-parallel batch evaluation.

    Separated from {!Server} (which owns sockets, admission and drain)
    so the cached hot path can be exercised — and benchmarked — without
    any I/O. All shared mutable state (cache, metrics) is touched only
    by the calling domain; the per-request work fanned out on the pool
    is pure engine reads, honouring {!Aladin_par.Pool}'s domain-safety
    contract. Responses are deterministic: for a fixed engine cache key
    ({!Aladin.Engine.key} over the data the route reads), equal requests
    produce byte-identical bodies at any pool size, cached or not (the
    [x-cache] header is the only difference).

    Routes: [/healthz], [/metrics], [/search?q=&source=&field=&limit=],
    [/object/SOURCE/ACCESSION] (or [/object?accession=&source=]),
    [/resolve?accession=], [/query?sql=], [/links?kind=], and — only
    with [debug_endpoints] — [/slow?seconds=] (a deadline-polling
    sleeper for overload and drain testing).

    Each request runs under a [`Domain]-scoped
    {!Aladin_resilience.Budget} of [request_budget] seconds inside an
    error boundary: deadline expiry maps to [503] with [Retry-After],
    a crash to [500]; the boundary never kills the batch. *)

type config = {
  cache_capacity : int;  (** response-cache entries; [<= 0] disables *)
  cache_ttl : float;  (** seconds from insertion; [<= 0] = no expiry *)
  request_budget : float option;  (** per-request deadline, seconds *)
  debug_endpoints : bool;  (** expose [/slow] *)
}

val default_config : config
(** 512 entries, 60 s TTL, 5 s request budget, no debug endpoints. *)

type t

val create : ?pool:Aladin_par.Pool.t -> ?config:config -> Aladin.Engine.t -> t

val engine : t -> Aladin.Engine.t

val config : t -> config

val handle : t -> Http.request -> Http.response
(** One request through the cached path ([handle_batch] of one). *)

val handle_batch : t -> Http.request list -> Http.response list
(** Evaluate a batch: cache lookups on the calling domain, the misses
    fanned out over the pool, results stored back and responses returned
    in request order. Cache keys embed the engine's typed key over the
    sources / link kinds the route reads, so entries from before a
    relevant source add/update can never be served — while entries over
    unrelated sources keep their hits. *)

val cache_stats : t -> Cache.stats

val flush_cache : t -> unit
(** Explicit invalidation (also happens implicitly, and selectively, via
    the typed cache key when the engine's dependencies change). *)

val metrics_text : ?extra:(string * float) list -> t -> string
(** Prometheus-style text: per-route request counts and latency
    histograms (with estimated p50/p95/p99), cache and error counters,
    engine epoch, plus any [extra] gauges (the server adds queue
    depth and admission counters). *)
