(** Tiny blocking HTTP client for [aladin serve] — enough for the
    [aladin fetch] subcommand, the smoke test in scripts/check.sh and
    the load generator in bench/, without any external tooling. One
    request per connection, mirroring the server's
    [Connection: close]. *)

val request :
  ?host:string ->
  ?timeout:float ->
  port:int ->
  string ->
  (Http.response, string) result
(** [request ~port target] sends [GET target] to [host] (default
    127.0.0.1) and returns the parsed response. [timeout] (default 10 s)
    bounds both connect and read. [Error] on connection failure,
    timeout, or an unparsable response — never raises. *)

val get : ?host:string -> ?timeout:float -> port:int -> string -> (Http.response, string) result
(** Alias of {!request}. *)
