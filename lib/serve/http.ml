type request = {
  meth : string;
  target : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
}

type response = {
  status : int;
  headers : (string * string) list;
  body : string;
}

let reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Payload Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let response ?(headers = []) ?(content_type = "text/plain; charset=utf-8")
    status body =
  { status; headers = ("content-type", content_type) :: headers; body }

let header r name =
  let name = String.lowercase_ascii name in
  List.assoc_opt name (List.map (fun (k, v) -> (String.lowercase_ascii k, v)) r.headers)

let with_header r name value =
  let name = String.lowercase_ascii name in
  let rest =
    List.filter (fun (k, _) -> String.lowercase_ascii k <> name) r.headers
  in
  { r with headers = rest @ [ (name, value) ] }

let query_param req name = List.assoc_opt name req.query

(* --- percent coding --- *)

let hex_val c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> -1

let pct_decode s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then begin
      (match s.[i] with
      | '+' ->
          Buffer.add_char b ' ';
          go (i + 1)
      | '%' when i + 2 < n && hex_val s.[i + 1] >= 0 && hex_val s.[i + 2] >= 0 ->
          Buffer.add_char b
            (Char.chr ((hex_val s.[i + 1] * 16) + hex_val s.[i + 2]));
          go (i + 3)
      | c ->
          Buffer.add_char b c;
          go (i + 1))
    end
  in
  go 0;
  Buffer.contents b

let unreserved c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' | '_' | '~' -> true
  | _ -> false

let pct_encode s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if unreserved c then Buffer.add_char b c
      else Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Buffer.contents b

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

(* --- parsing --- *)

let parse_query qs =
  if qs = "" then []
  else
    String.split_on_char '&' qs
    |> List.filter_map (fun kv ->
           if kv = "" then None
           else
             match String.index_opt kv '=' with
             | Some i ->
                 Some
                   ( pct_decode (String.sub kv 0 i),
                     pct_decode
                       (String.sub kv (i + 1) (String.length kv - i - 1)) )
             | None -> Some (pct_decode kv, ""))

let parse_target target =
  match String.index_opt target '?' with
  | Some i ->
      ( pct_decode (String.sub target 0 i),
        parse_query (String.sub target (i + 1) (String.length target - i - 1)) )
  | None -> (pct_decode target, [])

let parse_request head =
  let lines = String.split_on_char '\n' head in
  let lines = List.map (fun l ->
    let n = String.length l in
    if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l) lines
  in
  match lines with
  | [] -> Error "empty request"
  | rl :: rest -> (
      match String.split_on_char ' ' rl with
      | [ meth; target; version ]
        when String.length version >= 5 && String.sub version 0 5 = "HTTP/" ->
          let headers =
            List.filter_map
              (fun l ->
                match String.index_opt l ':' with
                | Some i ->
                    Some
                      ( String.lowercase_ascii (String.trim (String.sub l 0 i)),
                        String.trim
                          (String.sub l (i + 1) (String.length l - i - 1)) )
                | None -> None)
              (List.filter (( <> ) "") rest)
          in
          let path, query = parse_target target in
          Ok { meth; target; path; query; headers }
      | _ -> Error (Printf.sprintf "malformed request line %S" rl))

let normalize_target req =
  let params =
    List.stable_sort (fun (a, _) (b, _) -> String.compare a b) req.query
  in
  match params with
  | [] -> req.path
  | ps ->
      req.path ^ "?"
      ^ String.concat "&"
          (List.map (fun (k, v) -> pct_encode k ^ "=" ^ pct_encode v) ps)

(* --- rendering --- *)

let render r =
  let b = Buffer.create (String.length r.body + 256) in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" r.status (reason r.status));
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    r.headers;
  Buffer.add_string b
    (Printf.sprintf "content-length: %d\r\n" (String.length r.body));
  Buffer.add_string b "connection: close\r\n\r\n";
  Buffer.add_string b r.body;
  Buffer.contents b

(* --- descriptor I/O --- *)

(* (head length, offset just past the \r\n\r\n or \n\n separator) *)
let find_head_end s =
  let n = String.length s in
  let rec go i =
    if i >= n then None
    else if s.[i] = '\n' then
      if i >= 3 && s.[i - 1] = '\r' && s.[i - 2] = '\n' && s.[i - 3] = '\r' then
        Some (i - 3, i + 1)
      else if i >= 1 && s.[i - 1] = '\n' then Some (i - 1, i + 1)
      else go (i + 1)
    else go (i + 1)
  in
  go 0

let parse_response raw =
  match find_head_end raw with
  | None -> Error "no header terminator in response"
  | Some (head_len, body_off) -> (
      let lines =
        String.split_on_char '\n' (String.sub raw 0 head_len)
        |> List.map (fun l ->
               let n = String.length l in
               if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l)
      in
      match lines with
      | [] -> Error "empty response head"
      | sl :: rest -> (
          match String.split_on_char ' ' sl with
          | version :: code :: _
            when String.length version >= 5 && String.sub version 0 5 = "HTTP/"
            -> (
              match int_of_string_opt code with
              | None -> Error (Printf.sprintf "bad status code %S" code)
              | Some status ->
                  let headers =
                    List.filter_map
                      (fun l ->
                        match String.index_opt l ':' with
                        | Some i ->
                            Some
                              ( String.lowercase_ascii
                                  (String.trim (String.sub l 0 i)),
                                String.trim
                                  (String.sub l (i + 1)
                                     (String.length l - i - 1)) )
                        | None -> None)
                      (List.filter (( <> ) "") rest)
                  in
                  let body =
                    String.sub raw body_off (String.length raw - body_off)
                  in
                  let body =
                    match
                      Option.bind (List.assoc_opt "content-length" headers)
                        (fun n -> int_of_string_opt (String.trim n))
                    with
                    | Some n when n >= 0 && n <= String.length body ->
                        String.sub body 0 n
                    | _ -> body
                  in
                  Ok { status; headers; body })
          | _ -> Error (Printf.sprintf "malformed status line %S" sl)))

let header_of (req : request) name = List.assoc_opt name req.headers

let read_request ?(max_head = 16384) fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 2048 in
  let rec fill () =
    match find_head_end (Buffer.contents buf) with
    | Some (head_len, body_off) -> Ok (head_len, body_off)
    | None ->
        if Buffer.length buf > max_head then Error "request head too large"
        else begin
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> Error "connection closed before request head"
          | k ->
              Buffer.add_subbytes buf chunk 0 k;
              fill ()
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
              Error "timed out reading request"
          | exception Unix.Unix_error (EINTR, _, _) -> fill ()
          | exception Unix.Unix_error (e, _, _) ->
              Error (Unix.error_message e)
        end
  in
  match fill () with
  | Error _ as e -> e
  | Ok (head_len, body_off) -> (
      let head = String.sub (Buffer.contents buf) 0 head_len in
      match parse_request head with
      | Error _ as e -> e
      | Ok req ->
          (* drain any body so the peer never sees a reset before our
             response; GET bodies are ignored *)
          (match header_of req "content-length" with
          | Some n -> (
              match int_of_string_opt (String.trim n) with
              | Some want when want > 0 ->
                  let have = ref (Buffer.length buf - body_off) in
                  (try
                     while !have < want && want <= 1_048_576 do
                       match Unix.read fd chunk 0 (Bytes.length chunk) with
                       | 0 -> have := want
                       | k -> have := !have + k
                     done
                   with Unix.Unix_error (_, _, _) -> ())
              | _ -> ())
          | None -> ());
          Ok req)

let write_response fd resp =
  let s = render resp in
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off >= n then true
    else
      match Unix.write fd b off (n - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
      | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> false
      | exception Unix.Unix_error (_, _, _) -> false
  in
  go 0
