(** LRU + TTL result cache for the serving layer.

    Single-domain by design: the server's accept loop is the only
    mutator (cache lookups and stores never happen inside a pool
    fan-out), so no locking is needed. Keys are normalized request
    targets prefixed with the engine's typed cache key over the data
    the route reads ({!Aladin.Engine.key}), which is what makes
    invalidation explicit {e and} selective — updating a source orphans
    exactly the entries whose key named it (or the whole warehouse),
    while entries over unrelated sources keep serving hits; {!flush}
    reclaims orphans eagerly.

    Recency is tracked with a lazy-deletion queue: every touch enqueues
    a fresh (key, sequence) ticket and eviction pops tickets until one
    is current, giving O(1) amortized updates with bounded garbage. *)

type 'v t

type stats = {
  hits : int;
  misses : int;
  evictions : int;  (** LRU capacity evictions *)
  expirations : int;  (** TTL expiries observed on lookup *)
  flushes : int;  (** explicit invalidations *)
  size : int;
  capacity : int;
}

val create : capacity:int -> ttl:float -> unit -> 'v t
(** [capacity <= 0] disables the cache (every lookup misses, nothing is
    stored). [ttl] in seconds counts from insertion; [<= 0] means
    entries never expire. *)

val find : 'v t -> string -> 'v option
(** Lookup; a hit refreshes the entry's recency (but not its TTL). *)

val add : 'v t -> string -> 'v -> unit
(** Insert or replace, evicting least-recently-used entries over
    capacity. *)

val flush : 'v t -> unit
(** Drop every entry (explicit invalidation). Counters survive. *)

val stats : 'v t -> stats
