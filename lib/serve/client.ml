let read_all ?(limit = 16 * 1024 * 1024) fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    if Buffer.length buf > limit then Error "response too large"
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> Ok (Buffer.contents buf)
      | k ->
          Buffer.add_subbytes buf chunk 0 k;
          go ()
      | exception Unix.Unix_error (EINTR, _, _) -> go ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
          Error "timed out reading response"
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  go ()

let request ?(host = "127.0.0.1") ?(timeout = 10.0) ~port target =
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd -> (
      let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
      Fun.protect ~finally (fun () ->
          try
            Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
            Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout;
            Unix.connect fd
              (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
            let req =
              Printf.sprintf "GET %s HTTP/1.1\r\nhost: %s:%d\r\nconnection: close\r\n\r\n"
                target host port
            in
            let b = Bytes.of_string req in
            let n = Bytes.length b in
            let rec send off =
              if off < n then
                match Unix.write fd b off (n - off) with
                | k -> send (off + k)
                | exception Unix.Unix_error (EINTR, _, _) -> send off
            in
            send 0;
            match read_all fd with
            | Error _ as e -> e
            | Ok raw -> Http.parse_response raw
          with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)))

let get = request
