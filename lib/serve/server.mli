(** The socket front of [aladin serve]: accept loop, bounded admission
    queue with backpressure, batch dispatch onto {!Service}, and
    graceful drain.

    The loop is single-domain (parallelism lives inside
    {!Service.handle_batch}'s pool fan-out) and batch-oriented: it
    accepts a burst of connections, answers [/healthz], [/metrics] and
    malformed requests inline, queues up to [max_queue] real requests —
    everything past that is refused with [503] and [Retry-After] before
    any compute is spent — then evaluates the whole batch and writes
    responses back in admission order.

    [SIGINT]/[SIGTERM] (or an external [stop] flag) trigger a graceful
    drain: stop accepting, finish every admitted request, write all
    responses, close the listener, restore the previous signal
    handlers, and return the final {!stats}. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** [0] = ephemeral; see [on_ready] *)
  max_queue : int;  (** admitted requests per batch; excess gets 503 *)
  read_timeout : float;  (** seconds to wait for a request head *)
}

val default_config : config
(** 127.0.0.1:8080, queue of 64, 2 s read timeout. *)

type stats = {
  served : int;  (** responses written from the batch path *)
  inline_served : int;  (** healthz/metrics/parse-error answered inline *)
  rejected : int;  (** 503s due to a full admission queue *)
  read_errors : int;  (** connections dropped before a valid head *)
  write_errors : int;  (** peers gone before the response landed *)
  batches : int;  (** batch dispatches run *)
  max_batch : int;  (** largest admitted batch *)
}

val run :
  ?config:config ->
  ?stop:bool Atomic.t ->
  ?on_ready:(int -> unit) ->
  Service.t ->
  stats
(** Serve until [stop] flips (the handler installed on SIGINT/SIGTERM
    sets it too). [on_ready] fires once with the actual bound port —
    the way to use [port = 0]. Blocks the calling domain.
    @raise Unix.Unix_error when the listener cannot be set up (bind in
    use, privileged port, ...). *)
