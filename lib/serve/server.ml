type config = {
  host : string;
  port : int;
  max_queue : int;
  read_timeout : float;
}

let default_config =
  { host = "127.0.0.1"; port = 8080; max_queue = 64; read_timeout = 2.0 }

type stats = {
  served : int;
  inline_served : int;
  rejected : int;
  read_errors : int;
  write_errors : int;
  batches : int;
  max_batch : int;
}

type state = {
  service : Service.t;
  cfg : config;
  stop : bool Atomic.t;
  mutable queue : (Unix.file_descr * Http.request) list;  (* newest first *)
  mutable served : int;
  mutable inline_served : int;
  mutable rejected : int;
  mutable read_errors : int;
  mutable write_errors : int;
  mutable batches : int;
  mutable max_batch : int;
}

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let respond st fd resp =
  if not (Http.write_response fd resp) then
    st.write_errors <- st.write_errors + 1;
  close_quietly fd

let listener cfg =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
     Unix.listen fd 128;
     Unix.set_nonblock fd
   with e ->
     close_quietly fd;
     raise e);
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  (fd, port)

let metrics_extra st =
  [
    ("aladin_serve_queue_depth", float_of_int (List.length st.queue));
    ("aladin_serve_queue_capacity", float_of_int st.cfg.max_queue);
    ("aladin_serve_admitted_total", float_of_int st.served);
    ("aladin_serve_rejected_total", float_of_int st.rejected);
    ("aladin_serve_read_errors_total", float_of_int st.read_errors);
    ("aladin_serve_write_errors_total", float_of_int st.write_errors);
    ("aladin_serve_batches_total", float_of_int st.batches);
  ]

(* one accepted connection: read its request and either answer inline
   (health, metrics, parse failures, backpressure) or admit it *)
let admit st conn =
  Unix.clear_nonblock conn;
  (try Unix.setsockopt_float conn Unix.SO_RCVTIMEO st.cfg.read_timeout
   with Unix.Unix_error _ -> ());
  match Http.read_request conn with
  | Error msg ->
      st.read_errors <- st.read_errors + 1;
      st.inline_served <- st.inline_served + 1;
      respond st conn (Http.response 400 (msg ^ "\n"))
  | Ok req -> (
      match req.Http.path with
      | "/healthz" ->
          st.inline_served <- st.inline_served + 1;
          respond st conn (Http.response 200 "ok\n")
      | "/metrics" ->
          st.inline_served <- st.inline_served + 1;
          respond st conn
            (Http.response 200
               (Service.metrics_text ~extra:(metrics_extra st) st.service))
      | _ ->
          if List.length st.queue >= st.cfg.max_queue then begin
            st.rejected <- st.rejected + 1;
            respond st conn
              (Http.response 503
                 ~headers:[ ("retry-after", "1") ]
                 "server busy, retry shortly\n")
          end
          else st.queue <- (conn, req) :: st.queue)

(* drain the listener's pending connections without blocking *)
let rec accept_burst st lfd =
  if Atomic.get st.stop then ()
  else
    match Unix.accept ~cloexec:true lfd with
    | conn, _ ->
        admit st conn;
        accept_burst st lfd
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (EINTR, _, _) -> accept_burst st lfd
    | exception Unix.Unix_error (ECONNABORTED, _, _) -> accept_burst st lfd

let run_batch st =
  match List.rev st.queue with
  | [] -> ()
  | admitted ->
      st.queue <- [];
      st.batches <- st.batches + 1;
      st.max_batch <- max st.max_batch (List.length admitted);
      let resps = Service.handle_batch st.service (List.map snd admitted) in
      List.iter2
        (fun (fd, _) resp ->
          st.served <- st.served + 1;
          respond st fd resp)
        admitted resps

let wait_readable fd seconds =
  match Unix.select [ fd ] [] [] seconds with
  | [], _, _ -> false
  | _ -> true
  | exception Unix.Unix_error (EINTR, _, _) -> false

let run ?(config = default_config) ?stop ?on_ready service =
  let stop = match stop with Some s -> s | None -> Atomic.make false in
  let st =
    {
      service;
      cfg = config;
      stop;
      queue = [];
      served = 0;
      inline_served = 0;
      rejected = 0;
      read_errors = 0;
      write_errors = 0;
      batches = 0;
      max_batch = 0;
    }
  in
  let lfd, port = listener config in
  let previous =
    List.map
      (fun s -> (s, Sys.signal s (Sys.Signal_handle (fun _ -> Atomic.set stop true))))
      [ Sys.sigint; Sys.sigterm ]
  in
  (* a response mid-write must not kill the server when the peer hangs up *)
  let prev_pipe = try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> None in
  Fun.protect
    ~finally:(fun () ->
      close_quietly lfd;
      List.iter (fun (s, b) -> try Sys.set_signal s b with Invalid_argument _ -> ()) previous;
      match prev_pipe with
      | Some b -> ( try Sys.set_signal Sys.sigpipe b with Invalid_argument _ -> ())
      | None -> ())
    (fun () ->
      (match on_ready with Some f -> f port | None -> ());
      while not (Atomic.get st.stop) do
        if wait_readable lfd 0.05 then accept_burst st lfd;
        run_batch st
      done;
      (* graceful drain: everything already admitted still gets served *)
      run_batch st;
      {
        served = st.served;
        inline_served = st.inline_served;
        rejected = st.rejected;
        read_errors = st.read_errors;
        write_errors = st.write_errors;
        batches = st.batches;
        max_batch = st.max_batch;
      })
