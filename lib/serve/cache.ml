module Clock = Aladin_obs.Clock

type 'v entry = { value : 'v; born : float; mutable seq : int }

type 'v t = {
  tbl : (string, 'v entry) Hashtbl.t;
  order : (string * int) Queue.t;  (* recency tickets, oldest first *)
  capacity : int;
  ttl : float;
  mutable next_seq : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable expirations : int;
  mutable flushes : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  expirations : int;
  flushes : int;
  size : int;
  capacity : int;
}

let create ~capacity ~ttl () =
  {
    tbl = Hashtbl.create (max 16 capacity);
    order = Queue.create ();
    capacity;
    ttl;
    next_seq = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    expirations = 0;
    flushes = 0;
  }

let touch (t : 'v t) key entry =
  t.next_seq <- t.next_seq + 1;
  entry.seq <- t.next_seq;
  Queue.push (key, t.next_seq) t.order

(* pop stale tickets until the front names a live, current entry *)
let rec evict_one (t : 'v t) =
  match Queue.take_opt t.order with
  | None -> ()
  | Some (key, seq) -> (
      match Hashtbl.find_opt t.tbl key with
      | Some e when e.seq = seq ->
          Hashtbl.remove t.tbl key;
          t.evictions <- t.evictions + 1
      | Some _ | None -> evict_one t)

let find (t : 'v t) key =
  if t.capacity <= 0 then begin
    t.misses <- t.misses + 1;
    None
  end
  else
    match Hashtbl.find_opt t.tbl key with
    | None ->
        t.misses <- t.misses + 1;
        None
    | Some e when t.ttl > 0.0 && Clock.now () -. e.born > t.ttl ->
        Hashtbl.remove t.tbl key;
        t.expirations <- t.expirations + 1;
        t.misses <- t.misses + 1;
        None
    | Some e ->
        t.hits <- t.hits + 1;
        touch t key e;
        Some e.value

let add (t : 'v t) key value =
  if t.capacity > 0 then begin
    let e = { value; born = Clock.now (); seq = 0 } in
    Hashtbl.replace t.tbl key e;
    touch t key e;
    while Hashtbl.length t.tbl > t.capacity do
      evict_one t
    done
  end

let flush (t : 'v t) =
  if Hashtbl.length t.tbl > 0 || not (Queue.is_empty t.order) then begin
    Hashtbl.reset t.tbl;
    Queue.clear t.order;
    t.flushes <- t.flushes + 1
  end

let stats (t : 'v t) : stats =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    expirations = t.expirations;
    flushes = t.flushes;
    size = Hashtbl.length t.tbl;
    capacity = t.capacity;
  }
