open Aladin_relational
open Aladin_discovery
open Aladin_links
module Run_report = Aladin_resilience.Run_report

type source_record = {
  source : string;
  relations : (string * int) list;
  primary : (string * string) option;
  fks : Inclusion.fk list;
  stats : Col_stats.t list;
  sample : (string * string * string list) list;
}

type t = {
  mutable source_records : source_record list;
  mutable link_store : Link.t list;
  mutable corr_store : Xref_disc.correspondence list;
  mutable prov_store : string option;
  mutable report_store : Run_report.t list; (* latest per source, reversed *)
}

let create () =
  { source_records = []; link_store = []; corr_store = []; prov_store = None;
    report_store = [] }

let record_of_profile (sp : Source_profile.t) =
  let catalog = Profile.catalog sp.profile in
  let stats = Profile.all_stats sp.profile in
  {
    source = Catalog.name catalog;
    relations =
      List.map (fun r -> (Relation.name r, Relation.cardinality r)) (Catalog.relations catalog);
    primary = Source_profile.primary_accession sp;
    fks = sp.fks;
    stats;
    sample =
      List.map
        (fun (cs : Col_stats.t) ->
          ( cs.relation, cs.attribute,
            List.map Value.to_string cs.sample
            |> List.filteri (fun i _ -> i < 5) ))
        stats;
  }

let add_source t sp =
  let r = record_of_profile sp in
  t.source_records <-
    r :: List.filter (fun s -> s.source <> r.source) t.source_records

let remove_source t name =
  t.source_records <- List.filter (fun s -> s.source <> name) t.source_records;
  t.link_store <-
    List.filter
      (fun (l : Link.t) ->
        l.src.Objref.source <> name && l.dst.Objref.source <> name)
      t.link_store

let sources t = List.rev t.source_records

let find_source t name = List.find_opt (fun s -> s.source = name) t.source_records

let set_links t links = t.link_store <- Link.dedup links

let add_links t links = t.link_store <- Link.dedup (links @ t.link_store)

let links t = t.link_store

let links_of t obj =
  List.filter
    (fun (l : Link.t) -> Objref.equal l.src obj || Objref.equal l.dst obj)
    t.link_store

let set_correspondences t cs = t.corr_store <- cs

let correspondences t = t.corr_store

let set_provenance t doc = t.prov_store <- Some doc

let provenance t = t.prov_store

let set_run_report t (r : Run_report.t) =
  t.report_store <-
    r
    :: List.filter
         (fun (r' : Run_report.t) -> r'.source <> r.source)
         t.report_store

let run_reports t = List.rev t.report_store

let run_report t source =
  List.find_opt (fun (r : Run_report.t) -> r.source = source) t.report_store

(* --- serialization --- *)

let card_to_string = function
  | Inclusion.One_to_one -> "1:1"
  | Inclusion.One_to_many -> "1:N"

let card_of_string = function
  | "1:1" -> Inclusion.One_to_one
  | "1:N" -> Inclusion.One_to_many
  | s -> invalid_arg (Printf.sprintf "Repository: bad cardinality %S" s)

let origin_to_string = function `Declared -> "declared" | `Inferred -> "inferred"

let origin_of_string = function
  | "declared" -> `Declared
  | "inferred" -> `Inferred
  | s -> invalid_arg (Printf.sprintf "Repository: bad origin %S" s)

let kind_to_string = Link.kind_name

let kind_of_string = function
  | "xref" -> Link.Xref
  | "seq" -> Link.Seq_similarity
  | "text" -> Link.Text_similarity
  | "shared-term" -> Link.Shared_term
  | "mention" -> Link.Entity_mention
  | "duplicate" -> Link.Duplicate
  | s -> invalid_arg (Printf.sprintf "Repository: bad link kind %S" s)

let save t =
  let buf = Buffer.create 4096 in
  let line fs =
    Buffer.add_string buf (Serial.record fs);
    Buffer.add_char buf '\n'
  in
  line [ "aladin-metadata"; "1" ];
  List.iter
    (fun r ->
      line [ "source"; r.source ];
      List.iter (fun (rel, n) -> line [ "relation"; rel; string_of_int n ]) r.relations;
      (match r.primary with
      | Some (rel, attr) -> line [ "primary"; rel; attr ]
      | None -> ());
      List.iter
        (fun (fk : Inclusion.fk) ->
          line
            [ "fk"; fk.src_relation; fk.src_attribute; fk.dst_relation;
              fk.dst_attribute; card_to_string fk.cardinality;
              origin_to_string fk.origin ])
        r.fks;
      List.iter
        (fun (cs : Col_stats.t) ->
          line
            [ "stats"; cs.relation; cs.attribute; string_of_int cs.rows;
              string_of_int cs.nulls; string_of_int cs.distinct;
              string_of_int cs.min_len; string_of_int cs.max_len;
              Serial.float_to_string cs.avg_len;
              Serial.float_to_string cs.numeric_frac;
              Serial.float_to_string cs.alpha_frac;
              string_of_bool cs.all_unique ])
        r.stats;
      List.iter
        (fun (rel, attr, vals) -> line ("sample" :: rel :: attr :: vals))
        r.sample)
    (sources t);
  List.iter
    (fun (l : Link.t) ->
      line
        [ "link"; l.src.Objref.source; l.src.Objref.relation; l.src.Objref.accession;
          l.dst.Objref.source; l.dst.Objref.relation; l.dst.Objref.accession;
          kind_to_string l.kind; Serial.float_to_string l.confidence; l.evidence ])
    t.link_store;
  List.iter
    (fun (c : Xref_disc.correspondence) ->
      line
        [ "corr"; c.src_source; c.src_relation; c.src_attribute; c.dst_source;
          c.dst_relation; c.dst_attribute; string_of_int c.matches;
          Serial.float_to_string c.match_frac; string_of_bool c.encoded ])
    t.corr_store;
  List.iter
    (fun r -> line [ "runreport"; Run_report.serialize r ])
    (List.rev t.report_store);
  (match t.prov_store with
  | Some doc -> line [ "provenance"; doc ]
  | None -> ());
  Buffer.contents buf

type loading = {
  mutable cur : source_record option;
  mutable done_sources : source_record list;
  mutable loaded_links : Link.t list;
  mutable loaded_corrs : Xref_disc.correspondence list;
  mutable loaded_prov : string option;
  mutable loaded_reports : Run_report.t list;
}

let init_loading () =
  { cur = None; done_sources = []; loaded_links = []; loaded_corrs = [];
    loaded_prov = None; loaded_reports = [] }

let flush st =
  match st.cur with
  | Some r ->
      st.done_sources <-
        { r with
          relations = List.rev r.relations;
          fks = List.rev r.fks;
          stats = List.rev r.stats;
          sample = List.rev r.sample }
        :: st.done_sources;
      st.cur <- None
  | None -> ()

let with_cur st f =
  match st.cur with
  | Some r -> st.cur <- Some (f r)
  | None -> invalid_arg "Repository.load: record outside source block"

(* One record line into the accumulator. @raise Invalid_argument on any
   malformed line — strict [load] propagates, [load_salvaging] counts
   and drops. *)
let apply_line st line =
  match Serial.fields line with
  | [ "source"; name ] ->
      flush st;
      st.cur <-
        Some
          { source = name; relations = []; primary = None; fks = [];
            stats = []; sample = [] }
  | [ "relation"; rel; n ] ->
      with_cur st (fun r ->
          { r with relations = (rel, Serial.int_of_string_exn n) :: r.relations })
  | [ "primary"; rel; attr ] ->
      with_cur st (fun r -> { r with primary = Some (rel, attr) })
  | [ "fk"; sr; sa; dr; da; card; origin ] ->
      with_cur st (fun r ->
          { r with
            fks =
              { Inclusion.src_relation = sr; src_attribute = sa;
                dst_relation = dr; dst_attribute = da;
                cardinality = card_of_string card;
                origin = origin_of_string origin }
              :: r.fks })
  | [ "stats"; rel; attr; rows; nulls; distinct; min_len; max_len;
      avg_len; numeric_frac; alpha_frac; all_unique ] ->
      with_cur st (fun r ->
          { r with
            stats =
              { Col_stats.relation = rel; attribute = attr;
                rows = Serial.int_of_string_exn rows;
                nulls = Serial.int_of_string_exn nulls;
                distinct = Serial.int_of_string_exn distinct;
                min_len = Serial.int_of_string_exn min_len;
                max_len = Serial.int_of_string_exn max_len;
                avg_len = Serial.float_of_string_exn avg_len;
                numeric_frac = Serial.float_of_string_exn numeric_frac;
                alpha_frac = Serial.float_of_string_exn alpha_frac;
                all_unique = bool_of_string all_unique;
                sample = [] }
              :: r.stats })
  | "sample" :: rel :: attr :: vals ->
      with_cur st (fun r -> { r with sample = (rel, attr, vals) :: r.sample })
  | [ "link"; ss; sr; sa; ds; dr; da; kind; conf; evidence ] ->
      flush st;
      st.loaded_links <-
        Link.make
          ~src:(Objref.make ~source:ss ~relation:sr ~accession:sa)
          ~dst:(Objref.make ~source:ds ~relation:dr ~accession:da)
          ~kind:(kind_of_string kind)
          ~confidence:(Serial.float_of_string_exn conf)
          ~evidence
        :: st.loaded_links
  | [ "corr"; ss; sr; sa; ds; dr; da; matches; frac; encoded ] ->
      flush st;
      st.loaded_corrs <-
        { Xref_disc.src_source = ss; src_relation = sr; src_attribute = sa;
          dst_source = ds; dst_relation = dr; dst_attribute = da;
          matches = Serial.int_of_string_exn matches;
          match_frac = Serial.float_of_string_exn frac;
          encoded = bool_of_string encoded }
        :: st.loaded_corrs
  | [ "runreport"; doc ] ->
      flush st;
      (match Run_report.deserialize doc with
      | Some r -> st.loaded_reports <- r :: st.loaded_reports
      | None -> invalid_arg "Repository.load: bad run report")
  | [ "provenance"; prov ] ->
      flush st;
      st.loaded_prov <- Some prov
  | fs ->
      invalid_arg
        (Printf.sprintf "Repository.load: bad line %S" (String.concat "|" fs))

let finish st =
  flush st;
  {
    source_records = st.done_sources;
    link_store = List.rev st.loaded_links;
    corr_store = List.rev st.loaded_corrs;
    prov_store = st.loaded_prov;
    report_store = st.loaded_reports;
  }

let header_fields = [ "aladin-metadata"; "1" ]

let load doc =
  let st = init_loading () in
  let lines = String.split_on_char '\n' doc |> List.filter (fun l -> l <> "") in
  (match lines with
  | first :: _ when Serial.fields first = header_fields -> ()
  | _ -> invalid_arg "Repository.load: bad header");
  List.iteri (fun i line -> if i > 0 then apply_line st line) lines;
  finish st

let load_salvaging doc =
  let st = init_loading () in
  let dropped = ref 0 in
  let lines = String.split_on_char '\n' doc |> List.filter (fun l -> l <> "") in
  let body =
    match lines with
    | first :: rest when Serial.fields first = header_fields -> rest
    | [] -> []
    | _ :: _ ->
        (* header lost to corruption; the remaining lines may still parse *)
        incr dropped;
        lines
  in
  List.iter
    (fun line ->
      try apply_line st line with Invalid_argument _ -> incr dropped)
    body;
  (finish st, !dropped)

let stats_summary t =
  List.map
    (fun r ->
      let rows = List.fold_left (fun acc (_, n) -> acc + n) 0 r.relations in
      let nlinks =
        List.length
          (List.filter
             (fun (l : Link.t) ->
               l.src.Objref.source = r.source || l.dst.Objref.source = r.source)
             t.link_store)
      in
      (r.source, List.length r.relations, rows, nlinks))
    (sources t)
