let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec loop i =
    if i >= n then ()
    else if s.[i] = '\\' && i + 1 < n then begin
      (match s.[i + 1] with
      | '\\' -> Buffer.add_char buf '\\'
      | 't' -> Buffer.add_char buf '\t'
      | 'n' -> Buffer.add_char buf '\n'
      | 'r' -> Buffer.add_char buf '\r'
      | c ->
          Buffer.add_char buf '\\';
          Buffer.add_char buf c);
      loop (i + 2)
    end
    else begin
      Buffer.add_char buf s.[i];
      loop (i + 1)
    end
  in
  loop 0;
  Buffer.contents buf

let record fs = String.concat "\t" (List.map escape fs)

let fields line = List.map unescape (String.split_on_char '\t' line)

(* %h hex floats round-trip exactly and are locale-independent, but the
   non-finite renderings are platform/libc prose ("infinity", "-nan", ...)
   — pin them to fixed tokens so checksummed records never embed
   surprising float text. *)
let float_to_string f =
  match classify_float f with
  | FP_nan -> "nan"
  | FP_infinite -> if f > 0.0 then "inf" else "-inf"
  | FP_normal | FP_subnormal | FP_zero -> Printf.sprintf "%h" f

let float_of_string_exn s =
  match s with
  | "nan" -> Float.nan
  | "inf" -> Float.infinity
  | "-inf" -> Float.neg_infinity
  | s -> (
      match float_of_string_opt s with
      | Some f -> f
      | None -> invalid_arg (Printf.sprintf "Serial.float_of_string_exn: %S" s))

let int_of_string_exn s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Serial.int_of_string_exn: %S" s)
