(** Line-oriented serialization for the metadata repository.

    Records are tab-separated fields, one per line, with backslash escaping
    for tab/newline/backslash. *)

val escape : string -> string

val unescape : string -> string

val record : string list -> string
(** Fields -> one line (no trailing newline). *)

val fields : string -> string list
(** Inverse of {!record}. *)

val float_to_string : float -> string
(** Round-trippable float rendering: [%h] hex floats for finite values,
    with nan/±infinity pinned to the fixed tokens ["nan"], ["inf"] and
    ["-inf"] regardless of platform or locale. *)

val float_of_string_exn : string -> float
(** Inverse of {!float_to_string} (also accepts anything
    [float_of_string] does). @raise Invalid_argument *)

val int_of_string_exn : string -> int
(** @raise Invalid_argument *)
