(** The central metadata repository (§3, "Metadata repository").

    "In the spirit of the Corpus in the Revere project, it contains not
    only known and discovered schemata, but also information about primary
    and secondary relations, statistical metadata, and sample data [...] a
    large part of storage space will be consumed by the discovered links on
    the object level."

    The repository is the durable output of integration: what was
    discovered per source, the object-level links, and the schema-level
    correspondences, with save/load to a text format. *)

open Aladin_relational
open Aladin_discovery
open Aladin_links

type source_record = {
  source : string;
  relations : (string * int) list;  (** (relation, row count) *)
  primary : (string * string) option;  (** (relation, accession attribute) *)
  fks : Inclusion.fk list;
  stats : Col_stats.t list;  (** statistical metadata, reused on later adds *)
  sample : (string * string * string list) list;
      (** (relation, attribute, sample values) *)
}

type t

val create : unit -> t

val record_of_profile : Source_profile.t -> source_record

val add_source : t -> Source_profile.t -> unit
(** Replaces any record with the same source name. *)

val remove_source : t -> string -> unit
(** Also drops links touching that source. *)

val sources : t -> source_record list

val find_source : t -> string -> source_record option

val set_links : t -> Link.t list -> unit

val add_links : t -> Link.t list -> unit
(** Merge (deduplicated). *)

val links : t -> Link.t list

val links_of : t -> Objref.t -> Link.t list
(** Links with the object on either end (symmetric kinds) or as source. *)

val set_correspondences : t -> Xref_disc.correspondence list -> unit

val correspondences : t -> Xref_disc.correspondence list

val set_provenance : t -> string -> unit
(** Store the provenance record of the last pipeline run — by convention
    the JSON execution trace emitted by [Aladin_obs.Sink.to_json]
    ("statistics ... and provenance", §3). Replaces any previous record;
    persisted by {!save}/{!load}. *)

val provenance : t -> string option

val set_run_report : t -> Aladin_resilience.Run_report.t -> unit
(** Store the typed run report of a source's latest pipeline run next to
    the trace (replacing any previous report for the same source);
    persisted by {!save}/{!load}. *)

val run_reports : t -> Aladin_resilience.Run_report.t list
(** Latest report per source, most recent last. *)

val run_report : t -> string -> Aladin_resilience.Run_report.t option

val save : t -> string

val load : string -> t
(** @raise Invalid_argument on malformed input. *)

val load_salvaging : string -> t * int
(** Tolerant {!load} for documents that survived storage-level salvage
    (see [Aladin_store]): unparseable lines and records orphaned by a
    dropped parent ([source]) line are skipped instead of raised on.
    Returns the repository plus the number of lines dropped. *)

val stats_summary : t -> (string * int * int * int) list
(** Per source: (name, #relations, #rows, #links touching it). *)
