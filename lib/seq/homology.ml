type hit = {
  query_id : string;
  subject_id : string;
  raw_score : int;
  normalized : float;
  shared_kmers : int;
}

type t = {
  index : Kmer_index.t;
  matrix : Subst_matrix.t;
  min_hits : int;
}

let default_k = function
  | Alphabet.Dna | Alphabet.Rna -> 11
  | Alphabet.Protein -> 4

let create ?k ?(min_hits = 2) kind =
  let k = Option.value k ~default:(default_k kind) in
  { index = Kmer_index.create ~k; matrix = Subst_matrix.for_kind kind; min_hits }

let add t ~id s = Kmer_index.add t.index ~id s

let size t = Kmer_index.size t.index

let verify t ~query_id ~query ~subject_id ~shared_kmers ~min_normalized =
  match Kmer_index.sequence t.index subject_id with
  | None -> None
  | Some subject ->
      let raw = Align.local_score ~matrix:t.matrix query subject in
      let shorter =
        if String.length query <= String.length subject then query else subject
      in
      let denom =
        let total = ref 0 in
        String.iter
          (fun c -> total := !total + Subst_matrix.score t.matrix c c)
          shorter;
        !total
      in
      let normalized =
        if denom <= 0 then 0.0 else float_of_int raw /. float_of_int denom
      in
      if normalized >= min_normalized then
        Some { query_id; subject_id; raw_score = raw; normalized; shared_kmers }
      else None

let search t ~query_id query ~min_normalized =
  let query = Alphabet.normalize query in
  Kmer_index.candidates t.index ~min_hits:t.min_hits query
  |> List.filter (fun (id, _) -> id <> query_id)
  |> List.filter_map (fun (subject_id, shared_kmers) ->
         verify t ~query_id ~query ~subject_id ~shared_kmers ~min_normalized)
  |> List.sort (fun a b -> Float.compare b.normalized a.normalized)

let all_pairs ?pool t ~min_normalized =
  let ids = List.sort String.compare (Kmer_index.ids t.index) in
  (* per-query searches only read the index, so they can fan out *)
  Aladin_par.Pool.map ?pool
    (fun query_id ->
      match Kmer_index.sequence t.index query_id with
      | None -> []
      | Some q ->
          search t ~query_id q ~min_normalized
          |> List.filter (fun h -> h.query_id < h.subject_id))
    ids
  |> List.concat
