(** Seed-and-extend homology search (the repo's BLAST stand-in).

    Candidates are seeded through a shared-k-mer filter and verified with
    Smith-Waterman; hits are reported with raw and normalized scores. *)

type hit = {
  query_id : string;
  subject_id : string;
  raw_score : int;
  normalized : float;  (** see {!Align.normalized_score} *)
  shared_kmers : int;
}

type t

val create : ?k:int -> ?min_hits:int -> Alphabet.kind -> t
(** [k] defaults to 11 for nucleotide kinds (BLASTN-like) and 4 for
    proteins; [min_hits] (shared k-mers needed to trigger verification)
    defaults to 2. *)

val add : t -> id:string -> string -> unit

val size : t -> int

val search : t -> query_id:string -> string -> min_normalized:float -> hit list
(** Hits above the normalized-score threshold, best first. Self-hits
    (subject = query_id) are excluded. *)

val all_pairs : ?pool:Aladin_par.Pool.t -> t -> min_normalized:float -> hit list
(** Search every indexed sequence against the rest; each unordered pair is
    reported once with query_id < subject_id. With a [pool] the per-query
    searches fan out across domains (the index is only read); the result
    is identical to the sequential run. *)
