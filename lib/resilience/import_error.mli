(** Typed import failures (step 1 of the pipeline).

    A whole-source failure is an {!t}; a recoverable per-record failure
    (one bad entry in a flat file, one ragged CSV row) is a
    {!record_error} collected alongside the partial catalog instead of
    aborting the import. *)

type record_error = {
  index : int;  (** 0-based record (or data-row) number within the source *)
  reason : string;
}

type kind =
  | Unrecognized  (** the format sniffer found nothing *)
  | Parse  (** the document matched a format but could not be parsed *)
  | Io  (** the file or directory could not be read *)

type t = { source : string; kind : kind; detail : string }

val make : source:string -> kind:kind -> string -> t

val kind_name : kind -> string
(** ["unrecognized" | "parse" | "io"]. *)

val to_string : t -> string
(** ["<source>: <kind> error: <detail>"]. *)

val record_error_to_string : record_error -> string
