let protect ?scope ~step ?budget f =
  let body () =
    match budget with
    | Some b -> Budget.with_budget ?scope ~step b f
    | None -> f ()
  in
  match body () with
  | v -> Ok v
  | exception Budget.Expired (_, b) -> Error (Run_report.Timeout b)
  (* crash simulation and resource exhaustion must not be absorbed into
     a typed outcome: an injected kill has to behave like a real kill
     (the process dies, the journal decides what survived), and there is
     no meaningful "continue degraded" after the stack or heap is gone *)
  | exception (Aladin_store.Fault.Killed as e) -> raise e
  | exception (Stack_overflow as e) -> raise e
  | exception (Out_of_memory as e) -> raise e
  | exception e -> Error (Run_report.Crashed (Printexc.to_string e))

let status_of = function
  | Ok _ -> "ok"
  | Error (Run_report.Timeout _) -> "timeout"
  | Error (Run_report.Crashed _) -> "failed"
