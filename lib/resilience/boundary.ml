let protect ?scope ~step ?budget f =
  let body () =
    match budget with
    | Some b -> Budget.with_budget ?scope ~step b f
    | None -> f ()
  in
  match body () with
  | v -> Ok v
  | exception Budget.Expired (_, b) -> Error (Run_report.Timeout b)
  | exception e -> Error (Run_report.Crashed (Printexc.to_string e))

let status_of = function
  | Ok _ -> "ok"
  | Error (Run_report.Timeout _) -> "timeout"
  | Error (Run_report.Crashed _) -> "failed"
