type record_error = { index : int; reason : string }

type kind = Unrecognized | Parse | Io

type t = { source : string; kind : kind; detail : string }

let make ~source ~kind detail = { source; kind; detail }

let kind_name = function
  | Unrecognized -> "unrecognized"
  | Parse -> "parse"
  | Io -> "io"

let to_string e =
  Printf.sprintf "%s: %s error: %s" e.source (kind_name e.kind) e.detail

let record_error_to_string r =
  Printf.sprintf "record %d: %s" r.index r.reason
