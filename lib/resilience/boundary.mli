(** Error boundaries around pipeline steps.

    [protect] is how the warehouse keeps one failing step from killing
    the whole run: every exception the step raises — including a
    {!Budget.Expired} from the cooperative-cancellation machinery — is
    captured as a typed {!Run_report.error} instead of propagating. The
    caller decides what the error means (quarantine the source, skip the
    pass, continue degraded) and records the decision in the run
    report. *)

val protect :
  ?scope:[ `Pool | `Domain ] ->
  step:string ->
  ?budget:float ->
  (unit -> 'a) ->
  ('a, Run_report.error) result
(** Run the body inside an error boundary.

    With [budget] (seconds), the body runs under
    {!Budget.with_budget} (in the given [scope], default [`Pool]); a
    budget [<= 0] expires before the body does any work. Budget expiry
    maps to [Error (Timeout budget)]; any other exception maps to
    [Error (Crashed msg)] with the printed exception.

    Three exceptions pass through instead of being captured:
    [Aladin_store.Fault.Killed] (an injected crash must behave like a
    real one — kill the run, let the journal arbitrate), and
    [Stack_overflow] / [Out_of_memory] (resource exhaustion leaves no
    sane state to continue from). Apart from those, the boundary never
    raises. *)

val status_of : ('a, Run_report.error) result -> string
(** Span-attribute value for the result: ["ok" | "timeout" | "failed"]. *)
