type warning = { code : string; detail : string }

type reason =
  | Budget_zero
  | Budget_exhausted of float
  | Disabled
  | Dependency_failed of string

type error = Timeout of float | Crashed of string

type outcome = Ok | Degraded of warning list | Skipped of reason | Failed of error

type step_report = {
  step : string;
  outcome : outcome;
  seconds : float;
  resumed : bool;
  children : step_report list;
}

type t = { source : string; steps : step_report list; quarantined : bool }

let step ?(children = []) ?(seconds = 0.0) ?(resumed = false) name outcome =
  { step = name; outcome; seconds; resumed; children }

let rec mark_step_resumed s =
  { s with resumed = true; children = List.map mark_step_resumed s.children }

let mark_resumed t = { t with steps = List.map mark_step_resumed t.steps }

let outcome_name = function
  | Ok -> "ok"
  | Degraded _ -> "degraded"
  | Skipped _ -> "skipped"
  | Failed _ -> "failed"

let reason_to_string = function
  | Budget_zero -> "budget is zero"
  | Budget_exhausted b -> Printf.sprintf "budget of %gs exhausted" b
  | Disabled -> "disabled by configuration"
  | Dependency_failed dep -> Printf.sprintf "%s failed" dep

let error_to_string = function
  | Timeout b -> Printf.sprintf "timed out after %gs budget" b
  | Crashed msg -> Printf.sprintf "crashed: %s" msg

let outcome_clean = function
  | Ok | Skipped Disabled -> true
  | Degraded _ | Skipped _ | Failed _ -> false

let rec step_clean s =
  outcome_clean s.outcome && List.for_all step_clean s.children

let is_clean t = (not t.quarantined) && List.for_all step_clean t.steps

let find t name =
  let rec search = function
    | [] -> None
    | s :: rest ->
        if s.step = name then Some s
        else (match search s.children with Some _ as hit -> hit | None -> search rest)
  in
  search t.steps

let total_seconds t =
  List.fold_left (fun acc s -> acc +. s.seconds) 0.0 t.steps

let outcome_detail = function
  | Ok -> ""
  | Degraded ws ->
      Printf.sprintf "%d warning%s" (List.length ws)
        (if List.length ws = 1 then "" else "s")
  | Skipped r -> reason_to_string r
  | Failed e -> error_to_string e

let render t =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "run report: %s%s\n" t.source
    (if t.quarantined then " (quarantined)" else "");
  let rec render_step depth s =
    let indent = String.make (2 + (2 * depth)) ' ' in
    let detail = outcome_detail s.outcome in
    let detail =
      if s.resumed then
        if detail = "" then "[resumed]" else "[resumed] " ^ detail
      else detail
    in
    Printf.bprintf buf "%s%-*s %-9s %8.4fs  %s\n" indent
      (max 1 (24 - (2 * depth)))
      s.step (outcome_name s.outcome) s.seconds detail;
    (match s.outcome with
    | Degraded ws ->
        List.iter
          (fun w -> Printf.bprintf buf "%s  ! %s: %s\n" indent w.code w.detail)
          ws
    | Ok | Skipped _ | Failed _ -> ());
    List.iter (render_step (depth + 1)) s.children
  in
  List.iter (render_step 0) t.steps;
  Buffer.contents buf

(* --- serialization ---

   Line-oriented, tab-separated, with Serial-style escaping of each
   field so the whole report can itself be embedded as one field of the
   metadata repository's own line format. *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | 't' -> Buffer.add_char buf '\t'
       | 'n' -> Buffer.add_char buf '\n'
       | c -> Buffer.add_char buf c);
       i := !i + 2
     end
     else begin
       Buffer.add_char buf s.[!i];
       incr i
     end)
  done;
  Buffer.contents buf

let record fields = String.concat "\t" (List.map escape fields)

let fields line = String.split_on_char '\t' line |> List.map unescape

let outcome_fields = function
  | Ok -> [ "ok" ]
  | Degraded ws ->
      "degraded" :: List.concat_map (fun w -> [ w.code; w.detail ]) ws
  | Skipped Budget_zero -> [ "skipped"; "budget-zero" ]
  | Skipped (Budget_exhausted b) ->
      [ "skipped"; "budget-exhausted"; Printf.sprintf "%h" b ]
  | Skipped Disabled -> [ "skipped"; "disabled" ]
  | Skipped (Dependency_failed dep) -> [ "skipped"; "dependency"; dep ]
  | Failed (Timeout b) -> [ "failed"; "timeout"; Printf.sprintf "%h" b ]
  | Failed (Crashed msg) -> [ "failed"; "crashed"; msg ]

let outcome_of_fields = function
  | [ "ok" ] -> Some Ok
  | "degraded" :: rest ->
      let rec pairs acc = function
        | [] -> Some (List.rev acc)
        | code :: detail :: rest -> pairs ({ code; detail } :: acc) rest
        | [ _ ] -> None
      in
      Option.map (fun ws -> Degraded ws) (pairs [] rest)
  | [ "skipped"; "budget-zero" ] -> Some (Skipped Budget_zero)
  | [ "skipped"; "budget-exhausted"; b ] ->
      Option.map (fun b -> Skipped (Budget_exhausted b)) (float_of_string_opt b)
  | [ "skipped"; "disabled" ] -> Some (Skipped Disabled)
  | [ "skipped"; "dependency"; dep ] -> Some (Skipped (Dependency_failed dep))
  | [ "failed"; "timeout"; b ] ->
      Option.map (fun b -> Failed (Timeout b)) (float_of_string_opt b)
  | [ "failed"; "crashed"; msg ] -> Some (Failed (Crashed msg))
  | _ -> None

let serialize t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (record [ "report"; t.source; (if t.quarantined then "1" else "0") ]);
  let rec add depth s =
    Buffer.add_char buf '\n';
    (* the optional "resumed" token precedes the outcome fields; outcome
       heads are ok/degraded/skipped/failed, so no ambiguity *)
    Buffer.add_string buf
      (record
         (string_of_int depth :: s.step
          :: Printf.sprintf "%h" s.seconds
          :: ((if s.resumed then [ "resumed" ] else [])
             @ outcome_fields s.outcome)));
    List.iter (add (depth + 1)) s.children
  in
  List.iter (add 0) t.steps;
  Buffer.contents buf

let deserialize doc =
  let lines =
    String.split_on_char '\n' doc |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> None
  | header :: rest -> (
      match fields header with
      | [ "report"; source; q ] when q = "0" || q = "1" -> (
          (* parse each line into (depth, step_report without children) *)
          let parsed =
            List.map
              (fun line ->
                match fields line with
                | depth :: name :: secs :: outcome -> (
                    let resumed, outcome =
                      match outcome with
                      | "resumed" :: rest -> (true, rest)
                      | rest -> (false, rest)
                    in
                    match
                      ( int_of_string_opt depth,
                        float_of_string_opt secs,
                        outcome_of_fields outcome )
                    with
                    | Some d, Some s, Some o ->
                        Some
                          ( d,
                            { step = name; outcome = o; seconds = s; resumed;
                              children = [] } )
                    | _ -> None)
                | _ -> None)
              rest
          in
          if List.exists (( = ) None) parsed then None
          else
            let flat = List.filter_map Fun.id parsed in
            (* rebuild the tree from the depth-annotated pre-order list *)
            let rec build depth items =
              match items with
              | (d, s) :: rest when d = depth ->
                  let children, rest = build (depth + 1) rest in
                  let siblings, rest = build depth rest in
                  ({ s with children } :: siblings, rest)
              | _ -> ([], items)
            in
            let steps, leftover = build 0 flat in
            if leftover <> [] then None
            else Some { source; steps; quarantined = q = "1" })
      | _ -> None)
