type policy = {
  attempts : int;
  base_delay : float;
  multiplier : float;
  max_delay : float;
  jitter : float;
  seed : int;
}

let default_policy =
  {
    attempts = 3;
    base_delay = 0.005;
    multiplier = 2.0;
    max_delay = 0.25;
    jitter = 0.25;
    seed = 9;
  }

type verdict = Transient | Permanent

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* transient = the same call may succeed if simply repeated: interrupted
   or contended I/O. Anything deterministic (parse failures, missing
   files, logic bugs) is permanent — retrying would just burn the budget
   reproducing the same failure. *)
let classify = function
  | Unix.Unix_error
      ((EINTR | EAGAIN | EWOULDBLOCK | EBUSY | ENFILE | EMFILE), _, _) ->
      Transient
  | Sys_error msg ->
      if
        contains ~sub:"Interrupted" msg
        || contains ~sub:"interrupted" msg
        || contains ~sub:"temporarily unavailable" msg
        || contains ~sub:"Resource busy" msg
        || contains ~sub:"Too many open files" msg
      then Transient
      else Permanent
  | _ -> Permanent

(* the one blessed sleep in the tree (scripts/check.sh forbids raw
   Unix.sleep/sleepf elsewhere): EINTR-tolerant, no-op on <= 0 *)
let sleepf seconds =
  if seconds > 0.0 then
    try Unix.sleepf seconds with Unix.Unix_error (EINTR, _, _) -> ()

(* deterministic jitter: a seeded FNV-style hash of (seed, step,
   attempt) folded to [0,1] — no Random state, so a replayed run backs
   off identically *)
let unit_float ~seed ~step ~attempt =
  let mix h k = (h * 0x01000193) land 0x3FFFFFFF lxor k in
  let h = mix (mix 0x811C9DC5 seed) attempt in
  let h = String.fold_left (fun h c -> mix h (Char.code c)) h step in
  float_of_int (h land 0xFFFFFF) /. float_of_int 0xFFFFFF

let backoff_delay policy ~step ~attempt =
  let exp =
    policy.base_delay *. (policy.multiplier ** float_of_int attempt)
  in
  let capped = Float.min policy.max_delay exp in
  let u = (2.0 *. unit_float ~seed:policy.seed ~step ~attempt) -. 1.0 in
  Float.max 0.0 (capped *. (1.0 +. (policy.jitter *. u)))

let run_counted ?(policy = default_policy) ?(classify = classify) ~step f =
  let rec go attempt =
    match f () with
    | v -> (v, attempt + 1)
    | exception e -> (
        match e with
        (* never retry a kill, resource exhaustion, or budget expiry:
           the first two must escape (see Boundary), and a retry cannot
           manufacture wall-clock the budget no longer has *)
        | Aladin_store.Fault.Killed | Stack_overflow | Out_of_memory
        | Budget.Expired _ ->
            raise e
        | e when attempt + 1 >= max 1 policy.attempts -> raise e
        | e when classify e = Permanent -> raise e
        | _ ->
            let d = backoff_delay policy ~step ~attempt in
            (* never sleep past an active deadline *)
            let d =
              match Budget.remaining () with
              | Some r -> Float.min d r
              | None -> d
            in
            sleepf d;
            go (attempt + 1))
  in
  go 0

let run ?policy ?classify ~step f = fst (run_counted ?policy ?classify ~step f)
