module Clock = Aladin_obs.Clock

exception Expired of string * float

type slot = { step : string; budget : float; deadline : float }

(* one active budget, visible to every domain of a pool fan-out *)
let current : slot option Atomic.t = Atomic.make None

let active () = Option.map (fun s -> s.step) (Atomic.get current)

let remaining () =
  Option.map (fun s -> s.deadline -. Clock.now ()) (Atomic.get current)

let check () =
  match Atomic.get current with
  | Some s when Clock.now () > s.deadline -> raise (Expired (s.step, s.budget))
  | Some _ | None -> ()

let with_budget ~step seconds f =
  let deadline =
    if seconds <= 0.0 then Float.neg_infinity else Clock.now () +. seconds
  in
  let prev = Atomic.get current in
  Atomic.set current (Some { step; budget = seconds; deadline });
  Fun.protect
    ~finally:(fun () -> Atomic.set current prev)
    (fun () ->
      check ();
      f ())
