module Clock = Aladin_obs.Clock

exception Expired of string * float

type slot = { step : string; budget : float; deadline : float }

(* one active pool-scoped budget, visible to every domain of a fan-out *)
let current : slot option Atomic.t = Atomic.make None

(* domain-scoped budgets: one per domain, so concurrent pool tasks (e.g.
   the request handlers of lib/serve) can each run under their own
   deadline without clobbering the others. A ref inside DLS keeps
   install/restore allocation-free on the hot path. *)
let local : slot option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let tightest () =
  match (!(Domain.DLS.get local), Atomic.get current) with
  | None, g -> g
  | l, None -> l
  | (Some ls as l), (Some gs as g) -> if ls.deadline <= gs.deadline then l else g

let active () = Option.map (fun s -> s.step) (tightest ())

(* clamped at zero: an expired budget has nothing left, it is not in
   debt — callers feed this into Retry-After headers and backoff caps *)
let remaining () =
  Option.map
    (fun s -> Float.max 0.0 (s.deadline -. Clock.now ()))
    (tightest ())

let check () =
  match tightest () with
  | Some s when Clock.now () > s.deadline -> raise (Expired (s.step, s.budget))
  | Some _ | None -> ()

let with_budget ?(scope = `Pool) ~step seconds f =
  let deadline =
    if seconds <= 0.0 then Float.neg_infinity else Clock.now () +. seconds
  in
  let slot = Some { step; budget = seconds; deadline } in
  match scope with
  | `Pool ->
      let prev = Atomic.get current in
      Atomic.set current slot;
      Fun.protect
        ~finally:(fun () -> Atomic.set current prev)
        (fun () ->
          check ();
          f ())
  | `Domain ->
      let cell = Domain.DLS.get local in
      let prev = !cell in
      cell := slot;
      Fun.protect
        ~finally:(fun () -> cell := prev)
        (fun () ->
          check ();
          f ())
