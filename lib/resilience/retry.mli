(** Bounded retries with deterministic exponential backoff.

    Applied at pipeline step boundaries and importer I/O: a {e
    transient} failure (interrupted or contended I/O) is retried up to
    [attempts] times with exponentially growing, deterministically
    jittered delays; a {e permanent} failure (parse errors, missing
    files, logic bugs) is re-raised immediately — retrying a
    deterministic failure only burns budget reproducing it.

    Determinism: the jitter is a seeded hash of
    [(policy.seed, step, attempt)], not [Random], so a replayed run
    backs off identically. Budget safety: a delay is clamped to
    {!Budget.remaining}, and {!Budget.Expired} is never retried —
    retries cannot manufacture wall-clock a budget no longer has.
    {!Aladin_store.Fault.Killed}, [Stack_overflow] and [Out_of_memory]
    are likewise re-raised untouched (crash simulation must crash).

    {!sleepf} is the only sanctioned sleep in the tree —
    [scripts/check.sh] grep-gates raw [Unix.sleep]/[Unix.sleepf]
    everywhere else. *)

type policy = {
  attempts : int;  (** total attempts, including the first; min 1 *)
  base_delay : float;  (** seconds before the first retry, pre-jitter *)
  multiplier : float;  (** exponential growth per attempt *)
  max_delay : float;  (** cap on the pre-jitter delay *)
  jitter : float;  (** symmetric fraction of the delay, [0..1] *)
  seed : int;  (** jitter hash seed *)
}

val default_policy : policy
(** 3 attempts, 5ms base, doubling, 250ms cap, ±25% jitter. *)

type verdict = Transient | Permanent

val classify : exn -> verdict
(** Default classification: [Unix_error]
    EINTR/EAGAIN/EWOULDBLOCK/EBUSY/ENFILE/EMFILE and [Sys_error]s whose
    message says interrupted/busy/temporarily-unavailable are
    [Transient]; everything else [Permanent]. *)

val backoff_delay : policy -> step:string -> attempt:int -> float
(** Delay (seconds) before retrying [attempt] (0-based): [min max_delay
    (base_delay * multiplier^attempt)], jittered deterministically by
    [(seed, step, attempt)]. Pure. *)

val sleepf : float -> unit
(** EINTR-tolerant sleep; no-op for [<= 0]. The one blessed sleep. *)

val run :
  ?policy:policy -> ?classify:(exn -> verdict) -> step:string ->
  (unit -> 'a) -> 'a
(** Run [f], retrying transient failures per [policy]; re-raises the
    last exception when attempts are exhausted, the failure is
    permanent, or it is one of the pass-through exceptions above. *)

val run_counted :
  ?policy:policy -> ?classify:(exn -> verdict) -> step:string ->
  (unit -> 'a) -> 'a * int
(** {!run}, also returning how many attempts were made (1 = first try
    succeeded) — for trace attributes. *)
