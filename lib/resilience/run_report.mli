(** Typed per-run reports: what each pipeline step did, how long it
    took, and how (if at all) it degraded.

    This is the paper's "almost" made explicit: the pipeline is allowed
    to skip an optional pass, tolerate bad records, or quarantine a
    source that cannot be analyzed — but every such decision is recorded
    here, persisted in the metadata repository next to the execution
    trace, and rendered by the CLI. A report replaces the bare timing
    list that [Warehouse.add_source] used to return. *)

type warning = { code : string; detail : string }
(** One recoverable incident inside an otherwise successful step, e.g.
    [{ code = "record_error"; detail = "record 12: ..." }]. *)

type reason =
  | Budget_zero  (** configured budget of 0 — skipped before starting *)
  | Budget_exhausted of float  (** ran, hit the wall-clock budget *)
  | Disabled  (** turned off in the configuration *)
  | Dependency_failed of string  (** an earlier required step failed *)

type error =
  | Timeout of float  (** required work exceeded its budget (seconds) *)
  | Crashed of string  (** uncaught exception, printed *)

type outcome =
  | Ok
  | Degraded of warning list  (** finished, but lost something on the way *)
  | Skipped of reason
  | Failed of error

type step_report = {
  step : string;  (** pipeline step or pass name, matches the span name *)
  outcome : outcome;
  seconds : float;
  resumed : bool;
      (** this outcome was restored from a journal checkpoint by
          [integrate --resume], not computed in this run — its [seconds]
          are the original run's *)
  children : step_report list;  (** sub-passes, e.g. the four link passes *)
}

type t = {
  source : string;
  steps : step_report list;  (** the five steps, in pipeline order *)
  quarantined : bool;
      (** true when the source was rolled back out of the warehouse
          because a required step failed *)
}

val step :
  ?children:step_report list ->
  ?seconds:float ->
  ?resumed:bool ->
  string ->
  outcome ->
  step_report
(** [resumed] defaults to [false]. *)

val mark_resumed : t -> t
(** Flag every step (recursively) as restored-from-checkpoint — applied
    to reports replayed out of the integration journal. *)

val outcome_name : outcome -> string
(** ["ok" | "degraded" | "skipped" | "failed"]. *)

val reason_to_string : reason -> string

val error_to_string : error -> string

val outcome_clean : outcome -> bool
(** [Ok] and [Skipped Disabled] are clean; everything else degrades the
    run. *)

val is_clean : t -> bool
(** No quarantine and every step (recursively) clean — the predicate
    behind [integrate --strict]. *)

val find : t -> string -> step_report option
(** Depth-first search by step name. *)

val total_seconds : t -> float
(** Sum over the top-level steps. *)

val render : t -> string
(** Multi-line human-readable rendering for the CLI. *)

val serialize : t -> string
(** Stable text encoding (round-trips through {!deserialize}); safe to
    embed as a single metadata-repository field. *)

val deserialize : string -> t option
