(** Cooperative wall-clock budgets for pipeline steps.

    A budget is a deadline installed for the dynamic extent of one step.
    Long-running code — in particular every item of an
    [Aladin_par.Pool] fan-out — polls {!check}; once the deadline has
    passed, {!Expired} is raised and rides the normal exception path out
    of the step, where an error boundary ({!Boundary.protect}) turns it
    into a typed outcome.

    Budgets come in two scopes. A [`Pool] budget (the default, and what
    every pipeline step uses) lives in an [Atomic.t] so worker domains
    spawned by the pool observe the same deadline as the domain that
    installed it. A [`Domain] budget lives in domain-local storage: each
    domain carries its own, so concurrent pool tasks — e.g. the
    per-request deadlines of [lib/serve], where every worker handles a
    different request — can each run under an independent deadline
    without clobbering the others. {!check} polls both and raises for
    whichever deadline is tighter.

    Within one scope budgets do not nest: installing one while another
    is active shadows the outer one until the inner step returns (the
    outer deadline is restored afterwards). *)

exception Expired of string * float
(** [Expired (step, budget_seconds)]: the named step exceeded its
    wall-clock budget. *)

val with_budget :
  ?scope:[ `Pool | `Domain ] -> step:string -> float -> (unit -> 'a) -> 'a
(** Run the body under a deadline of [seconds] from now on the
    {!Aladin_obs.Clock} wall clock. A budget [<= 0] expires immediately
    (before the body runs any work item). The previous budget of the
    same scope, if any, is restored when the body returns or raises.
    [scope] defaults to [`Pool] (shared with pool workers); [`Domain]
    keeps the deadline private to the calling domain.
    @raise Expired when the budget is already exhausted on entry. *)

val check : unit -> unit
(** Poll the active budgets (domain-scoped and pool-scoped); a cheap
    no-op when none is installed.
    @raise Expired when an active deadline has passed. *)

val active : unit -> string option
(** Name of the step whose budget would expire first, if any. *)

val remaining : unit -> float option
(** Seconds until the tightest active deadline, clamped at [0.0] once
    expired (never negative); [None] when no budget is installed. *)
