open Aladin_links
module Tx = Aladin_text

type params = {
  min_similarity : float;
  all_pairs : bool;
  max_block_size : int;
}

let default_params = { min_similarity = 0.78; all_pairs = false; max_block_size = 50 }

type result = {
  links : Link.t list;
  clusters : string list list;
  candidates_checked : int;
  reprs : Object_sim.repr list;
}

let looks_like_accession s =
  let n = String.length s in
  n >= 4 && n <= 15
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9') || c = '_' || c = ':')
       s
  && String.exists (fun c -> c >= '0' && c <= '9') s

(* symbol-shaped token: mixed letters+digits, the shape of gene names and
   accessions — rare enough to block on even inside long text *)
let symbolish tok =
  let n = String.length tok in
  n >= 4 && n <= 12
  && String.exists (fun c -> c >= '0' && c <= '9') tok
  && String.exists (fun c -> (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) tok

let blocking_keys (r : Object_sim.repr) =
  let keys = ref [ "acc:" ^ String.lowercase_ascii r.obj.Objref.accession ] in
  List.iter
    (fun (_, v) ->
      if looks_like_accession v then
        keys := ("acc:" ^ String.lowercase_ascii v) :: !keys
      else if String.length v < 25 then
        List.iter
          (fun tok ->
            if String.length tok >= 4 && not (Tx.Tokenize.stopword tok) then
              keys := ("tok:" ^ tok) :: !keys)
          (Tx.Tokenize.words v)
      else
        (* long text: only symbol-shaped tokens (embedded entity names) *)
        List.iter
          (fun tok -> if symbolish tok then keys := ("tok:" ^ tok) :: !keys)
          (Tx.Tokenize.words v))
    r.fields;
  List.sort_uniq String.compare !keys

let candidate_pairs params reprs =
  if params.all_pairs then begin
    let rec pairs acc = function
      | [] -> acc
      | (a : Object_sim.repr) :: rest ->
          let acc =
            List.fold_left
              (fun acc (b : Object_sim.repr) ->
                if a.obj.Objref.source <> b.obj.Objref.source then (a, b) :: acc
                else acc)
              acc rest
          in
          pairs acc rest
    in
    List.rev (pairs [] reprs)
  end
  else begin
    let blocks : (string, Object_sim.repr list ref) Hashtbl.t = Hashtbl.create 256 in
    List.iter
      (fun r ->
        List.iter
          (fun key ->
            match Hashtbl.find_opt blocks key with
            | Some l -> l := r :: !l
            | None -> Hashtbl.add blocks key (ref [ r ]))
          (blocking_keys r))
      reprs;
    let seen = Hashtbl.create 256 in
    let out = ref [] in
    Hashtbl.iter
      (fun _ members ->
        let ms = !members in
        if List.length ms <= params.max_block_size then begin
          let rec pairs = function
            | [] -> ()
            | (a : Object_sim.repr) :: rest ->
                List.iter
                  (fun (b : Object_sim.repr) ->
                    if a.obj.Objref.source <> b.obj.Objref.source then begin
                      let ka = Objref.to_string a.obj
                      and kb = Objref.to_string b.obj in
                      let key = if ka < kb then ka ^ "\x00" ^ kb else kb ^ "\x00" ^ ka in
                      if not (Hashtbl.mem seen key) then begin
                        Hashtbl.add seen key ();
                        out := (a, b) :: !out
                      end
                    end)
                  rest;
                pairs rest
          in
          pairs ms
        end)
      blocks;
    List.sort
      (fun ((a1 : Object_sim.repr), (b1 : Object_sim.repr)) (a2, b2) ->
        match Objref.compare a1.obj a2.Object_sim.obj with
        | 0 -> Objref.compare b1.obj b2.Object_sim.obj
        | c -> c)
      !out
  end

let detect_on ?(params = default_params) ?pool reprs =
  let pairs = candidate_pairs params reprs in
  let context = Object_sim.context_of reprs in
  (* similarity only reads the context, so it fans out; union-find and
     link building stay sequential in pair order *)
  let sims =
    Aladin_par.Pool.map ?pool
      (fun ((a : Object_sim.repr), (b : Object_sim.repr)) ->
        Object_sim.similarity ~context a b)
      pairs
  in
  let uf = Union_find.create () in
  let links =
    List.filter_map
      (fun (((a : Object_sim.repr), (b : Object_sim.repr)), sim) ->
        if sim >= params.min_similarity then begin
          Union_find.union uf (Objref.to_string a.obj) (Objref.to_string b.obj);
          Some
            (Link.make ~src:a.obj ~dst:b.obj ~kind:Link.Duplicate ~confidence:sim
               ~evidence:(Printf.sprintf "object similarity %.2f" sim))
        end
        else None)
      (List.combine pairs sims)
  in
  {
    links = Link.dedup links;
    clusters = Union_find.clusters uf;
    candidates_checked = List.length pairs;
    reprs;
  }

let detect ?params ?pool ?exclude_attributes profiles =
  detect_on ?params ?pool (Object_sim.build_reprs ?exclude_attributes profiles)
