open Aladin_links
module Tx = Aladin_text
module Pool = Aladin_par.Pool

type params = {
  min_similarity : float;
  all_pairs : bool;
  max_block_size : int;
}

let default_params = { min_similarity = 0.78; all_pairs = false; max_block_size = 50 }

type result = {
  links : Link.t list;
  clusters : string list list;
  candidates_checked : int;
  reprs : Object_sim.repr list;
}

let looks_like_accession s =
  let n = String.length s in
  n >= 4 && n <= 15
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9') || c = '_' || c = ':')
       s
  && String.exists (fun c -> c >= '0' && c <= '9') s

(* symbol-shaped token: mixed letters+digits, the shape of gene names and
   accessions — rare enough to block on even inside long text *)
let symbolish tok =
  let n = String.length tok in
  n >= 4 && n <= 12
  && String.exists (fun c -> c >= '0' && c <= '9') tok
  && String.exists (fun c -> (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) tok

let blocking_keys (r : Object_sim.repr) =
  let keys = ref [ "acc:" ^ String.lowercase_ascii r.obj.Objref.accession ] in
  List.iter
    (fun (_, v) ->
      (* lowercase before deriving ANY key: "BRCA1" and "brca1" must land
         in the same block or the duplicate pair is never even considered *)
      let v = String.lowercase_ascii v in
      if looks_like_accession v then keys := ("acc:" ^ v) :: !keys
      else if String.length v < 25 then
        List.iter
          (fun tok ->
            if String.length tok >= 4 && not (Tx.Tokenize.stopword tok) then
              keys := ("tok:" ^ tok) :: !keys)
          (Tx.Tokenize.words v)
      else
        (* long text: only symbol-shaped tokens (embedded entity names) *)
        List.iter
          (fun tok -> if symbolish tok then keys := ("tok:" ^ tok) :: !keys)
          (Tx.Tokenize.words v))
    r.fields;
  List.sort_uniq String.compare !keys

(* contiguous slices of near-equal size, in order *)
let slices nshards xs =
  let n = List.length xs in
  if nshards <= 1 || n <= 1 then [ xs ]
  else begin
    let per = (n + nshards - 1) / nshards in
    let rec take k acc = function
      | [] -> (List.rev acc, [])
      | rest when k = 0 -> (List.rev acc, rest)
      | x :: rest -> take (k - 1) (x :: acc) rest
    in
    let rec go xs acc =
      match xs with
      | [] -> List.rev acc
      | _ ->
          let s, rest = take per [] xs in
          go rest (s :: acc)
    in
    go xs []
  end

(* Candidate generation over the reprs array; pairs are index pairs
   (i, j) with i < j, sorted — a canonical form that no longer depends on
   hash-table iteration order, which also makes the sharded parallel run
   trivially equal to the sequential one. *)
let candidate_index_pairs ?pool params (reprs : Object_sim.repr array) =
  let n = Array.length reprs in
  let source_of i = reprs.(i).Object_sim.obj.Objref.source in
  if params.all_pairs then begin
    let out = ref [] in
    for i = n - 1 downto 0 do
      for j = n - 1 downto i + 1 do
        if source_of i <> source_of j then out := (i, j) :: !out
      done
    done;
    !out
  end
  else begin
    (* per-object key lists fan out: blocking_keys is tokenization-heavy *)
    let keys =
      Pool.map ?pool (fun i -> blocking_keys reprs.(i)) (List.init n Fun.id)
    in
    let blocks : (string, int list ref) Hashtbl.t = Hashtbl.create 256 in
    List.iteri
      (fun i ks ->
        List.iter
          (fun key ->
            match Hashtbl.find_opt blocks key with
            | Some members -> members := i :: !members
            | None -> Hashtbl.add blocks key (ref [ i ]))
          ks)
      keys;
    (* deterministic block order (sorted keys), oversized blocks dropped *)
    let usable =
      Hashtbl.fold
        (fun key members acc ->
          let ms = !members in
          if List.length ms <= params.max_block_size then (key, ms) :: acc
          else acc)
        blocks []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    (* shard blocks across the pool; each shard keeps a LOCAL seen table
       (no shared mutable state inside the fan-out) and emits its pairs in
       block order *)
    let nshards =
      match pool with None -> 1 | Some p -> max 1 (Pool.size p * 4)
    in
    let shard_pairs =
      Pool.map ?pool
        (fun shard ->
          let seen : (int * int, unit) Hashtbl.t = Hashtbl.create 256 in
          let out = ref [] in
          List.iter
            (fun (_, members) ->
              (* members are in descending index order; orientation is
                 canonicalized to (min, max) so it does not matter *)
              let rec pairs = function
                | [] -> ()
                | a :: rest ->
                    List.iter
                      (fun b ->
                        if source_of a <> source_of b then begin
                          let ij = if a < b then (a, b) else (b, a) in
                          if not (Hashtbl.mem seen ij) then begin
                            Hashtbl.add seen ij ();
                            out := ij :: !out
                          end
                        end)
                      rest;
                    pairs rest
              in
              pairs members)
            shard;
          !out)
        (slices nshards usable)
    in
    (* deterministic merge at the join: concatenate in shard order, then a
       global sort+dedup removes the pairs two shards both produced *)
    List.sort_uniq compare (List.concat shard_pairs)
  end

let candidate_pairs ?pool params reprs =
  let arr = Array.of_list reprs in
  List.map
    (fun (i, j) -> (arr.(i), arr.(j)))
    (candidate_index_pairs ?pool params arr)

let detect_on ?(params = default_params) ?pool reprs =
  let arr = Array.of_list reprs in
  let context = Object_sim.context_of reprs in
  (* prepare every representation ONCE before the pairwise fan-out:
     lowercasing, tokenization and df interning leave the per-pair path *)
  let prepared =
    Array.of_list (Pool.map ?pool (Object_sim.prepare ~context) reprs)
  in
  let pairs = candidate_index_pairs ?pool params arr in
  (* similarity only reads prepared data, so it fans out; union-find and
     link building stay sequential in pair order *)
  let sims =
    Pool.map ?pool
      (fun (i, j) -> Object_sim.similarity_prepared prepared.(i) prepared.(j))
      pairs
  in
  let uf = Union_find.create () in
  let links =
    List.filter_map
      (fun ((i, j), sim) ->
        if sim >= params.min_similarity then begin
          let a = arr.(i) and b = arr.(j) in
          Union_find.union uf (Objref.to_string a.Object_sim.obj)
            (Objref.to_string b.Object_sim.obj);
          Some
            (Link.make ~src:a.Object_sim.obj ~dst:b.Object_sim.obj
               ~kind:Link.Duplicate ~confidence:sim
               ~evidence:(Printf.sprintf "object similarity %.2f" sim))
        end
        else None)
      (List.combine pairs sims)
  in
  {
    links = Link.dedup links;
    clusters = Union_find.clusters uf;
    candidates_checked = List.length pairs;
    reprs;
  }

let detect ?params ?pool ?exclude_attributes profiles =
  detect_on ?params ?pool (Object_sim.build_reprs ?exclude_attributes profiles)

(* --- pairwise entry points (delta pipeline) --- *)

let prep_source ?exclude_attributes profiles ~source =
  Object_sim.build_reprs ?exclude_attributes
    (Profile_list.restrict profiles [ source ])

let detect_between ?params ?pool ~reprs_a ~reprs_b () =
  (* each per-source list is sorted by object (build_reprs' contract), so
     the sorted merge reproduces exactly what build_reprs over the
     two-source restriction would return — but the per-source halves are
     cached across delta runs instead of being rebuilt per pair *)
  let cmp (x : Object_sim.repr) (y : Object_sim.repr) =
    Objref.compare x.obj y.obj
  in
  detect_on ?params ?pool (List.merge cmp reprs_a reprs_b)
