(** Field-level similarity for duplicate detection (§4.5).

    "Literature defines several domain-independent similarity measures
    usually based on edit distance" — the metric is picked by the shape of
    the values: identifiers use edit-based similarity, long text uses token
    overlap, sequences use a cheap identity proxy. *)

type metric = Exact | Edit | Token | Sequence_metric

val choose_metric : string -> string -> metric
(** From the values' shape (length, alphabet). *)

val similarity : string -> string -> float
(** In [0,1], by the chosen metric. Case-insensitive. Empty vs non-empty
    is 0; empty vs empty is 1. *)

val is_sequence_value : string -> bool
(** The cheap sequence tell used by {!choose_metric}: long, letters-only,
    low character diversity. *)

type prepared
(** A value normalized exactly once: trimmed, lowercased, sequence-flagged
    and tokenized. {!similarity} is [O(pairs x value length)] in
    normalization work when called naively inside a candidate fan-out; the
    prepared form moves all of that to a single pre-pass so the per-pair
    cost is just the metric itself. *)

val prepare : string -> prepared

val similarity_prepared : prepared -> prepared -> float
(** Exactly [similarity raw_a raw_b] for the values the arguments were
    {!prepare}d from, without re-normalizing either. *)

val name_affinity : string -> string -> float
(** Attribute-name compatibility used to decide which fields of two
    heterogeneously-modeled objects to compare (cf. [WN04]): token overlap
    (Jaccard over the {e deduplicated} token sets) of the names, in
    [0,1]. *)

val name_tokens : string -> string list
(** The sorted, deduplicated name tokens behind {!name_affinity}
    (split on ['_'] and ['.'], lowercased, ["id"] and empties dropped). *)

val name_affinity_tokens : string list -> string list -> float
(** {!name_affinity} over token lists already produced by {!name_tokens} —
    the per-pair form used with prepared representations. *)
