(** Duplicate detection across sources (§4.5, step 5 of Figure 2).

    Duplicates are flagged, never merged: the output is a set of
    [Duplicate] links plus clusters. Candidate pairs come from cheap
    blocking (shared accession string, shared rare name token); candidates
    are verified with {!Object_sim.similarity}. *)

open Aladin_links

type params = {
  min_similarity : float;  (** verification threshold (default 0.78) *)
  all_pairs : bool;
      (** compare every cross-source pair instead of blocking — exact but
          quadratic (default false) *)
  max_block_size : int;  (** ignore blocks larger than this (default 50) *)
}

val default_params : params

type result = {
  links : Link.t list;  (** kind = [Duplicate] *)
  clusters : string list list;  (** of {!Objref.to_string} keys *)
  candidates_checked : int;
  reprs : Object_sim.repr list;
}

val blocking_keys : Object_sim.repr -> string list
(** The blocking keys of one object: its accession, accession-shaped field
    values, and rare name tokens — all lowercased before key derivation so
    blocking is case-insensitive. Sorted, deduplicated. *)

val candidate_pairs :
  ?pool:Aladin_par.Pool.t ->
  params ->
  Object_sim.repr list ->
  (Object_sim.repr * Object_sim.repr) list
(** Blocking output: cross-source pairs, deduplicated, each oriented with
    the smaller {!Objref} first and sorted in that order — a canonical
    form independent of hash-table iteration order. With a [pool], key
    extraction fans out and blocks are sharded across domains with
    per-shard local seen tables merged deterministically at the join; the
    result is identical at any pool size. *)

val detect :
  ?params:params ->
  ?pool:Aladin_par.Pool.t ->
  ?exclude_attributes:(string * string * string) list ->
  Profile_list.t ->
  result
(** [exclude_attributes] (see {!Object_sim.build_reprs}) should name the
    cross-reference attributes discovered in step 4. With a [pool] the
    pairwise similarity verification fans out across domains; the result
    is identical to the sequential run. *)

val detect_on :
  ?params:params -> ?pool:Aladin_par.Pool.t -> Object_sim.repr list -> result
(** Same, over prebuilt representations (lets experiments reuse them). *)

val prep_source :
  ?exclude_attributes:(string * string * string) list ->
  Profile_list.t ->
  source:string ->
  Object_sim.repr list
(** One source's representations ({!Object_sim.build_reprs} over the
    restriction to [source]) — the per-source half the delta pipeline
    caches and reuses across {!detect_between} calls. Only
    [exclude_attributes] triples naming [source] matter here. *)

val detect_between :
  ?params:params ->
  ?pool:Aladin_par.Pool.t ->
  reprs_a:Object_sim.repr list ->
  reprs_b:Object_sim.repr list ->
  unit ->
  result
(** {!detect_on} over the sorted merge of two sources' prepared
    representations — the delta pipeline's unit of dup work. Candidate
    blocking is cross-source only, so the pair's links depend only on the
    two sources; token document frequencies and the blocking cap are
    pair-local (a refinement of the old whole-warehouse statistics,
    applied uniformly by routing every dup pass through pairs). *)
