(** Object-level similarity over heterogeneously modeled objects (§4.5).

    "It is not a priori clear which attribute values of one object to
    compare with which attribute value of the other object." Each primary
    object is flattened into a bag of (qualified attribute, value) fields
    from the rows it owns; similarity greedily matches each field of the
    smaller object to its best counterpart (value similarity, weighted by
    attribute-name affinity) and averages — the nested-object measure of
    [WN04] adapted to the relational shredding. *)

open Aladin_links

type repr = {
  obj : Objref.t;
  fields : (string * string) list;  (** (relation.attribute, value) *)
}

val build_reprs :
  ?max_fields_per_object:int ->
  ?exclude_attributes:(string * string * string) list ->
  Profile_list.t ->
  repr list
(** One representation per primary object. Surrogate-key attributes
    (numeric, FK-ish) are excluded; [max_fields_per_object] defaults
    to 40. Sorted by object.

    [exclude_attributes] lists (source, relation, attribute) triples to
    leave out of the bags — step 5 runs after link discovery, so the
    attributes already identified as cross-references (which hold OTHER
    objects' accessions) must not count as similarity evidence between an
    object and its link target. *)

type weights = {
  w_value : float;  (** default 0.8 *)
  w_name : float;  (** default 0.2 *)
}

val default_weights : weights

type context
(** Corpus-level value statistics: how many objects carry each value.
    Matching a value shared by half the corpus ("Homo sapiens") is weak
    evidence; matching a rare one (a gene symbol) is strong. *)

val context_of : repr list -> context

type prepared
(** A representation prepared for the candidate fan-out: per-field
    lowercased/trimmed values, token lists, sequence flags, attribute-name
    tokens and interned df counts, all computed exactly once. Naive
    {!similarity} re-derives every one of those per candidate pair — the
    minor-heap churn that turned the parallel duplicate step anti-scale —
    so the pipeline prepares each object once and compares prepared
    forms. *)

val prepare : ?context:context -> repr -> prepared
(** Prepare one object. Pass the same [context] the comparisons will be
    judged under: value df counts are resolved (interned) here, so
    {!similarity_prepared} never touches the df table per pair. *)

val repr_of_prepared : prepared -> repr

val similarity_prepared : ?weights:weights -> prepared -> prepared -> float
(** Exactly [similarity ?weights ?context a b] for prepared forms of [a]
    and [b] built with [prepare ?context]; both arguments must have been
    prepared with the same context. *)

val similarity : ?weights:weights -> ?context:context -> repr -> repr -> float
(** In [0,1]; 0 when either object has no fields. With a [context], each
    matched field pair is weighted by the IDF of the matched value.
    Equivalent to preparing both sides and calling
    {!similarity_prepared}. *)

val explain : ?weights:weights -> ?context:context -> repr -> repr -> string
(** Human-readable derivation of {!similarity}: one line per matched field
    pair with value similarity, name affinity, weight and anchor status —
    the "why were these flagged as duplicates" provenance. *)

val field_matches : repr -> repr -> (string * string * string * string * float) list
(** The greedy field matching behind {!similarity}:
    (attr_a, value_a, attr_b, value_b, value_similarity) — also used by
    conflict detection. *)
