module Tx = Aladin_text

type metric = Exact | Edit | Token | Sequence_metric

let is_sequence s =
  String.length s >= 30
  && String.for_all
       (fun c ->
         let c = Char.uppercase_ascii c in
         (c >= 'A' && c <= 'Z') || c = ' ' || c = '\n')
       s
  &&
  (* low character diversity is the cheap tell of a sequence *)
  let seen = Hashtbl.create 8 in
  String.iter
    (fun c ->
      let c = Char.uppercase_ascii c in
      if c <> ' ' && c <> '\n' then Hashtbl.replace seen c ())
    s;
  Hashtbl.length seen <= 21

let is_sequence_value = is_sequence

let choose_metric a b =
  if a = b then Exact
  else if is_sequence a && is_sequence b then Sequence_metric
  else if String.length a >= 25 || String.length b >= 25 then Token
  else Edit

(* a value, normalized once: everything the per-pair metric needs that
   does not depend on the other value of the pair *)
type prepared = {
  empty : bool;  (* trimmed value is empty *)
  lc : string;  (* lowercased trimmed value *)
  is_seq : bool;  (* is_sequence lc *)
  long : bool;  (* String.length lc >= 25: the Token-metric trigger *)
  terms : string list;  (* sorted unique Tokenize.terms of lc *)
}

let prepare raw =
  let t = String.trim raw in
  let lc = String.lowercase_ascii t in
  {
    empty = t = "";
    lc;
    is_seq = is_sequence lc;
    long = String.length lc >= 25;
    terms = List.sort_uniq String.compare (Tx.Tokenize.terms lc);
  }

(* intersection size of two sorted unique lists *)
let rec inter_count acc a b =
  match (a, b) with
  | [], _ | _, [] -> acc
  | x :: xs, y :: ys ->
      let c = String.compare x y in
      if c = 0 then inter_count (acc + 1) xs ys
      else if c < 0 then inter_count acc xs b
      else inter_count acc a ys

(* HOT-PATH-BEGIN: per-candidate-pair code. Runs once per candidate pair
   inside the duplicate-detection fan-out, so it must not re-normalize or
   re-tokenize values — that work happens once, in [prepare] /
   [name_tokens] above (enforced by a grep-gate in scripts/check.sh). *)

(* Jaccard of precomputed sorted unique term lists; equals
   [Tx.Tokenize.jaccard a.lc b.lc] *)
let jaccard_prepared a b =
  let na = List.length a.terms and nb = List.length b.terms in
  if na = 0 && nb = 0 then 1.0
  else begin
    let inter = inter_count 0 a.terms b.terms in
    float_of_int inter /. float_of_int (na + nb - inter)
  end

let similarity_prepared a b =
  if a.empty && b.empty then 1.0
  else if a.empty || b.empty then 0.0
  else if a.lc = b.lc then 1.0 (* Exact *)
  else if a.is_seq && b.is_seq then Tx.Strdist.dice_bigrams a.lc b.lc
  else if a.long || b.long then jaccard_prepared a b
  else Tx.Strdist.jaro_winkler a.lc b.lc

let name_affinity_tokens ta tb =
  if ta = [] || tb = [] then 0.0
  else begin
    let inter = inter_count 0 ta tb in
    let union = List.length ta + List.length tb - inter in
    if union = 0 then 0.0
    else float_of_int inter /. float_of_int union
  end

(* HOT-PATH-END *)

let similarity a b = similarity_prepared (prepare a) (prepare b)

(* deduplicated: "gene_gene" vs "gene" must score 1.0, not overcount the
   repeated token into an affinity above 1 *)
let name_tokens s =
  String.split_on_char '_' (String.lowercase_ascii s)
  |> List.concat_map (String.split_on_char '.')
  |> List.filter (fun t -> t <> "" && t <> "id")
  |> List.sort_uniq String.compare

let name_affinity a b = name_affinity_tokens (name_tokens a) (name_tokens b)
