open Aladin_relational
open Aladin_discovery
open Aladin_links

type repr = {
  obj : Objref.t;
  fields : (string * string) list;
}

(* an attribute is bag-worthy when it carries content rather than keys:
   not an FK endpoint shape (pure integers), not null-only *)
let content_attribute (cs : Col_stats.t) = cs.distinct > 0 && cs.numeric_frac < 0.99

(* growable bag with its size tracked alongside, so the per-append cap
   check is O(1) instead of List.length's walk of the whole bag *)
type bag = { mutable n : int; mutable items : (string * string) list }

let build_reprs ?(max_fields_per_object = 40) ?(exclude_attributes = []) profiles =
  let norm = String.lowercase_ascii in
  let excluded =
    List.map (fun (s, r, a) -> (norm s, norm r, norm a)) exclude_attributes
  in
  let bags : (string, bag) Hashtbl.t = Hashtbl.create 256 in
  let refs : (string, Objref.t) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (e : Profile_list.entry) ->
      let catalog = Profile.catalog e.sp.profile in
      let source = norm (Source_profile.source e.sp) in
      Profile.all_stats e.sp.profile
      |> List.iter (fun (cs : Col_stats.t) ->
             let keep =
               content_attribute cs
               && not
                    (List.mem (source, norm cs.relation, norm cs.attribute)
                       excluded)
             in
             if keep then begin
               let rel = Catalog.find_exn catalog cs.relation in
               let ai = Schema.index_of_exn (Relation.schema rel) cs.attribute in
               let qualified = cs.relation ^ "." ^ cs.attribute in
               Relation.iteri_rows
                 (fun row_i row ->
                   let v = row.(ai) in
                   if not (Value.is_null v) then
                     List.iter
                       (fun obj ->
                         let key = Objref.to_string obj in
                         let bag =
                           match Hashtbl.find_opt bags key with
                           | Some b -> b
                           | None ->
                               let b = { n = 0; items = [] } in
                               Hashtbl.add bags key b;
                               Hashtbl.replace refs key obj;
                               b
                         in
                         if bag.n < max_fields_per_object then begin
                           bag.n <- bag.n + 1;
                           bag.items <- (qualified, Value.to_string v) :: bag.items
                         end)
                       (Owner_map.object_of_row e.owner ~relation:cs.relation
                          ~row:row_i))
                 rel
             end))
    (Profile_list.entries profiles);
  Hashtbl.fold
    (fun key bag acc ->
      { obj = Hashtbl.find refs key; fields = List.rev bag.items } :: acc)
    bags []
  |> List.sort (fun a b -> Objref.compare a.obj b.obj)

type weights = { w_value : float; w_name : float }

let default_weights = { w_value = 0.8; w_name = 0.2 }

type context = { df : (string, int) Hashtbl.t; n_objects : int }

let context_of reprs =
  let df = Hashtbl.create 1024 in
  List.iter
    (fun r ->
      let seen = Hashtbl.create 16 in
      List.iter
        (fun (_, v) ->
          let v = String.lowercase_ascii v in
          if not (Hashtbl.mem seen v) then begin
            Hashtbl.add seen v ();
            Hashtbl.replace df v (1 + try Hashtbl.find df v with Not_found -> 0)
          end)
        r.fields)
    reprs;
  { df; n_objects = List.length reprs }

let df_of ctx v =
  try Hashtbl.find ctx.df (String.lowercase_ascii v) with Not_found -> 1

(* a value is "identifying" when only a handful of objects carry it *)
let identity_df_cap ctx = max 8 (ctx.n_objects / 50)

(* ------------------------------------------------------------------ *)
(* prepared representations: everything the per-pair similarity needs,
   computed once per object before the candidate fan-out               *)
(* ------------------------------------------------------------------ *)

type pfield = {
  attr : string;  (* original qualified attribute name *)
  value : string;  (* original value (for output tuples / evidence) *)
  name_toks : string list;  (* Field_sim.name_tokens attr *)
  pv : Field_sim.prepared;  (* trimmed/lowercased/tokenized value *)
  dfv : int;  (* interned df of the value under the context; 1 without *)
  (* anchor shape of the value itself: >= 4 chars, identifier-shaped
     (contains a digit) or substantial text, and not a sequence *)
  anchor_shape : bool;
  seq_raw : bool;  (* Field_sim.is_sequence_value value *)
}

type prepared = {
  prepr : repr;
  pfields : pfield array;
  pctx : context option;
}

let prepare ?context r =
  let pfields =
    List.map
      (fun (attr, v) ->
        let seq_raw = Field_sim.is_sequence_value v in
        {
          attr;
          value = v;
          name_toks = Field_sim.name_tokens attr;
          pv = Field_sim.prepare v;
          dfv = (match context with Some ctx -> df_of ctx v | None -> 1);
          anchor_shape =
            String.length v >= 4
            && (String.exists (fun c -> c >= '0' && c <= '9') v
               || String.length v >= 25)
            && not seq_raw;
          seq_raw;
        })
      r.fields
    |> Array.of_list
  in
  { prepr = r; pfields; pctx = context }

let repr_of_prepared p = p.prepr

(* IDF of the rarer of the two matched values *)
let idf_weight context va vb =
  match context with
  | None -> 1.0
  | Some ctx ->
      let d = min (df_of ctx va) (df_of ctx vb) in
      log (1.0 +. (float_of_int (max 1 ctx.n_objects) /. float_of_int d))

(* anchors must be rare AND distinctive: identifier-shaped (contains a
   digit, like accessions and gene symbols) or substantial text — never a
   short categorical token that happens to have low frequency, never a
   sequence *)
let anchor_match ctx ~name_sim ~vs va vb =
  vs >= 0.85 && name_sim > 0.0
  && min (df_of ctx va) (df_of ctx vb) <= identity_df_cap ctx
  && String.length va >= 4
  && (String.exists (fun c -> c >= '0' && c <= '9') va || String.length va >= 25)
  && (not (Field_sim.is_sequence_value va))
  && not (Field_sim.is_sequence_value vb)

(* HOT-PATH-BEGIN: per-candidate-pair code. Everything below runs once per
   candidate pair inside the duplicate-detection fan-out; value
   normalization, tokenization, sequence detection and df lookups must all
   come from the [prepare]d fields, never be recomputed here (enforced by
   a grep-gate in scripts/check.sh). *)

let idf_weight_p context (fa : pfield) (fb : pfield) =
  match context with
  | None -> 1.0
  | Some ctx ->
      let d = min fa.dfv fb.dfv in
      log (1.0 +. (float_of_int (max 1 ctx.n_objects) /. float_of_int d))

let anchor_match_p ctx ~name_sim ~vs (fa : pfield) (fb : pfield) =
  vs >= 0.85 && name_sim > 0.0
  && min fa.dfv fb.dfv <= identity_df_cap ctx
  && fa.anchor_shape
  && not fb.seq_raw

(* greedy best-counterpart matching, smaller object driving; returns
   (field of a, field of b, value similarity) in a-field order *)
let field_matches_prepared a b =
  let smaller, larger =
    if Array.length a.pfields <= Array.length b.pfields then (a, b) else (b, a)
  in
  let swapped = smaller != a in
  let out = ref [] in
  Array.iter
    (fun (fs : pfield) ->
      let best =
        Array.fold_left
          (fun acc (fl : pfield) ->
            let vs = Field_sim.similarity_prepared fs.pv fl.pv in
            match acc with
            | Some (_, best_vs) when best_vs >= vs -> acc
            | Some _ | None -> Some (fl, vs))
          None larger.pfields
      in
      match best with
      | None -> ()
      | Some (fl, vs) ->
          out := (if swapped then (fl, fs, vs) else (fs, fl, vs)) :: !out)
    smaller.pfields;
  List.rev !out

let similarity_prepared ?(weights = default_weights) a b =
  if Array.length a.pfields = 0 || Array.length b.pfields = 0 then 0.0
  else begin
    let context = a.pctx in
    (* Fellegi-Sunter flavour: agreement on a rare value is strong evidence,
       disagreement is weak evidence either way; and a true duplicate must
       agree on at least one identifying (near-unique) value. The greedy
       matching is fused into the scoring loop — no per-pair match list is
       materialized on this path. *)
    let smaller, larger =
      if Array.length a.pfields <= Array.length b.pfields then (a, b) else (b, a)
    in
    let swapped = smaller != a in
    let identity_agreement = ref false in
    (* float-array cells, not float refs: every [:=] on a float ref boxes
       (no flambda), and this loop runs per candidate pair *)
    let acc = [| 0.0; 0.0; 0.0 |] in
    (* acc.(0) = total, acc.(1) = wsum, acc.(2) = best vs of current fs *)
    let nl = Array.length larger.pfields in
    Array.iter
      (fun (fs : pfield) ->
        let best_i = ref (-1) in
        acc.(2) <- neg_infinity;
        for l = 0 to nl - 1 do
          let vs = Field_sim.similarity_prepared fs.pv larger.pfields.(l).pv in
          if vs > acc.(2) then begin
            acc.(2) <- vs;
            best_i := l
          end
        done;
        if !best_i >= 0 then begin
          let fl = larger.pfields.(!best_i) and vs = acc.(2) in
          let fa, fb = if swapped then (fl, fs) else (fs, fl) in
            let name_sim =
              Field_sim.name_affinity_tokens fa.name_toks fb.name_toks
            in
            let s = (weights.w_value *. vs) +. (weights.w_name *. name_sim) in
            (* a greedy value match between unrelated attributes (an accession
               landing on "bait") must not be amplified as evidence *)
            let w =
              if vs >= 0.6 && name_sim > 0.0 then idf_weight_p context fa fb
              else 1.0
            in
            (match context with
            | Some ctx when anchor_match_p ctx ~name_sim ~vs fa fb ->
                identity_agreement := true
            | Some _ | None -> ());
            acc.(0) <- acc.(0) +. (w *. s);
            acc.(1) <- acc.(1) +. w
        end)
      smaller.pfields;
    if acc.(1) = 0.0 then 0.0
    else begin
      let base = acc.(0) /. acc.(1) /. (weights.w_value +. weights.w_name) in
      match context with
      | Some _ when not !identity_agreement -> base *. 0.5
      | Some _ | None -> base
    end
  end

(* HOT-PATH-END *)

let field_matches a b =
  field_matches_prepared (prepare a) (prepare b)
  |> List.map (fun ((fa : pfield), (fb : pfield), vs) ->
         (fa.attr, fa.value, fb.attr, fb.value, vs))

let similarity ?weights ?context a b =
  similarity_prepared ?weights (prepare ?context a) (prepare ?context b)

let explain ?(weights = default_weights) ?context a b =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "%s vs %s\n" (Objref.to_string a.obj) (Objref.to_string b.obj);
  List.iter
    (fun (attr_a, va, attr_b, vb, vs) ->
      let name_sim = Field_sim.name_affinity attr_a attr_b in
      let w =
        if vs >= 0.6 && name_sim > 0.0 then idf_weight context va vb else 1.0
      in
      let anchor =
        match context with
        | Some ctx -> anchor_match ctx ~name_sim ~vs va vb
        | None -> false
      in
      let df_str =
        match context with
        | Some ctx -> string_of_int (min (df_of ctx va) (df_of ctx vb))
        | None -> "-"
      in
      let clip s = if String.length s > 30 then String.sub s 0 27 ^ "..." else s in
      add "  vs=%.2f name=%.2f w=%.2f df=%s%s  %s=%S ~ %s=%S\n" vs name_sim w
        df_str
        (if anchor then " ANCHOR" else "")
        attr_a (clip va) attr_b (clip vb))
    (field_matches a b);
  add "similarity = %.3f\n" (similarity ~weights ?context a b);
  Buffer.contents buf
