(** Implicit links from sequence homology (§4.4, second kind of link).

    Sequence fields are detected by their fixed alphabet; values are
    indexed per alphabet and similar pairs become [Seq_similarity] links
    between the owning primary objects. *)

type params = {
  min_normalized : float;  (** alignment score threshold (default 0.5) *)
  min_seq_len : int;  (** ignore shorter values (default 20) *)
  cross_source_only : bool;  (** default true *)
  sample_for_detection : int;  (** values sampled to classify a column (default 50) *)
}

val default_params : params

type seq_field = {
  source : string;
  relation : string;
  attribute : string;
  kind : Aladin_seq.Alphabet.kind;
}

val sequence_fields : params -> Profile_list.t -> seq_field list
(** All attributes detected as sequence fields. *)

type result = {
  links : Link.t list;
  fields : seq_field list;
  sequences_indexed : int;
  pairs_verified : int;
}

val discover :
  ?params:params -> ?pool:Aladin_par.Pool.t -> Profile_list.t -> result
(** With a [pool] the all-pairs homology search fans out across domains;
    the result is identical to the sequential run. *)

(** {2 Incremental discovery}

    Sequence comparison dominates integration cost, so the warehouse keeps a
    persistent homology index: adding a source only aligns the NEW
    sequences against everything indexed so far (§6.2: statistics and
    indexes are "computed only once for each data source and can then be
    reused for subsequently added data sources"). *)

type state

val state_create : ?params:params -> unit -> state

val state_sources : state -> string list

val state_add_source :
  ?pool:Aladin_par.Pool.t -> state -> Profile_list.t -> source:string -> Link.t list
(** Index the named source's sequence fields; returns the NEW links (new
    vs. indexed, and new vs. new). The profile list must contain every
    source indexed so far plus the new one. With a [pool] the new-vs-indexed
    searches fan out (the persistent index is read-only during the fan-out;
    new-vs-new stays sequential), with identical results and counters.
    @raise Invalid_argument when the source is already indexed. *)

val state_links : state -> Link.t list
(** All links accumulated so far (deduplicated). *)

val state_index_source : state -> Profile_list.t -> source:string -> unit
(** Resume fast path: index the source's sequences WITHOUT searching —
    for sources restored from a committed checkpoint, whose links are
    already known. Must be called in the original integration order and
    paired with {!state_seed_links}; the rebuilt index is then
    byte-for-byte what the killed run had.
    @raise Invalid_argument when the source is already indexed. *)

val state_seed_links : state -> Link.t list -> unit
(** Merge checkpoint-restored links into the accumulated set
    (deduplicated, canonical order — same as if discovered live). *)

val discover_between :
  ?params:params ->
  ?pool:Aladin_par.Pool.t ->
  Profile_list.t ->
  a:string ->
  b:string ->
  result
(** Batch {!discover} restricted to the canonically ordered source pair
    [(a, b)] — the delta pipeline's non-incremental fallback when the
    persistent index is disabled. Alignment scores depend only on the
    two sequences, so the union over pairs equals the global all-pairs
    run. Symmetric in [a]/[b]. *)
