open Aladin_relational
open Aladin_discovery

type params = {
  prune : Prune.params;
  min_matches : int;
  min_match_frac : float;
}

let default_params =
  { prune = Prune.default_params; min_matches = 2; min_match_frac = 0.02 }

type correspondence = {
  src_source : string;
  src_relation : string;
  src_attribute : string;
  dst_source : string;
  dst_relation : string;
  dst_attribute : string;
  matches : int;
  match_frac : float;
  encoded : bool;
}

type result = {
  links : Link.t list;
  correspondences : correspondence list;
  attributes_scanned : int;
  pairs_compared : int;
}

let decode_candidates v =
  let split_on seps s =
    let parts = ref [ s ] in
    String.iter
      (fun sep ->
        parts := List.concat_map (String.split_on_char sep) !parts)
      seps;
    !parts
  in
  let tails =
    split_on ":/|=" v |> List.map String.trim |> List.filter (fun s -> s <> "")
  in
  v :: List.filter (fun t -> t <> v) tails

(* one scan of attribute column (src_source, rel, attr) against one target *)
let scan_attribute entry ~src_source ~relation ~attribute
    ~(target : string * string * string) ~target_set params =
  let dst_source, dst_relation, dst_attribute = target in
  let catalog = Profile.catalog (entry : Profile_list.entry).sp.profile in
  let rel = Catalog.find_exn catalog relation in
  let ai = Schema.index_of_exn (Relation.schema rel) attribute in
  let matches = ref 0 in
  let encoded_matches = ref 0 in
  let nonnull = ref 0 in
  let links = ref [] in
  Relation.iteri_rows
    (fun row_i row ->
      let v = row.(ai) in
      if not (Value.is_null v) then begin
        incr nonnull;
        let s = Value.to_string v in
        let hit =
          let rec try_tokens first = function
            | [] -> None
            | tok :: rest ->
                if Hashtbl.mem target_set tok then Some (tok, not first)
                else try_tokens false rest
          in
          try_tokens true (decode_candidates s)
        in
        match hit with
        | None -> ()
        | Some (acc, was_encoded) ->
            incr matches;
            if was_encoded then incr encoded_matches;
            let dst =
              Objref.make ~source:dst_source ~relation:dst_relation ~accession:acc
            in
            let srcs =
              Owner_map.object_of_row entry.owner ~relation ~row:row_i
            in
            List.iter
              (fun src ->
                if not (Objref.equal src dst) then
                  links :=
                    Link.make ~src ~dst ~kind:Link.Xref
                      ~confidence:(if was_encoded then 0.85 else 0.9)
                      ~evidence:
                        (Printf.sprintf "%s.%s.%s=%s" src_source relation
                           attribute s)
                    :: !links)
              srcs
      end)
    rel;
  let match_frac =
    if !nonnull = 0 then 0.0 else float_of_int !matches /. float_of_int !nonnull
  in
  if !matches >= params.min_matches && match_frac >= params.min_match_frac then
    Some
      ( !links,
        {
          src_source;
          src_relation = relation;
          src_attribute = attribute;
          dst_source;
          dst_relation;
          dst_attribute;
          matches = !matches;
          match_frac;
          encoded = !encoded_matches > 0;
        } )
  else None

let discover ?(params = default_params) ?pool profiles =
  let targets = Profile_list.targets profiles in
  (* accession string set per target *)
  let target_sets =
    List.map
      (fun ((source, _, _) as tgt) ->
        let set = Hashtbl.create 256 in
        (match Profile_list.find profiles source with
        | Some e ->
            List.iter
              (fun acc -> Hashtbl.replace set acc ())
              (Owner_map.primary_accessions e.owner)
        | None -> ());
        (tgt, set))
      targets
  in
  (* sequential enumeration pass: collect attribute x target scan tasks in
     traversal order (and count/prune here, so those counters keep their
     exact sequential values); the scans themselves fan out below *)
  let tasks = ref [] in
  let attributes_scanned = ref 0 in
  let pairs_compared = ref 0 in
  List.iter
    (fun (e : Profile_list.entry) ->
      let src_source = Source_profile.source e.sp in
      let own_primary = Source_profile.primary_accession e.sp in
      Profile.all_stats e.sp.profile
      |> List.iter (fun (cs : Col_stats.t) ->
             let is_own_accession =
               match own_primary with
               | Some (r, a) ->
                   String.lowercase_ascii r = String.lowercase_ascii cs.relation
                   && String.lowercase_ascii a = String.lowercase_ascii cs.attribute
               | None -> false
             in
             if Prune.is_link_source params.prune cs && not is_own_accession
             then begin
               incr attributes_scanned;
               List.iter
                 (fun (((tgt_source, _, _) as tgt), target_set) ->
                   if tgt_source <> src_source then begin
                     incr pairs_compared;
                     tasks := (e, src_source, cs, tgt, target_set) :: !tasks
                   end)
                 target_sets
             end
             else Aladin_obs.Trace.ambient_incr "xref.attributes_pruned"))
    (Profile_list.entries profiles);
  let scan (e, src_source, (cs : Col_stats.t), tgt, target_set) =
    let hit, secs =
      Aladin_obs.Clock.timed (fun () ->
          scan_attribute e ~src_source ~relation:cs.relation
            ~attribute:cs.attribute ~target:tgt ~target_set params)
    in
    Aladin_obs.Trace.ambient_observe "xref.scan_seconds" secs;
    hit
  in
  let hits = Aladin_par.Pool.map ?pool scan (List.rev !tasks) in
  let links = List.concat_map (function Some (ls, _) -> ls | None -> []) hits in
  {
    links = Link.dedup links;
    correspondences = List.filter_map (Option.map snd) hits;
    attributes_scanned = !attributes_scanned;
    pairs_compared = !pairs_compared;
  }
