open Aladin_relational
open Aladin_discovery

type params = {
  prune : Prune.params;
  min_matches : int;
  min_match_frac : float;
}

let default_params =
  { prune = Prune.default_params; min_matches = 2; min_match_frac = 0.02 }

type correspondence = {
  src_source : string;
  src_relation : string;
  src_attribute : string;
  dst_source : string;
  dst_relation : string;
  dst_attribute : string;
  matches : int;
  match_frac : float;
  encoded : bool;
}

type result = {
  links : Link.t list;
  correspondences : correspondence list;
  attributes_scanned : int;
  pairs_compared : int;
}

let is_decode_sep c = c = ':' || c = '/' || c = '|' || c = '='

let decode_candidates v =
  (* fast path: most values carry no separator, so the common case must
     not pay the four-pass split below (per-row allocation was a real
     contributor to multi-domain GC pressure in the xref fan-out) *)
  if not (String.exists is_decode_sep v) then begin
    let t = String.trim v in
    if t = "" || t = v then [ v ] else [ v; t ]
  end
  else begin
    let split_on seps s =
      let parts = ref [ s ] in
      String.iter
        (fun sep ->
          parts := List.concat_map (String.split_on_char sep) !parts)
        seps;
      !parts
    in
    let tails =
      split_on ":/|=" v |> List.map String.trim |> List.filter (fun s -> s <> "")
    in
    v :: List.filter (fun t -> t <> v) tails
  end

(* per-target accumulation state while scanning one attribute column *)
type target_scan = {
  tgt : string * string * string;
  target_set : (string, unit) Hashtbl.t;
  mutable matches : int;
  mutable encoded_matches : int;
  mutable links : Link.t list;
}

(* One scan of attribute column (src_source, rel, attr) against ALL its
   targets at once: each row's value is decoded exactly once and probed
   against every target set, instead of rescanning (and re-decoding) the
   whole column per target. Results come back per target, in target
   order, identical to the one-target-at-a-time scans. *)
let scan_attribute entry ~src_source ~relation ~attribute ~targets params =
  let catalog = Profile.catalog (entry : Profile_list.entry).sp.profile in
  let rel = Catalog.find_exn catalog relation in
  let ai = Schema.index_of_exn (Relation.schema rel) attribute in
  let states =
    List.map
      (fun (tgt, target_set) ->
        { tgt; target_set; matches = 0; encoded_matches = 0; links = [] })
      targets
  in
  let nonnull = ref 0 in
  Relation.iteri_rows
    (fun row_i row ->
      let v = row.(ai) in
      if not (Value.is_null v) then begin
        incr nonnull;
        let s = Value.to_string v in
        let cands = decode_candidates s in
        (* the owning objects are shared across targets; resolve lazily so
           rows that hit no target pay nothing *)
        let srcs = ref None in
        List.iter
          (fun st ->
            let hit =
              let rec try_tokens first = function
                | [] -> None
                | tok :: rest ->
                    if Hashtbl.mem st.target_set tok then Some (tok, not first)
                    else try_tokens false rest
              in
              try_tokens true cands
            in
            match hit with
            | None -> ()
            | Some (acc, was_encoded) ->
                st.matches <- st.matches + 1;
                if was_encoded then st.encoded_matches <- st.encoded_matches + 1;
                let dst_source, dst_relation, _ = st.tgt in
                let dst =
                  Objref.make ~source:dst_source ~relation:dst_relation
                    ~accession:acc
                in
                let owners =
                  match !srcs with
                  | Some os -> os
                  | None ->
                      let os =
                        Owner_map.object_of_row entry.owner ~relation ~row:row_i
                      in
                      srcs := Some os;
                      os
                in
                List.iter
                  (fun src ->
                    if not (Objref.equal src dst) then
                      st.links <-
                        Link.make ~src ~dst ~kind:Link.Xref
                          ~confidence:(if was_encoded then 0.85 else 0.9)
                          ~evidence:
                            (Printf.sprintf "%s.%s.%s=%s" src_source relation
                               attribute s)
                        :: st.links)
                  owners)
          states
      end)
    rel;
  List.filter_map
    (fun st ->
      let match_frac =
        if !nonnull = 0 then 0.0
        else float_of_int st.matches /. float_of_int !nonnull
      in
      if st.matches >= params.min_matches && match_frac >= params.min_match_frac
      then begin
        let dst_source, dst_relation, dst_attribute = st.tgt in
        Some
          ( st.links,
            {
              src_source;
              src_relation = relation;
              src_attribute = attribute;
              dst_source;
              dst_relation;
              dst_attribute;
              matches = st.matches;
              match_frac;
              encoded = st.encoded_matches > 0;
            } )
      end
      else None)
    states

let discover ?(params = default_params) ?pool profiles =
  let targets = Profile_list.targets profiles in
  (* accession string set per target *)
  let target_sets =
    List.map
      (fun ((source, _, _) as tgt) ->
        let set = Hashtbl.create 256 in
        (match Profile_list.find profiles source with
        | Some e ->
            List.iter
              (fun acc -> Hashtbl.replace set acc ())
              (Owner_map.primary_accessions e.owner)
        | None -> ());
        (tgt, set))
      targets
  in
  (* sequential enumeration pass: collect one scan task per attribute (all
     its targets together) in traversal order (and count/prune here, so
     those counters keep their exact sequential values); the scans
     themselves fan out below *)
  let tasks = ref [] in
  let attributes_scanned = ref 0 in
  let pairs_compared = ref 0 in
  List.iter
    (fun (e : Profile_list.entry) ->
      let src_source = Source_profile.source e.sp in
      let own_primary = Source_profile.primary_accession e.sp in
      Profile.all_stats e.sp.profile
      |> List.iter (fun (cs : Col_stats.t) ->
             let is_own_accession =
               match own_primary with
               | Some (r, a) ->
                   String.lowercase_ascii r = String.lowercase_ascii cs.relation
                   && String.lowercase_ascii a = String.lowercase_ascii cs.attribute
               | None -> false
             in
             if Prune.is_link_source params.prune cs && not is_own_accession
             then begin
               incr attributes_scanned;
               let tgts =
                 List.filter
                   (fun ((tgt_source, _, _), _) -> tgt_source <> src_source)
                   target_sets
               in
               pairs_compared := !pairs_compared + List.length tgts;
               if tgts <> [] then tasks := (e, src_source, cs, tgts) :: !tasks
             end
             else Aladin_obs.Trace.ambient_incr "xref.attributes_pruned"))
    (Profile_list.entries profiles);
  let scan (e, src_source, (cs : Col_stats.t), tgts) =
    let hits, secs =
      Aladin_obs.Clock.timed (fun () ->
          scan_attribute e ~src_source ~relation:cs.relation
            ~attribute:cs.attribute ~targets:tgts params)
    in
    Aladin_obs.Trace.ambient_observe "xref.scan_seconds" secs;
    hits
  in
  let hits = List.concat (Aladin_par.Pool.map ?pool scan (List.rev !tasks)) in
  let links = List.concat_map fst hits in
  {
    links = Link.dedup links;
    correspondences = List.map snd hits;
    attributes_scanned = !attributes_scanned;
    pairs_compared = !pairs_compared;
  }

(* Pairwise entry point for the delta pipeline: the cross-reference scan
   restricted to one source pair. Because the global scan only ever
   matches an attribute against OTHER sources' target sets and scores
   each (attribute, target) independently, the global result is exactly
   the union of the per-pair results — restricting the profile list to
   the canonically ordered pair IS the pairwise pass. *)
let discover_between ?params ?pool profiles ~a ~b =
  let lo, hi = if String.compare a b <= 0 then (a, b) else (b, a) in
  (* a self pair restricts to the single source once, not twice *)
  let names = if lo = hi then [ lo ] else [ lo; hi ] in
  discover ?params ?pool (Profile_list.restrict profiles names)
