(** Implicit links from text similarity and from entity mentions (§4.4).

    Every primary object gets a document assembled from the text fields of
    the rows it owns; TF-IDF cosine above a threshold links two objects.
    Additionally, gene/protein-style names recognized inside text fields
    are matched against the name-like unique attributes of other sources'
    primary relations ([Entity_mention] links). *)

type params = {
  min_cosine : float;  (** default 0.5 *)
  cross_source_only : bool;  (** default true *)
  mention_min_score : float;  (** kept for configuration compatibility;
                                  linking only ever keeps dictionary
                                  matches (which score 1.0), so the
                                  recognizer's surface-shape threshold
                                  never affected the links and the pass
                                  now computes dictionary hits directly *)
}

val default_params : params

type result = {
  links : Link.t list;
  documents : int;
  mention_links : int;
}

val object_documents : Profile_list.t -> (Objref.t * string) list
(** The assembled per-object documents (exposed for search indexing and
    tests). Sequence-shaped fields are excluded. *)

val discover :
  ?params:params -> ?pool:Aladin_par.Pool.t -> Profile_list.t -> result
(** The cosine candidate join runs over {!Aladin_text.Tfidf.prepare}d
    vectors (built once, before any fan-out) and is sharded across the
    pool by query-document range; entity-mention recognition fans out per
    document. Per-shard accumulators are merged deterministically at the
    join, so the result is byte-identical at any pool size. *)

val discover_between :
  ?params:params ->
  ?pool:Aladin_par.Pool.t ->
  Profile_list.t ->
  a:string ->
  b:string ->
  result
(** {!discover} restricted to the canonically ordered source pair
    [(a, b)] — the delta pipeline's unit of work. The tf-idf corpus and
    the mention dictionary are pair-local, so a pair's links are a pure
    function of the two sources' contents (order-independent); this
    refines the old global-corpus semantics, whose weights shifted with
    every unrelated source. Symmetric in [a]/[b]. *)
