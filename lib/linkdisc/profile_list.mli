(** The set of analyzed sources link discovery works over: each source's
    {!Aladin_discovery.Source_profile.t} paired with its {!Owner_map.t}. *)

open Aladin_discovery

type entry = { sp : Source_profile.t; owner : Owner_map.t }

type t

val of_profiles : Source_profile.t list -> t

val empty : t

val add : t -> Source_profile.t -> t
(** Append one analyzed source (owner map built once here); an existing
    entry with the same source name is replaced. *)

val remove : t -> string -> t

val entries : t -> entry list

val sources : t -> string list

val find : t -> string -> entry option
(** By source name. *)

val size : t -> int

val restrict : t -> string list -> t
(** The sub-list holding exactly the named sources, in the order of
    [names] (unknown names are skipped). Entries are shared with the
    original — no owner map is rebuilt — so restricting to a canonical
    source pair is how the delta pipeline runs a pairwise pass. *)

val targets : t -> (string * string * string) list
(** Possible link targets: "cross-references always point to primary
    objects in other databases" (§3) — (source, relation, accession
    attribute) of every discovered primary relation. *)
