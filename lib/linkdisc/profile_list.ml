open Aladin_discovery

type entry = { sp : Source_profile.t; owner : Owner_map.t }

type t = entry list

let of_profiles sps =
  List.map (fun sp -> { sp; owner = Owner_map.build sp }) sps

let empty = []

let remove t name =
  List.filter (fun e -> Source_profile.source e.sp <> name) t

let add t sp =
  remove t (Source_profile.source sp) @ [ { sp; owner = Owner_map.build sp } ]

let entries t = t

let sources t = List.map (fun e -> Source_profile.source e.sp) t

let find t name =
  List.find_opt (fun e -> Source_profile.source e.sp = name) t

let size t = List.length t

let restrict t names =
  (* entries (and their owner maps) are reused, never rebuilt; the result
     follows the order of [names], so a caller restricting to a sorted
     source pair gets the same list whatever order the warehouse holds
     the sources in *)
  List.filter_map (find t) names

let targets t =
  List.filter_map
    (fun e ->
      Option.map
        (fun (rel, attr) -> (Source_profile.source e.sp, rel, attr))
        (Source_profile.primary_accession e.sp))
    t
