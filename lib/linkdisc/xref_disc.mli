(** Explicit cross-reference discovery (§4.4, first kind of link).

    Cross-reference values are matched against the accession value set of
    every other source's primary relation. Both bare accessions
    ("P11140") and encoded forms ("Uniprot:P11140") are found — "matching
    the values of DBRef.accession against all unique fields of primary
    relations automatically finds the correct target database" (§5). *)


type params = {
  prune : Prune.params;
  min_matches : int;  (** rows that must match before an attribute counts
                          as a cross-reference attribute (default 2) *)
  min_match_frac : float;  (** of the attribute's non-null rows (default 0.02) *)
}

val default_params : params

type correspondence = {
  src_source : string;
  src_relation : string;
  src_attribute : string;
  dst_source : string;
  dst_relation : string;
  dst_attribute : string;
  matches : int;
  match_frac : float;
  encoded : bool;  (** true when matches came from DB:ACC-style encodings *)
}

type result = {
  links : Link.t list;
  correspondences : correspondence list;
  attributes_scanned : int;
  pairs_compared : int;
}

val decode_candidates : string -> string list
(** Tokens of an encoded cross-reference value worth matching: the value
    itself plus alphanumeric segments after ':' '/' '|' and '=' splits. *)

val discover :
  ?params:params -> ?pool:Aladin_par.Pool.t -> Profile_list.t -> result
(** With a [pool] the attribute x target scans fan out across domains;
    links, correspondences and counters are identical to the sequential
    run (link order is made canonical by {!Link.dedup}). *)

val discover_between :
  ?params:params ->
  ?pool:Aladin_par.Pool.t ->
  Profile_list.t ->
  a:string ->
  b:string ->
  result
(** {!discover} restricted to the canonically ordered source pair
    [(a, b)] — the delta pipeline's unit of work. The xref scan is
    strictly cross-source and scores each (attribute, target)
    independently, so the union of the per-pair results over all pairs
    equals the whole-warehouse run. Symmetric in [a]/[b]. *)
