(** Step-4 orchestration: run every link-discovery technique over the
    analyzed sources and merge the results.

    Each pass runs inside its own {!Aladin_resilience.Boundary}: a pass
    that crashes or exceeds its wall-clock budget loses only its own
    links, and the outcome lands in {!report.passes} for the warehouse
    run report. *)

type params = {
  xref : Xref_disc.params;
  seq : Seq_links.params;
  text : Text_links.params;
  onto : Onto_links.params;
  enable_xref : bool;
  enable_seq : bool;
  enable_text : bool;
  enable_onto : bool;
}

val default_params : params

type pass_budgets = {
  xref_budget : float option;
  seq_budget : float option;
  text_budget : float option;
  onto_budget : float option;
}
(** Wall-clock budget in seconds per pass; [None] = unlimited, [0] =
    skip the pass before it touches any data (the other passes' output
    is then byte-identical to a run without it). *)

val no_pass_budgets : pass_budgets

type report = {
  links : Link.t list;  (** deduplicated, all kinds *)
  xref_result : Xref_disc.result option;
  seq_result : Seq_links.result option;
  text_result : Text_links.result option;
  onto_result : Onto_links.result option;
  passes : Aladin_resilience.Run_report.step_report list;
      (** one entry per pass (xref, seq, text, onto) in run order:
          [Ok], [Skipped Disabled], [Skipped Budget_zero],
          [Skipped (Budget_exhausted _)] or [Failed (Crashed _)] *)
}

val discover :
  ?params:params ->
  ?pool:Aladin_par.Pool.t ->
  ?budgets:pass_budgets ->
  Profile_list.t ->
  report
(** The pool (if any) is handed to the xref, seq and text passes (the
    text pass shards its prepared-corpus candidate join by query-document
    range); the onto pass stays sequential. Never raises: a failing pass
    is reported in [passes] and contributes no links. *)

val count_by_kind : Link.t list -> (Link.kind * int) list
