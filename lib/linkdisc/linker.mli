(** Step-4 orchestration: run every link-discovery technique over the
    analyzed sources and merge the results. *)

type params = {
  xref : Xref_disc.params;
  seq : Seq_links.params;
  text : Text_links.params;
  onto : Onto_links.params;
  enable_xref : bool;
  enable_seq : bool;
  enable_text : bool;
  enable_onto : bool;
}

val default_params : params

type report = {
  links : Link.t list;  (** deduplicated, all kinds *)
  xref_result : Xref_disc.result option;
  seq_result : Seq_links.result option;
  text_result : Text_links.result option;
  onto_result : Onto_links.result option;
}

val discover : ?params:params -> ?pool:Aladin_par.Pool.t -> Profile_list.t -> report
(** The pool (if any) is handed to the xref and seq passes, the two
    quadratic ones; text and onto passes stay sequential. *)

val count_by_kind : Link.t list -> (Link.kind * int) list
