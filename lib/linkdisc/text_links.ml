open Aladin_relational
open Aladin_discovery
module Tx = Aladin_text
module Sq = Aladin_seq
module Pool = Aladin_par.Pool

type params = {
  min_cosine : float;
  cross_source_only : bool;
  mention_min_score : float;
}

let default_params =
  { min_cosine = 0.5; cross_source_only = true; mention_min_score = 1.0 }

type result = {
  links : Link.t list;
  documents : int;
  mention_links : int;
}

let is_sequence_value s =
  Sq.Alphabet.classify ~min_len:20 s <> None

(* concatenated text fields per owning primary object *)
let object_documents profiles =
  let docs : (string, Buffer.t) Hashtbl.t = Hashtbl.create 256 in
  let refs : (string, Objref.t) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (e : Profile_list.entry) ->
      let catalog = Profile.catalog e.sp.profile in
      Profile.all_stats e.sp.profile
      |> List.iter (fun (cs : Col_stats.t) ->
             if Prune.is_text_field cs then begin
               let rel = Catalog.find_exn catalog cs.relation in
               let ai = Schema.index_of_exn (Relation.schema rel) cs.attribute in
               Relation.iteri_rows
                 (fun row_i row ->
                   let v = row.(ai) in
                   if not (Value.is_null v) then begin
                     let s = Value.to_string v in
                     if not (is_sequence_value s) then
                       List.iter
                         (fun obj ->
                           let key = Objref.to_string obj in
                           let buf =
                             match Hashtbl.find_opt docs key with
                             | Some b -> b
                             | None ->
                                 let b = Buffer.create 128 in
                                 Hashtbl.add docs key b;
                                 Hashtbl.replace refs key obj;
                                 b
                           in
                           Buffer.add_string buf s;
                           Buffer.add_char buf ' ')
                         (Owner_map.object_of_row e.owner ~relation:cs.relation
                            ~row:row_i)
                   end)
                 rel
             end))
    (Profile_list.entries profiles);
  Hashtbl.fold
    (fun key buf acc -> (Hashtbl.find refs key, Buffer.contents buf) :: acc)
    docs []
  |> List.sort (fun (a, _) (b, _) -> Objref.compare a b)

(* name-like attribute: short unique text on the primary relation *)
let name_dictionary profiles =
  let dict : (string, Objref.t) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (e : Profile_list.entry) ->
      match Source_profile.primary_accession e.sp with
      | None -> ()
      | Some (prel, pattr) ->
          let catalog = Profile.catalog e.sp.profile in
          let source = Source_profile.source e.sp in
          let rel = Catalog.find_exn catalog prel in
          let schema = Relation.schema rel in
          Schema.names schema
          |> List.iter (fun attr ->
                 if String.lowercase_ascii attr <> String.lowercase_ascii pattr
                 then begin
                   let cs = Profile.stats e.sp.profile ~relation:prel ~attribute:attr in
                   let name_like =
                     cs.all_unique && cs.avg_len >= 3.0 && cs.avg_len <= 25.0
                     && cs.alpha_frac >= 0.9 && cs.numeric_frac < 0.5
                   in
                   if name_like then begin
                     let ai = Schema.index_of_exn schema attr in
                     let acc_i = Schema.index_of_exn schema pattr in
                     Relation.iter_rows
                       (fun row ->
                         let v = row.(ai) in
                         if (not (Value.is_null v)) && Value.length v >= 3 then
                           Hashtbl.replace dict
                             (String.lowercase_ascii (Value.to_string v))
                             (Objref.make ~source ~relation:prel
                                ~accession:(Value.to_string row.(acc_i))))
                       rel
                   end
                 end))
    (Profile_list.entries profiles);
  dict

(* contiguous [lo, hi) index ranges of near-equal size covering [0, n) *)
let ranges_of nshards n =
  if n = 0 then []
  else begin
    let nshards = max 1 nshards in
    let per = (n + nshards - 1) / nshards in
    let rec go lo acc =
      if lo >= n then List.rev acc
      else go (lo + per) ((lo, min n (lo + per)) :: acc)
    in
    go 0 []
  end

let discover ?(params = default_params) ?pool profiles =
  let documents = object_documents profiles in
  let corpus = Tx.Tfidf.corpus_create () in
  let by_id : (string, Objref.t) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (obj, doc) ->
      let id = Objref.to_string obj in
      Hashtbl.replace by_id id obj;
      Tx.Tfidf.corpus_add corpus ~doc_id:id doc)
    documents;
  (* cosine-similarity links: the candidate join over the prepared corpus,
     sharded across the pool by query-document range. The prepared arrays
     are built once, before the fan-out, and are read-only inside it; each
     shard accumulates its own pairs and the shards are concatenated in
     range order, which is exactly ascending (i, j) order whatever the
     pool size — every pair is owned by its smaller document index. *)
  let prep = Tx.Tfidf.prepare corpus in
  let ndocs = Tx.Tfidf.prepared_docs prep in
  let nshards = match pool with None -> 1 | Some p -> max 1 (Pool.size p * 4) in
  let pair_shards =
    Pool.map ?pool
      (fun (lo, hi) ->
        Tx.Tfidf.similar_pairs_range prep ~lo ~hi ~min_sim:params.min_cosine)
      (ranges_of nshards ndocs)
  in
  let links = ref [] in
  List.iter
    (List.iter (fun (ida, idb, sim) ->
         match (Hashtbl.find_opt by_id ida, Hashtbl.find_opt by_id idb) with
         | Some obj, Some other ->
             if
               (not params.cross_source_only)
               || obj.Objref.source <> other.Objref.source
             then
               links :=
                 Link.make ~src:obj ~dst:other ~kind:Link.Text_similarity
                   ~confidence:sim
                   ~evidence:(Printf.sprintf "tfidf cosine=%.2f" sim)
                 :: !links
         | _ -> ()))
    pair_shards;
  (* entity-mention links: only dictionary hits are ever computed (the
     recognizer's surface heuristics would be discarded at the lookup
     below anyway); recognition fans out per document, dictionary tables
     read-only, results merged in document order *)
  let dict = name_dictionary profiles in
  let recognizer = Tx.Entity_recog.create () in
  Tx.Entity_recog.add_dictionary recognizer
    (Hashtbl.fold (fun name _ acc -> name :: acc) dict []);
  let mention_shards =
    Pool.map ?pool
      (fun (obj, doc) ->
        Tx.Entity_recog.recognize_dictionary recognizer doc
        |> List.filter_map (fun (m : Tx.Entity_recog.mention) ->
               match Hashtbl.find_opt dict (String.lowercase_ascii m.surface) with
               | None -> None
               | Some target ->
                   let cross =
                     (not params.cross_source_only)
                     || obj.Objref.source <> target.Objref.source
                   in
                   if cross && not (Objref.equal obj target) then
                     Some
                       (Link.make ~src:obj ~dst:target ~kind:Link.Entity_mention
                          ~confidence:(0.6 *. m.score)
                          ~evidence:(Printf.sprintf "mention %S" m.surface))
                   else None))
      documents
  in
  let mention_links =
    List.fold_left (fun acc ls -> acc + List.length ls) 0 mention_shards
  in
  { links = Link.dedup (List.concat (!links :: mention_shards));
    documents = List.length documents;
    mention_links }

(* Pairwise entry point for the delta pipeline. The tf-idf corpus, the
   document frequencies and the name dictionary are rebuilt over the two
   sources alone, in canonical (sorted) source order — so a pair's
   result depends only on the pair's contents, never on what else the
   warehouse holds or in what order it was integrated. This is a
   deliberate semantic refinement over the old whole-warehouse pass,
   whose tf-idf weights (and dictionary collisions) shifted whenever an
   unrelated source arrived. *)
let discover_between ?params ?pool profiles ~a ~b =
  let lo, hi = if String.compare a b <= 0 then (a, b) else (b, a) in
  (* a self pair restricts to the single source once, not twice *)
  let names = if lo = hi then [ lo ] else [ lo; hi ] in
  discover ?params ?pool (Profile_list.restrict profiles names)
