module Obs = Aladin_obs

type params = {
  xref : Xref_disc.params;
  seq : Seq_links.params;
  text : Text_links.params;
  onto : Onto_links.params;
  enable_xref : bool;
  enable_seq : bool;
  enable_text : bool;
  enable_onto : bool;
}

let default_params =
  {
    xref = Xref_disc.default_params;
    seq = Seq_links.default_params;
    text = Text_links.default_params;
    onto = Onto_links.default_params;
    enable_xref = true;
    enable_seq = true;
    enable_text = true;
    enable_onto = true;
  }

type report = {
  links : Link.t list;
  xref_result : Xref_disc.result option;
  seq_result : Seq_links.result option;
  text_result : Text_links.result option;
  onto_result : Onto_links.result option;
}

(* each pass is a child span of the ambient "link discovery" span (when the
   orchestrator installed a trace) and feeds the shared pass-latency
   histogram *)
let pass name f =
  let v, secs = Obs.Trace.ambient_span_timed name f in
  Obs.Trace.ambient_observe "linkdisc.pass_seconds" secs;
  v

let discover ?(params = default_params) ?pool profiles =
  let xref_result =
    if params.enable_xref then
      Some
        (pass "xref pass" (fun () ->
             let r = Xref_disc.discover ~params:params.xref ?pool profiles in
             Obs.Trace.ambient_incr ~by:r.attributes_scanned
               "xref.attributes_scanned";
             Obs.Trace.ambient_incr ~by:r.pairs_compared "xref.pairs_compared";
             Obs.Trace.ambient_incr
               ~by:(List.length r.correspondences)
               "xref.correspondences_accepted";
             Obs.Trace.ambient_incr ~by:(List.length r.links) "xref.links";
             r))
    else None
  in
  let seq_result =
    if params.enable_seq then
      Some
        (pass "seq pass" (fun () ->
             let r = Seq_links.discover ~params:params.seq ?pool profiles in
             Obs.Trace.ambient_incr ~by:r.sequences_indexed
               "seq.sequences_indexed";
             Obs.Trace.ambient_incr ~by:r.pairs_verified "seq.pairs_verified";
             Obs.Trace.ambient_incr ~by:(List.length r.links) "seq.links";
             r))
    else None
  in
  let text_result =
    if params.enable_text then
      Some
        (pass "text pass" (fun () ->
             let r = Text_links.discover ~params:params.text profiles in
             Obs.Trace.ambient_incr ~by:r.documents "text.documents";
             Obs.Trace.ambient_incr ~by:(List.length r.links) "text.links";
             r))
    else None
  in
  let xref_links =
    match xref_result with Some r -> r.links | None -> []
  in
  let onto_result =
    if params.enable_onto then
      Some
        (pass "onto pass" (fun () ->
             let parents = Onto_links.parents_from_profiles profiles in
             let r =
               Onto_links.discover ~params:params.onto ~parents
                 ~xrefs:xref_links ()
             in
             Obs.Trace.ambient_incr ~by:r.hub_targets_skipped
               "onto.hub_targets_skipped";
             Obs.Trace.ambient_incr ~by:(List.length r.links) "onto.links";
             r))
    else None
  in
  let links =
    Link.dedup
      (List.concat
         [
           xref_links;
           (match seq_result with Some r -> r.links | None -> []);
           (match text_result with Some r -> r.links | None -> []);
           (match onto_result with Some r -> r.links | None -> []);
         ])
  in
  { links; xref_result; seq_result; text_result; onto_result }

let count_by_kind links =
  let kinds =
    [ Link.Xref; Link.Seq_similarity; Link.Text_similarity; Link.Shared_term;
      Link.Entity_mention; Link.Duplicate ]
  in
  List.filter_map
    (fun k ->
      match List.length (List.filter (fun (l : Link.t) -> l.kind = k) links) with
      | 0 -> None
      | n -> Some (k, n))
    kinds
