module Obs = Aladin_obs
module Res = Aladin_resilience
module Report = Res.Run_report

type params = {
  xref : Xref_disc.params;
  seq : Seq_links.params;
  text : Text_links.params;
  onto : Onto_links.params;
  enable_xref : bool;
  enable_seq : bool;
  enable_text : bool;
  enable_onto : bool;
}

let default_params =
  {
    xref = Xref_disc.default_params;
    seq = Seq_links.default_params;
    text = Text_links.default_params;
    onto = Onto_links.default_params;
    enable_xref = true;
    enable_seq = true;
    enable_text = true;
    enable_onto = true;
  }

type pass_budgets = {
  xref_budget : float option;
  seq_budget : float option;
  text_budget : float option;
  onto_budget : float option;
}

let no_pass_budgets =
  { xref_budget = None; seq_budget = None; text_budget = None; onto_budget = None }

type report = {
  links : Link.t list;
  xref_result : Xref_disc.result option;
  seq_result : Seq_links.result option;
  text_result : Text_links.result option;
  onto_result : Onto_links.result option;
  passes : Report.step_report list;
}

(* each pass is a child span of the ambient "link discovery" span (when
   the orchestrator installed a trace), feeds the shared pass-latency
   histogram, and runs inside its own error boundary: a crashed or
   over-budget pass loses only its own links, never the step. A pass
   with a zero budget is skipped before touching any data, so the other
   passes' output is identical to a run without it. *)
let pass ~enabled ~budget name f =
  if not enabled then (None, Report.step name (Report.Skipped Report.Disabled))
  else
    match budget with
    | Some b when b <= 0.0 ->
        Obs.Trace.ambient_span name
          ~attrs:[ ("status", "skipped") ]
          (fun () -> ());
        ignore b;
        (None, Report.step name (Report.Skipped Report.Budget_zero))
    | _ -> (
        let res, secs =
          Obs.Trace.ambient_span_timed name (fun () ->
              let res = Res.Boundary.protect ~step:name ?budget f in
              Obs.Trace.ambient_add_attr "status" (Res.Boundary.status_of res);
              res)
        in
        Obs.Trace.ambient_observe "linkdisc.pass_seconds" secs;
        match res with
        | Ok v -> (Some v, Report.step ~seconds:secs name Report.Ok)
        | Error (Report.Timeout b) ->
            ( None,
              Report.step ~seconds:secs name
                (Report.Skipped (Report.Budget_exhausted b)) )
        | Error (Report.Crashed _ as e) ->
            (None, Report.step ~seconds:secs name (Report.Failed e)))

let discover ?(params = default_params) ?pool ?(budgets = no_pass_budgets)
    profiles =
  let xref_result, xref_step =
    pass ~enabled:params.enable_xref ~budget:budgets.xref_budget "xref pass"
      (fun () ->
        let r = Xref_disc.discover ~params:params.xref ?pool profiles in
        Obs.Trace.ambient_incr ~by:r.attributes_scanned "xref.attributes_scanned";
        Obs.Trace.ambient_incr ~by:r.pairs_compared "xref.pairs_compared";
        Obs.Trace.ambient_incr
          ~by:(List.length r.correspondences)
          "xref.correspondences_accepted";
        Obs.Trace.ambient_incr ~by:(List.length r.links) "xref.links";
        r)
  in
  let seq_result, seq_step =
    pass ~enabled:params.enable_seq ~budget:budgets.seq_budget "seq pass"
      (fun () ->
        let r = Seq_links.discover ~params:params.seq ?pool profiles in
        Obs.Trace.ambient_incr ~by:r.sequences_indexed "seq.sequences_indexed";
        Obs.Trace.ambient_incr ~by:r.pairs_verified "seq.pairs_verified";
        Obs.Trace.ambient_incr ~by:(List.length r.links) "seq.links";
        r)
  in
  let text_result, text_step =
    pass ~enabled:params.enable_text ~budget:budgets.text_budget "text pass"
      (fun () ->
        let r = Text_links.discover ~params:params.text ?pool profiles in
        Obs.Trace.ambient_incr ~by:r.documents "text.documents";
        Obs.Trace.ambient_incr ~by:(List.length r.links) "text.links";
        r)
  in
  let xref_links = match xref_result with Some r -> r.links | None -> [] in
  let onto_result, onto_step =
    pass ~enabled:params.enable_onto ~budget:budgets.onto_budget "onto pass"
      (fun () ->
        let parents = Onto_links.parents_from_profiles profiles in
        let r =
          Onto_links.discover ~params:params.onto ~parents ~xrefs:xref_links ()
        in
        Obs.Trace.ambient_incr ~by:r.hub_targets_skipped "onto.hub_targets_skipped";
        Obs.Trace.ambient_incr ~by:(List.length r.links) "onto.links";
        r)
  in
  let links =
    Link.dedup
      (List.concat
         [
           xref_links;
           (match seq_result with Some r -> r.links | None -> []);
           (match text_result with Some r -> r.links | None -> []);
           (match onto_result with Some r -> r.links | None -> []);
         ])
  in
  { links; xref_result; seq_result; text_result; onto_result;
    passes = [ xref_step; seq_step; text_step; onto_step ] }

let count_by_kind links =
  let kinds =
    [ Link.Xref; Link.Seq_similarity; Link.Text_similarity; Link.Shared_term;
      Link.Entity_mention; Link.Duplicate ]
  in
  (* one fold over the links, not one full scan per kind *)
  let counts = Array.make (List.length kinds) 0 in
  List.iter
    (fun (l : Link.t) ->
      let r = Link.kind_rank l.kind in
      counts.(r) <- counts.(r) + 1)
    links;
  List.filter_map
    (fun k ->
      match counts.(Link.kind_rank k) with 0 -> None | n -> Some (k, n))
    kinds
