(** Object-level links between primary objects (§4.4, §4.5).

    Links are stored on the object level in the metadata repository "to
    avoid repeated discovery and computation at query time". *)

type kind =
  | Xref  (** explicit cross-reference found in the data *)
  | Seq_similarity  (** sequence homology *)
  | Text_similarity  (** similar description text *)
  | Shared_term  (** both objects reference the same third object *)
  | Entity_mention  (** one object's text mentions the other's name *)
  | Duplicate  (** same real-world object (step 5) *)

val kind_name : kind -> string

val kind_rank : kind -> int
(** Dense index in [0, 5], in declaration order; the sort key for
    {!dedup}'s deterministic output and a direct array index for
    per-kind counters. *)

type t = {
  src : Objref.t;
  dst : Objref.t;
  kind : kind;
  confidence : float;  (** in (0, 1] *)
  evidence : string;  (** human-readable provenance of the guess *)
}

val make :
  src:Objref.t -> dst:Objref.t -> kind:kind -> confidence:float -> evidence:string -> t

val normalized : t -> t
(** Symmetric kinds (everything but [Xref]) are canonicalized so that
    [src <= dst]; dedup relies on this. *)

val same_endpoints : t -> t -> bool
(** Equal endpoints and kind, after normalization. *)

val dedup : t list -> t list
(** Remove endpoint+kind duplicates, keeping the highest confidence.
    Deterministic order (by src, dst, kind). *)

val pp : Format.formatter -> t -> unit
