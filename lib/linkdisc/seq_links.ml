open Aladin_relational
open Aladin_discovery
module Sq = Aladin_seq

type params = {
  min_normalized : float;
  min_seq_len : int;
  cross_source_only : bool;
  sample_for_detection : int;
}

let default_params =
  { min_normalized = 0.5; min_seq_len = 20; cross_source_only = true;
    sample_for_detection = 50 }

type seq_field = {
  source : string;
  relation : string;
  attribute : string;
  kind : Sq.Alphabet.kind;
}

let column_sample catalog relation attribute n =
  let rel = Catalog.find_exn catalog relation in
  let ai = Schema.index_of_exn (Relation.schema rel) attribute in
  let out = ref [] and count = ref 0 in
  (try
     Relation.iter_rows
       (fun row ->
         if !count >= n then raise Exit;
         let v = row.(ai) in
         if not (Value.is_null v) then begin
           out := Value.to_string v :: !out;
           incr count
         end)
       rel
   with Exit -> ());
  !out

let sequence_fields params profiles =
  Profile_list.entries profiles
  |> List.concat_map (fun (e : Profile_list.entry) ->
         let source = Source_profile.source e.sp in
         let catalog = Profile.catalog e.sp.profile in
         Profile.all_stats e.sp.profile
         |> List.filter_map (fun (cs : Col_stats.t) ->
                if cs.avg_len < float_of_int params.min_seq_len then None
                else
                  let sample =
                    column_sample catalog cs.relation cs.attribute
                      params.sample_for_detection
                  in
                  Sq.Alphabet.classify_column ~min_len:params.min_seq_len sample
                  |> Option.map (fun kind ->
                         { source; relation = cs.relation;
                           attribute = cs.attribute; kind })))

type result = {
  links : Link.t list;
  fields : seq_field list;
  sequences_indexed : int;
  pairs_verified : int;
}

(* id encoding for the homology index: source / relation / row *)
let encode source relation row = Printf.sprintf "%s\x00%s\x00%d" source relation row

let decode id =
  match String.split_on_char '\x00' id with
  | [ source; relation; row ] -> (source, relation, int_of_string row)
  | _ -> invalid_arg "Seq_links.decode"

type state = {
  sparams : params;
  engines : (Sq.Alphabet.kind, Sq.Homology.t) Hashtbl.t;
  mutable seen : string list;
  mutable acc : Link.t list;
}

let state_create ?(params = default_params) () =
  { sparams = params; engines = Hashtbl.create 3; seen = []; acc = [] }

let state_sources st = List.rev st.seen

let engine_for st kind =
  match Hashtbl.find_opt st.engines kind with
  | Some e -> e
  | None ->
      let e = Sq.Homology.create kind in
      Hashtbl.add st.engines kind e;
      e

let state_add_source ?pool st profiles ~source =
  if List.mem source st.seen then
    invalid_arg
      (Printf.sprintf "Seq_links.state_add_source: %s already indexed" source);
  st.seen <- source :: st.seen;
  let params = st.sparams in
  let fields =
    sequence_fields params profiles |> List.filter (fun f -> f.source = source)
  in
  let objs_of src relation row =
    match Profile_list.find profiles src with
    | None -> []
    | Some e -> Owner_map.object_of_row e.owner ~relation ~row
  in
  (* Phase 0 (sequential): collect the new sequences in row order and
     pre-create engines — the one index mutation the fan-out must not do. *)
  let collected = ref [] in
  List.iter
    (fun f ->
      match Profile_list.find profiles f.source with
      | None -> ()
      | Some e ->
          ignore (engine_for st f.kind);
          let catalog = Profile.catalog e.sp.profile in
          let rel = Catalog.find_exn catalog f.relation in
          let ai = Schema.index_of_exn (Relation.schema rel) f.attribute in
          Relation.iteri_rows
            (fun row_i row ->
              let v = row.(ai) in
              if not (Value.is_null v) then begin
                let s = Sq.Alphabet.normalize (Value.to_string v) in
                if String.length s >= params.min_seq_len then
                  collected := (f, row_i, s) :: !collected
              end)
            rel)
    fields;
  let new_seqs = List.rev !collected in
  (* Phase 1 (parallel): each new sequence against the persistent index,
     which holds only previously-seen sources and is read-only here. *)
  let old_hits =
    Aladin_par.Pool.map ?pool
      (fun (f, row_i, s) ->
        Sq.Homology.search
          (Hashtbl.find st.engines f.kind)
          ~query_id:(encode f.source f.relation row_i)
          s ~min_normalized:params.min_normalized)
      new_seqs
  in
  (* Phase 2 (sequential): new-vs-new pairs via per-kind scratch indexes
     (search-then-add yields each unordered pair once), then commit every
     new sequence to the persistent index. Homology scoring is per-subject,
     so old-hits + scratch-hits equals the old single search against the
     incrementally growing index, hit for hit. *)
  let scratch = Hashtbl.create 3 in
  let scratch_for kind =
    match Hashtbl.find_opt scratch kind with
    | Some e -> e
    | None ->
        let e = Sq.Homology.create kind in
        Hashtbl.add scratch kind e;
        e
  in
  let links = ref [] in
  let verified = ref 0 in
  List.iter2
    (fun (f, row_i, s) old ->
      let query_id = encode f.source f.relation row_i in
      let sc = scratch_for f.kind in
      let hits =
        old
        @ Sq.Homology.search sc ~query_id s
            ~min_normalized:params.min_normalized
      in
      verified := !verified + List.length hits;
      List.iter
        (fun (h : Sq.Homology.hit) ->
          let ss, sr, srow = decode h.subject_id in
          if (not params.cross_source_only) || ss <> f.source then
            List.iter
              (fun src_obj ->
                List.iter
                  (fun dst_obj ->
                    if not (Objref.equal src_obj dst_obj) then
                      links :=
                        Link.make ~src:src_obj ~dst:dst_obj
                          ~kind:Link.Seq_similarity
                          ~confidence:(Float.min 1.0 h.normalized)
                          ~evidence:
                            (Printf.sprintf "homology score=%d norm=%.2f"
                               h.raw_score h.normalized)
                        :: !links)
                  (objs_of ss sr srow))
              (objs_of f.source f.relation row_i))
        hits;
      Sq.Homology.add sc ~id:query_id s)
    new_seqs old_hits;
  List.iter
    (fun (f, row_i, s) ->
      Sq.Homology.add
        (Hashtbl.find st.engines f.kind)
        ~id:(encode f.source f.relation row_i)
        s)
    new_seqs;
  let indexed = List.length new_seqs in
  let fresh = Link.dedup !links in
  Aladin_obs.Trace.ambient_incr ~by:indexed "seq.sequences_indexed";
  Aladin_obs.Trace.ambient_incr ~by:!verified "seq.pairs_verified";
  Aladin_obs.Trace.ambient_incr ~by:(List.length fresh) "seq.links";
  st.acc <- Link.dedup (fresh @ st.acc);
  fresh

let state_links st = st.acc

(* resume fast path: put a committed source's sequences back into the
   persistent index without re-running any homology search — its links
   are already known (seeded from the checkpoint via state_seed_links),
   so only the index content has to match what the original run built *)
let state_index_source st profiles ~source =
  if List.mem source st.seen then
    invalid_arg
      (Printf.sprintf "Seq_links.state_index_source: %s already indexed"
         source);
  st.seen <- source :: st.seen;
  let params = st.sparams in
  let fields =
    sequence_fields params profiles |> List.filter (fun f -> f.source = source)
  in
  let indexed = ref 0 in
  List.iter
    (fun f ->
      match Profile_list.find profiles f.source with
      | None -> ()
      | Some e ->
          let engine = engine_for st f.kind in
          let catalog = Profile.catalog e.sp.profile in
          let rel = Catalog.find_exn catalog f.relation in
          let ai = Schema.index_of_exn (Relation.schema rel) f.attribute in
          Relation.iteri_rows
            (fun row_i row ->
              let v = row.(ai) in
              if not (Value.is_null v) then begin
                let s = Sq.Alphabet.normalize (Value.to_string v) in
                if String.length s >= params.min_seq_len then begin
                  Sq.Homology.add engine
                    ~id:(encode f.source f.relation row_i)
                    s;
                  incr indexed
                end
              end)
            rel)
    fields;
  Aladin_obs.Trace.ambient_incr ~by:!indexed "seq.sequences_indexed"

let state_seed_links st links = st.acc <- Link.dedup (links @ st.acc)

let discover ?(params = default_params) ?pool profiles =
  let fields = sequence_fields params profiles in
  let kinds =
    List.sort_uniq compare (List.map (fun f -> f.kind) fields)
  in
  let indexed = ref 0 in
  let links = ref [] in
  let pairs_verified = ref 0 in
  List.iter
    (fun kind ->
      let engine = Sq.Homology.create kind in
      let kind_fields = List.filter (fun f -> f.kind = kind) fields in
      List.iter
        (fun f ->
          match Profile_list.find profiles f.source with
          | None -> ()
          | Some e ->
              let catalog = Profile.catalog e.sp.profile in
              let rel = Catalog.find_exn catalog f.relation in
              let ai = Schema.index_of_exn (Relation.schema rel) f.attribute in
              Relation.iteri_rows
                (fun row_i row ->
                  let v = row.(ai) in
                  if not (Value.is_null v) then begin
                    let s = Sq.Alphabet.normalize (Value.to_string v) in
                    if String.length s >= params.min_seq_len then begin
                      Sq.Homology.add engine ~id:(encode f.source f.relation row_i) s;
                      incr indexed
                    end
                  end)
                rel)
        kind_fields;
      let hits =
        Sq.Homology.all_pairs ?pool engine ~min_normalized:params.min_normalized
      in
      pairs_verified := !pairs_verified + List.length hits;
      List.iter
        (fun (h : Sq.Homology.hit) ->
          let qs, qr, qrow = decode h.query_id in
          let ss, sr, srow = decode h.subject_id in
          if (not params.cross_source_only) || qs <> ss then begin
            let objs_of source relation row =
              match Profile_list.find profiles source with
              | None -> []
              | Some e -> Owner_map.object_of_row e.owner ~relation ~row
            in
            List.iter
              (fun src ->
                List.iter
                  (fun dst ->
                    if not (Objref.equal src dst) then
                      links :=
                        Link.make ~src ~dst ~kind:Link.Seq_similarity
                          ~confidence:(Float.min 1.0 h.normalized)
                          ~evidence:
                            (Printf.sprintf "homology score=%d norm=%.2f"
                               h.raw_score h.normalized)
                        :: !links)
                  (objs_of ss sr srow))
              (objs_of qs qr qrow)
          end)
        hits)
    kinds;
  { links = Link.dedup !links; fields; sequences_indexed = !indexed;
    pairs_verified = !pairs_verified }

(* Pairwise entry point for the non-incremental (batch) homology path:
   index and align the two sources alone. Alignment scores depend only
   on the two sequences, so the union over pairs equals the global
   all-pairs run. *)
let discover_between ?params ?pool profiles ~a ~b =
  let lo, hi = if String.compare a b <= 0 then (a, b) else (b, a) in
  (* a self pair restricts to the single source once, not twice *)
  let names = if lo = hi then [ lo ] else [ lo; hi ] in
  discover ?params ?pool (Profile_list.restrict profiles names)
