type kind =
  | Xref
  | Seq_similarity
  | Text_similarity
  | Shared_term
  | Entity_mention
  | Duplicate

let kind_name = function
  | Xref -> "xref"
  | Seq_similarity -> "seq"
  | Text_similarity -> "text"
  | Shared_term -> "shared-term"
  | Entity_mention -> "mention"
  | Duplicate -> "duplicate"

let kind_rank = function
  | Xref -> 0
  | Seq_similarity -> 1
  | Text_similarity -> 2
  | Shared_term -> 3
  | Entity_mention -> 4
  | Duplicate -> 5

type t = {
  src : Objref.t;
  dst : Objref.t;
  kind : kind;
  confidence : float;
  evidence : string;
}

let make ~src ~dst ~kind ~confidence ~evidence =
  { src; dst; kind; confidence; evidence }

let normalized t =
  match t.kind with
  | Xref -> t
  | Seq_similarity | Text_similarity | Shared_term | Entity_mention | Duplicate ->
      if Objref.compare t.src t.dst <= 0 then t
      else { t with src = t.dst; dst = t.src }

let compare_links a b =
  match Objref.compare a.src b.src with
  | 0 -> (
      match Objref.compare a.dst b.dst with
      | 0 -> Int.compare (kind_rank a.kind) (kind_rank b.kind)
      | c -> c)
  | c -> c

let same_endpoints a b =
  let a = normalized a and b = normalized b in
  a.kind = b.kind && Objref.equal a.src b.src && Objref.equal a.dst b.dst

let dedup links =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun l ->
      let l = normalized l in
      let key =
        (Objref.to_string l.src, Objref.to_string l.dst, kind_rank l.kind)
      in
      (* tie-break on evidence so the kept representative does not depend
         on traversal order (sequential and parallel runs must agree) *)
      match Hashtbl.find_opt tbl key with
      | Some existing
        when l.confidence > existing.confidence
             || (l.confidence = existing.confidence
                && String.compare l.evidence existing.evidence < 0) ->
          Hashtbl.replace tbl key l
      | Some _ -> ()
      | None -> Hashtbl.replace tbl key l)
    links;
  Hashtbl.fold (fun _ l acc -> l :: acc) tbl []
  |> List.sort compare_links

let pp ppf t =
  Format.fprintf ppf "%a --%s(%.2f)--> %a [%s]" Objref.pp t.src
    (kind_name t.kind) t.confidence Objref.pp t.dst t.evidence
