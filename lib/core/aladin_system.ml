open Aladin_relational
open Aladin_discovery
open Aladin_links
module Fm = Aladin_formats
module Import_error = Aladin_resilience.Import_error

let source_name_of_path path =
  let base = Filename.basename path in
  match String.rindex_opt base '.' with
  | Some i when not (Sys.file_exists path && Sys.is_directory path) ->
      String.sub base 0 i
  | Some _ | None -> base

let import_file path =
  Fm.Import.import_path ~name:(source_name_of_path path) path

let integrate_catalogs ?config catalogs = Warehouse.integrate ?config catalogs

let integrate_paths ?config paths =
  let t = Warehouse.create ?config () in
  List.iter
    (fun path ->
      match import_file path with
      | Ok (im : Fm.Import.import) ->
          ignore
            (Warehouse.add_source ~import_errors:im.record_errors t im.catalog)
      | Error err ->
          ignore
            (Warehouse.report_import_failure t
               ~source:(source_name_of_path path) err))
    paths;
  t

let summary w =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "ALADIN warehouse: %d sources\n" (List.length (Warehouse.sources w));
  List.iter
    (fun name ->
      match Warehouse.profile w name with
      | None -> ()
      | Some sp ->
          let n_rels =
            List.length (Catalog.relations (Profile.catalog sp.profile))
          in
          (match Source_profile.primary_accession sp with
          | Some (rel, attr) ->
              add "  %-12s %2d relations, primary=%s (key %s), %d FKs\n" name
                n_rels rel attr (List.length sp.fks)
          | None ->
              add "  %-12s %2d relations, primary NOT FOUND, %d FKs\n" name
                n_rels (List.length sp.fks)))
    (Warehouse.sources w);
  let links = Warehouse.links w in
  add "links: %d total\n" (List.length links);
  List.iter
    (fun (kind, n) -> add "  %-12s %d\n" (Link.kind_name kind) n)
    (Linker.count_by_kind links);
  (match Warehouse.duplicates w with
  | Some d -> add "duplicate clusters: %d\n" (List.length d.clusters)
  | None -> ());
  Buffer.contents buf
