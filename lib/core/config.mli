(** All tunables of the ALADIN pipeline in one place. *)

open Aladin_discovery
open Aladin_links
open Aladin_dup

type t = {
  accession : Accession.params;
  inclusion : Inclusion.params;
  linker : Linker.params;
  dup : Dup_detect.params;
  incremental_seq : bool;
      (** keep a persistent homology index so adding a source only aligns
          its new sequences (default true) *)
  max_path_len : int;  (** secondary-structure path bound *)
  change_threshold : float;
      (** §6.2: fraction of a source's rows that must change before links
          are recomputed (default 0.1) *)
  domains : int;
      (** domain-pool size for the parallel discovery fan-outs; 0 (default)
          = auto: the [ALADIN_DOMAINS] environment variable when set, else
          [Domain.recommended_domain_count ()]. 1 forces sequential. *)
}

val default : t

val of_string : string -> t
(** Parse a [key = value] configuration ([#] comments, blank lines ok) over
    {!default}. Keys:
    {v
    accession.min_length            int
    accession.max_length_spread     float
    inclusion.min_containment       float
    inclusion.require_name_affinity bool
    links.seq.min_normalized        float
    links.seq.min_seq_len           int
    links.text.min_cosine           float
    links.xref.min_matches          int
    links.enable_seq|text|onto      bool
    dup.min_similarity              float
    dup.all_pairs                   bool
    incremental_seq                 bool
    max_path_len                    int
    change_threshold                float
    domains                         int
    v}
    @raise Invalid_argument on unknown keys or unparsable values. *)

val of_file : string -> t

val to_string : t -> string
(** Render every supported key with its current value ([of_string]-parsable). *)
