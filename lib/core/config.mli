(** All tunables of the ALADIN pipeline in one place. *)

open Aladin_discovery
open Aladin_links
open Aladin_dup

type budgets = {
  import : float option;
  primary : float option;
  secondary : float option;
  links : float option;  (** whole link-discovery step *)
  xref_pass : float option;
  seq_pass : float option;  (** the homology pass, the usual runaway *)
  text_pass : float option;
  onto_pass : float option;
  dups : float option;
}
(** Per-step wall-clock budgets in seconds; [None] (the default
    everywhere) means unlimited. A budget of [0] skips the step or pass
    outright. A required step (primary discovery) that exceeds its
    budget quarantines the source; an optional step or pass is skipped
    with a recorded reason in the {!Aladin_resilience.Run_report}. *)

val no_budgets : budgets

type t = {
  accession : Accession.params;
  inclusion : Inclusion.params;
  linker : Linker.params;
  dup : Dup_detect.params;
  incremental_seq : bool;
      (** keep a persistent homology index so adding a source only aligns
          its new sequences (default true) *)
  max_path_len : int;  (** secondary-structure path bound *)
  change_threshold : float;
      (** §6.2: fraction of a source's rows that must change before links
          are recomputed (default 0.1) *)
  domains : int;
      (** domain-pool size for the parallel discovery fan-outs; 0 (default)
          = auto: the [ALADIN_DOMAINS] environment variable when set, else
          [Domain.recommended_domain_count ()]. 1 forces sequential. *)
  budgets : budgets;
}

val default : t

val of_string : string -> (t, string) result
(** Parse a [key = value] configuration ([#] comments, blank lines ok) over
    {!default}. Keys:
    {v
    accession.min_length            int
    accession.max_length_spread     float
    inclusion.min_containment       float
    inclusion.require_name_affinity bool
    links.seq.min_normalized        float
    links.seq.min_seq_len           int
    links.text.min_cosine           float
    links.xref.min_matches          int
    links.enable_seq|text|onto      bool
    dup.min_similarity              float
    dup.all_pairs                   bool
    incremental_seq                 bool
    max_path_len                    int
    change_threshold                float
    domains                         int
    budget.import                   seconds | none
    budget.primary                  seconds | none
    budget.secondary                seconds | none
    budget.links                    seconds | none
    budget.links.xref|seq|text|onto seconds | none
    budget.dups                     seconds | none
    v}
    [Error] messages carry the 1-based line number
    (["line 3: unknown key ..."]); never raises. *)

val of_file : string -> (t, string) result
(** Like {!of_string}; errors are prefixed ["<path>:<line>: ..."] and an
    unreadable file is an [Error], not an exception. *)

val to_string : t -> string
(** Render every supported key with its current value ([of_string]-parsable). *)
