open Aladin_links
open Aladin_access
module Run_report = Aladin_resilience.Run_report
module Import_error = Aladin_resilience.Import_error

type t = {
  w : Warehouse.t;
  mutable browser : Browser.t;
  mutable search : Search.t;
  mutable link_query : Link_query.t;
  mutable paths : Path_rank.t;
  mutable epoch : int;
}

(* the warehouse memoizes each structure until its own invalidation, so
   pulling them here never builds twice; the facade pins the handles so
   every access path of one epoch shares the same session state *)
let create w =
  {
    w;
    browser = Warehouse.browser w;
    search = Warehouse.search w;
    link_query = Warehouse.link_query w;
    paths = Warehouse.path_index w;
    epoch = Warehouse.revision w;
  }

let integrate ?config catalogs = create (Warehouse.integrate ?config catalogs)

let warehouse t = t.w

let epoch t = t.epoch

(* the typed cache key: the warehouse generation counters pin exactly
   the data the caller declared it reads, so a consumer keyed on
   [key t [Source "uniprot"]] keeps its cache across updates of every
   other source. The epoch is deliberately NOT part of the key — it
   tracks structure rebuilds, which are deterministic functions of the
   warehouse state the counters already pin. *)
let key t deps = Generation.key (Warehouse.generation t.w) deps

(* pull the memoized structures and advance the epoch; tied to the
   warehouse's mutation counter so a resumed warehouse starts past every
   restored step's epoch *)
let rebuild t =
  t.browser <- Warehouse.browser t.w;
  t.search <- Warehouse.search t.w;
  t.link_query <- Warehouse.link_query t.w;
  t.paths <- Warehouse.path_index t.w;
  t.epoch <- max (t.epoch + 1) (Warehouse.revision t.w)

(* the public refresh is for mutations not routed through this facade,
   so it cannot know which counters the warehouse already bumped —
   conservatively move every tracked one *)
let refresh t =
  rebuild t;
  Generation.bump_all (Warehouse.generation t.w)

(* --- browse --- *)

let objects t = Browser.objects t.browser

let view t obj = Browser.view t.browser obj

let resolve t accession = Search.resolve t.search accession

let browse t ?source accession =
  match source with
  | Some s -> Browser.view_accession t.browser ~source:s accession
  | None -> Option.bind (resolve t accession) (view t)

let follow t v i = Browser.follow t.browser v i

let browser t = t.browser

(* --- search --- *)

let search t ?limit query = Search.search t.search ?limit query

let focused t ?source ?field ?limit query =
  Search.focused t.search ?source ?field ?limit query

(* --- query --- *)

let query t sql =
  match Warehouse.sql t.w sql with
  | r -> Ok r
  | exception Sql_parser.Parse_error msg -> Error ("parse error: " ^ msg)
  | exception Sql_eval.Eval_error msg -> Error msg

let links ?kind t =
  let all = Warehouse.links t.w in
  match kind with
  | None -> all
  | Some k -> List.filter (fun (l : Link.t) -> Link.kind_name l.kind = k) all

let traverse t ~start ~steps = Link_query.run t.link_query ~start ~steps

let related t obj = Path_rank.rank_from t.paths obj

let paths t = t.paths

(* --- mutation --- *)

(* facade-routed mutations only [rebuild]: the warehouse bumped exactly
   the generation counters the mutation touched, so keys over unrelated
   sources/kinds — and the cache entries they guard — survive *)
let add_source ?import_errors t catalog =
  let report = Warehouse.add_source ?import_errors t.w catalog in
  rebuild t;
  report

let update_source t catalog ~changed_rows =
  let r = Warehouse.update_source t.w catalog ~changed_rows in
  (match r.Warehouse.outcome with
  | `Reanalyzed _ -> rebuild t
  | `Deferred -> ());
  r

let reject_link t l =
  Warehouse.reject_link t.w l;
  rebuild t
