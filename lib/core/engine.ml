open Aladin_links
open Aladin_access
module Run_report = Aladin_resilience.Run_report
module Import_error = Aladin_resilience.Import_error

type t = {
  w : Warehouse.t;
  mutable browser : Browser.t;
  mutable search : Search.t;
  mutable link_query : Link_query.t;
  mutable paths : Path_rank.t;
  mutable generation : int;
}

(* the warehouse memoizes each structure until its own invalidation, so
   pulling them here never builds twice; the facade pins the handles so
   every access path of one generation shares the same session state *)
let create w =
  {
    w;
    browser = Warehouse.browser w;
    search = Warehouse.search w;
    link_query = Warehouse.link_query w;
    paths = Warehouse.path_index w;
    generation = Warehouse.revision w;
  }

let integrate ?config catalogs = create (Warehouse.integrate ?config catalogs)

let warehouse t = t.w

let generation t = t.generation

let refresh t =
  t.browser <- Warehouse.browser t.w;
  t.search <- Warehouse.search t.w;
  t.link_query <- Warehouse.link_query t.w;
  t.paths <- Warehouse.path_index t.w;
  (* tied to the warehouse's mutation counter so a resumed warehouse
     starts past every restored step's generation; refresh still always
     advances even when the warehouse was untouched *)
  t.generation <- max (t.generation + 1) (Warehouse.revision t.w)

(* --- browse --- *)

let objects t = Browser.objects t.browser

let view t obj = Browser.view t.browser obj

let resolve t accession = Search.resolve t.search accession

let browse t ?source accession =
  match source with
  | Some s -> Browser.view_accession t.browser ~source:s accession
  | None -> Option.bind (resolve t accession) (view t)

let follow t v i = Browser.follow t.browser v i

let browser t = t.browser

(* --- search --- *)

let search t ?limit query = Search.search t.search ?limit query

let focused t ?source ?field ?limit query =
  Search.focused t.search ?source ?field ?limit query

(* --- query --- *)

let query t sql =
  match Warehouse.sql t.w sql with
  | r -> Ok r
  | exception Sql_parser.Parse_error msg -> Error ("parse error: " ^ msg)
  | exception Sql_eval.Eval_error msg -> Error msg

let links ?kind t =
  let all = Warehouse.links t.w in
  match kind with
  | None -> all
  | Some k -> List.filter (fun (l : Link.t) -> Link.kind_name l.kind = k) all

let traverse t ~start ~steps = Link_query.run t.link_query ~start ~steps

let related t obj = Path_rank.rank_from t.paths obj

let paths t = t.paths

(* --- mutation --- *)

let add_source ?import_errors t catalog =
  let report = Warehouse.add_source ?import_errors t.w catalog in
  refresh t;
  report

let update_source t catalog ~changed_rows =
  match Warehouse.update_source t.w catalog ~changed_rows with
  | `Deferred -> `Deferred
  | `Reanalyzed report ->
      refresh t;
      `Reanalyzed report

let reject_link t l =
  Warehouse.reject_link t.w l;
  refresh t
