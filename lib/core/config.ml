open Aladin_discovery
open Aladin_links
open Aladin_dup

type budgets = {
  import : float option;
  primary : float option;
  secondary : float option;
  links : float option;
  xref_pass : float option;
  seq_pass : float option;
  text_pass : float option;
  onto_pass : float option;
  dups : float option;
}

let no_budgets =
  {
    import = None;
    primary = None;
    secondary = None;
    links = None;
    xref_pass = None;
    seq_pass = None;
    text_pass = None;
    onto_pass = None;
    dups = None;
  }

type t = {
  accession : Accession.params;
  inclusion : Inclusion.params;
  linker : Linker.params;
  dup : Dup_detect.params;
  incremental_seq : bool;
  max_path_len : int;
  change_threshold : float;
  domains : int;
  budgets : budgets;
}

let default =
  {
    accession = Accession.default_params;
    inclusion = Inclusion.default_params;
    linker = Linker.default_params;
    dup = Dup_detect.default_params;
    incremental_seq = true;
    max_path_len = 6;
    change_threshold = 0.1;
    domains = 0;
    budgets = no_budgets;
  }

let parse_bool key v =
  match bool_of_string_opt (String.lowercase_ascii v) with
  | Some b -> Ok b
  | None -> Error (Printf.sprintf "%s expects a bool, got %S" key v)

let parse_int key v =
  match int_of_string_opt v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "%s expects an int, got %S" key v)

let parse_float key v =
  match float_of_string_opt v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s expects a float, got %S" key v)

(* a budget is seconds, or "none"/"off"/"unlimited" for no budget *)
let parse_budget key v =
  match String.lowercase_ascii v with
  | "none" | "off" | "unlimited" -> Ok None
  | _ -> (
      match float_of_string_opt v with
      | Some f -> Ok (Some f)
      | None ->
          Error
            (Printf.sprintf "%s expects seconds or \"none\", got %S" key v))

let ( let* ) = Result.bind

let apply t key v =
  match key with
  | "accession.min_length" ->
      let* i = parse_int key v in
      Ok { t with accession = { t.accession with min_length = i } }
  | "accession.max_length_spread" ->
      let* f = parse_float key v in
      Ok { t with accession = { t.accession with max_length_spread = f } }
  | "inclusion.min_containment" ->
      let* f = parse_float key v in
      Ok { t with inclusion = { t.inclusion with min_containment = f } }
  | "inclusion.require_name_affinity" ->
      let* b = parse_bool key v in
      Ok
        { t with
          inclusion = { t.inclusion with require_name_affinity_for_pk_pk = b } }
  | "links.seq.min_normalized" ->
      let* f = parse_float key v in
      Ok
        { t with
          linker = { t.linker with seq = { t.linker.seq with min_normalized = f } } }
  | "links.seq.min_seq_len" ->
      let* i = parse_int key v in
      Ok
        { t with
          linker = { t.linker with seq = { t.linker.seq with min_seq_len = i } } }
  | "links.text.min_cosine" ->
      let* f = parse_float key v in
      Ok
        { t with
          linker = { t.linker with text = { t.linker.text with min_cosine = f } } }
  | "links.xref.min_matches" ->
      let* i = parse_int key v in
      Ok
        { t with
          linker = { t.linker with xref = { t.linker.xref with min_matches = i } } }
  | "links.enable_seq" ->
      let* b = parse_bool key v in
      Ok { t with linker = { t.linker with enable_seq = b } }
  | "links.enable_text" ->
      let* b = parse_bool key v in
      Ok { t with linker = { t.linker with enable_text = b } }
  | "links.enable_onto" ->
      let* b = parse_bool key v in
      Ok { t with linker = { t.linker with enable_onto = b } }
  | "dup.min_similarity" ->
      let* f = parse_float key v in
      Ok { t with dup = { t.dup with min_similarity = f } }
  | "dup.all_pairs" ->
      let* b = parse_bool key v in
      Ok { t with dup = { t.dup with all_pairs = b } }
  | "incremental_seq" ->
      let* b = parse_bool key v in
      Ok { t with incremental_seq = b }
  | "max_path_len" ->
      let* i = parse_int key v in
      Ok { t with max_path_len = i }
  | "change_threshold" ->
      let* f = parse_float key v in
      Ok { t with change_threshold = f }
  | "domains" ->
      let* i = parse_int key v in
      Ok { t with domains = i }
  | "budget.import" ->
      let* b = parse_budget key v in
      Ok { t with budgets = { t.budgets with import = b } }
  | "budget.primary" ->
      let* b = parse_budget key v in
      Ok { t with budgets = { t.budgets with primary = b } }
  | "budget.secondary" ->
      let* b = parse_budget key v in
      Ok { t with budgets = { t.budgets with secondary = b } }
  | "budget.links" ->
      let* b = parse_budget key v in
      Ok { t with budgets = { t.budgets with links = b } }
  | "budget.links.xref" ->
      let* b = parse_budget key v in
      Ok { t with budgets = { t.budgets with xref_pass = b } }
  | "budget.links.seq" ->
      let* b = parse_budget key v in
      Ok { t with budgets = { t.budgets with seq_pass = b } }
  | "budget.links.text" ->
      let* b = parse_budget key v in
      Ok { t with budgets = { t.budgets with text_pass = b } }
  | "budget.links.onto" ->
      let* b = parse_budget key v in
      Ok { t with budgets = { t.budgets with onto_pass = b } }
  | "budget.dups" ->
      let* b = parse_budget key v in
      Ok { t with budgets = { t.budgets with dups = b } }
  | _ -> Error (Printf.sprintf "unknown key %S" key)

(* fold lines over [default], keeping the 1-based line number for errors *)
let parse_lines doc =
  let rec go t lineno = function
    | [] -> Ok t
    | line :: rest -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go t (lineno + 1) rest
        else
          match String.index_opt line '=' with
          | None ->
              Error (lineno, Printf.sprintf "expected key = value, got %S" line)
          | Some i -> (
              let key = String.trim (String.sub line 0 i) in
              let v =
                String.trim (String.sub line (i + 1) (String.length line - i - 1))
              in
              match apply t key v with
              | Ok t -> go t (lineno + 1) rest
              | Error msg -> Error (lineno, msg)))
  in
  go default 1 (String.split_on_char '\n' doc)

let of_string doc =
  match parse_lines doc with
  | Ok t -> Ok t
  | Error (lineno, msg) -> Error (Printf.sprintf "line %d: %s" lineno msg)

let of_file path =
  match
    let ic = open_in path in
    let len = in_channel_length ic in
    let doc = really_input_string ic len in
    close_in ic;
    doc
  with
  | doc -> (
      match parse_lines doc with
      | Ok t -> Ok t
      | Error (lineno, msg) -> Error (Printf.sprintf "%s:%d: %s" path lineno msg))
  | exception Sys_error msg -> Error msg

let budget_to_string = function None -> "none" | Some f -> Printf.sprintf "%g" f

let to_string t =
  String.concat "\n"
    [
      Printf.sprintf "accession.min_length = %d" t.accession.min_length;
      Printf.sprintf "accession.max_length_spread = %g" t.accession.max_length_spread;
      Printf.sprintf "inclusion.min_containment = %g" t.inclusion.min_containment;
      Printf.sprintf "inclusion.require_name_affinity = %b"
        t.inclusion.require_name_affinity_for_pk_pk;
      Printf.sprintf "links.seq.min_normalized = %g" t.linker.seq.min_normalized;
      Printf.sprintf "links.seq.min_seq_len = %d" t.linker.seq.min_seq_len;
      Printf.sprintf "links.text.min_cosine = %g" t.linker.text.min_cosine;
      Printf.sprintf "links.xref.min_matches = %d" t.linker.xref.min_matches;
      Printf.sprintf "links.enable_seq = %b" t.linker.enable_seq;
      Printf.sprintf "links.enable_text = %b" t.linker.enable_text;
      Printf.sprintf "links.enable_onto = %b" t.linker.enable_onto;
      Printf.sprintf "dup.min_similarity = %g" t.dup.min_similarity;
      Printf.sprintf "dup.all_pairs = %b" t.dup.all_pairs;
      Printf.sprintf "incremental_seq = %b" t.incremental_seq;
      Printf.sprintf "max_path_len = %d" t.max_path_len;
      Printf.sprintf "change_threshold = %g" t.change_threshold;
      Printf.sprintf "domains = %d" t.domains;
      Printf.sprintf "budget.import = %s" (budget_to_string t.budgets.import);
      Printf.sprintf "budget.primary = %s" (budget_to_string t.budgets.primary);
      Printf.sprintf "budget.secondary = %s" (budget_to_string t.budgets.secondary);
      Printf.sprintf "budget.links = %s" (budget_to_string t.budgets.links);
      Printf.sprintf "budget.links.xref = %s" (budget_to_string t.budgets.xref_pass);
      Printf.sprintf "budget.links.seq = %s" (budget_to_string t.budgets.seq_pass);
      Printf.sprintf "budget.links.text = %s" (budget_to_string t.budgets.text_pass);
      Printf.sprintf "budget.links.onto = %s" (budget_to_string t.budgets.onto_pass);
      Printf.sprintf "budget.dups = %s" (budget_to_string t.budgets.dups);
    ]
  ^ "\n"
