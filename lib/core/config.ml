open Aladin_discovery
open Aladin_links
open Aladin_dup

type t = {
  accession : Accession.params;
  inclusion : Inclusion.params;
  linker : Linker.params;
  dup : Dup_detect.params;
  incremental_seq : bool;
  max_path_len : int;
  change_threshold : float;
  domains : int;
}

let default =
  {
    accession = Accession.default_params;
    inclusion = Inclusion.default_params;
    linker = Linker.default_params;
    dup = Dup_detect.default_params;
    incremental_seq = true;
    max_path_len = 6;
    change_threshold = 0.1;
    domains = 0;
  }

let parse_bool key v =
  match bool_of_string_opt (String.lowercase_ascii v) with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Config: %s expects a bool, got %S" key v)

let parse_int key v =
  match int_of_string_opt v with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Config: %s expects an int, got %S" key v)

let parse_float key v =
  match float_of_string_opt v with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Config: %s expects a float, got %S" key v)

let apply t key v =
  match key with
  | "accession.min_length" ->
      { t with accession = { t.accession with min_length = parse_int key v } }
  | "accession.max_length_spread" ->
      { t with accession = { t.accession with max_length_spread = parse_float key v } }
  | "inclusion.min_containment" ->
      { t with inclusion = { t.inclusion with min_containment = parse_float key v } }
  | "inclusion.require_name_affinity" ->
      { t with
        inclusion =
          { t.inclusion with require_name_affinity_for_pk_pk = parse_bool key v } }
  | "links.seq.min_normalized" ->
      { t with
        linker =
          { t.linker with seq = { t.linker.seq with min_normalized = parse_float key v } } }
  | "links.seq.min_seq_len" ->
      { t with
        linker =
          { t.linker with seq = { t.linker.seq with min_seq_len = parse_int key v } } }
  | "links.text.min_cosine" ->
      { t with
        linker =
          { t.linker with text = { t.linker.text with min_cosine = parse_float key v } } }
  | "links.xref.min_matches" ->
      { t with
        linker =
          { t.linker with xref = { t.linker.xref with min_matches = parse_int key v } } }
  | "links.enable_seq" -> { t with linker = { t.linker with enable_seq = parse_bool key v } }
  | "links.enable_text" -> { t with linker = { t.linker with enable_text = parse_bool key v } }
  | "links.enable_onto" -> { t with linker = { t.linker with enable_onto = parse_bool key v } }
  | "dup.min_similarity" ->
      { t with dup = { t.dup with min_similarity = parse_float key v } }
  | "dup.all_pairs" -> { t with dup = { t.dup with all_pairs = parse_bool key v } }
  | "incremental_seq" -> { t with incremental_seq = parse_bool key v }
  | "max_path_len" -> { t with max_path_len = parse_int key v }
  | "change_threshold" -> { t with change_threshold = parse_float key v }
  | "domains" -> { t with domains = parse_int key v }
  | _ -> invalid_arg (Printf.sprintf "Config: unknown key %S" key)

let of_string doc =
  String.split_on_char '\n' doc
  |> List.fold_left
       (fun t line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then t
         else
           match String.index_opt line '=' with
           | None -> invalid_arg (Printf.sprintf "Config: expected key = value, got %S" line)
           | Some i ->
               let key = String.trim (String.sub line 0 i) in
               let v = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
               apply t key v)
       default

let of_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let doc = really_input_string ic len in
  close_in ic;
  of_string doc

let to_string t =
  String.concat "\n"
    [
      Printf.sprintf "accession.min_length = %d" t.accession.min_length;
      Printf.sprintf "accession.max_length_spread = %g" t.accession.max_length_spread;
      Printf.sprintf "inclusion.min_containment = %g" t.inclusion.min_containment;
      Printf.sprintf "inclusion.require_name_affinity = %b"
        t.inclusion.require_name_affinity_for_pk_pk;
      Printf.sprintf "links.seq.min_normalized = %g" t.linker.seq.min_normalized;
      Printf.sprintf "links.seq.min_seq_len = %d" t.linker.seq.min_seq_len;
      Printf.sprintf "links.text.min_cosine = %g" t.linker.text.min_cosine;
      Printf.sprintf "links.xref.min_matches = %d" t.linker.xref.min_matches;
      Printf.sprintf "links.enable_seq = %b" t.linker.enable_seq;
      Printf.sprintf "links.enable_text = %b" t.linker.enable_text;
      Printf.sprintf "links.enable_onto = %b" t.linker.enable_onto;
      Printf.sprintf "dup.min_similarity = %g" t.dup.min_similarity;
      Printf.sprintf "dup.all_pairs = %b" t.dup.all_pairs;
      Printf.sprintf "incremental_seq = %b" t.incremental_seq;
      Printf.sprintf "max_path_len = %d" t.max_path_len;
      Printf.sprintf "change_threshold = %g" t.change_threshold;
      Printf.sprintf "domains = %d" t.domains;
    ]
  ^ "\n"
