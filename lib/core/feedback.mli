(** User feedback on discovered structure (§6.2).

    "Users browsing the data or query results from ALADIN might indicate
    that a link between two objects or even between two schema elements was
    inserted incorrectly. Thus, especially false links between relations
    can be removed quickly."

    Feedback is a persistent set of rejections consulted by the pipeline:
    rejected object links never reappear from re-discovery, and rejected
    foreign keys are filtered out of inference when the source is
    re-analyzed. *)

open Aladin_discovery
open Aladin_links

type t

val create : unit -> t

val reject_link : t -> Link.t -> unit
(** Reject by endpoints + kind (symmetric for symmetric kinds). *)

val is_link_rejected : t -> Link.t -> bool

val reject_fk : t -> source:string -> Inclusion.fk -> unit
(** Reject an inferred relationship between two schema elements. *)

val is_fk_rejected : t -> source:string -> Inclusion.fk -> bool

val rejected_link_count : t -> int

val rejected_fk_count : t -> int

val filter_links : t -> Link.t list -> Link.t list

val filter_fks : t -> source:string -> Inclusion.fk list -> Inclusion.fk list

val save : t -> string
(** Deterministic (sorted) rendering — a pure function of the rejection
    set, so snapshot re-saves are byte-identical. *)

val load : string -> t
(** @raise Invalid_argument on malformed input. *)

val load_salvaging : string -> t * int
(** Tolerant {!load} for storage-salvaged documents: malformed lines are
    skipped and counted instead of raised on. *)
