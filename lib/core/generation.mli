(** Typed invalidation surface for warehouse-derived caches.

    A warehouse carries one {!t}: a whole-warehouse counter plus one
    counter per source and per link kind. Every mutation bumps exactly
    the counters it can affect — adding or updating source [s] bumps
    [Source s] (and the kinds whose merged link sets actually changed),
    rejecting a link bumps its kind, and everything bumps [Whole]
    (global structures — the search index, the browser, bare-table
    resolution — can change under any mutation).

    A cache derives its key from the {e dependencies} the cached
    computation actually reads ({!key}): a route that only queries
    [uniprot.entry] keys on [Source "uniprot"], so an update to an
    unrelated source leaves its cached entry valid, while a route over
    global state keys on [Whole] and invalidates on every mutation. *)

type t

type dep =
  | Whole  (** any warehouse state at all (global indexes, bare tables) *)
  | Source of string  (** the named source's rows and schema *)
  | Link_kind of string  (** the merged link set of one {!Aladin_links.Link.kind_name} *)

val create : unit -> t
(** All counters at 0. *)

val copy : t -> t
(** Snapshot — later bumps of either copy leave the other unchanged. *)

val bump_whole : t -> unit

val bump_source : t -> string -> unit
(** Also bumps [Whole]. *)

val bump_kind : t -> string -> unit
(** Also bumps [Whole]. *)

val bump_all : t -> unit
(** Conservative invalidation: bump [Whole] and every tracked source and
    kind counter — used by [Engine.refresh], which must assume anything
    changed. *)

val get : t -> dep -> int
(** Untracked sources/kinds read 0. *)

val key : t -> dep list -> string
(** Canonical cache-key fragment over the given dependencies: deps are
    sorted and deduplicated, so the key is independent of the order the
    route listed them in. Equal keys guarantee none of the listed
    dependencies was bumped in between. *)
