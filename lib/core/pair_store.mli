(** The warehouse's per-source-pair link store — the data structure the
    delta pipeline reads and writes.

    Every link the pipeline discovers belongs to exactly one unordered
    source pair (the sources of its two endpoints), so the warehouse's
    merged link set is a pure function of this map: integrating or
    updating a source recomputes only the entries of pairs that touch
    it, and {!all_links} merges the rest verbatim. The one exception is
    the shared-term pass, whose per-object-pair confidence counts shared
    targets across {e all} xref links (a third source's xrefs raise a
    pair's confidence), so its output is held as a single global
    component ({!onto}/{!set_onto}) recomputed on every delta — it is
    cheap, derived from already-discovered xref links.

    The store serializes to one line-record document ({!save}/{!load}),
    persisted as the [pairs.txt] member (kind {!Aladin_store.Snapshot.kind.Pairs})
    of warehouse snapshots and journal checkpoints. Groups are atomic on
    load: a pair whose record group was damaged is dropped whole and
    re-seeded from the metadata repository ({!seed_missing}), never
    half-restored. *)

open Aladin_links

type entry = {
  xref_links : Link.t list;
  correspondences : Xref_disc.correspondence list;
  seq_links : Link.t list;
  text_links : Link.t list;  (** [Text_similarity] and [Entity_mention] *)
  dup_links : Link.t list;
  dup_candidates : int;  (** candidate pairs the dup pass verified *)
}

val empty_entry : entry

type t

val create : unit -> t

val canon : string -> string -> string * string
(** The canonical (sorted) form of an unordered source pair. *)

val find : t -> string -> string -> entry option
(** Order-insensitive. *)

val set : t -> string -> string -> entry -> unit

val mem : t -> string -> string -> bool

val pairs : t -> ((string * string) * entry) list
(** All entries, sorted by canonical pair key. *)

val pair_keys : t -> (string * string) list

val onto : t -> Link.t list
(** The global shared-term component ([Shared_term] links). *)

val set_onto : t -> Link.t list -> unit

val all_links : t -> Link.t list
(** Every pass's links over every pair, plus the shared-term component,
    deduplicated into {!Link.dedup}'s canonical order — the warehouse's
    merged link set (before feedback filtering). *)

val correspondences : t -> Xref_disc.correspondence list
(** All pairs' xref correspondences in one canonical (sorted) order. *)

val dup_candidates_total : t -> int

val exclude_triples : t -> source:string -> (string * string * string) list
(** The (source, relation, attribute) triples of correspondences whose
    {e source side} is [source], sorted — the attributes the dup pass
    must keep out of [source]'s representations. Comparing this set
    before and after an xref delta tells the pipeline which sources'
    prepared representations (and hence which additional dup pairs) are
    stale. *)

val save : t -> string

val load : string -> t * int
(** [load doc] returns the store plus the number of record groups
    dropped because they were truncated or unparseable (each dropped
    group leaves its pair absent, to be re-seeded by {!seed_missing}). *)

val seed_missing :
  t -> links:Link.t list -> correspondences:Xref_disc.correspondence list -> unit
(** Backfill from the metadata repository's merged links and
    correspondences: every link maps to exactly one pair (and kind), so
    partitioning them recovers the entries of any pairs this store does
    not yet hold — old stores saved before the pair store existed, and
    groups {!load} dropped. Pairs (and the shared-term component)
    already present are left untouched. *)
