open Aladin_discovery
open Aladin_links
module Serial = Aladin_metadata.Serial

type t = {
  links : (string, unit) Hashtbl.t;
  fks : (string, unit) Hashtbl.t;
}

let create () = { links = Hashtbl.create 32; fks = Hashtbl.create 32 }

let link_key l =
  let l = Link.normalized l in
  String.concat "\x00"
    [ Objref.to_string l.src; Objref.to_string l.dst; Link.kind_name l.kind ]

let fk_key ~source (fk : Inclusion.fk) =
  String.lowercase_ascii
    (String.concat "\x00"
       [ source; fk.src_relation; fk.src_attribute; fk.dst_relation;
         fk.dst_attribute ])

let reject_link t l = Hashtbl.replace t.links (link_key l) ()

let is_link_rejected t l = Hashtbl.mem t.links (link_key l)

let reject_fk t ~source fk = Hashtbl.replace t.fks (fk_key ~source fk) ()

let is_fk_rejected t ~source fk = Hashtbl.mem t.fks (fk_key ~source fk)

let rejected_link_count t = Hashtbl.length t.links

let rejected_fk_count t = Hashtbl.length t.fks

let filter_links t links =
  List.filter (fun l -> not (is_link_rejected t l)) links

let filter_fks t ~source fks =
  List.filter (fun fk -> not (is_fk_rejected t ~source fk)) fks

let sorted_keys tbl =
  Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort String.compare

let save t =
  (* sorted, so the rendering is a pure function of the rejection set and
     snapshot re-saves of an unchanged warehouse are byte-identical *)
  let buf = Buffer.create 256 in
  Buffer.add_string buf "aladin-feedback\t1\n";
  List.iter
    (fun key ->
      Buffer.add_string buf
        (Serial.record ("link" :: String.split_on_char '\x00' key));
      Buffer.add_char buf '\n')
    (sorted_keys t.links);
  List.iter
    (fun key ->
      Buffer.add_string buf
        (Serial.record ("fk" :: String.split_on_char '\x00' key));
      Buffer.add_char buf '\n')
    (sorted_keys t.fks);
  Buffer.contents buf

let apply_line t line =
  match Serial.fields line with
  | "link" :: rest when List.length rest = 3 ->
      Hashtbl.replace t.links (String.concat "\x00" rest) ()
  | "fk" :: rest when List.length rest = 5 ->
      Hashtbl.replace t.fks (String.concat "\x00" rest) ()
  | _ -> invalid_arg (Printf.sprintf "Feedback.load: bad line %S" line)

let header_fields = [ "aladin-feedback"; "1" ]

let load doc =
  let t = create () in
  let lines = String.split_on_char '\n' doc |> List.filter (( <> ) "") in
  (match lines with
  | first :: _ when Serial.fields first = header_fields -> ()
  | _ -> invalid_arg "Feedback.load: bad header");
  List.iteri (fun i line -> if i > 0 then apply_line t line) lines;
  t

let load_salvaging doc =
  let t = create () in
  let dropped = ref 0 in
  let lines = String.split_on_char '\n' doc |> List.filter (( <> ) "") in
  let body =
    match lines with
    | first :: rest when Serial.fields first = header_fields -> rest
    | [] -> []
    | _ :: _ ->
        incr dropped;
        lines
  in
  List.iter
    (fun line ->
      try apply_line t line with Invalid_argument _ -> incr dropped)
    body;
  (t, !dropped)
