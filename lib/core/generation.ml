type t = {
  mutable whole : int;
  sources : (string, int) Hashtbl.t;
  kinds : (string, int) Hashtbl.t;
}

type dep = Whole | Source of string | Link_kind of string

let create () = { whole = 0; sources = Hashtbl.create 8; kinds = Hashtbl.create 8 }

let copy t =
  { whole = t.whole; sources = Hashtbl.copy t.sources; kinds = Hashtbl.copy t.kinds }

let bump tbl name =
  Hashtbl.replace tbl name
    (1 + (match Hashtbl.find_opt tbl name with Some n -> n | None -> 0))

let bump_whole t = t.whole <- t.whole + 1

let bump_source t s =
  bump t.sources s;
  bump_whole t

let bump_kind t k =
  bump t.kinds k;
  bump_whole t

let bump_all t =
  t.whole <- t.whole + 1;
  Hashtbl.iter (fun s _ -> bump t.sources s) (Hashtbl.copy t.sources);
  Hashtbl.iter (fun k _ -> bump t.kinds k) (Hashtbl.copy t.kinds)

let get t = function
  | Whole -> t.whole
  | Source s -> ( match Hashtbl.find_opt t.sources s with Some n -> n | None -> 0)
  | Link_kind k -> ( match Hashtbl.find_opt t.kinds k with Some n -> n | None -> 0)

(* stable total order: Whole < Source < Link_kind, then by name *)
let compare_dep a b =
  let rank = function Whole -> 0 | Source _ -> 1 | Link_kind _ -> 2 in
  match (a, b) with
  | Source x, Source y | Link_kind x, Link_kind y -> String.compare x y
  | _ -> compare (rank a) (rank b)

let key t deps =
  let deps = List.sort_uniq compare_dep deps in
  String.concat "|"
    (List.map
       (fun d ->
         match d with
         | Whole -> Printf.sprintf "w=%d" (get t d)
         | Source s -> Printf.sprintf "s:%s=%d" s (get t d)
         | Link_kind k -> Printf.sprintf "k:%s=%d" k (get t d))
       deps)
