open Aladin_links
open Aladin_access

type t = {
  w : Warehouse.t;
  mutable current : Browser.view option;
}

let create w = { w; current = None }

let help_text =
  "commands:\n\
  \  sources | view <acc> | view <source> <acc> | follow <n> | search <terms>\n\
  \  sql <query> | links <acc> | dups | reject <n> | save <dir> | help | quit\n"

let sources_text t =
  Aladin_system.summary t.w

let resolve_view t args =
  let browser = Warehouse.browser t.w in
  match args with
  | [ accession ] -> (
      match Search.resolve (Warehouse.search t.w) accession with
      | Some obj -> Browser.view browser obj
      | None -> None)
  | [ source; accession ] -> Browser.view_accession browser ~source accession
  | _ -> None

let view t args =
  match resolve_view t args with
  | Some v ->
      t.current <- Some v;
      Browser.render v
  | None -> Printf.sprintf "object %s not found\n" (String.concat " " args)

let follow t n =
  match t.current with
  | None -> "nothing viewed yet; use: view <accession>\n"
  | Some v -> (
      match Browser.follow (Warehouse.browser t.w) v n with
      | Some v2 ->
          t.current <- Some v2;
          Browser.render v2
      | None -> Printf.sprintf "no link %d on %s\n" n (Objref.to_string v.obj))

let search t terms =
  let hits = Search.search (Warehouse.search t.w) (String.concat " " terms) in
  if hits = [] then "(no hits)\n"
  else
    String.concat ""
      (List.map
         (fun (h : Search.hit) ->
           Printf.sprintf "%-28s %.3f  [%s]\n" (Objref.to_string h.obj) h.score
             (String.concat ", " h.matched))
         hits)

let sql t query =
  match Warehouse.sql t.w query with
  | result -> Sql_eval.render_result result ^ "\n"
  | exception Sql_parser.Parse_error msg -> Printf.sprintf "parse error: %s\n" msg
  | exception Sql_lexer.Lex_error msg -> Printf.sprintf "lex error: %s\n" msg
  | exception Sql_eval.Eval_error msg -> Printf.sprintf "error: %s\n" msg

let links t accession =
  match Search.resolve (Warehouse.search t.w) accession with
  | None -> Printf.sprintf "object %s not found\n" accession
  | Some obj ->
      let ls = Aladin_metadata.Repository.links_of (Warehouse.repository t.w) obj in
      if ls = [] then "(no links)\n"
      else
        String.concat ""
          (List.map (fun l -> Format.asprintf "%a@." Link.pp l) ls)

let dups t =
  match Warehouse.duplicates t.w with
  | None -> "(no duplicate analysis)\n"
  | Some d ->
      Printf.sprintf "%d clusters\n%s" (List.length d.clusters)
        (String.concat ""
           (List.map
              (fun c -> Printf.sprintf "  { %s }\n" (String.concat ", " c))
              d.clusters))

let reject t n =
  match t.current with
  | None -> "nothing viewed yet; use: view <accession>\n"
  | Some v -> (
      match List.nth_opt v.linked n with
      | None -> Printf.sprintf "no link %d\n" n
      | Some l ->
          Warehouse.reject_link t.w l;
          (* refresh the view so the link disappears *)
          t.current <- Browser.view (Warehouse.browser t.w) v.obj;
          Printf.sprintf "rejected: %s\n" (Format.asprintf "%a" Link.pp l))

let save t dir =
  match Warehouse.save_dir t.w dir with
  | Ok () -> Printf.sprintf "warehouse saved to %s\n" dir
  | Error msg -> Printf.sprintf "save failed: %s\n" msg
  | exception Sys_error msg -> Printf.sprintf "save failed: %s\n" msg

let execute t line =
  let words =
    String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "")
  in
  match words with
  | [] -> `Output ""
  | [ "quit" ] | [ "exit" ] -> `Quit
  | [ "help" ] -> `Output help_text
  | [ "sources" ] -> `Output (sources_text t)
  | "view" :: args when args <> [] -> `Output (view t args)
  | [ "follow"; n ] -> (
      match int_of_string_opt n with
      | Some i -> `Output (follow t i)
      | None -> `Output "usage: follow <n>\n")
  | "search" :: terms when terms <> [] -> `Output (search t terms)
  | "sql" :: rest when rest <> [] -> `Output (sql t (String.concat " " rest))
  | [ "links"; accession ] -> `Output (links t accession)
  | [ "dups" ] -> `Output (dups t)
  | [ "reject"; n ] -> (
      match int_of_string_opt n with
      | Some i -> `Output (reject t i)
      | None -> `Output "usage: reject <n>\n")
  | [ "save"; dir ] -> `Output (save t dir)
  | cmd :: _ -> `Output (Printf.sprintf "unknown command %s; try help\n" cmd)

let repl t ic oc =
  let rec loop () =
    output_string oc "aladin> ";
    flush oc;
    match input_line ic with
    | exception End_of_file -> ()
    | line -> (
        match execute t line with
        | `Quit -> ()
        | `Output s ->
            output_string oc s;
            flush oc;
            loop ())
  in
  loop ()
