(** The unified access-engine facade (§4.6): build once, serve many.

    Every access-layer entry point — the CLI subcommands, the examples,
    and the [lib/serve] daemon — goes through this one handle instead of
    constructing {!Aladin_access.Search} / {!Aladin_access.Browser} /
    {!Aladin_access.Link_query} structures itself. {!create} forces all
    of them eagerly, exactly once; browse, search, SQL and link-path
    queries then share the same session state, so a long-lived process
    (or a sequence of CLI operations over one warehouse) never pays the
    per-command rebuild that the old entry points did.

    Invalidation is typed: the facade derives cache keys ({!key}) from
    the warehouse's per-source / per-link-kind {!Generation.t}
    counters. A consumer declares which dependencies a cached
    computation reads (a [Source], a [Link_kind], or [Whole]); its key
    then changes exactly when one of those moved, so — unlike the old
    single generation counter — the serving layer's response cache
    survives updates of unrelated sources. *)

open Aladin_relational
open Aladin_links
open Aladin_access
module Run_report = Aladin_resilience.Run_report
module Import_error = Aladin_resilience.Import_error

type t

val create : Warehouse.t -> t
(** Wrap a warehouse and eagerly build the search index, browser, link
    query and path-rank structures over its current contents. *)

val integrate : ?config:Config.t -> Catalog.t list -> t
(** [create (Warehouse.integrate catalogs)] — the one-step form the
    examples use. *)

val warehouse : t -> Warehouse.t

val epoch : t -> int
(** Monotone counter identifying the access structures this engine
    serves from; bumped whenever they are rebuilt ({!refresh} and the
    mutations below). Equal epochs guarantee the same session
    structures. Diagnostic only — deliberately {e not} part of {!key},
    since rebuilds are deterministic functions of the warehouse state
    the generation counters already pin. *)

val key : t -> Generation.dep list -> string
(** Typed cache key over the given dependencies:
    {!Generation.key} of the warehouse's counters. Stable exactly
    while none of the named dependencies changed — keys over
    [[Source s]] survive additions and updates of every other source,
    keys over [[Link_kind k]] survive changes to other kinds, and
    [[Whole]] moves on every warehouse mutation. Equal keys guarantee
    byte-identical query results (see {!Aladin_access.Search}'s
    determinism contract). *)

val refresh : t -> unit
(** Rebuild the access structures from the warehouse's current state,
    bump the {!epoch} and conservatively bump every tracked generation
    counter ({!Generation.bump_all}), invalidating every derived
    {!key}. Call after mutating the warehouse directly (anything not
    routed through this facade — the facade's own mutations bump only
    the counters they touched). *)

(** {2 Browse} *)

val objects : t -> Objref.t list

val view : t -> Objref.t -> Browser.view option

val browse : t -> ?source:string -> string -> Browser.view option
(** Page for an accession: with [source], a direct lookup in that
    source; otherwise the accession is resolved warehouse-wide first. *)

val follow : t -> Browser.view -> int -> Browser.view option

val browser : t -> Browser.t
(** The shared browser handle (for {!Aladin_access.Html_export}). *)

(** {2 Search} *)

val search : t -> ?limit:int -> string -> Search.hit list

val focused :
  t -> ?source:string -> ?field:string -> ?limit:int -> string -> Search.hit list

val resolve : t -> string -> Objref.t option
(** Exact accession lookup ("known-item" access). *)

(** {2 Query} *)

val query : t -> string -> (Relation.t, string) result
(** SQL over the integrated warehouse. Parse and evaluation errors come
    back as [Error msg] — the facade never raises. *)

val links : ?kind:string -> t -> Link.t list
(** Discovered links, optionally filtered by {!Link.kind_name}. *)

val traverse :
  t -> start:Objref.t list -> steps:Link_query.step list -> Link_query.hit list
(** Cross-database path query over the link graph. *)

val related : t -> Objref.t -> (Objref.t * float) list
(** Objects ranked by link-path evidence ({!Path_rank.rank_from}). *)

val paths : t -> Path_rank.t
(** The shared path-rank handle (for pairwise
    {!Path_rank.relatedness}). *)

(** {2 Mutation} *)

val add_source :
  ?import_errors:Import_error.record_error list ->
  t ->
  Catalog.t ->
  Run_report.t
(** {!Warehouse.add_source}, then rebuild the access structures. Only
    the new source's (and any changed link kinds') generation counters
    move, so cached keys over other sources stay valid. *)

val update_source : t -> Catalog.t -> changed_rows:int -> Warehouse.update_report
(** {!Warehouse.update_source}; the epoch (and the updated source's
    generation counter) move only on [`Reanalyzed] — a deferred change
    leaves query results, and every cache key, untouched. Even a
    reanalysis leaves keys over {e other} sources intact. *)

val reject_link : t -> Link.t -> unit
(** §6.2 feedback: the link disappears immediately and stays gone. *)
