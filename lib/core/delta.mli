(** The delta pipeline — the warehouse's only link-discovery and
    duplicate-detection path.

    [relink ~changed] recomputes exactly the source pairs touching the
    changed source: its pairwise xref/seq/text passes, the (cheap,
    global) shared-term pass, and the duplicate pairs whose endpoints'
    exclude-attribute sets shifted under the new correspondences. Every
    other pair's links are reused verbatim from the {!Pair_store}. A
    cold {!Warehouse.integrate} is this delta applied once per source,
    so incremental results are byte-identical to a full rebuild by
    construction.

    Failure semantics mirror the batch pipeline per recomputed pair: a
    pass that is disabled, budget-zero, over budget or crashed leaves
    the {e recomputed} pairs without its links (just as a from-scratch
    run would), while reused pairs keep theirs. Step and pass names,
    budget keys and report shapes are identical to the old
    whole-warehouse relink. *)

open Aladin_links
module Dup = Aladin_dup
module Report = Aladin_resilience.Run_report

type repr_cache
(** Per-source duplicate representations, cached across delta runs and
    keyed by the exclude-attribute triples that shaped them. *)

val cache_create : unit -> repr_cache

val cache_invalidate : repr_cache -> string -> unit
(** Forget one source's cached representations (its rows changed). *)

type audit = {
  recomputed_pairs : (string * string) list;
      (** canonical source pairs this run recomputed (link passes, dup
          pass, or both) *)
  reused_pairs : (string * string) list;
      (** pairs whose links were merged verbatim from the store *)
}

type outcome = {
  link_step : Report.step_report;  (** "link discovery", with pass children *)
  dup_step : Report.step_report;  (** "duplicate detection" *)
  report : Linker.report option;
      (** whole-warehouse view synthesized from the store (reused pairs
          included); [None] when the link phase was skipped or failed *)
  dups : Dup.Dup_detect.result option;
      (** whole-warehouse duplicates, clusters rebuilt over the merged
          links; [None] when the dup phase was skipped or failed *)
  seq_state : Seq_links.state option;
      (** the persistent homology index to carry to the next run *)
  audit : audit;
  changed_kinds : Link.kind list;
      (** link kinds whose merged set actually changed — what typed
          cache invalidation bumps *)
}

val relink :
  cfg:Config.t ->
  pool:Aladin_par.Pool.t ->
  profiles:Profile_list.t ->
  source_order:string list ->
  store:Pair_store.t ->
  cache:repr_cache ->
  seq_state:Seq_links.state option ->
  changed:string ->
  unit ->
  outcome
(** [source_order] is the warehouse catalog order with [changed] last
    (an updated source moves to the end, which is what makes the
    persistent homology index reusable: the others' relative order is
    unchanged). The store is mutated in place. *)
