open Aladin_relational
open Aladin_discovery
open Aladin_links
open Aladin_metadata
open Aladin_access
module Dup = Aladin_dup
module Obs = Aladin_obs
module Par = Aladin_par
module Res = Aladin_resilience
module Run_report = Aladin_resilience.Run_report
module Import_error = Aladin_resilience.Import_error
module Report = Run_report
module Snapshot = Aladin_store.Snapshot
module Load_report = Aladin_store.Load_report
module Journal = Aladin_store.Journal
module Fault = Aladin_store.Fault
module Crc32 = Aladin_store.Crc32

type t = {
  cfg : Config.t;
  pool : Par.Pool.t;
  mutable catalog_list : Catalog.t list;
  mutable profile_list : Profile_list.t;
  repo : Repository.t;
  mutable pair_store : Pair_store.t;
  repr_cache : Delta.repr_cache;
  gen : Generation.t;
  mutable last_report : Linker.report option;
  mutable last_dups : Dup.Dup_detect.result option;
  mutable last_delta : Delta.audit option;
  mutable cached_browser : Browser.t option;
  mutable cached_search : Search.t option;
  mutable cached_paths : Path_rank.t option;
  mutable cached_link_query : Link_query.t option;
  pending_changes : (string, int) Hashtbl.t;
  feedback : Feedback.t;
  mutable seq_state : Seq_links.state option;
  mutable last_trace : Obs.Trace.t option;
  mutable revision : int;
  mutable journal : Journal.t option;
}

let create ?(config = Config.default) () =
  {
    cfg = config;
    pool = Par.Pool.get ~domains:config.domains ();
    catalog_list = [];
    profile_list = Profile_list.empty;
    repo = Repository.create ();
    pair_store = Pair_store.create ();
    repr_cache = Delta.cache_create ();
    gen = Generation.create ();
    last_report = None;
    last_dups = None;
    last_delta = None;
    cached_browser = None;
    cached_search = None;
    cached_paths = None;
    cached_link_query = None;
    pending_changes = Hashtbl.create 8;
    feedback = Feedback.create ();
    seq_state = None;
    last_trace = None;
    revision = 0;
    journal = None;
  }

let config t = t.cfg

let revision t = t.revision

let generation t = t.gen

let last_delta t = t.last_delta

let invalidate t =
  t.revision <- t.revision + 1;
  Generation.bump_whole t.gen;
  t.cached_browser <- None;
  t.cached_search <- None;
  t.cached_paths <- None;
  t.cached_link_query <- None

let last_trace t = t.last_trace

let run_reports t = Repository.run_reports t.repo

let run_report t source = Repository.run_report t.repo source

(* --- resilience plumbing --- *)

(* run one pipeline step inside its span, error boundary and retry
   envelope, stamping the span with the resilience status so traces show
   what degraded. Transient I/O failures (see Retry.classify) are retried
   with deterministic backoff before the boundary ever records an error;
   a second or later attempt leaves a "retry.attempts" attribute. *)
let bounded ~name ?budget f =
  Obs.Trace.ambient_span_timed name (fun () ->
      let attempts = ref 1 in
      let res =
        Res.Boundary.protect ~step:name ?budget (fun () ->
            let v, n = Res.Retry.run_counted ~step:name f in
            attempts := n;
            v)
      in
      if !attempts > 1 then
        Obs.Trace.ambient_add_attr "retry.attempts" (string_of_int !attempts);
      Obs.Trace.ambient_add_attr "status" (Res.Boundary.status_of res);
      res)

(* marker span for a step skipped before doing any work *)
let skipped_span name =
  Obs.Trace.ambient_span name ~attrs:[ ("status", "skipped") ] (fun () -> ())

(* steps 4+5 go through the delta pipeline: recompute only the source
   pairs the changed source touches (plus dup pairs whose exclude sets
   shifted), merge every other pair's links verbatim from the pair
   store. The repository always reflects the merged store view, and the
   typed generation records which link kinds actually changed. *)
let relink ~changed t =
  let source_order = List.map Catalog.name t.catalog_list in
  let out =
    Delta.relink ~cfg:t.cfg ~pool:t.pool ~profiles:t.profile_list
      ~source_order ~store:t.pair_store ~cache:t.repr_cache
      ~seq_state:t.seq_state ~changed ()
  in
  t.seq_state <- out.Delta.seq_state;
  t.last_report <- out.report;
  t.last_dups <- out.dups;
  t.last_delta <- Some out.audit;
  List.iter
    (fun k -> Generation.bump_kind t.gen (Link.kind_name k))
    out.changed_kinds;
  Repository.set_links t.repo
    (Feedback.filter_links t.feedback (Pair_store.all_links t.pair_store));
  Repository.set_correspondences t.repo
    (Pair_store.correspondences t.pair_store);
  (out.link_step, out.dup_step)

let import_step_report ~name ~catalog import_errors =
  let outcome =
    match import_errors with
    | [] -> Report.Ok
    | errs ->
        Report.Degraded
          (List.map
             (fun (e : Res.Import_error.record_error) ->
               {
                 Report.code = "record_error";
                 detail = Res.Import_error.record_error_to_string e;
               })
             errs)
  in
  (* step 1 ran when the caller produced the catalog; a marker span keeps
     all five steps visible in every trace *)
  Obs.Trace.ambient_span "import"
    ~attrs:
      [ ("source", name);
        ("rows", string_of_int (Catalog.total_rows catalog));
        ("status", Report.outcome_name outcome) ]
    (fun () -> ());
  Report.step "import" outcome

let add_source_raw ?trace ?(import_errors = []) t catalog =
  let name = Catalog.name catalog in
  let tr =
    match trace with
    | Some tr -> tr
    | None -> Obs.Trace.create ~name:(Printf.sprintf "add-source %s" name) ()
  in
  let report =
    Obs.Trace.with_ambient tr (fun () ->
        let prev_catalogs = t.catalog_list in
        t.catalog_list <-
          List.filter (fun c -> Catalog.name c <> name) t.catalog_list
          @ [ catalog ];
        let import_step = import_step_report ~name ~catalog import_errors in
        (* step 2: profile + accession + FK inference + primary choice.
           Required: on failure the source is quarantined — rolled back
           out of the warehouse — and the remaining steps are skipped. *)
        let res2, secs2 =
          bounded ~name:"primary discovery" ?budget:t.cfg.budgets.primary
            (fun () ->
              let profile =
                Obs.Trace.ambient_span "profile" (fun () ->
                    Profile.compute catalog)
              in
              let cands =
                Obs.Trace.ambient_span "accession candidates" (fun () ->
                    Accession.candidates ~params:t.cfg.accession profile)
              in
              let fks =
                Obs.Trace.ambient_span "fk inference" (fun () ->
                    Feedback.filter_fks t.feedback ~source:name
                      (Inclusion.infer ~params:t.cfg.inclusion ~pool:t.pool
                         profile))
              in
              let graph, primary =
                Obs.Trace.ambient_span "primary choice" (fun () ->
                    let graph =
                      Fk_graph.build
                        ~relations:(Catalog.relation_names catalog) fks
                    in
                    (graph, Primary.choose graph cands))
              in
              (profile, cands, fks, graph, primary))
        in
        match res2 with
        | Error err ->
            t.catalog_list <- prev_catalogs;
            invalidate t;
            let dep n =
              Report.step n
                (Report.Skipped (Report.Dependency_failed "primary discovery"))
            in
            {
              Report.source = name;
              quarantined = true;
              steps =
                [ import_step;
                  Report.step ~seconds:secs2 "primary discovery"
                    (Report.Failed err);
                  dep "secondary discovery"; dep "link discovery";
                  dep "duplicate detection" ];
            }
        | Ok (profile, cands, fks, graph, primary) ->
            (* step 3: secondary structure. Optional: a timeout or crash
               just means no secondary relations for this source. *)
            let secondary, step3 =
              match t.cfg.budgets.secondary with
              | Some b when b <= 0.0 ->
                  skipped_span "secondary discovery";
                  ( None,
                    Report.step "secondary discovery"
                      (Report.Skipped Report.Budget_zero) )
              | budget -> (
                  let res3, secs3 =
                    bounded ~name:"secondary discovery" ?budget (fun () ->
                        Option.map
                          (fun (p : Primary.scored) ->
                            Secondary.discover ~max_len:t.cfg.max_path_len
                              graph ~primary:p.relation)
                          primary)
                  in
                  match res3 with
                  | Ok secondary ->
                      ( secondary,
                        Report.step ~seconds:secs3 "secondary discovery"
                          Report.Ok )
                  | Error (Report.Timeout b) ->
                      ( None,
                        Report.step ~seconds:secs3 "secondary discovery"
                          (Report.Skipped (Report.Budget_exhausted b)) )
                  | Error (Report.Crashed _ as e) ->
                      ( None,
                        Report.step ~seconds:secs3 "secondary discovery"
                          (Report.Failed e) ))
            in
            let sp =
              { Source_profile.profile; accession_candidates = cands; fks;
                graph; primary; secondary }
            in
            t.profile_list <- Profile_list.add t.profile_list sp;
            Repository.add_source t.repo sp;
            (* steps 4 + 5 *)
            let link_step, dup_step = relink ~changed:name t in
            Hashtbl.remove t.pending_changes name;
            Generation.bump_source t.gen name;
            invalidate t;
            {
              Report.source = name;
              quarantined = false;
              steps =
                [ import_step;
                  Report.step ~seconds:secs2 "primary discovery" Report.Ok;
                  step3; link_step; dup_step ];
            })
  in
  t.last_trace <- Some tr;
  Repository.set_provenance t.repo (Obs.Sink.to_json tr);
  Repository.set_run_report t.repo report;
  report

let report_import_failure t ~source err =
  let dep n =
    Report.step n (Report.Skipped (Report.Dependency_failed "import"))
  in
  let report =
    {
      Report.source;
      quarantined = true;
      steps =
        [ Report.step "import"
            (Report.Failed (Report.Crashed (Res.Import_error.to_string err)));
          dep "primary discovery"; dep "secondary discovery";
          dep "link discovery"; dep "duplicate detection" ];
    }
  in
  Repository.set_run_report t.repo report;
  report

(* --- write-ahead integration journal (resume protocol) ---

   Each source addition becomes one journaled step: append an intent
   record, run the (idempotent, deterministic) pipeline, durably
   checkpoint the step's artifacts — the source's relational members,
   the cumulative metadata repository, and the per-source-pair link
   sets — then append the commit record. A process killed anywhere
   leaves either an uncommitted step (recomputed on resume), a torn
   trailing journal line (dropped on replay), or a committed step
   (restored without recomputation). *)

let slug s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '-')
    s

(* content digest of a catalog, over exactly the members a checkpoint
   stores — detects a re-supplied source file that differs from the one
   the journal was written against *)
let catalog_digest catalog =
  Aladin_formats.Dump.members_of_catalog catalog
  |> List.fold_left
       (fun acc (m : Snapshot.member) ->
         Crc32.update (Crc32.update acc m.path) m.content)
       0
  |> Crc32.to_hex

let config_digest cfg = Crc32.to_hex (Crc32.string (Config.to_string cfg))

(* checkpoint members for one committed source step: the cumulative
   repository is always stored (it carries links, correspondences, run
   reports and provenance for the whole prefix); a non-quarantined step
   also stores the source's own relational dump and, for inspection,
   the link sets this source participates in, grouped by unordered
   source pair. Resume reads only metadata.txt and source/ — the pair
   CSVs stay per-source so checkpoint cost is O(new links), not
   O(all links) per step. *)
let commit_members t ~catalog ~quarantined =
  (* Opaque, not Records: the journal already CRC-verifies whole
     artifacts and falls back to the previous step's checkpoint on
     damage, so the per-record CRCs Records adds would be pure
     overhead here *)
  let meta_member =
    { Snapshot.path = "metadata.txt"; kind = Snapshot.Opaque;
      content = Repository.save t.repo }
  in
  (* like metadata.txt this member is cumulative: it carries the whole
     per-pair store so resume restores it without recomputation *)
  let pairs_member =
    { Snapshot.path = "pairs.txt"; kind = Snapshot.Pairs;
      content = Pair_store.save t.pair_store }
  in
  if quarantined then [ meta_member ]
  else
    let cat_members =
      List.map
        (fun (m : Snapshot.member) -> { m with path = "source/" ^ m.path })
        (Aladin_formats.Dump.members_of_catalog catalog)
    in
    let this = Catalog.name catalog in
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun (l : Link.t) ->
        let a = l.src.source and b = l.dst.source in
        if a = this || b = this then begin
          let key = if a <= b then (a, b) else (b, a) in
          match Hashtbl.find_opt tbl key with
          | Some ls -> Hashtbl.replace tbl key (l :: ls)
          | None ->
              order := key :: !order;
              Hashtbl.replace tbl key [ l ]
        end)
      (Repository.links t.repo);
    let pair_members =
      List.rev_map
        (fun ((a, b) as key) ->
          { Snapshot.path = Printf.sprintf "links/%s__%s.csv" (slug a) (slug b);
            kind = Snapshot.Csv;
            content = Link_export.to_csv (List.rev (Hashtbl.find tbl key)) })
        !order
    in
    (meta_member :: pairs_member :: cat_members) @ pair_members

let journaled_add_source ?trace ?import_errors t j catalog =
  let name = Catalog.name catalog in
  let step = "source:" ^ name in
  Fault.step step;
  let seq = Journal.intent j ~step in
  let report = add_source_raw ?trace ?import_errors t catalog in
  Fault.step (step ^ " computed");
  let info =
    [ ("source", name);
      ("digest", catalog_digest catalog);
      ("quarantined", (if report.Report.quarantined then "1" else "0")) ]
  in
  ignore
    (Journal.commit j ~seq ~step ~info
       (commit_members t ~catalog ~quarantined:report.Report.quarantined));
  Fault.step (step ^ " committed");
  report

(* public add_source: journaled when the warehouse carries a journal
   (integrate_journaled / resumed), bare otherwise *)
let add_source ?trace ?import_errors t catalog =
  match t.journal with
  | Some j -> journaled_add_source ?trace ?import_errors t j catalog
  | None -> add_source_raw ?trace ?import_errors t catalog

(* --- resume: restore the committed prefix without recomputation --- *)

(* mirror of add_source's step-2/3 profile computation, without spans or
   boundaries: restored profiles must be byte-for-byte what the original
   run computed, including the budget-zero secondary skip *)
let recompute_profile t catalog =
  let name = Catalog.name catalog in
  let profile = Profile.compute catalog in
  let cands = Accession.candidates ~params:t.cfg.accession profile in
  let fks =
    Feedback.filter_fks t.feedback ~source:name
      (Inclusion.infer ~params:t.cfg.inclusion ~pool:t.pool profile)
  in
  let graph =
    Fk_graph.build ~relations:(Catalog.relation_names catalog) fks
  in
  let primary = Primary.choose graph cands in
  let secondary =
    match t.cfg.budgets.secondary with
    | Some b when b <= 0.0 -> None
    | Some _ | None ->
        Option.map
          (fun (p : Primary.scored) ->
            Secondary.discover ~max_len:t.cfg.max_path_len graph
              ~primary:p.relation)
          primary
  in
  { Source_profile.profile; accession_candidates = cands; fks; graph;
    primary; secondary }

type restored_step = { rs_name : string; rs_catalog : Catalog.t option }

(* the longest prefix of commit records whose artifacts all verify;
   anything after the first damaged artifact is recomputed instead.
   Returns the prefix plus the last verified repository and pair-store
   documents, which are authoritative for links/correspondences/reports
   and the per-pair link sets. *)
let scan_committed ~dir commits =
  let rec go acc meta pairs = function
    | [] -> (List.rev acc, meta, pairs)
    | (c : Journal.committed) :: rest -> (
        let name =
          match List.assoc_opt "source" c.info with
          | Some n -> n
          | None -> c.step
        in
        let quarantined = List.assoc_opt "quarantined" c.info = Some "1" in
        match Journal.read_artifact ~dir c "metadata.txt" with
        | None -> (List.rev acc, meta, pairs)
        | Some meta_doc ->
            (* absent in quarantined steps and in pre-pair-store
               journals; the last verified one wins, like metadata *)
            let pairs =
              match Journal.read_artifact ~dir c "pairs.txt" with
              | Some doc -> Some doc
              | None -> pairs
            in
            if quarantined then
              go
                ({ rs_name = name; rs_catalog = None } :: acc)
                (Some meta_doc) pairs rest
            else
              let member_paths =
                List.filter_map
                  (fun (a : Journal.artifact) ->
                    if
                      String.length a.a_path > 7
                      && String.sub a.a_path 0 7 = "source/"
                    then Some a.a_path
                    else None)
                  c.artifacts
              in
              let rec read_all acc = function
                | [] -> Some (List.rev acc)
                | p :: ps -> (
                    match Journal.read_artifact ~dir c p with
                    | None -> None
                    | Some content ->
                        read_all
                          ((String.sub p 7 (String.length p - 7), content)
                           :: acc)
                          ps)
              in
              (match read_all [] member_paths with
              | None -> (List.rev acc, meta, pairs)
              | Some local ->
                  let cat, _errs =
                    Aladin_formats.Dump.catalog_of_members ~name local
                  in
                  if Catalog.relations cat = [] then (List.rev acc, meta, pairs)
                  else
                    go
                      ({ rs_name = name; rs_catalog = Some cat } :: acc)
                      (Some meta_doc) pairs rest))
  in
  go [] None None commits

let apply_restored t steps meta_doc pairs_doc =
  List.iter
    (fun rs ->
      match rs.rs_catalog with
      | None -> ()
      | Some catalog ->
          t.catalog_list <-
            List.filter (fun c -> Catalog.name c <> rs.rs_name) t.catalog_list
            @ [ catalog ];
          let sp = recompute_profile t catalog in
          t.profile_list <- Profile_list.add t.profile_list sp;
          Repository.add_source t.repo sp)
    steps;
  (match meta_doc with
  | None -> ()
  | Some doc ->
      let meta, _dropped = Repository.load_salvaging doc in
      Repository.set_links t.repo (Repository.links meta);
      Repository.set_correspondences t.repo (Repository.correspondences meta);
      (match Repository.provenance meta with
      | Some p -> Repository.set_provenance t.repo p
      | None -> ());
      List.iter
        (fun r -> Repository.set_run_report t.repo (Report.mark_resumed r))
        (Repository.run_reports meta));
  (* restore the per-pair link store the same way: the checkpointed
     document is authoritative, and anything it lost (damaged groups,
     pre-pair-store journals) is re-seeded from the repository's merged
     links so the next delta reuses instead of recomputing *)
  (match pairs_doc with
  | None -> ()
  | Some doc ->
      let ps, _dropped = Pair_store.load doc in
      t.pair_store <- ps);
  Pair_store.seed_missing t.pair_store
    ~links:(Repository.links t.repo)
    ~correspondences:(Repository.correspondences t.repo);
  (* rebuild the persistent homology index over the restored prefix:
     sequences are re-indexed without any searching, and the
     checkpointed Seq_similarity links seed the accumulated set — the
     next add_source then pays only its own incremental alignment
     instead of re-running every committed source's searches *)
  let restored_names =
    List.filter_map
      (fun rs -> if rs.rs_catalog = None then None else Some rs.rs_name)
      steps
  in
  if
    restored_names <> [] && t.cfg.incremental_seq && t.cfg.linker.enable_seq
  then begin
    let st = Seq_links.state_create ~params:t.cfg.linker.seq () in
    List.iter
      (fun source -> Seq_links.state_index_source st t.profile_list ~source)
      restored_names;
    Seq_links.state_seed_links st
      (List.filter
         (fun (l : Link.t) -> l.kind = Link.Seq_similarity)
         (Repository.links t.repo));
    t.seq_state <- Some st
  end;
  invalidate t

(* --- the integration plan, carried in the journal header --- *)

let plan_meta ~cfg entries =
  ("config", config_digest cfg)
  :: ("sources", string_of_int (List.length entries))
  :: List.concat
       (List.mapi
          (fun i (name, digest, path) ->
            let key k = Printf.sprintf "source.%d.%s" i k in
            [ (key "name", name); (key "digest", digest) ]
            @ (match path with Some p -> [ (key "path", p) ] | None -> []))
          entries)

let plan_of_meta meta =
  match Option.bind (List.assoc_opt "sources" meta) int_of_string_opt with
  | None -> Error "journal header carries no integration plan"
  | Some n ->
      let rec go acc i =
        if i >= n then Ok (List.rev acc)
        else
          let key k = Printf.sprintf "source.%d.%s" i k in
          match
            (List.assoc_opt (key "name") meta,
             List.assoc_opt (key "digest") meta)
          with
          | Some name, Some digest ->
              go
                ((name, digest, List.assoc_opt (key "path") meta) :: acc)
                (i + 1)
          | _ -> Error "journal header carries a truncated integration plan"
      in
      go [] 0

type resume_info = {
  resumed_sources : string list;
  executed_sources : string list;
  dropped_records : int;
}

type journal_source = {
  js_name : string;
  js_path : string option;
  js_committed : bool;
}

let journal_status journal =
  match Journal.replay journal with
  | Error e -> Error e
  | Ok r -> (
      match plan_of_meta r.meta with
      | Error e -> Error e
      | Ok plan ->
          let restored, _, _ = scan_committed ~dir:journal r.committed in
          let names = List.map (fun rs -> rs.rs_name) restored in
          Ok
            (List.map
               (fun (n, _, path) ->
                 { js_name = n; js_path = path;
                   js_committed = List.mem n names })
               plan))

let resume_journaled ~config ?trace journal catalogs =
  match Journal.open_resume journal with
  | Error e -> Error e
  | Ok (j, r) -> (
      match plan_of_meta r.meta with
      | Error e -> Error e
      | Ok plan ->
          if List.assoc_opt "config" r.meta <> Some (config_digest config)
          then
            Error
              "journal was written under a different configuration; resume \
               with the original one"
          else begin
            let find_plan n =
              List.find_opt (fun (pn, _, _) -> pn = n) plan
            in
            let mismatch =
              List.find_map
                (fun c ->
                  let n = Catalog.name c in
                  match find_plan n with
                  | None ->
                      Some
                        (Printf.sprintf
                           "source %S is not part of the journaled plan" n)
                  | Some (_, digest, _) ->
                      if catalog_digest c <> digest then
                        Some
                          (Printf.sprintf
                             "source %S differs from the journaled plan \
                              (digest mismatch)"
                             n)
                      else None)
                catalogs
            in
            match mismatch with
            | Some e -> Error e
            | None -> (
                let restored, meta_doc, pairs_doc =
                  scan_committed ~dir:journal r.committed
                in
                let t = create ~config () in
                t.journal <- Some j;
                apply_restored t restored meta_doc pairs_doc;
                let restored_names =
                  List.fold_left
                    (fun acc rs ->
                      if List.mem rs.rs_name acc then acc
                      else acc @ [ rs.rs_name ])
                    [] restored
                in
                let remaining =
                  List.filter
                    (fun (n, _, _) -> not (List.mem n restored_names))
                    plan
                in
                let rec run_remaining executed = function
                  | [] -> Ok (List.rev executed)
                  | (n, _, path) :: rest -> (
                      match
                        List.find_opt (fun c -> Catalog.name c = n) catalogs
                      with
                      | None ->
                          Error
                            (Printf.sprintf
                               "source %S is uncommitted in the journal and \
                                was not re-supplied%s"
                               n
                               (match path with
                               | Some p ->
                                   Printf.sprintf
                                     " (originally imported from %s)" p
                               | None -> ""))
                      | Some c ->
                          ignore (add_source ?trace t c);
                          run_remaining (n :: executed) rest)
                in
                match run_remaining [] remaining with
                | Error e -> Error e
                | Ok executed ->
                    Ok
                      ( t,
                        { resumed_sources = restored_names;
                          executed_sources = executed;
                          dropped_records = r.dropped } ))
          end)

let integrate_journaled ?(config = Config.default) ?trace ?(source_paths = [])
    ~journal catalogs =
  let names = List.map Catalog.name catalogs in
  let rec first_dup = function
    | [] -> None
    | n :: rest -> if List.mem n rest then Some n else first_dup rest
  in
  match first_dup names with
  | Some n ->
      Error
        (Printf.sprintf "duplicate source name %S in the integration plan" n)
  | None ->
      if Journal.exists journal then
        resume_journaled ~config ?trace journal catalogs
      else begin
        let entries =
          List.map
            (fun c ->
              ( Catalog.name c,
                catalog_digest c,
                List.assoc_opt (Catalog.name c) source_paths ))
            catalogs
        in
        match Journal.create journal ~meta:(plan_meta ~cfg:config entries) with
        | Error e -> Error e
        | Ok j ->
            let t = create ~config () in
            t.journal <- Some j;
            List.iter (fun c -> ignore (add_source ?trace t c)) catalogs;
            Ok
              ( t,
                { resumed_sources = []; executed_sources = names;
                  dropped_records = 0 } )
      end

let integrate ?config ?trace catalogs =
  let t = create ?config () in
  List.iter (fun c -> ignore (add_source ?trace t c)) catalogs;
  t

let sources t = List.map Catalog.name t.catalog_list

let catalogs t = t.catalog_list

let catalog t name = List.find_opt (fun c -> Catalog.name c = name) t.catalog_list

let profiles t = t.profile_list

let profile t name =
  Option.map
    (fun (e : Profile_list.entry) -> e.sp)
    (Profile_list.find t.profile_list name)

let links t = Repository.links t.repo

let link_report t = t.last_report

let duplicates t = t.last_dups

let repository t = t.repo

let browser t =
  match t.cached_browser with
  | Some b -> b
  | None ->
      let b = Browser.create t.profile_list t.repo in
      t.cached_browser <- Some b;
      b

let search t =
  match t.cached_search with
  | Some s -> s
  | None ->
      let s = Search.build t.profile_list in
      t.cached_search <- Some s;
      s

let path_index t =
  match t.cached_paths with
  | Some p -> p
  | None ->
      let p = Path_rank.build (links t) in
      t.cached_paths <- Some p;
      p

let resolve_table t name =
  match String.index_opt name '.' with
  | Some i ->
      let source = String.sub name 0 i in
      let rel = String.sub name (i + 1) (String.length name - i - 1) in
      Option.bind (catalog t source) (fun c -> Catalog.find c rel)
  | None -> (
      let hits =
        List.filter_map (fun c -> Catalog.find c name) t.catalog_list
      in
      match hits with [ r ] -> Some r | [] | _ :: _ :: _ -> None)

let sql t query = Sql_eval.run ~resolve:(resolve_table t) query

let notify_change t ~source ~changed_rows =
  let prior = try Hashtbl.find t.pending_changes source with Not_found -> 0 in
  let total = prior + changed_rows in
  Hashtbl.replace t.pending_changes source total;
  let rows =
    match catalog t source with Some c -> Catalog.total_rows c | None -> 0
  in
  if rows = 0 then `Reanalyze
  else if float_of_int total /. float_of_int rows >= t.cfg.change_threshold then
    `Reanalyze
  else `Defer

type update_report = {
  outcome : [ `Reanalyzed of Run_report.t | `Deferred ];
  delta : Delta.audit option;
      (* which source pairs the reanalysis recomputed vs reused; None
         when the change was deferred (nothing ran) *)
}

let update_source t new_catalog ~changed_rows =
  let source = Catalog.name new_catalog in
  match notify_change t ~source ~changed_rows with
  | `Defer -> { outcome = `Deferred; delta = None }
  | `Reanalyze ->
      Hashtbl.remove t.pending_changes source;
      let report = add_source t new_catalog in
      { outcome = `Reanalyzed report; delta = t.last_delta }

let link_query t =
  match t.cached_link_query with
  | Some q -> q
  | None ->
      let q = Link_query.create (links t) in
      t.cached_link_query <- Some q;
      q

let feedback t = t.feedback

let reject_link t (l : Link.t) =
  Feedback.reject_link t.feedback l;
  Repository.set_links t.repo (Feedback.filter_links t.feedback (links t));
  (* only this link's kind changed; routes watching other kinds keep
     their cached responses *)
  Generation.bump_kind t.gen (Link.kind_name l.kind);
  invalidate t

let reject_fk t ~source fk =
  Feedback.reject_fk t.feedback ~source fk;
  match catalog t source with
  | Some cat -> ignore (add_source t cat)
  | None -> ()

let save_dir t dir =
  let members =
    List.concat_map
      (fun cat ->
        let prefix = Catalog.name cat ^ "/" in
        List.map
          (fun (m : Snapshot.member) -> { m with path = prefix ^ m.path })
          (Aladin_formats.Dump.members_of_catalog cat))
      t.catalog_list
    @ [
        { Snapshot.path = "sources.txt"; kind = Snapshot.Records;
          content =
            (match sources t with
            | [] -> ""
            | ss -> String.concat "\n" ss ^ "\n") };
        { Snapshot.path = "metadata.txt"; kind = Snapshot.Records;
          content = Repository.save t.repo };
        { Snapshot.path = "pairs.txt"; kind = Snapshot.Pairs;
          content = Pair_store.save t.pair_store };
        { Snapshot.path = "feedback.txt"; kind = Snapshot.Records;
          content = Feedback.save t.feedback };
      ]
  in
  Snapshot.save dir members

(* the source directories present among the member paths, in first-seen
   (save) order — the fallback when sources.txt itself was lost *)
let sources_of_members members =
  List.fold_left
    (fun acc (m : Snapshot.member) ->
      match String.index_opt m.path '/' with
      | Some i ->
          let s = String.sub m.path 0 i in
          if List.mem s acc then acc else s :: acc
      | None -> acc)
    [] members
  |> List.rev

let load_dir ?config ?(reanalyze = false) dir =
  match Snapshot.load dir with
  | Error msg -> raise (Sys_error msg)
  | Ok (members, report) ->
      let report = ref report in
      let bump path n = report := Load_report.bump_salvaged !report path n in
      let source_names =
        match Snapshot.find members "sources.txt" with
        | Some doc -> String.split_on_char '\n' doc |> List.filter (( <> ) "")
        | None -> sources_of_members members
      in
      let catalogs =
        List.filter_map
          (fun name ->
            let prefix = name ^ "/" in
            let plen = String.length prefix in
            let local =
              List.filter_map
                (fun (m : Snapshot.member) ->
                  if
                    String.length m.path > plen
                    && String.sub m.path 0 plen = prefix
                  then
                    Some
                      ( String.sub m.path plen (String.length m.path - plen),
                        m.content )
                  else None)
                members
            in
            let cat, errs =
              Aladin_formats.Dump.catalog_of_members ~name local
            in
            (* decode-layer drops (e.g. rows a salvaged CSV lost to raggedness)
               surface on the member that caused them *)
            List.iter
              (fun (e : Import_error.record_error) ->
                match String.index_opt e.reason ':' with
                | Some i -> bump (prefix ^ String.sub e.reason 0 i) 1
                | None -> ())
              errs;
            if Catalog.relations cat = [] then None else Some cat)
          source_names
      in
      let feedback_doc = Snapshot.find members "feedback.txt" in
      if reanalyze then begin
        let t = integrate ?config catalogs in
        (match feedback_doc with
        | Some doc ->
            let saved, dropped = Feedback.load_salvaging doc in
            bump "feedback.txt" dropped;
            (* replay persisted rejections into the fresh warehouse *)
            Repository.set_links t.repo (Feedback.filter_links saved (links t))
        | None -> ());
        (t, !report)
      end
      else begin
        let t = create ?config () in
        t.catalog_list <- catalogs;
        (* profiles are needed for browsing/search; links come from the saved
           repository, so steps 4-5 are skipped *)
        List.iter
          (fun catalog ->
            let sp =
              Source_profile.analyze ~inclusion_params:t.cfg.inclusion catalog
            in
            t.profile_list <- Profile_list.add t.profile_list sp)
          catalogs;
        (match Snapshot.find members "metadata.txt" with
        | Some doc ->
            let meta, dropped = Repository.load_salvaging doc in
            bump "metadata.txt" dropped;
            Repository.set_links t.repo (Repository.links meta);
            Repository.set_correspondences t.repo (Repository.correspondences meta);
            (match Repository.provenance meta with
            | Some p -> Repository.set_provenance t.repo p
            | None -> ());
            List.iter (Repository.set_run_report t.repo) (Repository.run_reports meta)
        | None -> ());
        List.iter
          (fun catalog ->
            match Profile_list.find t.profile_list (Catalog.name catalog) with
            | Some e -> Repository.add_source t.repo e.sp
            | None -> ())
          catalogs;
        (* the per-pair link store: restored from its own member when
           present; any missing or damaged pair groups (and whole stores
           saved before the member existed) are re-seeded by partitioning
           the repository's merged links *)
        (match Snapshot.find members "pairs.txt" with
        | Some doc ->
            let ps, dropped = Pair_store.load doc in
            bump "pairs.txt" dropped;
            t.pair_store <- ps
        | None -> ());
        Pair_store.seed_missing t.pair_store ~links:(links t)
          ~correspondences:(Repository.correspondences t.repo);
        (t, !report)
      end
