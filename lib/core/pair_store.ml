open Aladin_links
module Serial = Aladin_metadata.Serial

type entry = {
  xref_links : Link.t list;
  correspondences : Xref_disc.correspondence list;
  seq_links : Link.t list;
  text_links : Link.t list;
  dup_links : Link.t list;
  dup_candidates : int;
}

let empty_entry =
  { xref_links = []; correspondences = []; seq_links = []; text_links = [];
    dup_links = []; dup_candidates = 0 }

type t = {
  tbl : (string * string, entry) Hashtbl.t;
  mutable onto_links : Link.t list;
  mutable onto_present : bool;
}

let create () = { tbl = Hashtbl.create 32; onto_links = []; onto_present = false }

let canon a b = if String.compare a b <= 0 then (a, b) else (b, a)

let find t a b = Hashtbl.find_opt t.tbl (canon a b)

let set t a b e = Hashtbl.replace t.tbl (canon a b) e

let mem t a b = Hashtbl.mem t.tbl (canon a b)

let pairs t =
  Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.tbl []
  |> List.sort (fun (ka, _) (kb, _) -> compare ka kb)

let pair_keys t = List.map fst (pairs t)

let onto t = t.onto_links

let set_onto t links =
  t.onto_links <- links;
  t.onto_present <- true

let all_links t =
  let per_pair =
    List.concat_map
      (fun (_, e) -> e.xref_links @ e.seq_links @ e.text_links @ e.dup_links)
      (pairs t)
  in
  Link.dedup (per_pair @ t.onto_links)

let compare_corr (a : Xref_disc.correspondence) (b : Xref_disc.correspondence) =
  compare
    (a.src_source, a.src_relation, a.src_attribute, a.dst_source,
     a.dst_relation, a.dst_attribute)
    (b.src_source, b.src_relation, b.src_attribute, b.dst_source,
     b.dst_relation, b.dst_attribute)

let correspondences t =
  List.concat_map (fun (_, e) -> e.correspondences) (pairs t)
  |> List.sort compare_corr

let dup_candidates_total t =
  List.fold_left (fun acc (_, e) -> acc + e.dup_candidates) 0 (pairs t)

let exclude_triples t ~source =
  List.filter_map
    (fun (c : Xref_disc.correspondence) ->
      if c.src_source = source then
        Some (c.src_source, c.src_relation, c.src_attribute)
      else None)
    (correspondences t)
  |> List.sort_uniq compare

(* --- serialization ---

   One line-record document, same tab-separated Serial framing as the
   metadata repository. Layout:

     pairstore  <version>
     pair  <a>  <b>  <n-items>  <dup-candidates>
     plink  ss sr sa ds dr da kind confidence evidence   (xN, any pass)
     pcorr  ss sr sa ds dr da matches frac encoded       (interleaved)
     onto  <n-items>
     plink  ...

   A pair's links are routed back to their pass list by link kind, so a
   group is exactly [n-items] item lines after its header. Any group
   that is short, over-long or unparseable is dropped whole (the caller
   re-seeds it from the metadata repository). *)

let version = 1

let kind_of_string = function
  | "xref" -> Some Link.Xref
  | "seq" -> Some Link.Seq_similarity
  | "text" -> Some Link.Text_similarity
  | "shared-term" -> Some Link.Shared_term
  | "mention" -> Some Link.Entity_mention
  | "duplicate" -> Some Link.Duplicate
  | _ -> None

let link_line (l : Link.t) =
  Serial.record
    [ "plink"; l.src.source; l.src.relation; l.src.accession; l.dst.source;
      l.dst.relation; l.dst.accession; Link.kind_name l.kind;
      Serial.float_to_string l.confidence; l.evidence ]

let corr_line (c : Xref_disc.correspondence) =
  Serial.record
    [ "pcorr"; c.src_source; c.src_relation; c.src_attribute; c.dst_source;
      c.dst_relation; c.dst_attribute; string_of_int c.matches;
      Serial.float_to_string c.match_frac; string_of_bool c.encoded ]

let parse_link = function
  | [ "plink"; ss; sr; sa; ds; dr; da; kind; conf; evidence ] -> (
      match
        ( kind_of_string kind,
          try Some (Serial.float_of_string_exn conf)
          with Invalid_argument _ -> None )
      with
      | Some kind, Some confidence ->
          Some
            (Link.make
               ~src:(Objref.make ~source:ss ~relation:sr ~accession:sa)
               ~dst:(Objref.make ~source:ds ~relation:dr ~accession:da)
               ~kind ~confidence ~evidence)
      | _ -> None)
  | _ -> None

let parse_corr = function
  | [ "pcorr"; ss; sr; sa; ds; dr; da; matches; frac; encoded ] -> (
      match
        ( int_of_string_opt matches,
          (try Some (Serial.float_of_string_exn frac)
           with Invalid_argument _ -> None),
          bool_of_string_opt encoded )
      with
      | Some matches, Some match_frac, Some encoded ->
          Some
            { Xref_disc.src_source = ss; src_relation = sr; src_attribute = sa;
              dst_source = ds; dst_relation = dr; dst_attribute = da;
              matches; match_frac; encoded }
      | _ -> None)
  | _ -> None

let entry_lines e =
  List.map link_line e.xref_links
  @ List.map corr_line e.correspondences
  @ List.map link_line e.seq_links
  @ List.map link_line e.text_links
  @ List.map link_line e.dup_links

let save t =
  let buf = Buffer.create 4096 in
  let line l = Buffer.add_string buf l; Buffer.add_char buf '\n' in
  line (Serial.record [ "pairstore"; string_of_int version ]);
  List.iter
    (fun ((a, b), e) ->
      let items = entry_lines e in
      line
        (Serial.record
           [ "pair"; a; b; string_of_int (List.length items);
             string_of_int e.dup_candidates ]);
      List.iter line items)
    (pairs t);
  line (Serial.record [ "onto"; string_of_int (List.length t.onto_links) ]);
  List.iter (fun l -> line (link_line l)) t.onto_links;
  Buffer.contents buf

(* route a parsed item into the entry under construction; items arrive
   in save order, so appending per list preserves each list's order *)
let entry_add e = function
  | `Link (l : Link.t) -> (
      match l.kind with
      | Link.Xref -> { e with xref_links = e.xref_links @ [ l ] }
      | Link.Seq_similarity -> { e with seq_links = e.seq_links @ [ l ] }
      | Link.Text_similarity | Link.Entity_mention ->
          { e with text_links = e.text_links @ [ l ] }
      | Link.Duplicate -> { e with dup_links = e.dup_links @ [ l ] }
      | Link.Shared_term -> e)
  | `Corr c -> { e with correspondences = e.correspondences @ [ c ] }

let load doc =
  let t = create () in
  let dropped = ref 0 in
  let lines = List.filter (( <> ) "") (String.split_on_char '\n' doc) in
  (* read [n] item lines; None (plus the unconsumed rest) when a line is
     missing or is not an item — the failing line may be the next header,
     so scanning resumes there *)
  let take_items n lines =
    let rec go acc n = function
      | rest when n = 0 -> Some (List.rev acc, rest)
      | [] -> None
      | line :: rest -> (
          let fields = Serial.fields line in
          match parse_link fields with
          | Some l -> go (`Link l :: acc) (n - 1) rest
          | None -> (
              match parse_corr fields with
              | Some c -> go (`Corr c :: acc) (n - 1) rest
              | None -> None))
    in
    go [] n lines
  in
  let rec scan = function
    | [] -> ()
    | line :: rest -> (
        match Serial.fields line with
        | [ "pairstore"; _ ] -> scan rest
        | [ "pair"; a; b; n; cands ] -> (
            match (int_of_string_opt n, int_of_string_opt cands) with
            | Some n, Some cands when n >= 0 -> (
                match take_items n rest with
                | Some (items, rest) ->
                    let e =
                      List.fold_left entry_add
                        { empty_entry with dup_candidates = cands }
                        items
                    in
                    set t a b e;
                    scan rest
                | None ->
                    incr dropped;
                    scan rest)
            | _ ->
                incr dropped;
                scan rest)
        | [ "onto"; n ] -> (
            match int_of_string_opt n with
            | Some n when n >= 0 -> (
                match take_items n rest with
                | Some (items, rest) ->
                    let links =
                      List.filter_map
                        (function `Link l -> Some l | `Corr _ -> None)
                        items
                    in
                    set_onto t links;
                    scan rest
                | None ->
                    incr dropped;
                    scan rest)
            | _ ->
                incr dropped;
                scan rest)
        | _ ->
            incr dropped;
            scan rest)
  in
  scan lines;
  (t, !dropped)

let seed_missing t ~links ~correspondences =
  let groups : (string * string, Link.t list) Hashtbl.t = Hashtbl.create 32 in
  let onto_acc = ref [] in
  List.iter
    (fun (l : Link.t) ->
      match l.kind with
      | Link.Shared_term -> onto_acc := l :: !onto_acc
      | _ ->
          let key = canon l.src.source l.dst.source in
          Hashtbl.replace groups key
            (l :: (try Hashtbl.find groups key with Not_found -> [])))
    links;
  let corr_groups : (string * string, Xref_disc.correspondence list) Hashtbl.t =
    Hashtbl.create 32
  in
  List.iter
    (fun (c : Xref_disc.correspondence) ->
      let key = canon c.src_source c.dst_source in
      Hashtbl.replace corr_groups key
        (c :: (try Hashtbl.find corr_groups key with Not_found -> [])))
    correspondences;
  let all_keys =
    List.sort_uniq compare
      (Hashtbl.fold (fun k _ acc -> k :: acc) groups []
      @ Hashtbl.fold (fun k _ acc -> k :: acc) corr_groups [])
  in
  List.iter
    (fun (a, b) ->
      if not (mem t a b) then begin
        let ls =
          try List.rev (Hashtbl.find groups (a, b)) with Not_found -> []
        in
        let cs =
          try
            List.sort compare_corr (List.rev (Hashtbl.find corr_groups (a, b)))
          with Not_found -> []
        in
        let e =
          List.fold_left entry_add { empty_entry with correspondences = cs }
            (List.map (fun l -> `Link l) (Link.dedup ls))
        in
        set t a b e
      end)
    all_keys;
  if not t.onto_present then set_onto t (Link.dedup !onto_acc)
