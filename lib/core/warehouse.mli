(** The ALADIN warehouse: the paper's five-step integration pipeline
    (Figure 2) plus the access engine on top (Figure 1).

    Sources are added incrementally; per-source statistics are computed
    once and reused, and links and duplicates live in a per-source-pair
    store ({!Pair_store}): adding or updating a source runs the
    {!Delta} pipeline, which recomputes only the pairs touching the
    changed source and merges every other pair's links verbatim — the
    merged result is byte-identical to a cold rebuild. Which link kinds
    actually changed feeds a typed {!Generation.t}, so downstream
    caches (the serve layer) can invalidate per source and per link
    kind instead of wholesale.

    Every pipeline step runs inside an error boundary with an optional
    wall-clock budget ({!Config.budgets}). A step that times out or
    raises has its partial results discarded deterministically: a failed
    {e primary discovery} quarantines the source (it is rolled back out
    of the warehouse and the remaining steps are skipped), while failed
    optional steps (secondary discovery, a link pass, duplicate
    detection) just contribute nothing and the run continues. What
    happened is returned — and persisted in the metadata repository —
    as a typed {!Aladin_resilience.Run_report.t}. *)

open Aladin_relational
open Aladin_discovery
open Aladin_links
open Aladin_metadata
open Aladin_access
module Run_report = Aladin_resilience.Run_report
module Import_error = Aladin_resilience.Import_error

type t

val create : ?config:Config.t -> unit -> t

val config : t -> Config.t

val revision : t -> int
(** Monotonic mutation counter: bumped on every warehouse change
    (source added/replaced/quarantined, link rejected, resume restore). *)

val generation : t -> Generation.t
(** The typed invalidation state: the whole-warehouse counter moves with
    {!revision}, per-source counters bump when that source is added or
    replaced, per-link-kind counters bump when the delta pipeline (or
    {!reject_link}) actually changed that kind's merged link set.
    Derive cache keys from it with {!Generation.key} over the
    dependencies a consumer reads. *)

val last_delta : t -> Delta.audit option
(** Which source pairs the most recent {!add_source}/{!update_source}
    recomputed vs reused ([None] before any source). *)

val add_source :
  ?trace:Aladin_obs.Trace.t ->
  ?import_errors:Import_error.record_error list ->
  t ->
  Catalog.t ->
  Run_report.t
(** Steps 2-5 for the new source (step 1, import, happened when the
    caller produced the catalog — pass its recovered record errors as
    [import_errors] so the report's import step shows [Degraded]).
    Replaces any source with the same name. Never raises for pipeline
    failures: they are captured in the returned report, which is also
    stored in the metadata repository (see {!run_reports}).

    Every run is traced: spans for the five pipeline steps (child spans
    for profiling, FK inference, the link passes, ...) each carrying a
    ["status"] attribute, counters and latency histograms from the
    discovery layers. Pass [trace] to accumulate into your own
    collector; otherwise a fresh one is created. The trace is retained
    (see {!last_trace}) and its JSON rendering stored as the
    repository's provenance record. Step timings in the report come from
    the same monotonic wall clock as the spans. *)

val report_import_failure : t -> source:string -> Import_error.t -> Run_report.t
(** Record that a source failed before reaching the pipeline (import
    could not produce a catalog). The source is quarantined: the report
    marks the import step [Failed] and steps 2-5 skipped, and is stored
    in the repository; the warehouse itself is untouched. *)

val integrate : ?config:Config.t -> ?trace:Aladin_obs.Trace.t -> Catalog.t list -> t
(** Fresh warehouse with all sources added (all into the same [trace]
    when given). A source whose pipeline fails is quarantined; the
    others still integrate fully — inspect {!run_reports}. *)

type resume_info = {
  resumed_sources : string list;
      (** committed steps restored from checkpoints, in journal order *)
  executed_sources : string list;  (** steps actually (re)computed *)
  dropped_records : int;  (** torn trailing journal records dropped *)
}

val integrate_journaled :
  ?config:Config.t ->
  ?trace:Aladin_obs.Trace.t ->
  ?source_paths:(string * string) list ->
  journal:string ->
  Catalog.t list ->
  (t * resume_info, string) result
(** {!integrate} under a write-ahead journal at [journal]: each source
    addition appends an intent record, runs the pipeline, durably
    checkpoints its artifacts (the source's relational members, the
    cumulative metadata repository, per-source-pair link sets), then
    appends the commit record. A process killed at any instant can be
    resumed by calling this again with the same [journal], [config] and
    catalogs: committed steps are restored from their checkpoints
    (profiles recomputed deterministically, links and run reports taken
    from the checkpointed repository, reports flagged
    [Run_report.resumed]), and only uncommitted steps re-run — O(work
    remaining), byte-identical final links/correspondences.

    A fresh call records the integration plan (source names, content
    digests, optional [source_paths] origins) and a config digest in the
    journal header; resume refuses ([Error]) a different config, a
    re-supplied source whose content digest changed, or a source not in
    the plan. Catalogs already committed may be omitted on resume; an
    uncommitted source that is omitted is an error naming its original
    path. The warehouse keeps the journal attached: later
    {!add_source}/{!update_source}/{!reject_fk} calls on it are
    journaled too.
    @raise Aladin_store.Fault.Killed under an armed chaos fault,
    @raise Sys_error on journal I/O failure. *)

type journal_source = {
  js_name : string;
  js_path : string option;  (** origin recorded at first integrate *)
  js_committed : bool;  (** restorable from its checkpoint *)
}

val journal_status : string -> (journal_source list, string) result
(** The journaled integration plan and which of its steps are committed
    with verifiable artifacts — what [aladin integrate --resume] uses to
    decide which source files it still needs. *)

val run_reports : t -> Run_report.t list
(** Latest report per source, in integration order. *)

val run_report : t -> string -> Run_report.t option

val last_trace : t -> Aladin_obs.Trace.t option
(** Execution trace of the most recent {!add_source} run. *)

val sources : t -> string list

val catalogs : t -> Catalog.t list

val catalog : t -> string -> Catalog.t option

val profiles : t -> Profile_list.t

val profile : t -> string -> Source_profile.t option

val links : t -> Link.t list

val link_report : t -> Linker.report option
(** The latest link-discovery report ([None] before any source, and
    [None] when step 4 as a whole failed or was skipped). *)

val duplicates : t -> Aladin_dup.Dup_detect.result option

val repository : t -> Repository.t

val browser : t -> Browser.t
(** Cached; rebuilt after warehouse changes. *)

val search : t -> Search.t

val path_index : t -> Path_rank.t

val resolve_table : t -> string -> Relation.t option
(** ["source.relation"], or a bare relation name when unique warehouse-wide. *)

val sql : t -> string -> Relation.t
(** Parse + evaluate against {!resolve_table}.
    @raise Aladin_access.Sql_parser.Parse_error
    @raise Aladin_access.Sql_eval.Eval_error *)

val notify_change : t -> source:string -> changed_rows:int -> [ `Reanalyze | `Defer ]
(** §6.2 change policy: compare the (accumulated) changed-row fraction with
    [config.change_threshold]. Deferred changes accumulate until the
    threshold trips. *)

type update_report = {
  outcome : [ `Reanalyzed of Run_report.t | `Deferred ];
  delta : Delta.audit option;
      (** the reanalysis' recomputed-vs-reused source pairs; [None] when
          the change was deferred (nothing ran) *)
}

val update_source : t -> Catalog.t -> changed_rows:int -> update_report
(** Apply {!notify_change}; on [`Reanalyze] the source is replaced, the
    pending counter resets, and only the source pairs touching it are
    recomputed (see {!Delta}) — the report's [delta] says which. *)

val link_query : t -> Link_query.t
(** Cross-database path queries over the link graph (cached). *)

val feedback : t -> Feedback.t

val reject_link : t -> Link.t -> unit
(** §6.2 user feedback: the link disappears immediately and stays gone
    through future re-discovery. *)

val reject_fk : t -> source:string -> Aladin_discovery.Inclusion.fk -> unit
(** Reject a guessed schema-level relationship; the source is re-analyzed
    without it ("especially false links between relations can be removed
    quickly"). *)

val save_dir : t -> string -> (unit, string) result
(** Materialize the warehouse as a crash-safe [Aladin_store] snapshot:
    each source's relations as checksummed CSVs under
    [<source>/<relation>.csv] (with its declared constraints), plus
    [sources.txt], [metadata.txt] (the repository), [pairs.txt] (the
    per-source-pair link store, so a later [aladin add] onto the loaded
    store pays only the new source's delta) and [feedback.txt] as
    per-record-checksummed record files — all committed atomically by
    the manifest rename, so a crash mid-save leaves the previous
    snapshot fully intact. Creates the directory; refuses ([Error]) to
    clobber an existing non-empty directory that is not an ALADIN
    store. *)

val load_dir :
  ?config:Config.t ->
  ?reanalyze:bool ->
  string ->
  t * Aladin_store.Load_report.t
(** Restore a saved warehouse, salvaging around damage instead of
    aborting: members are verified against the manifest, corrupt
    repository/feedback records and CSV rows are dropped and counted,
    unreadable members are quarantined into [<dir>/.quarantine/], and
    everything that happened comes back as the
    {!Aladin_store.Load_report.t} (rendered by [aladin load], which
    exits nonzero under [--strict] when any member degraded).

    With [reanalyze] (default false) the five steps re-run from the raw
    data; otherwise profiles are recomputed (they are needed for
    browsing) but the saved links, correspondences, run reports and
    feedback are trusted, so no link/duplicate discovery happens.
    @raise Sys_error when the store itself is unusable (no directory,
    no manifest, or a manifest failing its own checksum). *)
