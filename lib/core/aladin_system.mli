(** Convenience facade: import-from-anything + integrate + report.

    [Aladin.Aladin_system] is what the examples and the CLI use; library
    users wanting control work with {!Warehouse} directly. *)

open Aladin_relational
module Import_error = Aladin_resilience.Import_error

val source_name_of_path : string -> string
(** The source name a path imports under: the file basename without
    extension (a directory keeps its full basename). *)

val import_file : string -> (Aladin_formats.Import.import, Import_error.t) result
(** Sniff the format and import (step 1). The source name comes from
    {!source_name_of_path}; a directory is loaded as a CSV dump. Never
    raises on bad input: unrecognized or unparseable data comes back as
    [Error], and recovered per-record failures ride along in the
    [import]'s [record_errors]. *)

val integrate_paths : ?config:Config.t -> string list -> Warehouse.t
(** Import and integrate every path. A path that fails to import is
    quarantined via {!Warehouse.report_import_failure} — the rest still
    integrate; inspect {!Warehouse.run_reports}. *)

val integrate_catalogs : ?config:Config.t -> Catalog.t list -> Warehouse.t

val summary : Warehouse.t -> string
(** Human-readable integration summary: per source the discovered primary
    relation and structure, then link and duplicate counts. *)
