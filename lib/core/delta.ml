(* The delta pipeline: the warehouse's ONLY link/dup path. Adding or
   updating a source recomputes exactly the source pairs that touch it
   (plus any dup pairs whose exclude-attribute sets shifted); every
   other pair's links are reused verbatim out of the pair store. A cold
   [integrate] is just this delta applied once per source, so the
   incremental result is byte-identical to a full rebuild by
   construction. *)

open Aladin_links
module Dup = Aladin_dup
module Obs = Aladin_obs
module Res = Aladin_resilience
module Report = Res.Run_report

(* --- per-source duplicate representations, cached across runs ---

   A source's representations depend only on its own rows and on the
   exclude-attribute triples naming it (cross-reference attributes stay
   out of duplicate evidence), so they are cached per source keyed by
   that triple set and rebuilt only when it changes. *)

type repr_cache = {
  reprs :
    ( string,
      (string * string * string) list * Dup.Object_sim.repr list )
    Hashtbl.t;
}

let cache_create () = { reprs = Hashtbl.create 8 }

let cache_invalidate cache source = Hashtbl.remove cache.reprs source

type audit = {
  recomputed_pairs : (string * string) list;
  reused_pairs : (string * string) list;
}

type outcome = {
  link_step : Report.step_report;
  dup_step : Report.step_report;
  report : Linker.report option;
  dups : Dup.Dup_detect.result option;
  seq_state : Seq_links.state option;
  audit : audit;
  changed_kinds : Link.kind list;
}

(* --- resilience plumbing, mirroring the batch pipeline exactly ---

   Same step/pass names, same budget keys, same skip/degrade shapes: a
   run report produced by the delta path is indistinguishable from one
   the old whole-warehouse relink produced. *)

let skipped_span name =
  Obs.Trace.ambient_span name ~attrs:[ ("status", "skipped") ] (fun () -> ())

let bounded ~name ?budget f =
  Obs.Trace.ambient_span_timed name (fun () ->
      let attempts = ref 1 in
      let res =
        Res.Boundary.protect ~step:name ?budget (fun () ->
            let v, n = Res.Retry.run_counted ~step:name f in
            attempts := n;
            v)
      in
      if !attempts > 1 then
        Obs.Trace.ambient_add_attr "retry.attempts" (string_of_int !attempts);
      Obs.Trace.ambient_add_attr "status" (Res.Boundary.status_of res);
      res)

let outcome_of_children children =
  let warnings =
    List.filter_map
      (fun (s : Report.step_report) ->
        if Report.outcome_clean s.outcome then None
        else
          Some
            {
              Report.code = s.step;
              detail =
                (match s.outcome with
                | Report.Skipped r -> Report.reason_to_string r
                | Report.Failed e -> Report.error_to_string e
                | o -> Report.outcome_name o);
            })
      children
  in
  match warnings with [] -> Report.Ok | ws -> Report.Degraded ws

(* one link pass over its share of the recomputed pairs; identical
   envelope to the batch linker's pass runner *)
let pass ~enabled ~budget name f =
  if not enabled then (None, Report.step name (Report.Skipped Report.Disabled))
  else
    match budget with
    | Some b when b <= 0.0 ->
        skipped_span name;
        (None, Report.step name (Report.Skipped Report.Budget_zero))
    | _ -> (
        let res, secs =
          Obs.Trace.ambient_span_timed name (fun () ->
              let res = Res.Boundary.protect ~step:name ?budget f in
              Obs.Trace.ambient_add_attr "status" (Res.Boundary.status_of res);
              res)
        in
        Obs.Trace.ambient_observe "linkdisc.pass_seconds" secs;
        match res with
        | Ok v -> (Some v, Report.step ~seconds:secs name Report.Ok)
        | Error (Report.Timeout b) ->
            ( None,
              Report.step ~seconds:secs name
                (Report.Skipped (Report.Budget_exhausted b)) )
        | Error (Report.Crashed _ as e) ->
            (None, Report.step ~seconds:secs name (Report.Failed e)))

let sum f l = List.fold_left (fun acc x -> acc + f x) 0 l

let links_of_kind (e : Pair_store.entry) = function
  | Link.Xref -> e.xref_links
  | Link.Seq_similarity -> e.seq_links
  | Link.Text_similarity ->
      List.filter (fun (l : Link.t) -> l.kind = Link.Text_similarity) e.text_links
  | Link.Entity_mention ->
      List.filter (fun (l : Link.t) -> l.kind = Link.Entity_mention) e.text_links
  | Link.Duplicate -> e.dup_links
  | Link.Shared_term -> []

let all_kinds =
  [ Link.Xref; Link.Seq_similarity; Link.Text_similarity; Link.Entity_mention;
    Link.Shared_term; Link.Duplicate ]

(* what one successful link phase learned, for report synthesis *)
type link_run = {
  passes : Report.step_report list;
  new_seq_state : Seq_links.state option;
  xref_ran : bool;
  xref_attrs : int;
  xref_pairs : int;
  seq_ran : bool;
  seq_batch : (Seq_links.seq_field list * int * int) option;
      (* batch fallback only: fields, sequences_indexed, pairs_verified *)
  text_ran : bool;
  text_docs : int;
  text_mentions : int;
  onto_ran : bool;
  onto_hubs : int;
}

let relink ~(cfg : Config.t) ~pool ~profiles ~source_order ~store ~cache
    ~seq_state ~changed () =
  (* the changed source's rows changed, so its cached representations
     are stale whatever their exclude set says *)
  cache_invalidate cache changed;
  let budgets = cfg.budgets in
  let lp = cfg.linker in
  let others = List.filter (fun s -> s <> changed) source_order in
  (* the self pair only ever carries within-source links, which exist
     only when a pass runs with cross_source_only off *)
  let self_needed =
    (lp.enable_text && not lp.text.cross_source_only)
    || (lp.enable_seq && not lp.seq.cross_source_only)
  in
  let link_pairs =
    List.sort_uniq compare
      (List.map (fun x -> Pair_store.canon x changed) others
      @ (if self_needed then [ (changed, changed) ] else []))
  in
  let current_entry (a, b) =
    match Pair_store.find store a b with
    | Some e -> e
    | None -> Pair_store.empty_entry
  in
  (* pre-run snapshots, for the per-kind change diff that drives typed
     cache invalidation — and the exclude-attribute sets before the new
     correspondences land, which decide below which dup pairs are stale *)
  let old_link_entries = List.map (fun p -> (p, current_entry p)) link_pairs in
  let old_onto = Pair_store.onto store in
  let excludes_of () =
    List.map
      (fun s -> (s, Pair_store.exclude_triples store ~source:s))
      source_order
  in
  let old_excludes = excludes_of () in
  let incremental = cfg.incremental_seq && lp.enable_seq in

  (* --- the link phase: three pairwise passes, commit, then the global
     shared-term pass over the committed xref view --- *)
  let clear_link_fields () =
    List.iter
      (fun ((a, b) as p) ->
        let e = current_entry p in
        Pair_store.set store a b
          { e with Pair_store.xref_links = []; correspondences = [];
            seq_links = []; text_links = [] })
      link_pairs
  in
  let run_link_passes () =
    let xref_staged, xref_step =
      pass ~enabled:lp.enable_xref ~budget:budgets.xref_pass "xref pass"
        (fun () ->
          let per =
            List.map
              (fun ((a, b) as p) ->
                if a = b then
                  ( p,
                    { Xref_disc.links = []; correspondences = [];
                      attributes_scanned = 0; pairs_compared = 0 } )
                else
                  (p, Xref_disc.discover_between ~params:lp.xref ~pool profiles ~a ~b))
              link_pairs
          in
          let rs = List.map snd per in
          Obs.Trace.ambient_incr
            ~by:(sum (fun (r : Xref_disc.result) -> r.attributes_scanned) rs)
            "xref.attributes_scanned";
          Obs.Trace.ambient_incr
            ~by:(sum (fun (r : Xref_disc.result) -> r.pairs_compared) rs)
            "xref.pairs_compared";
          Obs.Trace.ambient_incr
            ~by:(sum (fun (r : Xref_disc.result) -> List.length r.correspondences) rs)
            "xref.correspondences_accepted";
          Obs.Trace.ambient_incr
            ~by:(sum (fun (r : Xref_disc.result) -> List.length r.links) rs)
            "xref.links";
          per)
    in
    let seq_staged, seq_step =
      pass ~enabled:lp.enable_seq ~budget:budgets.seq_pass "seq pass" (fun () ->
          if incremental then begin
            (* persistent homology index: reuse it when it covers exactly
               the other sources, else rebuild WITHOUT searching (the
               reused pairs' links are already in the store) and align
               only the changed source's sequences *)
            let st =
              match seq_state with
              | Some st
                when List.sort compare (Seq_links.state_sources st)
                     = List.sort compare others ->
                  st
              | Some _ | None ->
                  let st = Seq_links.state_create ~params:lp.seq () in
                  List.iter
                    (fun s -> Seq_links.state_index_source st profiles ~source:s)
                    others;
                  Seq_links.state_seed_links st
                    (List.concat_map
                       (fun ((a, b), (e : Pair_store.entry)) ->
                         if a = changed || b = changed then [] else e.seq_links)
                       (Pair_store.pairs store));
                  st
            in
            let fresh =
              Seq_links.state_add_source ~pool st profiles ~source:changed
            in
            (* every fresh link touches the changed source, so this
               partition covers them all *)
            let by_pair = Hashtbl.create 8 in
            List.iter
              (fun (l : Link.t) ->
                let key = Pair_store.canon l.src.source l.dst.source in
                Hashtbl.replace by_pair key
                  (l :: (try Hashtbl.find by_pair key with Not_found -> [])))
              fresh;
            let staged =
              List.map
                (fun p ->
                  ( p,
                    Link.dedup
                      (try List.rev (Hashtbl.find by_pair p) with Not_found -> []) ))
                link_pairs
            in
            (Some st, staged, None)
          end
          else begin
            let per =
              List.map
                (fun ((a, b) as p) ->
                  (p, Seq_links.discover_between ~params:lp.seq ~pool profiles ~a ~b))
                link_pairs
            in
            let rs = List.map snd per in
            Obs.Trace.ambient_incr
              ~by:(sum (fun (r : Seq_links.result) -> r.sequences_indexed) rs)
              "seq.sequences_indexed";
            Obs.Trace.ambient_incr
              ~by:(sum (fun (r : Seq_links.result) -> r.pairs_verified) rs)
              "seq.pairs_verified";
            Obs.Trace.ambient_incr
              ~by:(sum (fun (r : Seq_links.result) -> List.length r.links) rs)
              "seq.links";
            let fields =
              List.sort_uniq compare
                (List.concat_map (fun (r : Seq_links.result) -> r.fields) rs)
            in
            ( None,
              List.map (fun (p, (r : Seq_links.result)) -> (p, r.links)) per,
              Some
                ( fields,
                  sum (fun (r : Seq_links.result) -> r.sequences_indexed) rs,
                  sum (fun (r : Seq_links.result) -> r.pairs_verified) rs ) )
          end)
    in
    let text_staged, text_step =
      pass ~enabled:lp.enable_text ~budget:budgets.text_pass "text pass"
        (fun () ->
          let per =
            List.map
              (fun ((a, b) as p) ->
                if a = b && lp.text.cross_source_only then
                  (p, { Text_links.links = []; documents = 0; mention_links = 0 })
                else
                  (p, Text_links.discover_between ~params:lp.text ~pool profiles ~a ~b))
              link_pairs
          in
          let rs = List.map snd per in
          Obs.Trace.ambient_incr
            ~by:(sum (fun (r : Text_links.result) -> r.documents) rs)
            "text.documents";
          Obs.Trace.ambient_incr
            ~by:(sum (fun (r : Text_links.result) -> List.length r.links) rs)
            "text.links";
          per)
    in
    (* commit the three pairwise passes: a recomputed pair's lists are
       replaced wholesale (a skipped pass leaves them empty, exactly as
       a from-scratch run under the same config would); duplicate fields
       are carried until the dup phase below rewrites them *)
    let staged_assoc staged p = try List.assoc p staged with Not_found -> [] in
    List.iter
      (fun ((a, b) as p) ->
        let e = current_entry p in
        Pair_store.set store a b
          {
            e with
            Pair_store.xref_links =
              (match xref_staged with
              | Some per -> (
                  try (List.assoc p per).Xref_disc.links with Not_found -> [])
              | None -> []);
            correspondences =
              (match xref_staged with
              | Some per -> (
                  try (List.assoc p per).Xref_disc.correspondences
                  with Not_found -> [])
              | None -> []);
            seq_links =
              (match seq_staged with
              | Some (_, staged, _) -> staged_assoc staged p
              | None -> []);
            text_links =
              (match text_staged with
              | Some per -> (
                  try (List.assoc p per).Text_links.links with Not_found -> [])
              | None -> []);
          })
      link_pairs;
    (* shared-term links count shared targets across ALL xref links (a
       third source's xrefs raise a pair's confidence), so this pass
       stays global: cheap, derived from the committed xref view *)
    let onto_staged, onto_step =
      pass ~enabled:lp.enable_onto ~budget:budgets.onto_pass "onto pass"
        (fun () ->
          let xrefs =
            Link.dedup
              (List.concat_map
                 (fun (_, (e : Pair_store.entry)) -> e.xref_links)
                 (Pair_store.pairs store))
          in
          let parents = Onto_links.parents_from_profiles profiles in
          let r = Onto_links.discover ~params:lp.onto ~parents ~xrefs () in
          Obs.Trace.ambient_incr ~by:r.hub_targets_skipped
            "onto.hub_targets_skipped";
          Obs.Trace.ambient_incr ~by:(List.length r.links) "onto.links";
          r)
    in
    Pair_store.set_onto store
      (match onto_staged with Some r -> r.Onto_links.links | None -> []);
    let new_seq_state =
      match seq_staged with
      | Some (st, _, _) -> st
      | None -> (
          (* pass did not run: a mere skip keeps the old index (the
             rebuild check above re-validates it next run); a timeout or
             crash may have left it half-built, so drop it *)
          match seq_step.Report.outcome with
          | Report.Skipped Report.Disabled | Report.Skipped Report.Budget_zero ->
              seq_state
          | _ -> None)
    in
    {
      passes = [ xref_step; seq_step; text_step; onto_step ];
      new_seq_state;
      xref_ran = xref_staged <> None;
      xref_attrs =
        (match xref_staged with
        | Some per -> sum (fun (_, (r : Xref_disc.result)) -> r.attributes_scanned) per
        | None -> 0);
      xref_pairs =
        (match xref_staged with
        | Some per -> sum (fun (_, (r : Xref_disc.result)) -> r.pairs_compared) per
        | None -> 0);
      seq_ran = seq_staged <> None;
      seq_batch =
        (match seq_staged with Some (_, _, batch) -> batch | None -> None);
      text_ran = text_staged <> None;
      text_docs =
        (match text_staged with
        | Some per -> sum (fun (_, (r : Text_links.result)) -> r.documents) per
        | None -> 0);
      text_mentions =
        (match text_staged with
        | Some per -> sum (fun (_, (r : Text_links.result)) -> r.mention_links) per
        | None -> 0);
      onto_ran = onto_staged <> None;
      onto_hubs =
        (match onto_staged with
        | Some r -> r.Onto_links.hub_targets_skipped
        | None -> 0);
    }
  in
  let link_run_opt, link_step =
    match budgets.links with
    | Some b when b <= 0.0 ->
        skipped_span "link discovery";
        clear_link_fields ();
        (None, Report.step "link discovery" (Report.Skipped Report.Budget_zero))
    | link_budget -> (
        let res, link_secs =
          bounded ~name:"link discovery" ?budget:link_budget run_link_passes
        in
        match res with
        | Ok run ->
            ( Some run,
              Report.step ~seconds:link_secs ~children:run.passes
                "link discovery"
                (outcome_of_children run.passes) )
        | Error err ->
            (* discard partial results of this run; reused pairs keep
               theirs, exactly like a from-scratch run that never
               produced them *)
            clear_link_fields ();
            ( None,
              Report.step ~seconds:link_secs "link discovery" (Report.Failed err)
            ))
  in
  let seq_state' =
    match link_run_opt with
    | Some run -> run.new_seq_state
    | None -> (
        match link_step.Report.outcome with
        | Report.Skipped _ -> seq_state
        | _ -> None)
  in

  (* --- the duplicate phase: a pair's stored links stay valid unless an
     endpoint's rows changed or its exclude-attribute set shifted under
     the new correspondences. Missing cached reprs (a fresh process after
     a store load) do NOT dirty a pair: re-prepping an unchanged source
     under an unchanged exclude set reproduces the representations its
     stored links were computed from. --- *)
  let new_excludes = excludes_of () in
  let dirty s =
    s = changed || List.assoc s old_excludes <> List.assoc s new_excludes
  in
  let dirty_sources = List.filter dirty source_order in
  let dup_pairs =
    List.filter
      (fun (a, b) ->
        a <> b && (List.mem a dirty_sources || List.mem b dirty_sources))
      (Pair_store.pair_keys store)
  in
  let old_dup_entries = List.map (fun p -> (p, current_entry p)) dup_pairs in
  let clear_dup_fields () =
    List.iter
      (fun ((a, b) as p) ->
        let e = current_entry p in
        Pair_store.set store a b
          { e with Pair_store.dup_links = []; dup_candidates = 0 })
      dup_pairs
  in
  let dup_ok, dup_step =
    match budgets.dups with
    | Some b when b <= 0.0 ->
        skipped_span "duplicate detection";
        clear_dup_fields ();
        ( false,
          Report.step "duplicate detection" (Report.Skipped Report.Budget_zero)
        )
    | dup_budget -> (
        let res, dup_secs =
          bounded ~name:"duplicate detection" ?budget:dup_budget (fun () ->
              (* (re)prep whatever is missing or keyed to a stale exclude
                 set — linear per source, unlike the pairwise detection *)
              List.iter
                (fun s ->
                  let excl = List.assoc s new_excludes in
                  let fresh =
                    match Hashtbl.find_opt cache.reprs s with
                    | Some (e, _) -> e = excl
                    | None -> false
                  in
                  if not fresh then
                    Hashtbl.replace cache.reprs s
                      ( excl,
                        Dup.Dup_detect.prep_source ~exclude_attributes:excl
                          profiles ~source:s ))
                source_order;
              let results =
                List.map
                  (fun ((a, b) as p) ->
                    let _, ra = Hashtbl.find cache.reprs a in
                    let _, rb = Hashtbl.find cache.reprs b in
                    ( p,
                      Dup.Dup_detect.detect_between ~params:cfg.dup ~pool
                        ~reprs_a:ra ~reprs_b:rb () ))
                  dup_pairs
              in
              let rs = List.map snd results in
              Obs.Trace.ambient_incr
                ~by:(sum (fun (r : Dup.Dup_detect.result) -> r.candidates_checked) rs)
                "dup.candidates_checked";
              Obs.Trace.ambient_incr
                ~by:(sum (fun (r : Dup.Dup_detect.result) -> List.length r.links) rs)
                "dup.links";
              results)
        in
        match res with
        | Ok results ->
            List.iter
              (fun ((a, b) as p, (r : Dup.Dup_detect.result)) ->
                let e = current_entry p in
                Pair_store.set store a b
                  { e with Pair_store.dup_links = r.links;
                    dup_candidates = r.candidates_checked })
              results;
            ( true,
              Report.step ~seconds:dup_secs "duplicate detection" Report.Ok )
        | Error (Report.Timeout b) ->
            clear_dup_fields ();
            ( false,
              Report.step ~seconds:dup_secs "duplicate detection"
                (Report.Skipped (Report.Budget_exhausted b)) )
        | Error (Report.Crashed _ as e) ->
            clear_dup_fields ();
            ( false,
              Report.step ~seconds:dup_secs "duplicate detection"
                (Report.Failed e) ))
  in

  (* --- synthesized whole-warehouse views (reused pairs included) --- *)
  let entries = Pair_store.pairs store in
  let merged f =
    Link.dedup (List.concat_map (fun (_, e) -> f e) entries)
  in
  let report =
    match link_run_opt with
    | None -> None
    | Some run ->
        let xref_all = merged (fun e -> e.Pair_store.xref_links) in
        let seq_all = merged (fun e -> e.Pair_store.seq_links) in
        let text_all = merged (fun e -> e.Pair_store.text_links) in
        let onto_all = Pair_store.onto store in
        Some
          {
            Linker.links =
              Link.dedup (xref_all @ seq_all @ text_all @ onto_all);
            xref_result =
              (if run.xref_ran then
                 Some
                   { Xref_disc.links = xref_all;
                     correspondences = Pair_store.correspondences store;
                     attributes_scanned = run.xref_attrs;
                     pairs_compared = run.xref_pairs }
               else None);
            seq_result =
              (match run.seq_batch with
              | Some (fields, indexed, verified) ->
                  Some
                    { Seq_links.links = seq_all; fields;
                      sequences_indexed = indexed; pairs_verified = verified }
              | None -> None);
            text_result =
              (if run.text_ran then
                 Some
                   { Text_links.links = text_all; documents = run.text_docs;
                     mention_links = run.text_mentions }
               else None);
            onto_result =
              (if run.onto_ran then
                 Some
                   { Onto_links.links = onto_all;
                     hub_targets_skipped = run.onto_hubs }
               else None);
            passes = run.passes;
          }
  in
  let dups =
    if not dup_ok then None
    else begin
      let dup_all = merged (fun e -> e.Pair_store.dup_links) in
      let uf = Dup.Union_find.create () in
      List.iter
        (fun (l : Link.t) ->
          Dup.Union_find.union uf (Objref.to_string l.src)
            (Objref.to_string l.dst))
        dup_all;
      Some
        {
          Dup.Dup_detect.links = dup_all;
          clusters = Dup.Union_find.clusters uf;
          candidates_checked = Pair_store.dup_candidates_total store;
          reprs =
            List.concat_map
              (fun s ->
                match Hashtbl.find_opt cache.reprs s with
                | Some (_, r) -> r
                | None -> [])
              source_order;
        }
    end
  in
  let changed_kinds =
    List.filter
      (fun k ->
        (k = Link.Shared_term && old_onto <> Pair_store.onto store)
        || List.exists
             (fun (p, old) -> links_of_kind old k <> links_of_kind (current_entry p) k)
             (old_link_entries @ old_dup_entries))
      all_kinds
  in
  let recomputed_pairs = List.sort_uniq compare (link_pairs @ dup_pairs) in
  let reused_pairs =
    List.filter
      (fun p -> not (List.mem p recomputed_pairs))
      (Pair_store.pair_keys store)
  in
  {
    link_step;
    dup_step;
    report;
    dups;
    seq_state = seq_state';
    audit = { recomputed_pairs; reused_pairs };
    changed_kinds;
  }
