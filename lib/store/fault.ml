exception Killed

(* three independent armaments; each raises Killed when its own budget
   crosses. Plain refs, single-writer, like the crash they model. *)
let budget = ref None (* bytes *)

let ops_budget = ref None (* store operations *)

let step_budget = ref None (* pipeline step boundaries *)

(* always-on counters, so harnesses can measure a clean run before
   choosing where to kill the next one *)
let bytes_seen = ref 0

let ops_seen = ref 0

let steps_seen = ref 0

let arm ~bytes = budget := Some (max 0 bytes)

let arm_ops ~ops = ops_budget := Some (max 0 ops)

let arm_step ~index = step_budget := Some (max 0 index)

let disarm () =
  budget := None;
  ops_budget := None;
  step_budget := None

let armed () =
  Option.is_some !budget || Option.is_some !ops_budget
  || Option.is_some !step_budget

let reset_counters () =
  bytes_seen := 0;
  ops_seen := 0;
  steps_seen := 0

let counters () = (!bytes_seen, !ops_seen, !steps_seen)

let request n =
  let permitted =
    match !budget with
    | None -> n
    | Some b when n <= b ->
        budget := Some (b - n);
        n
    | Some b ->
        budget := Some 0;
        b
  in
  bytes_seen := !bytes_seen + permitted;
  permitted

let check_op () =
  match !budget with
  | None -> ()
  | Some b when b >= 1 -> budget := Some (b - 1)
  | Some _ -> raise Killed

let op () =
  incr ops_seen;
  match !ops_budget with
  | None -> ()
  | Some n when n >= 1 -> ops_budget := Some (n - 1)
  | Some _ -> raise Killed

let step name =
  ignore name;
  let at = !steps_seen in
  incr steps_seen;
  match !step_budget with
  | Some i when at >= i -> raise Killed
  | Some _ | None -> ()
