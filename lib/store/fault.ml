exception Killed

let budget = ref None

let arm ~bytes = budget := Some (max 0 bytes)

let disarm () = budget := None

let armed () = Option.is_some !budget

let request n =
  match !budget with
  | None -> n
  | Some b when n <= b ->
      budget := Some (b - n);
      n
  | Some b ->
      budget := Some 0;
      b

let check_op () =
  match !budget with
  | None -> ()
  | Some b when b >= 1 -> budget := Some (b - 1)
  | Some _ -> raise Killed
