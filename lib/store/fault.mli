(** Crash fault injection: the pipeline-level chaos harness.

    Three independent armaments, each modelling "the process dies right
    here":

    - {!arm} [~bytes]: every byte the store writes — and every commit
      rename, which costs one unit — draws down the budget; the write
      that crosses it is truncated at the exact byte and {!Killed} is
      raised, leaving a torn file on disk.
    - {!arm_ops} [~ops]: every store {e operation} (an atomic write, an
      append, a commit rename) draws one unit; the operation that
      crosses the budget raises {!Killed} before doing anything.
    - {!arm_step} [~index]: pipeline code marks its step boundaries with
      {!step}; crossing boundary number [index] (0-based, counted since
      {!reset_counters}) raises {!Killed}.

    The snapshot and journal protocols must leave the previous
    consistent state loadable no matter where the kill lands; the
    [t_store] harness sweeps byte budgets over every offset of a save,
    and [examples/kill_resume.ml] sweeps step/op/byte kills across the
    whole integration pipeline and proves [--resume] restores a
    byte-identical warehouse.

    Disarmed (the default), the hooks cost a few branches and counter
    increments. Single-process, single-writer: the budgets are plain
    state, like the crash they model. *)

exception Killed
(** The simulated crash. Escapes [Snapshot.save] / [Journal] /
    [Atomic_file] calls and journaled pipeline step boundaries; never
    raised when disarmed. *)

val arm : bytes:int -> unit
(** Kill the next save after [bytes] budget units. *)

val arm_ops : ops:int -> unit
(** Kill the store operation that crosses the [ops] budget. *)

val arm_step : index:int -> unit
(** Kill at pipeline step boundary [index] (0-based over the {!step}
    calls counted since {!reset_counters}). *)

val disarm : unit -> unit
(** Drop every armament (counters are left running; see
    {!reset_counters}). *)

val armed : unit -> bool

val reset_counters : unit -> unit
(** Zero the byte/op/step counters — call before a run whose kill
    points you want to enumerate, and before any {!arm_step} run. *)

val counters : unit -> int * int * int
(** [(bytes, ops, steps)] observed since {!reset_counters} — the
    coordinate space the sweeps enumerate. *)

val request : int -> int
(** [request n] asks to write [n] bytes; returns how many are permitted
    (always [n] when disarmed). The caller must write exactly that many
    and raise {!Killed} itself if short — letting it flush the torn
    prefix to disk first, like a real partial write. *)

val check_op : unit -> unit
(** Charge one {e byte-budget} unit for a non-byte operation (the commit
    rename); raises {!Killed} when that budget is exhausted. *)

val op : unit -> unit
(** Charge one operation against the {!arm_ops} budget (and count it);
    raises {!Killed} when that budget is exhausted. *)

val step : string -> unit
(** Mark a pipeline step boundary (the name is for documentation only);
    raises {!Killed} when this is the {!arm_step}-armed boundary. *)
