(** Crash fault injection for the storage layer.

    When armed, every byte the store writes — and every commit rename,
    which costs one unit — draws down a budget; the write that crosses
    it is truncated at the exact byte and {!Killed} is raised, simulating
    a process killed mid-save with a torn file on disk. The snapshot
    protocol must keep the previous snapshot loadable byte-identically
    no matter where the kill lands; the [t_store] harness sweeps the
    budget over every offset of a save to prove it.

    Disarmed (the default), the hooks cost a few branches and nothing
    else. Single-process, single-writer: the budget is plain state, like
    the crash it models. *)

exception Killed
(** The simulated crash. Escapes [Snapshot.save] / [Atomic_file] calls;
    never raised when disarmed. *)

val arm : bytes:int -> unit
(** Kill the next save after [bytes] budget units. *)

val disarm : unit -> unit

val armed : unit -> bool

val request : int -> int
(** [request n] asks to write [n] bytes; returns how many are permitted
    (always [n] when disarmed). The caller must write exactly that many
    and raise {!Killed} itself if short — letting it flush the torn
    prefix to disk first, like a real partial write. *)

val check_op : unit -> unit
(** Charge one unit for a non-byte operation (the commit rename);
    raises {!Killed} when the budget is exhausted. *)
