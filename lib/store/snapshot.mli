(** Crash-safe snapshot store: a directory whose contents are either the
    previous consistent save or the new one — never a torn mix.

    Layout:
    {v
    <dir>/MANIFEST            member list + checksums, the commit record
    <dir>/snap-00000007/...   the committed generation's member files
    <dir>/.quarantine/        damaged members moved aside on load/repair
    v}

    {!save} writes every member (fsynced) into a {e fresh} generation
    directory, then commits by atomically renaming a new [MANIFEST] over
    the old one. The manifest names the generation and records each
    member's kind, length and CRC-32, plus its own trailing self-CRC; a
    crash at any byte leaves the old manifest — and therefore the old,
    untouched generation — in force. Stale temp files and orphan
    generations from interrupted saves are swept on the next save or
    load.

    {!load} verifies every member against the manifest and salvages
    around damage instead of aborting: record files recover
    line-by-line (see {!Records}), CSVs drop rows that no longer fit the
    header, and unrecoverable members are moved to [.quarantine/] with
    the reason recorded. What happened to each member comes back as a
    {!Load_report.t}. *)

type kind =
  | Records  (** line records with per-record checksums; salvageable *)
  | Csv  (** CSV with header; salvaged by dropping non-conforming rows *)
  | Opaque  (** no structure to salvage; quarantined when damaged *)
  | Pairs
      (** the warehouse's per-source-pair link store ([pairs.txt]):
          line records with per-record checksums, same wire codec as
          {!Records} but named distinctly in the manifest so tooling can
          tell the delta store apart; the loader additionally drops any
          pair group a salvage left incomplete *)

type member = { path : string; kind : kind; content : string }
(** [path] is relative to the store ([/]-separated subdirectories
    allowed); [content] is the logical document — the store handles the
    on-disk encoding per [kind]. *)

val format_version : int
(** Store format version, recorded in the manifest header. Loaders
    refuse newer versions; bumped on any incompatible layout change
    (see DESIGN.md for the policy). *)

val is_store : string -> bool
(** A committed [MANIFEST] is present. *)

val save : string -> member list -> (unit, string) result
(** Atomic commit of a whole snapshot. Refuses ([Error]) to write into
    an existing non-empty directory that is not already an ALADIN store,
    rather than clobbering user files; also [Error] on invalid member
    paths or I/O failure (in which case the previous snapshot is still
    in force).
    @raise Fault.Killed under an armed injected fault. *)

val load : string -> (member list * Load_report.t, string) result
(** Read back the committed snapshot, salvaging per-member (see above);
    quarantines unrecoverable members and sweeps stale temp/orphan
    files. Members that could not be recovered are absent from the
    returned list and flagged in the report. [Error] only for
    store-level damage: no directory, no manifest, or a manifest that
    fails its own checksum or version check. *)

val verify : string -> (Load_report.t, string) result
(** Read-only {!load}: same classification, but nothing is moved,
    swept or written — the [fsck] probe. *)

val repair : string -> (Load_report.t, string) result
(** {!load}, then — unless the store was already clean — commit the
    salvaged members as a fresh consistent snapshot. Afterwards {!load}
    reports every remaining member [Ok]; what was dropped or
    quarantined is in the returned report. *)

val find : member list -> string -> string option
(** Content of the member at [path], if loaded. *)
