type artifact = {
  a_path : string;
  a_kind : Snapshot.kind;
  a_len : int;
  a_crc : int;
}

type committed = {
  seq : int;
  step : string;
  info : (string * string) list;
  artifacts : artifact list;
}

type replay = {
  meta : (string * string) list;
  committed : committed list;
  pending : (int * string) option;
  dropped : int;
}

type t = { dir : string; mutable next_seq : int }

let format_version = 1

let magic = "aladin-journal"

let journal_name = "JOURNAL"

let steps_dirname = "steps"

let journal_path dir = Filename.concat dir journal_name

let exists dir = Sys.file_exists (journal_path dir)

(* --- field escaping (same scheme as the snapshot manifest) --- *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec loop i =
    if i >= n then ()
    else if s.[i] = '\\' && i + 1 < n then begin
      (match s.[i + 1] with
      | 't' -> Buffer.add_char buf '\t'
      | 'n' -> Buffer.add_char buf '\n'
      | c -> Buffer.add_char buf c);
      loop (i + 2)
    end
    else begin
      Buffer.add_char buf s.[i];
      loop (i + 1)
    end
  in
  loop 0;
  Buffer.contents buf

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let kind_name = function
  | Snapshot.Records -> "records"
  | Snapshot.Csv -> "csv"
  | Snapshot.Opaque -> "opaque"
  | Snapshot.Pairs -> "pairs"

let kind_of_name = function
  | "records" -> Some Snapshot.Records
  | "csv" -> Some Snapshot.Csv
  | "opaque" -> Some Snapshot.Opaque
  | "pairs" -> Some Snapshot.Pairs
  | _ -> None

let encode_member kind content =
  match kind with
  | Snapshot.Records | Snapshot.Pairs -> Records.encode content
  | Snapshot.Csv | Snapshot.Opaque -> content

let decode_member kind stored =
  match kind with
  | Snapshot.Records | Snapshot.Pairs -> Records.decode stored
  | Snapshot.Csv | Snapshot.Opaque -> Some stored

let valid_path p =
  p <> ""
  && Filename.is_relative p
  && List.for_all
       (fun seg -> seg <> "" && seg <> "." && seg <> "..")
       (String.split_on_char '/' p)

(* step directory names stay filesystem-safe regardless of step names *)
let slug s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '-')
    s

let step_dirname ~seq ~step = Printf.sprintf "%04d-%s" seq (slug step)

(* --- line codec: each journal line is "<crc32 hex>\t<payload>" --- *)

let render_line fields =
  let payload = String.concat "\t" (List.map escape fields) in
  Printf.sprintf "%s\t%s\n" (Crc32.to_hex (Crc32.string payload)) payload

let parse_line line =
  match String.index_opt line '\t' with
  | Some i when i = 8 -> (
      let crc = String.sub line 0 i in
      let payload = String.sub line (i + 1) (String.length line - i - 1) in
      match Crc32.of_hex crc with
      | Some c when c = Crc32.string payload ->
          Some (String.split_on_char '\t' payload |> List.map unescape)
      | Some _ | None -> None)
  | Some _ | None -> None

let header_line meta =
  render_line
    (magic :: string_of_int format_version
    :: List.map (fun (k, v) -> k ^ "=" ^ v) meta)

let split_kv field =
  match String.index_opt field '=' with
  | Some i ->
      ( String.sub field 0 i,
        String.sub field (i + 1) (String.length field - i - 1) )
  | None -> (field, "")

let intent_line ~seq ~step = render_line [ "intent"; string_of_int seq; step ]

let commit_line ~seq ~step ~info ~artifacts =
  render_line
    ("commit" :: string_of_int seq :: step
    :: string_of_int (List.length info)
    :: List.concat_map (fun (k, v) -> [ k; v ]) info
    @ (string_of_int (List.length artifacts)
      :: List.concat_map
           (fun a ->
             [ a.a_path; kind_name a.a_kind; string_of_int a.a_len;
               Crc32.to_hex a.a_crc ])
           artifacts))

(* inverse of [commit_line]'s counted sections *)
let parse_commit_fields fields =
  let rec take n acc rest =
    if n = 0 then Some (List.rev acc, rest)
    else match rest with [] -> None | x :: rest -> take (n - 1) (x :: acc) rest
  in
  match fields with
  | seq :: step :: ninfo :: rest -> (
      match (int_of_string_opt seq, int_of_string_opt ninfo) with
      | Some seq, Some ninfo -> (
          match take (2 * ninfo) [] rest with
          | None -> None
          | Some (kvs, rest) -> (
              let rec pairs = function
                | [] -> []
                | k :: v :: rest -> (k, v) :: pairs rest
                | [ k ] -> [ (k, "") ]
              in
              match rest with
              | nart :: rest -> (
                  match int_of_string_opt nart with
                  | Some nart -> (
                      match take (4 * nart) [] rest with
                      | Some (afields, []) ->
                          let rec arts = function
                            | [] -> Some []
                            | p :: k :: l :: c :: rest -> (
                                match
                                  ( kind_of_name k,
                                    int_of_string_opt l,
                                    Crc32.of_hex c,
                                    arts rest )
                                with
                                | Some k, Some l, Some c, Some tl ->
                                    Some
                                      ({ a_path = p; a_kind = k; a_len = l;
                                         a_crc = c }
                                      :: tl)
                                | _ -> None)
                            | _ -> None
                          in
                          Option.map
                            (fun artifacts ->
                              { seq; step; info = pairs kvs; artifacts })
                            (arts afields)
                      | Some (_, _ :: _) | None -> None)
                  | None -> None)
              | [] -> None))
      | _ -> None)
  | _ -> None

(* --- create / replay --- *)

let create dir ~meta =
  if exists dir then Error (dir ^ ": journal already present (resume it instead)")
  else if
    Sys.file_exists dir
    && (not (Sys.is_directory dir))
  then Error (dir ^ ": not a directory")
  else if
    Sys.file_exists dir
    && Array.exists
         (fun e ->
           let tmp = Atomic_file.temp_suffix in
           e <> steps_dirname
           && not
                (String.length e >= String.length tmp
                && String.sub e
                     (String.length e - String.length tmp)
                     (String.length tmp)
                   = tmp))
         (Sys.readdir dir)
  then
    Error
      (dir ^ ": refusing to start a journal in a non-empty foreign directory")
  else if List.exists (fun (k, _) -> String.contains k '=') meta then
    Error "journal meta keys must not contain '='"
  else
    match
      mkdir_p dir;
      Atomic_file.write (journal_path dir) (header_line meta)
    with
    | () -> Ok { dir; next_seq = 0 }
    | exception Sys_error msg -> Error msg

let replay dir =
  if not (exists dir) then Error (dir ^ ": no journal")
  else
    match Atomic_file.read (journal_path dir) with
    | exception Sys_error msg -> Error msg
    | doc -> (
        let lines =
          String.split_on_char '\n' doc |> List.filter (fun l -> l <> "")
        in
        match lines with
        | [] -> Error (dir ^ ": empty journal")
        | header :: records -> (
            match parse_line header with
            | Some (m :: v :: meta_fields) when m = magic -> (
                match int_of_string_opt v with
                | Some v when v > format_version ->
                    Error
                      (Printf.sprintf
                         "%s: journal format version %d is newer than \
                          supported %d"
                         dir v format_version)
                | Some _ ->
                    let meta = List.map split_kv meta_fields in
                    (* a valid line can only be followed by valid lines;
                       the first CRC failure is a torn tail — everything
                       from there on is dropped (normally just the one
                       trailing record an interrupted append left) *)
                    let rec parse_records acc = function
                      | [] -> (List.rev acc, 0)
                      | line :: rest -> (
                          match parse_line line with
                          | Some fields -> parse_records (fields :: acc) rest
                          | None -> (List.rev acc, 1 + List.length rest))
                    in
                    let records, dropped = parse_records [] records in
                    let committed = ref [] in
                    let intents = ref [] in
                    let next_seq = ref 0 in
                    List.iter
                      (fun fields ->
                        match fields with
                        | [ "intent"; seq; step ] -> (
                            match int_of_string_opt seq with
                            | Some seq ->
                                intents := (seq, step) :: !intents;
                                next_seq := max !next_seq (seq + 1)
                            | None -> ())
                        | "commit" :: rest -> (
                            match parse_commit_fields rest with
                            | Some c ->
                                committed := c :: !committed;
                                intents :=
                                  List.filter
                                    (fun (s, _) -> s <> c.seq)
                                    !intents;
                                next_seq := max !next_seq (c.seq + 1)
                            | None -> ())
                        | _ -> ())
                      records;
                    let pending =
                      match !intents with [] -> None | i :: _ -> Some i
                    in
                    Ok
                      {
                        meta;
                        committed = List.rev !committed;
                        pending;
                        dropped;
                      }
                | None -> Error (dir ^ ": journal header has a bad version"))
            | Some _ -> Error (dir ^ ": not an ALADIN journal")
            | None -> Error (dir ^ ": journal header failed its checksum")))

(* heal the log's tail before appending to it. Every complete append is
   one newline-terminated line (escaping keeps raw newlines out of
   payloads), so a kill mid-append leaves an unterminated fragment; a
   fresh append would otherwise concatenate onto it and corrupt the NEW
   record as well. An append killed between its last payload byte and
   the terminator leaves a fragment that is itself a complete, valid
   record — that one is finished with its missing '\n' instead of being
   discarded. Anything replay dropped is physically truncated off, so
   records appended from here on are never shadowed by garbage before
   them. *)
let heal_tail dir ~dropped =
  let path = journal_path dir in
  let doc = Atomic_file.read path in
  let n = String.length doc in
  let unterminated = n > 0 && doc.[n - 1] <> '\n' in
  if dropped > 0 || unterminated then begin
    Fault.op ();
    let complete_fragment =
      dropped = 0 && unterminated
      &&
      let start =
        match String.rindex_opt doc '\n' with Some i -> i + 1 | None -> 0
      in
      parse_line (String.sub doc start (n - start)) <> None
    in
    if complete_fragment then begin
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_char oc '\n';
      flush oc;
      (try Unix.fsync (Unix.descr_of_out_channel oc)
       with Unix.Unix_error (_, _, _) -> ());
      close_out oc
    end
    else begin
      let rec valid acc = function
        | [] | [ "" ] -> acc
        | line :: rest ->
            if parse_line line <> None then
              valid (acc + String.length line + 1) rest
            else acc
      in
      let keep =
        match String.split_on_char '\n' doc with
        | header :: rest when parse_line header <> None ->
            valid (String.length header + 1) rest
        | _ -> n
      in
      if keep < n then begin
        Unix.truncate path keep;
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
        (try Unix.fsync fd with Unix.Unix_error (_, _, _) -> ());
        Unix.close fd
      end
    end
  end

let open_resume dir =
  match replay dir with
  | Error _ as e -> e
  | Ok r -> (
      match heal_tail dir ~dropped:r.dropped with
      | exception Sys_error msg -> Error msg
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
      | () ->
          let next_seq =
            List.fold_left
              (fun acc (c : committed) -> max acc (c.seq + 1))
              (match r.pending with Some (s, _) -> s + 1 | None -> 0)
              r.committed
          in
          Ok ({ dir; next_seq }, r))

(* --- intent / commit --- *)

let intent t ~step =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Atomic_file.append (journal_path t.dir) (intent_line ~seq ~step);
  seq

let commit t ~seq ~step ?(info = []) members =
  if List.exists (fun (m : Snapshot.member) -> not (valid_path m.path)) members
  then invalid_arg "Journal.commit: invalid member path";
  if List.exists (fun (k, _) -> String.contains k '=') info then
    invalid_arg "Journal.commit: info keys must not contain '='";
  let sdir =
    Filename.concat (Filename.concat t.dir steps_dirname)
      (step_dirname ~seq ~step)
  in
  (* artifacts are durably on disk before the commit record that makes
     them authoritative is appended: a kill anywhere in between leaves
     an uncommitted (recomputable) step, never a dangling reference.
     Each file is fsynced as written; every touched directory is fsynced
     once at the end rather than per file. *)
  let dirs = ref [] in
  let artifacts =
    List.map
      (fun (m : Snapshot.member) ->
        let stored = encode_member m.kind m.content in
        let path = Filename.concat sdir m.path in
        let parent = Filename.dirname path in
        mkdir_p parent;
        if not (List.mem parent !dirs) then dirs := parent :: !dirs;
        Atomic_file.write ~sync_dir:false path stored;
        { a_path = m.path; a_kind = m.kind; a_len = String.length stored;
          a_crc = Crc32.string stored })
      members
  in
  List.iter Atomic_file.fsync_dir !dirs;
  Atomic_file.append (journal_path t.dir)
    (commit_line ~seq ~step ~info ~artifacts);
  { seq; step; info; artifacts }

let read_artifact ~dir (c : committed) path =
  match List.find_opt (fun a -> a.a_path = path) c.artifacts with
  | None -> None
  | Some a -> (
      let abs =
        Filename.concat
          (Filename.concat (Filename.concat dir steps_dirname)
             (step_dirname ~seq:c.seq ~step:c.step))
          a.a_path
      in
      match Atomic_file.read abs with
      | exception Sys_error _ -> None
      | stored ->
          if String.length stored = a.a_len && Crc32.string stored = a.a_crc
          then decode_member a.a_kind stored
          else None)
