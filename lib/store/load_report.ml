type status = Ok | Salvaged of int | Quarantined of string | Missing

type member = { path : string; status : status }

type t = { dir : string; generation : int; members : member list }

let status_name = function
  | Ok -> "ok"
  | Salvaged _ -> "salvaged"
  | Quarantined _ -> "quarantined"
  | Missing -> "missing"

let member_clean m = m.status = Ok

let is_clean t = List.for_all member_clean t.members

let records_dropped t =
  List.fold_left
    (fun acc m -> match m.status with Salvaged n -> acc + n | _ -> acc)
    0 t.members

let find t path =
  List.find_map
    (fun m -> if m.path = path then Some m.status else None)
    t.members

let bump_salvaged t path n =
  if n <= 0 then t
  else
    {
      t with
      members =
        List.map
          (fun m ->
            if m.path <> path then m
            else
              match m.status with
              | Ok -> { m with status = Salvaged n }
              | Salvaged k -> { m with status = Salvaged (k + n) }
              | Quarantined _ | Missing -> m)
          t.members;
    }

let status_detail = function
  | Ok -> ""
  | Salvaged 0 -> "checksum repaired, no records lost"
  | Salvaged n ->
      Printf.sprintf "%d record%s dropped" n (if n = 1 then "" else "s")
  | Quarantined reason -> reason
  | Missing -> "listed in manifest, absent on disk"

let render t =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "load report: %s (snapshot %d)%s\n" t.dir t.generation
    (if is_clean t then "" else " DAMAGED");
  List.iter
    (fun m ->
      Printf.bprintf buf "  %-28s %-11s %s\n" m.path (status_name m.status)
        (status_detail m.status))
    t.members;
  Buffer.contents buf
