let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let update crc s =
  let t = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  String.iter
    (fun ch -> c := t.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

let string s = update 0 s

let to_hex crc = Printf.sprintf "%08x" (crc land 0xFFFFFFFF)

(* exactly what to_hex produces: 8 lowercase hex digits. Not
   [int_of_string], which would also admit uppercase and underscores —
   bytes a single bit flip away from a valid stored checksum. *)
let of_hex s =
  let digit c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | _ -> None
  in
  if String.length s <> 8 then None
  else
    String.fold_left
      (fun acc c ->
        match (acc, digit c) with
        | Some v, Some d -> Some ((v lsl 4) lor d)
        | _, _ -> None)
      (Some 0) s
