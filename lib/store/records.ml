let magic = "aladin-records"

let version = 1

(* logical doc -> lines; tolerate a missing final newline *)
let split_lines doc =
  if doc = "" then []
  else
    let parts = String.split_on_char '\n' doc in
    match List.rev parts with "" :: rest -> List.rev rest | _ -> parts

let join_lines = function
  | [] -> ""
  | lines -> String.concat "\n" lines ^ "\n"

let encode doc =
  let lines = split_lines doc in
  let buf = Buffer.create (String.length doc + (16 * List.length lines)) in
  Printf.bprintf buf "%s\t%d\t%d\n" magic version (List.length lines);
  List.iter
    (fun l -> Printf.bprintf buf "%s\t%s\n" (Crc32.to_hex (Crc32.string l)) l)
    lines;
  Buffer.contents buf

let parse_header line =
  match String.split_on_char '\t' line with
  | [ m; v; count ] when m = magic && v = string_of_int version ->
      int_of_string_opt count
  | _ -> None

(* a stored record line -> its payload, when the checksum verifies *)
let parse_record line =
  match String.index_opt line '\t' with
  | None -> None
  | Some i -> (
      let payload = String.sub line (i + 1) (String.length line - i - 1) in
      match Crc32.of_hex (String.sub line 0 i) with
      | Some crc when crc = Crc32.string payload -> Some payload
      | Some _ | None -> None)

let decode stored =
  match split_lines stored with
  | [] -> None
  | header :: rest -> (
      match parse_header header with
      | None -> None
      | Some count ->
          let payloads = List.map parse_record rest in
          if List.length payloads = count && List.for_all Option.is_some payloads
          then Some (join_lines (List.filter_map Fun.id payloads))
          else None)

let decode_salvage stored =
  match split_lines stored with
  | [] -> None
  | first :: rest ->
      let header = parse_header first in
      (* without a header, the first line might still be a valid record *)
      let records = if header = None then first :: rest else rest in
      let kept = List.filter_map parse_record records in
      let bad = List.length records - List.length kept in
      if header = None && kept = [] then None
      else
        let dropped =
          match header with
          | Some count -> max (count - List.length kept) bad
          | None -> bad
        in
        Some (join_lines kept, dropped)
