type kind = Records | Csv | Opaque | Pairs

type member = { path : string; kind : kind; content : string }

let format_version = 1

let magic = "aladin-store"

let manifest_name = "MANIFEST"

let quarantine_name = ".quarantine"

let snap_prefix = "snap-"

let gen_name gen = Printf.sprintf "%s%08d" snap_prefix gen

let kind_name = function
  | Records -> "records"
  | Csv -> "csv"
  | Opaque -> "opaque"
  | Pairs -> "pairs"

let kind_of_name = function
  | "records" -> Some Records
  | "csv" -> Some Csv
  | "opaque" -> Some Opaque
  | "pairs" -> Some Pairs
  | _ -> None

let is_store dir =
  Sys.file_exists (Filename.concat dir manifest_name)

(* --- manifest field escaping (paths may in principle contain anything) --- *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec loop i =
    if i >= n then ()
    else if s.[i] = '\\' && i + 1 < n then begin
      (match s.[i + 1] with
      | 't' -> Buffer.add_char buf '\t'
      | 'n' -> Buffer.add_char buf '\n'
      | c -> Buffer.add_char buf c);
      loop (i + 2)
    end
    else begin
      Buffer.add_char buf s.[i];
      loop (i + 1)
    end
  in
  loop 0;
  Buffer.contents buf

(* --- small fs helpers --- *)

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
  end

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let ends_with suffix s =
  String.length s >= String.length suffix
  && String.sub s (String.length s - String.length suffix) (String.length suffix)
     = suffix

(* files the store itself maintains; anything else makes a directory
   "foreign" and save refuses to touch it *)
let store_entry name =
  name = manifest_name || name = quarantine_name
  || starts_with snap_prefix name
  || ends_with Atomic_file.temp_suffix name

let parse_gen name =
  if starts_with snap_prefix name then
    int_of_string_opt
      (String.sub name (String.length snap_prefix)
         (String.length name - String.length snap_prefix))
  else None

let next_generation dir =
  Array.fold_left
    (fun acc e -> match parse_gen e with Some g -> max acc g | None -> acc)
    0 (Sys.readdir dir)
  + 1

(* drop temp files and every generation except [keep] *)
let sweep dir ~keep =
  Array.iter
    (fun e ->
      let path = Filename.concat dir e in
      if ends_with Atomic_file.temp_suffix e then
        try Sys.remove path with Sys_error _ -> ()
      else
        match parse_gen e with
        | Some g when g <> keep -> ( try rm_rf path with Sys_error _ -> ())
        | Some _ | None -> ())
    (Sys.readdir dir)

(* --- per-kind on-disk encoding and salvage --- *)

let encode m =
  match m.kind with
  | Records | Pairs -> Records.encode m.content
  | Csv | Opaque -> m.content

let decode_strict kind stored =
  match kind with
  | Records | Pairs -> Records.decode stored
  | Csv | Opaque -> Some stored

let csv_salvage stored =
  match Aladin_relational.Csv.read_string stored with
  | [] -> None
  | header :: rows -> (
      let arity = List.length header in
      let good, bad = List.partition (fun r -> List.length r = arity) rows in
      match (good, rows) with
      | [], _ :: _ -> None (* header itself unusable: nothing fits it *)
      | _ ->
          let buf = Buffer.create (String.length stored) in
          List.iter
            (fun r ->
              Buffer.add_string buf (Aladin_relational.Csv.render_line r);
              Buffer.add_char buf '\n')
            (header :: good);
          Some (Buffer.contents buf, List.length bad))
  | exception _ -> None

let salvage kind stored =
  match kind with
  | Records | Pairs -> Records.decode_salvage stored
  | Csv -> csv_salvage stored
  | Opaque -> None

(* --- manifest --- *)

type entry = { e_path : string; e_kind : kind; e_len : int; e_crc : int }

let render_manifest gen entries =
  let buf = Buffer.create 512 in
  Printf.bprintf buf "%s\t%d\n" magic format_version;
  Printf.bprintf buf "snapshot\t%d\n" gen;
  List.iter
    (fun e ->
      Printf.bprintf buf "member\t%s\t%s\t%d\t%s\n" (escape e.e_path)
        (kind_name e.e_kind) e.e_len (Crc32.to_hex e.e_crc))
    entries;
  (* trailing self-checksum over everything above *)
  Printf.bprintf buf "crc\t%s\n" (Crc32.to_hex (Crc32.string (Buffer.contents buf)));
  Buffer.contents buf

let parse_manifest doc =
  let lines = String.split_on_char '\n' doc |> List.filter (fun l -> l <> "") in
  match List.rev lines with
  | last :: body_rev -> (
      let body =
        String.concat "" (List.rev_map (fun l -> l ^ "\n") body_rev)
      in
      match String.split_on_char '\t' last with
      | [ "crc"; hex ] when Crc32.of_hex hex = Some (Crc32.string body) -> (
          match List.rev body_rev with
          | header :: rest -> (
              match String.split_on_char '\t' header with
              | [ m; v ] when m = magic -> (
                  match int_of_string_opt v with
                  | Some v when v > format_version ->
                      Error
                        (Printf.sprintf
                           "manifest format version %d is newer than supported %d"
                           v format_version)
                  | Some _ -> (
                      match rest with
                      | gen_line :: members -> (
                          match String.split_on_char '\t' gen_line with
                          | [ "snapshot"; g ] -> (
                              match int_of_string_opt g with
                              | Some gen ->
                                  let parse_member line =
                                    match String.split_on_char '\t' line with
                                    | [ "member"; path; kind; len; crc ] -> (
                                        match
                                          ( kind_of_name kind,
                                            int_of_string_opt len,
                                            Crc32.of_hex crc )
                                        with
                                        | Some k, Some l, Some c ->
                                            Some
                                              {
                                                e_path = unescape path;
                                                e_kind = k;
                                                e_len = l;
                                                e_crc = c;
                                              }
                                        | _ -> None)
                                    | _ -> None
                                  in
                                  let entries = List.map parse_member members in
                                  if List.for_all Option.is_some entries then
                                    Ok (gen, List.filter_map Fun.id entries)
                                  else Error "manifest has an unparseable member line"
                              | None -> Error "manifest has a bad snapshot line")
                          | _ -> Error "manifest has a bad snapshot line")
                      | [] -> Error "manifest has no snapshot line")
                  | None -> Error "manifest has a bad version")
              | _ -> Error "not an ALADIN store manifest")
          | [] -> Error "empty manifest")
      | _ -> Error "manifest failed its own checksum")
  | [] -> Error "empty manifest"

let read_manifest dir =
  let path = Filename.concat dir manifest_name in
  if not (Sys.file_exists dir) then Error (dir ^ ": no such directory")
  else if not (Sys.file_exists path) then
    Error (dir ^ ": no MANIFEST (not an ALADIN store)")
  else
    match Atomic_file.read path with
    | doc -> (
        match parse_manifest doc with
        | Ok v -> Ok v
        | Error msg -> Error (Printf.sprintf "%s: %s" dir msg))
    | exception Sys_error msg -> Error msg

(* --- save --- *)

let valid_path p =
  p <> ""
  && Filename.is_relative p
  && List.for_all
       (fun seg -> seg <> "" && seg <> "." && seg <> "..")
       (String.split_on_char '/' p)

let validate_members members =
  let seen = Hashtbl.create 16 in
  List.fold_left
    (fun acc m ->
      match acc with
      | Error _ -> acc
      | Ok () ->
          if not (valid_path m.path) then
            Error (Printf.sprintf "invalid member path %S" m.path)
          else if Hashtbl.mem seen m.path then
            Error (Printf.sprintf "duplicate member path %S" m.path)
          else begin
            Hashtbl.add seen m.path ();
            Ok ()
          end)
    (Ok ()) members

let save dir members =
  match validate_members members with
  | Error _ as e -> e
  | Ok () -> (
      let proceed () =
        mkdir_p dir;
        let gen = next_generation dir in
        let sdir = Filename.concat dir (gen_name gen) in
        Sys.mkdir sdir 0o755;
        let entries =
          List.map
            (fun m ->
              let stored = encode m in
              let path = Filename.concat sdir m.path in
              mkdir_p (Filename.dirname path);
              Atomic_file.write_raw path stored;
              {
                e_path = m.path;
                e_kind = m.kind;
                e_len = String.length stored;
                e_crc = Crc32.string stored;
              })
            members
        in
        Atomic_file.write (Filename.concat dir manifest_name)
          (render_manifest gen entries);
        sweep dir ~keep:gen;
        Ok ()
      in
      if Sys.file_exists dir && not (Sys.is_directory dir) then
        Error (dir ^ ": not a directory")
      else if
        Sys.file_exists dir
        && (not (is_store dir))
        && Array.exists (fun e -> not (store_entry e)) (Sys.readdir dir)
      then
        Error
          (dir
         ^ ": refusing to overwrite: non-empty directory is not an ALADIN \
            store (no MANIFEST)")
      else
        try proceed () with
        | Sys_error msg -> Error msg
        | Unix.Unix_error (e, fn, arg) ->
            Error (Printf.sprintf "%s: %s %s" fn (Unix.error_message e) arg))

(* --- load / verify --- *)

let quarantine dir relpath abs reason =
  let qdir = Filename.concat dir quarantine_name in
  mkdir_p qdir;
  let flat = String.map (fun c -> if c = '/' then '_' else c) relpath in
  (try Sys.rename abs (Filename.concat qdir flat) with Sys_error _ -> ());
  try Atomic_file.write_raw (Filename.concat qdir (flat ^ ".reason")) (reason ^ "\n")
  with Sys_error _ -> ()

(* [mutate]: quarantine damaged files and sweep stale ones (load) vs. a
   pure read-only classification (verify/fsck) *)
let load_gen ~mutate dir =
  match read_manifest dir with
  | Error _ as e -> e
  | Ok (gen, entries) ->
      let sdir = Filename.concat dir (gen_name gen) in
      let results =
        List.map
          (fun e ->
            let abs = Filename.concat sdir e.e_path in
            if not (Sys.file_exists abs) then (None, Load_report.Missing)
            else
              match Atomic_file.read abs with
              | exception Sys_error msg ->
                  if mutate then quarantine dir e.e_path abs ("unreadable: " ^ msg);
                  (None, Load_report.Quarantined ("unreadable: " ^ msg))
              | stored -> (
                  if
                    String.length stored = e.e_len
                    && Crc32.string stored = e.e_crc
                  then
                    match decode_strict e.e_kind stored with
                    | Some content ->
                        ( Some { path = e.e_path; kind = e.e_kind; content },
                          Load_report.Ok )
                    | None ->
                        let reason = "checksum ok but undecodable" in
                        if mutate then quarantine dir e.e_path abs reason;
                        (None, Load_report.Quarantined reason)
                  else
                    match salvage e.e_kind stored with
                    | Some (content, dropped) ->
                        ( Some { path = e.e_path; kind = e.e_kind; content },
                          Load_report.Salvaged dropped )
                    | None ->
                        let reason =
                          Printf.sprintf
                            "checksum mismatch (%d bytes, expected %d), \
                             unsalvageable %s"
                            (String.length stored) e.e_len (kind_name e.e_kind)
                        in
                        if mutate then quarantine dir e.e_path abs reason;
                        (None, Load_report.Quarantined reason)))
          entries
      in
      if mutate then sweep dir ~keep:gen;
      let report =
        {
          Load_report.dir;
          generation = gen;
          members =
            List.map2
              (fun e (_, status) -> { Load_report.path = e.e_path; status })
              entries results;
        }
      in
      Ok (List.filter_map fst results, report)

let load dir = load_gen ~mutate:true dir

let verify dir =
  match load_gen ~mutate:false dir with
  | Ok (_, report) -> Ok report
  | Error _ as e -> e

let repair dir =
  match load dir with
  | Error _ as e -> e
  | Ok (members, report) ->
      if Load_report.is_clean report then Ok report
      else (
        match save dir members with
        | Ok () -> Ok report
        | Error _ as e -> e)

let find members path =
  List.find_map
    (fun m -> if m.path = path then Some m.content else None)
    members
