(** CRC-32 (IEEE 802.3, reflected, polynomial [0xEDB88320]) over strings.

    Every persisted artifact — snapshot members in the [MANIFEST],
    individual repository record lines, the manifest itself — carries one
    of these so that torn writes and bit flips are detected on load
    rather than silently parsed. Values are kept in native [int]s (the
    low 32 bits); [string "123456789" = 0xCBF43926]. *)

val string : string -> int
(** Checksum of a whole string ([update 0]). *)

val update : int -> string -> int
(** Extend a running checksum; [update (update 0 a) b = string (a ^ b)]. *)

val to_hex : int -> string
(** Fixed-width lowercase hex, 8 characters. *)

val of_hex : string -> int option
(** Inverse of {!to_hex}; [None] on anything that is not exactly 8
    {e lowercase} hex digits — a stored checksum is a fixed-width field,
    not an integer literal. *)
