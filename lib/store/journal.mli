(** Write-ahead integration journal: append-only intent/commit records
    with per-line CRC-32, each committed step checkpointing its artifact
    files next to the log.

    Layout:
    {v
    <dir>/JOURNAL                   header + intent/commit records
    <dir>/steps/0003-source-pdb/... artifacts of committed step seq 3
    v}

    Protocol, per step: append an {!intent} record; do the work; write
    every artifact member durably ({!Atomic_file.write}); only then
    append the {!commit} record naming each artifact's length and CRC.
    A process killed at any instant therefore leaves one of three
    states, all of which {!replay} resolves:

    - kill before the commit append: the step is uncommitted (a pending
      intent at most) — the resumer recomputes it;
    - kill {e inside} an append: a torn trailing [JOURNAL] line whose
      CRC cannot verify — dropped (and counted) on replay, leaving the
      previous record in force;
    - kill after the commit append: the step is committed and its
      artifacts verify — the resumer restores it without recomputation.

    Every line is ["<crc32 hex>\t<escaped tab-separated payload>"]. The
    header carries {!format_version} (replay refuses newer) and the
    caller's [meta] key=value pairs — the integration {e plan}. All
    writes are {!Fault}-aware, so chaos sweeps can kill at any byte,
    operation or step boundary. Single-process, single-writer. *)

type artifact = {
  a_path : string;  (** member path relative to the step directory *)
  a_kind : Snapshot.kind;  (** on-disk encoding, as for snapshot members *)
  a_len : int;  (** stored (encoded) length *)
  a_crc : int;  (** CRC-32 of the stored bytes *)
}

type committed = {
  seq : int;
  step : string;
  info : (string * string) list;
  artifacts : artifact list;
}

type replay = {
  meta : (string * string) list;  (** header key=values, in order *)
  committed : committed list;  (** commit records, in append order *)
  pending : (int * string) option;
      (** an intent with no matching commit — the step in flight when
          the process died *)
  dropped : int;  (** torn/corrupt trailing records dropped *)
}

type t
(** Open handle; holds no file descriptor, only the next sequence
    number. *)

val format_version : int

val exists : string -> bool
(** A [JOURNAL] file is present in the directory. *)

val create : string -> meta:(string * string) list -> (t, string) result
(** Start a fresh journal (creating the directory). Refuses an existing
    journal (resume it instead), a non-empty foreign directory, and
    meta keys containing ['=']. *)

val replay : string -> (replay, string) result
(** Read-only replay of the record log. [Error] only for journal-level
    damage (missing/unparseable header, unsupported version); torn
    trailing records are dropped and counted, not errors. *)

val open_resume : string -> (t * replay, string) result
(** {!replay}, plus a handle positioned after the highest sequence seen
    — new steps append monotonically. A torn trailing record is
    physically truncated off the log first, so subsequent appends start
    on a clean line boundary instead of concatenating onto garbage. *)

val intent : t -> step:string -> int
(** Append an intent record; returns the step's sequence number.
    @raise Sys_error on I/O failure, @raise Fault.Killed under an armed
    fault. *)

val commit :
  t ->
  seq:int ->
  step:string ->
  ?info:(string * string) list ->
  Snapshot.member list ->
  committed
(** Durably write the members under [steps/<seq>-<step>/], then append
    the commit record referencing them. Artifacts are on disk (written
    atomically, fsynced) {e before} the record that makes them
    authoritative exists.
    @raise Invalid_argument on invalid member paths or ['='] in info
    keys, @raise Sys_error, @raise Fault.Killed. *)

val read_artifact : dir:string -> committed -> string -> string option
(** Decoded content of the named artifact of a committed step, verified
    against the recorded length and CRC; [None] when absent, damaged or
    undecodable — the caller treats the step as uncommitted and
    recomputes. *)

val step_dirname : seq:int -> step:string -> string
(** The (sanitized) artifact directory name under [steps/]. *)
