let temp_suffix = ".aladin-tmp"

let fsync_fd fd = try Unix.fsync fd with Unix.Unix_error _ -> ()

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      fsync_fd fd;
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let write_raw path content =
  Fault.op ();
  let oc = open_out_bin path in
  let n = String.length content in
  let k = Fault.request n in
  (try
     output_substring oc content 0 k;
     flush oc;
     fsync_fd (Unix.descr_of_out_channel oc)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  if k < n then raise Fault.Killed

let write ?(sync_dir = true) path content =
  let tmp = path ^ temp_suffix in
  write_raw tmp content;
  Fault.check_op ();
  Fault.op ();
  Sys.rename tmp path;
  if sync_dir then fsync_dir (Filename.dirname path)

let append path content =
  Fault.op ();
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  let n = String.length content in
  let k = Fault.request n in
  (try
     output_substring oc content 0 k;
     flush oc;
     fsync_fd (Unix.descr_of_out_channel oc)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  if k < n then raise Fault.Killed;
  fsync_dir (Filename.dirname path)

let read path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  match really_input_string ic len with
  | doc ->
      close_in ic;
      doc
  | exception e ->
      close_in_noerr ic;
      raise e
