(** Typed per-load reports: what happened to each snapshot member,
    mirroring the pipeline's [Aladin_resilience.Run_report.t] across the
    process boundary.

    Loading a store is allowed to drop corrupt records around good ones
    or to quarantine an unreadable file — but, exactly like a degraded
    pipeline step, every such decision is recorded here, rendered by the
    CLI, and turned into a nonzero exit under [--strict]. *)

type status =
  | Ok  (** length and checksum verified, decoded cleanly *)
  | Salvaged of int
      (** checksum mismatch, but the member was recovered record-by-record;
          the payload is the number of records dropped (0 = content was
          structurally intact, only the stored checksum was stale) *)
  | Quarantined of string
      (** unrecoverable; moved to [<dir>/.quarantine/] with this reason *)
  | Missing  (** listed in the manifest but absent on disk *)

type member = { path : string; status : status }

type t = {
  dir : string;
  generation : int;  (** the snapshot the manifest committed *)
  members : member list;  (** manifest order *)
}

val status_name : status -> string
(** ["ok" | "salvaged" | "quarantined" | "missing"]. *)

val member_clean : member -> bool
(** [Ok] only — any salvage, quarantine or absence degrades the load. *)

val is_clean : t -> bool
(** Every member [Ok] — the predicate behind [load --strict] and the
    [fsck] exit status. *)

val records_dropped : t -> int
(** Total over [Salvaged] members. *)

val find : t -> string -> status option

val bump_salvaged : t -> string -> int -> t
(** [bump_salvaged t path n] folds [n] more dropped records into
    [path]'s status ([Ok] becomes [Salvaged n]): how decode-layer
    salvage (e.g. repository lines orphaned by a dropped parent) is
    surfaced on the member that caused it. No-op when [n = 0] or the
    member is quarantined/missing. *)

val render : t -> string
(** Multi-line human-readable rendering for the CLI. *)
