(** Durable single-file writes: the only place in the tree allowed to
    call [open_out] / [Sys.rename] on a persistence path (enforced by a
    [scripts/check.sh] grep-gate).

    {!write} is the atomic primitive: write [path ^ ".aladin-tmp"],
    fsync, rename over [path], fsync the directory. A crash at any point
    leaves either the old file or the new one, never a torn mix — the
    temp file a crash may leave behind is swept by the snapshot layer.
    All writes are {!Fault}-aware. *)

val temp_suffix : string
(** [".aladin-tmp"] — what interrupted writes leave behind and sweeps
    look for. *)

val write : ?sync_dir:bool -> string -> string -> unit
(** Atomic: temp → fsync → rename → directory fsync.
    [~sync_dir:false] skips the final directory fsync — for batches
    where the caller fsyncs each directory once after writing many
    files into it (the journal's checkpoint artifacts).
    @raise Sys_error on I/O failure, @raise Fault.Killed under an armed
    fault. *)

val write_raw : string -> string -> unit
(** Non-atomic fsynced write straight to [path] — only safe for files
    that are invisible until a later {!write} commits a reference to
    them (snapshot members inside an uncommitted generation
    directory). *)

val append : string -> string -> unit
(** Fsynced append to [path] (created if absent). Not atomic: a crash
    mid-append leaves a torn suffix — only safe for formats whose
    reader detects and drops a torn trailing record (the journal's
    per-line CRCs). {!Fault}-aware like {!write}. *)

val read : string -> string
(** Whole file. @raise Sys_error *)

val fsync_dir : string -> unit
(** Best-effort directory fsync (ignored on filesystems that refuse). *)
