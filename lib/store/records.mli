(** Per-record checksummed line codec.

    A "records" snapshot member (the metadata repository, feedback,
    sources and constraints files) is a document of newline-terminated
    lines. On disk each line is prefixed with its own CRC-32, under a
    header carrying the expected line count:
    {v
    aladin-records	1	<count>
    <crc32 hex>	<line>
    ...
    v}
    so a corrupted file can be salvaged record-by-record: lines whose
    checksum still matches are kept, the rest are dropped and counted.
    A line may itself contain tabs — only the first tab separates the
    checksum from the payload. *)

val encode : string -> string
(** The logical document (newline-terminated lines; a missing final
    newline is tolerated and normalized) → the stored bytes. *)

val decode : string -> string option
(** Strict inverse of {!encode}: [None] unless the header parses, the
    count matches and every line checksum verifies. *)

val decode_salvage : string -> (string * int) option
(** Best effort: keep every line whose checksum matches, return the
    surviving document and the number of records dropped (corrupted
    lines, plus any shortfall against the header's count — records a
    truncation cut off entirely). [None] when nothing is recoverable:
    no parseable header and no valid line. *)
