module Trace = Aladin_obs.Trace
module Span = Aladin_obs.Span
module Clock = Aladin_obs.Clock
module Budget = Aladin_resilience.Budget

(* One batch = one parallel_map call. Items are claimed with an atomic
   cursor (dynamic load balancing); [completed] counts items finished so
   the submitter can wait for stragglers after the cursor runs dry. *)
type batch = { total : int; completed : int Atomic.t; work : int -> unit }

type t = {
  domains : int; (* participants per fan-out, caller included *)
  m : Mutex.t;
  work_ready : Condition.t; (* a batch was posted, or stop *)
  batch_done : Condition.t; (* the last in-flight item finished *)
  mutable batch : batch option;
  mutable batch_id : int;
  mutable stopped : bool;
  mutable handles : unit Domain.t list;
}

(* set while a domain (worker or caller) is draining a batch; a nested
   fan-out from inside a task would deadlock the fixed-size pool *)
let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* the per-item Budget.check is the cooperative-cancellation poll point:
   an expired step budget stops the fan-out at the next item instead of
   letting stragglers run to completion *)
let run_sequential f xs =
  List.map
    (fun x ->
      Budget.check ();
      f x)
    xs

let size t = if t.stopped then 1 else t.domains

let worker_loop t participant =
  let rec loop last_id =
    Mutex.lock t.m;
    while t.batch_id = last_id && not t.stopped do
      Condition.wait t.work_ready t.m
    done;
    if t.stopped then Mutex.unlock t.m
    else begin
      let id = t.batch_id and b = t.batch in
      Mutex.unlock t.m;
      (match b with Some b -> b.work participant | None -> ());
      loop id
    end
  in
  loop 0

let shutdown t =
  Mutex.lock t.m;
  if not t.stopped then begin
    t.stopped <- true;
    Condition.broadcast t.work_ready
  end;
  let hs = t.handles in
  t.handles <- [];
  Mutex.unlock t.m;
  List.iter Domain.join hs

let all_pools : t list ref = ref []
let all_pools_m = Mutex.create ()
let cleanup_registered = ref false

let register t =
  Mutex.lock all_pools_m;
  all_pools := t :: !all_pools;
  if not !cleanup_registered then begin
    cleanup_registered := true;
    at_exit (fun () -> List.iter shutdown !all_pools)
  end;
  Mutex.unlock all_pools_m

let auto_domains () =
  match Sys.getenv_opt "ALADIN_DOMAINS" with
  | None -> Domain.recommended_domain_count ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> d
      | Some _ | None ->
          invalid_arg
            (Printf.sprintf "ALADIN_DOMAINS must be a positive integer, got %S" s))

let create ?domains () =
  let domains =
    match domains with Some d -> max 1 d | None -> auto_domains ()
  in
  let t =
    {
      domains;
      m = Mutex.create ();
      work_ready = Condition.create ();
      batch_done = Condition.create ();
      batch = None;
      batch_id = 0;
      stopped = false;
      handles = [];
    }
  in
  if domains > 1 then
    t.handles <-
      List.init (domains - 1) (fun i ->
          Domain.spawn (fun () -> worker_loop t (i + 1)));
  register t;
  t

(* shared pools per size, so Config/env-driven callers never spawn twice *)
let shared : (int, t) Hashtbl.t = Hashtbl.create 4
let shared_m = Mutex.create ()

let get ?(domains = 0) () =
  let d = if domains <= 0 then auto_domains () else domains in
  Mutex.lock shared_m;
  let pool =
    match Hashtbl.find_opt shared d with
    | Some p when not p.stopped -> p
    | Some _ | None ->
        let p = create ~domains:d () in
        Hashtbl.replace shared d p;
        p
  in
  Mutex.unlock shared_m;
  pool

(* Chunked claiming: claim [chunk] consecutive items per cursor bump
   instead of 1, so batches of many small items (candidate-pair
   similarity, xref scans) stop thrashing the shared cursor's cache line.
   Small enough that every participant still claims several times (load
   balancing survives), capped so huge batches don't create stragglers. *)
let chunk_size ~participants n = max 1 (min 64 (n / (participants * 8)))

let run_parallel t f input =
  let n = Array.length input in
  let out = Array.make n None in
  let error = Atomic.make None in
  let tracing = Trace.ambient () in
  let nparts = t.domains in
  let bufs = Array.init nparts (fun _ -> Trace.buffer_create ()) in
  (* per-participant (items, first-claim time, last-finish time) *)
  let stats = Array.make nparts None in
  let next = Atomic.make 0 in
  let completed = Atomic.make 0 in
  let chunk = chunk_size ~participants:nparts n in
  let run_item i =
    if Atomic.get error = None then
      match
        Budget.check ();
        f input.(i)
      with
      | v -> out.(i) <- Some v
      | exception e -> ignore (Atomic.compare_and_set error None (Some e))
  in
  let drain () =
    let k = ref 0 in
    let rec loop () =
      let start = Atomic.fetch_and_add next chunk in
      if start < n then begin
        let stop = min n (start + chunk) in
        for i = start to stop - 1 do
          run_item i
        done;
        let c = stop - start in
        k := !k + c;
        if c + Atomic.fetch_and_add completed c = n then begin
          Mutex.lock t.m;
          Condition.broadcast t.batch_done;
          Mutex.unlock t.m
        end;
        loop ()
      end
    in
    loop ();
    !k
  in
  let work p =
    Domain.DLS.set in_task true;
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set in_task false)
      (fun () ->
        let t0 = Clock.now () in
        let k =
          if tracing = None then drain ()
          else Trace.with_buffer bufs.(p) (fun () -> drain ())
        in
        if k > 0 then stats.(p) <- Some (k, t0, Clock.now ()))
  in
  let b = { total = n; completed; work } in
  Mutex.lock t.m;
  t.batch <- Some b;
  t.batch_id <- t.batch_id + 1;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.m;
  work 0;
  Mutex.lock t.m;
  while Atomic.get completed < n do
    Condition.wait t.batch_done t.m
  done;
  t.batch <- None;
  Mutex.unlock t.m;
  (match tracing with
  | None -> ()
  | Some tr ->
      Trace.add_attr tr "par.domains" (string_of_int nparts);
      Array.iteri
        (fun p st ->
          match st with
          | Some (k, t0, t1) ->
              let sp = Span.make ~name:"par.worker" ~start:t0 in
              Span.add_attr sp "worker" (string_of_int p);
              Span.add_attr sp "items" (string_of_int k);
              Span.close sp ~at:t1;
              Trace.merge_buffer tr ~spans_into:sp bufs.(p);
              Trace.attach_span tr sp
          | None -> Trace.merge_buffer tr bufs.(p))
        stats);
  match Atomic.get error with
  | Some e -> raise e
  | None -> Array.to_list (Array.map Option.get out)

let parallel_map t f xs =
  if Domain.DLS.get in_task then
    invalid_arg "Pool.parallel_map: nested fan-out from inside a pool task";
  match xs with
  | [] -> []
  (* the singleton shortcut must still poll the budget: a 1-element list
     must not escape an already-expired step budget that the sequential
     path would enforce *)
  | [ _ ] as xs -> run_sequential f xs
  | xs ->
      if t.domains <= 1 || t.stopped then run_sequential f xs
      else run_parallel t f (Array.of_list xs)

let parallel_filter_map t f xs = List.filter_map Fun.id (parallel_map t f xs)

let map ?pool f xs =
  match pool with None -> run_sequential f xs | Some p -> parallel_map p f xs

let filter_map ?pool f xs =
  match pool with
  | None -> List.filter_map f xs
  | Some p -> parallel_filter_map p f xs
