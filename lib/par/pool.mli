(** Fixed-size domain pool for the embarrassingly parallel candidate loops
    of the pipeline (inclusion-dependency inference, xref scans, homology
    search, duplicate similarity).

    {b Determinism contract.} [parallel_map pool f xs] returns exactly
    [List.map f xs] for any pool size, provided [f] is pure up to ambient
    trace recording: items are claimed dynamically by whichever domain is
    free, but results are assembled by input index. Ambient
    {!Aladin_obs.Trace} counters and histogram observations made inside [f]
    are collected in per-domain buffers and merged after the fan-out, so
    counter totals are also independent of the schedule (histogram float
    sums may differ in the last bit because float addition is not
    associative).

    {b Domain-safety contract.} [f] must not mutate shared state: every
    table it touches must be read-only during the fan-out (see the
    "Parallel execution" section of DESIGN.md). Ambient trace calls are the
    one sanctioned effect.

    A pool of size [n] uses the calling domain plus [n - 1] spawned worker
    domains; size <= 1 means no domains are ever spawned and every call
    degrades to the plain sequential [List] functions. Pools are the only
    place in the codebase allowed to call [Domain.spawn] / [Mutex.create]
    (enforced by scripts/check.sh). *)

type t

val create : ?domains:int -> unit -> t
(** A pool running on [domains] domains in total ([<= 1] = sequential; the
    calling domain is one of them, so [domains - 1] workers are spawned).
    [domains] defaults to {!auto_domains}. Created pools are shut down
    automatically at exit. *)

val auto_domains : unit -> int
(** The [ALADIN_DOMAINS] environment variable when set (a positive
    integer), else [Domain.recommended_domain_count ()].
    @raise Invalid_argument when [ALADIN_DOMAINS] is set but unparsable. *)

val get : ?domains:int -> unit -> t
(** A shared pool of the given size ([0] or unset = {!auto_domains});
    pools are cached per size, so repeated calls do not spawn new
    domains. This is what {!Aladin.Config}-driven callers use. *)

val size : t -> int
(** Total domains participating in a fan-out, including the caller. *)

val parallel_map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [List.map f xs], fanned out over the pool. Results are assembled in
    input order. The first exception raised by [f] is re-raised in the
    caller (remaining items are drained without running [f]); the pool
    stays usable.

    {b Chunked claiming.} Participants claim a small run of consecutive
    items per atomic cursor bump (scaled so each participant still claims
    several times per batch, capped at 64) instead of one item at a time,
    so batches of many cheap items don't serialize on the cursor's cache
    line. Claiming granularity never affects the result — assembly is by
    input index — only scheduling.

    {b Cooperative cancellation.} Before each item, every participating
    domain polls [Aladin_resilience.Budget.check]; when the enclosing
    step's wall-clock budget has expired, the fan-out stops claiming
    work and [Budget.Expired] is re-raised in the caller through the
    normal first-exception path. The sequential fallback polls the same
    way, so a budget behaves identically at any pool size.
    @raise Invalid_argument when called from inside a pool task (nested
    fan-out would deadlock the fixed-size pool). *)

val parallel_filter_map : t -> ('a -> 'b option) -> 'a list -> 'b list
(** [List.filter_map f xs] with {!parallel_map}'s contract. *)

val run_sequential : ('a -> 'b) -> 'a list -> 'b list
(** The sequential fallback ([List.map] with the same per-item budget
    poll); what every [parallel_*] function runs when [size t <= 1].
    Exposed so callers can be explicit. *)

val map : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** {!parallel_map} when a pool is given, {!run_sequential} otherwise —
    the convenience form used by library entry points taking [?pool]. *)

val filter_map : ?pool:t -> ('a -> 'b option) -> 'a list -> 'b list

val shutdown : t -> unit
(** Join the pool's worker domains. Idempotent; runs automatically for
    every created pool via [at_exit]. Using a pool after [shutdown] falls
    back to sequential execution. *)
