(** The data-import component (§4.1): format sniffing + dispatch.

    "A variety of known import procedures can be used" — this module picks
    the right parser from content, so a source directory can be ingested
    without telling ALADIN what is inside.

    Importers never raise: the result carries either a partial-but-usable
    catalog (bad records collected as {!Aladin_resilience.Import_error}
    record errors) or a typed whole-source error. The warehouse folds
    record errors into the run report's import step as warnings. *)

open Aladin_relational
module Import_error = Aladin_resilience.Import_error

type format = Swissprot_flat | Embl_flat | Genbank_flat | Fasta_format | Obo_format | Pdb_format | Xml_format | Csv_dump

val format_name : format -> string

val sniff : string -> format option
(** Guess the format of a document from its first lines. *)

type import = {
  catalog : Catalog.t;
  record_errors : Import_error.record_error list;
      (** records (or CSV rows) that could not be parsed and were dropped;
          [index] counts records in document order (for CSV, the header
          row is record 0) *)
}

val import_string : name:string -> string -> (import, Import_error.t) result
(** Import a document of any recognizable format. [Error] when the format
    cannot be sniffed ([Unrecognized]) or nothing at all parses
    ([Parse]); otherwise a catalog plus the per-record errors recovered
    along the way. Never raises. *)

val import_path : name:string -> string -> (import, Import_error.t) result
(** A directory is loaded as a CSV dump; a file is sniffed and parsed.
    Unreadable paths yield [Error] with kind [Io]. Never raises. *)
