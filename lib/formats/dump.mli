(** Relational dump loader: a set of named CSV documents (one per relation)
    plus an optional constraints manifest — the "direct relational dump
    files" import path of §4.1 (Swiss-Prot, GeneOntology, EnsEmbl). *)

open Aladin_relational
module Import_error = Aladin_resilience.Import_error

val load : name:string -> (string * string) list -> Catalog.t
(** [(relation_name, csv_with_header)] pairs. Strict: raises on malformed
    CSV (library callers wanting tolerance go through {!load_dir} or
    [Import.import_string]). *)

val load_dir :
  name:string -> string -> Catalog.t * Import_error.record_error list
(** Every [*.csv] in the directory becomes a relation (file basename);
    [constraints.txt], when present, is parsed with {!parse_constraints}.
    Tolerant: ragged rows, unloadable relation files, bad constraint
    lines and constraints over unknown relations are dropped and
    reported as record errors (the [index] is the row or line number
    within its file; the [reason] names the file) instead of raising. *)

val parse_constraints : string -> Constraint_def.t list * (int * string) list
(** One constraint per line:
    {v
    unique <relation> <attribute>
    pkey <relation> <attribute>
    fkey <src_rel> <src_attr> <dst_rel> <dst_attr>
    v}
    Blank lines and [#] comments are skipped. Malformed lines are
    returned as [(line_number, message)] diagnostics, not raised. *)

val render_constraints : Constraint_def.t list -> string

val save_dir : Catalog.t -> string -> unit
(** Write each relation as [<dir>/<relation>.csv] and the declared
    constraints as [constraints.txt]. Creates the directory. *)
