(** Relational dump loader: a set of named CSV documents (one per relation)
    plus an optional constraints manifest — the "direct relational dump
    files" import path of §4.1 (Swiss-Prot, GeneOntology, EnsEmbl). *)

open Aladin_relational
module Import_error = Aladin_resilience.Import_error

val load : name:string -> (string * string) list -> Catalog.t
(** [(relation_name, csv_with_header)] pairs. Strict: raises on malformed
    CSV (library callers wanting tolerance go through {!load_dir} or
    [Import.import_string]). *)

val load_dir :
  name:string -> string -> Catalog.t * Import_error.record_error list
(** Every [*.csv] becomes a relation (file basename); [constraints.txt],
    when present, is parsed with {!parse_constraints}. A directory with a
    [MANIFEST] is read as a crash-safe [Aladin_store] snapshot: members
    are checksum-verified, damaged ones salvaged or quarantined, and any
    degradation reported as record errors alongside the usual ones.
    A plain directory of CSVs (no manifest) loads as before.
    Tolerant: ragged rows, unloadable relation files, bad constraint
    lines and constraints over unknown relations are dropped and
    reported as record errors (the [index] is the row or line number
    within its file; the [reason] names the file) instead of raising.
    @raise Sys_error on an unreadable directory or a store whose
    manifest is itself damaged. *)

val catalog_of_members :
  name:string ->
  (string * string) list ->
  Catalog.t * Import_error.record_error list
(** The tolerant core of {!load_dir} over in-memory [(file, content)]
    members ([*.csv] relations plus optional [constraints.txt]). *)

val members_of_catalog : Catalog.t -> Aladin_store.Snapshot.member list
(** The snapshot members {!save_dir} writes: one checksummed CSV per
    relation plus [constraints.txt] (per-record checksums) when any
    constraint is declared. *)

val parse_constraints : string -> Constraint_def.t list * (int * string) list
(** One constraint per line:
    {v
    unique <relation> <attribute>
    pkey <relation> <attribute>
    fkey <src_rel> <src_attr> <dst_rel> <dst_attr>
    v}
    Blank lines and [#] comments are skipped. Malformed lines are
    returned as [(line_number, message)] diagnostics, not raised. *)

val render_constraints : Constraint_def.t list -> string

val save_dir : Catalog.t -> string -> (unit, string) result
(** Write the catalog as a crash-safe [Aladin_store] snapshot: each
    relation under [<relation>.csv] plus [constraints.txt], committed
    atomically via the manifest. Creates the directory. Refuses
    ([Error]) to clobber an existing non-empty directory that is not an
    ALADIN store. *)
