open Aladin_relational
module Import_error = Aladin_resilience.Import_error

let load ~name pairs =
  let cat = Catalog.create ~name in
  List.iter
    (fun (rel_name, doc) ->
      let records = Csv.read_string doc in
      let rel = Csv.relation_of_records ~name:rel_name ~header:true records in
      Catalog.add cat rel)
    pairs;
  cat

let parse_constraints doc =
  let constraints = ref [] in
  let bad = ref [] in
  List.iteri
    (fun i line ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "unique"; relation; attribute ] ->
            constraints := Constraint_def.Unique { relation; attribute } :: !constraints
        | [ "pkey"; relation; attribute ] ->
            constraints := Constraint_def.Primary_key { relation; attribute } :: !constraints
        | [ "fkey"; src_relation; src_attribute; dst_relation; dst_attribute ] ->
            constraints :=
              Constraint_def.Foreign_key
                { src_relation; src_attribute; dst_relation; dst_attribute }
              :: !constraints
        | _ -> bad := (i + 1, Printf.sprintf "bad constraint line %S" line) :: !bad)
    (String.split_on_char '\n' doc);
  (List.rev !constraints, List.rev !bad)

let render_constraints cs =
  cs
  |> List.map (function
       | Constraint_def.Unique { relation; attribute } ->
           Printf.sprintf "unique %s %s" relation attribute
       | Constraint_def.Primary_key { relation; attribute } ->
           Printf.sprintf "pkey %s %s" relation attribute
       | Constraint_def.Foreign_key
           { src_relation; src_attribute; dst_relation; dst_attribute } ->
           Printf.sprintf "fkey %s %s %s %s" src_relation src_attribute
             dst_relation dst_attribute)
  |> String.concat "\n"

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let doc = really_input_string ic len in
  close_in ic;
  doc

let load_dir ~name dir =
  let entries = Sys.readdir dir |> Array.to_list |> List.sort String.compare in
  let csvs = List.filter (fun f -> Filename.check_suffix f ".csv") entries in
  let cat = Catalog.create ~name in
  let errs = ref [] in
  let report file index reason =
    errs := { Import_error.index; reason = Printf.sprintf "%s: %s" file reason } :: !errs
  in
  List.iter
    (fun f ->
      let rel_name = Filename.chop_suffix f ".csv" in
      match Csv.read_string (read_file (Filename.concat dir f)) with
      | [] | [ _ ] -> report f 0 "csv has no data rows"
      | header :: rows -> (
          let arity = List.length header in
          let good = ref [] in
          List.iteri
            (fun i row ->
              if List.length row = arity then good := row :: !good
              else
                report f (i + 1)
                  (Printf.sprintf "ragged row: %d fields, expected %d"
                     (List.length row) arity))
            rows;
          match
            Csv.relation_of_records ~name:rel_name ~header:true
              (header :: List.rev !good)
          with
          | rel -> Catalog.add cat rel
          | exception e -> report f 0 (Printexc.to_string e)))
    csvs;
  let manifest = Filename.concat dir "constraints.txt" in
  if Sys.file_exists manifest then begin
    let cs, bad = parse_constraints (read_file manifest) in
    List.iter (fun (ln, msg) -> report "constraints.txt" ln msg) bad;
    List.iter
      (fun c ->
        match Catalog.declare cat c with
        | () -> ()
        | exception e -> report "constraints.txt" 0 (Printexc.to_string e))
      cs
  end;
  (cat, List.rev !errs)

let save_dir cat dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun rel ->
      let path = Filename.concat dir (Relation.name rel ^ ".csv") in
      let oc = open_out path in
      output_string oc (Csv.write_relation rel);
      close_out oc)
    (Catalog.relations cat);
  match Catalog.constraints cat with
  | [] -> ()
  | cs ->
      let oc = open_out (Filename.concat dir "constraints.txt") in
      output_string oc (render_constraints cs);
      output_string oc "\n";
      close_out oc
