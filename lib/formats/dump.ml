open Aladin_relational
module Import_error = Aladin_resilience.Import_error
module Snapshot = Aladin_store.Snapshot

let load ~name pairs =
  let cat = Catalog.create ~name in
  List.iter
    (fun (rel_name, doc) ->
      let records = Csv.read_string doc in
      let rel = Csv.relation_of_records ~name:rel_name ~header:true records in
      Catalog.add cat rel)
    pairs;
  cat

let parse_constraints doc =
  let constraints = ref [] in
  let bad = ref [] in
  List.iteri
    (fun i line ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "unique"; relation; attribute ] ->
            constraints := Constraint_def.Unique { relation; attribute } :: !constraints
        | [ "pkey"; relation; attribute ] ->
            constraints := Constraint_def.Primary_key { relation; attribute } :: !constraints
        | [ "fkey"; src_relation; src_attribute; dst_relation; dst_attribute ] ->
            constraints :=
              Constraint_def.Foreign_key
                { src_relation; src_attribute; dst_relation; dst_attribute }
              :: !constraints
        | _ -> bad := (i + 1, Printf.sprintf "bad constraint line %S" line) :: !bad)
    (String.split_on_char '\n' doc);
  (List.rev !constraints, List.rev !bad)

let render_constraints cs =
  cs
  |> List.map (function
       | Constraint_def.Unique { relation; attribute } ->
           Printf.sprintf "unique %s %s" relation attribute
       | Constraint_def.Primary_key { relation; attribute } ->
           Printf.sprintf "pkey %s %s" relation attribute
       | Constraint_def.Foreign_key
           { src_relation; src_attribute; dst_relation; dst_attribute } ->
           Printf.sprintf "fkey %s %s %s %s" src_relation src_attribute
             dst_relation dst_attribute)
  |> String.concat "\n"

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let doc = really_input_string ic len in
  close_in ic;
  doc

(* Build a catalog from (file, content) members — the shared tolerant
   core behind both the store-snapshot and legacy-directory loaders. *)
let catalog_of_members ~name members =
  let cat = Catalog.create ~name in
  let errs = ref [] in
  let report file index reason =
    errs := { Import_error.index; reason = Printf.sprintf "%s: %s" file reason } :: !errs
  in
  List.iter
    (fun (f, content) ->
      if Filename.check_suffix f ".csv" then begin
        let rel_name = Filename.chop_suffix f ".csv" in
        match Csv.read_string content with
        | [] | [ _ ] -> report f 0 "csv has no data rows"
        | header :: rows -> (
            let arity = List.length header in
            let good = ref [] in
            List.iteri
              (fun i row ->
                if List.length row = arity then good := row :: !good
                else
                  report f (i + 1)
                    (Printf.sprintf "ragged row: %d fields, expected %d"
                       (List.length row) arity))
              rows;
            match
              Csv.relation_of_records ~name:rel_name ~header:true
                (header :: List.rev !good)
            with
            | rel -> Catalog.add cat rel
            | exception e -> report f 0 (Printexc.to_string e))
      end)
    members;
  (match List.assoc_opt "constraints.txt" members with
  | None -> ()
  | Some doc ->
      let cs, bad = parse_constraints doc in
      List.iter (fun (ln, msg) -> report "constraints.txt" ln msg) bad;
      List.iter
        (fun c ->
          match Catalog.declare cat c with
          | () -> ()
          | exception e -> report "constraints.txt" 0 (Printexc.to_string e))
        cs);
  (cat, List.rev !errs)

let members_of_catalog cat =
  List.map
    (fun rel ->
      { Snapshot.path = Relation.name rel ^ ".csv"; kind = Snapshot.Csv;
        content = Csv.write_relation rel })
    (Catalog.relations cat)
  @
  match Catalog.constraints cat with
  | [] -> []
  | cs ->
      [ { Snapshot.path = "constraints.txt"; kind = Snapshot.Records;
          content = render_constraints cs ^ "\n" } ]

let report_of_status (m : Aladin_store.Load_report.member) =
  match m.status with
  | Aladin_store.Load_report.Ok -> None
  | Salvaged n ->
      Some
        { Import_error.index = 0;
          reason =
            Printf.sprintf "%s: salvaged (%d records dropped)" m.path n }
  | Quarantined reason ->
      Some
        { Import_error.index = 0;
          reason = Printf.sprintf "%s: quarantined: %s" m.path reason }
  | Missing ->
      Some { Import_error.index = 0; reason = m.path ^ ": missing from store" }

let load_dir ~name dir =
  if Snapshot.is_store dir then
    match Snapshot.load dir with
    | Error msg -> raise (Sys_error msg)
    | Ok (members, report) ->
        let cat, errs =
          catalog_of_members ~name
            (List.map (fun (m : Snapshot.member) -> (m.path, m.content)) members)
        in
        let store_errs =
          List.filter_map report_of_status report.Aladin_store.Load_report.members
        in
        (cat, store_errs @ errs)
  else
    (* legacy layout: a plain directory of CSVs, no manifest *)
    let entries = Sys.readdir dir |> Array.to_list |> List.sort String.compare in
    let files =
      List.filter
        (fun f -> Filename.check_suffix f ".csv" || f = "constraints.txt")
        entries
    in
    catalog_of_members ~name
      (List.map (fun f -> (f, read_file (Filename.concat dir f))) files)

let save_dir cat dir = Snapshot.save dir (members_of_catalog cat)
