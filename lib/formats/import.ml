open Aladin_relational
module Import_error = Aladin_resilience.Import_error

type format = Swissprot_flat | Embl_flat | Genbank_flat | Fasta_format | Obo_format | Pdb_format | Xml_format | Csv_dump

let format_name = function
  | Swissprot_flat -> "swissprot"
  | Embl_flat -> "embl"
  | Genbank_flat -> "genbank"
  | Fasta_format -> "fasta"
  | Obo_format -> "obo"
  | Pdb_format -> "pdb"
  | Xml_format -> "xml"
  | Csv_dump -> "csv"

let first_meaningful_lines doc n =
  String.split_on_char '\n' doc
  |> List.filter_map (fun l ->
         let l = String.trim l in
         if l = "" then None else Some l)
  |> List.filteri (fun i _ -> i < n)

let sniff doc =
  match first_meaningful_lines doc 5 with
  | [] -> None
  | first :: _ as lines ->
      let starts prefix s =
        String.length s >= String.length prefix
        && String.sub s 0 (String.length prefix) = prefix
      in
      if starts ">" first then Some Fasta_format
      else if starts "<" first then Some Xml_format
      else if starts "format-version:" first || List.exists (( = ) "[Term]") lines
      then Some Obo_format
      else if starts "HEADER" first then Some Pdb_format
      else if starts "LOCUS" first then Some Genbank_flat
      else if starts "ID " first || starts "ID\t" first then
        (* both Swiss-Prot and EMBL start with ID; EMBL's ID line is
           ';'-separated and records carry an FT feature table *)
        if String.contains first ';'
           || List.exists (fun l -> starts "FT " l) (first_meaningful_lines doc 40)
        then Some Embl_flat
        else Some Swissprot_flat
      else if String.contains first ',' then Some Csv_dump
      else None

type import = {
  catalog : Catalog.t;
  record_errors : Import_error.record_error list;
}

(* --- per-record recovery for the multi-record formats ---

   Fast path: hand the whole document to the parser. If that raises, the
   document is re-split into records, each record is test-parsed alone,
   the bad ones are collected as record errors, and the good ones are
   re-joined and parsed together — so one corrupt entry costs one entry,
   not the source. *)

let chunk_lines flush_after is_start doc =
  let lines = String.split_on_char '\n' doc in
  let finished = ref [] in
  let current = ref [] in
  let flush () =
    if !current <> [] then begin
      finished := List.rev !current :: !finished;
      current := []
    end
  in
  List.iter
    (fun line ->
      if is_start line && !current <> [] then flush ();
      current := line :: !current;
      if flush_after line then flush ())
    lines;
  flush ();
  List.rev_map (String.concat "\n") !finished |> List.rev

(* Swiss-Prot / EMBL / GenBank records end at a "//" line *)
let split_terminated = chunk_lines (fun l -> String.trim l = "//") (fun _ -> false)

(* FASTA records start at a '>' header line *)
let split_fasta =
  chunk_lines
    (fun _ -> false)
    (fun l -> String.length l > 0 && l.[0] = '>')

(* OBO: a header chunk, then one chunk per [...] stanza *)
let split_obo =
  chunk_lines
    (fun _ -> false)
    (fun l ->
      let l = String.trim l in
      String.length l > 0 && l.[0] = '[')

let recover ~name ~split parse doc =
  match parse ~name doc with
  | catalog -> Ok { catalog; record_errors = [] }
  | exception whole_doc_exn -> (
      let chunks = split doc in
      let kept, record_errors =
        List.fold_left
          (fun (kept, errs) chunk ->
            let index = List.length kept + List.length errs in
            match parse ~name chunk with
            | (_ : Catalog.t) -> (chunk :: kept, errs)
            | exception e ->
                ( kept,
                  { Import_error.index; reason = Printexc.to_string e } :: errs ))
          ([], []) chunks
      in
      let kept = List.rev kept and record_errors = List.rev record_errors in
      let fail detail =
        Error (Import_error.make ~source:name ~kind:Parse detail)
      in
      if kept = [] then fail (Printexc.to_string whole_doc_exn)
      else
        match parse ~name (String.concat "\n" kept) with
        | catalog -> Ok { catalog; record_errors }
        | exception e -> fail (Printexc.to_string e))

(* whole-document formats: no record structure to fall back on *)
let whole ~name parse doc =
  match parse ~name doc with
  | catalog -> Ok { catalog; record_errors = [] }
  | exception e ->
      Error (Import_error.make ~source:name ~kind:Parse (Printexc.to_string e))

(* a single CSV becomes a one-relation source named like the source;
   ragged rows are dropped into record errors instead of aborting *)
let import_csv ~name doc =
  match Csv.read_string doc with
  | [] | [ _ ] ->
      Error (Import_error.make ~source:name ~kind:Parse "csv has no data rows")
  | header :: rows -> (
      let arity = List.length header in
      let _, good, record_errors =
        List.fold_left
          (fun (index, good, errs) row ->
            if List.length row = arity then (index + 1, row :: good, errs)
            else
              ( index + 1,
                good,
                { Import_error.index;
                  reason =
                    Printf.sprintf "ragged row: %d fields, expected %d"
                      (List.length row) arity }
                :: errs ))
          (1, [], []) rows
      in
      let good = List.rev good and record_errors = List.rev record_errors in
      if good = [] then
        Error (Import_error.make ~source:name ~kind:Parse "no parsable csv rows")
      else
        match
          let rel =
            Csv.relation_of_records ~name ~header:true (header :: good)
          in
          let cat = Catalog.create ~name in
          Catalog.add cat rel;
          cat
        with
        | catalog -> Ok { catalog; record_errors }
        | exception e ->
            Error
              (Import_error.make ~source:name ~kind:Parse (Printexc.to_string e)))

let import_string ~name doc =
  match sniff doc with
  | None ->
      Error (Import_error.make ~source:name ~kind:Unrecognized "cannot sniff format")
  | Some Swissprot_flat ->
      recover ~name ~split:split_terminated
        (fun ~name doc -> Swissprot.parse ~name doc)
        doc
  | Some Embl_flat ->
      recover ~name ~split:split_terminated
        (fun ~name doc -> Embl.parse ~name doc)
        doc
  | Some Genbank_flat ->
      recover ~name ~split:split_terminated
        (fun ~name doc -> Genbank.parse ~name doc)
        doc
  | Some Fasta_format ->
      recover ~name ~split:split_fasta (fun ~name doc -> Fasta.parse ~name doc) doc
  | Some Obo_format ->
      recover ~name ~split:split_obo (fun ~name doc -> Obo.parse ~name doc) doc
  | Some Pdb_format -> whole ~name (fun ~name doc -> Pdb_flat.parse ~name doc) doc
  | Some Xml_format ->
      whole ~name (fun ~name doc -> Xml_shred.shred_string ~name doc) doc
  | Some Csv_dump -> import_csv ~name doc

(* importer I/O retries transient failures (interrupted/contended reads)
   with deterministic backoff before giving up to an Io import error *)
let read_file path =
  Aladin_resilience.Retry.run ~step:("read " ^ path) (fun () ->
      let ic = open_in path in
      match
        let len = in_channel_length ic in
        really_input_string ic len
      with
      | doc ->
          close_in ic;
          doc
      | exception e ->
          close_in_noerr ic;
          raise e)

let import_path ~name path =
  match
    if Sys.is_directory path then
      match Dump.load_dir ~name path with
      | catalog, record_errors -> Ok { catalog; record_errors }
    else import_string ~name (read_file path)
  with
  | result -> result
  | exception Sys_error msg -> Error (Import_error.make ~source:name ~kind:Io msg)
  | exception e ->
      Error (Import_error.make ~source:name ~kind:Parse (Printexc.to_string e))
