(** Minimal RFC-4180-ish CSV reader/writer (relational dump files). *)

val parse_line : string -> string list
(** Split one pre-split line into fields. Handles double-quoted fields with
    embedded commas and escaped quotes (""). A field spanning multiple
    physical lines cannot be represented here — use {!read_string}, which
    tracks quote state across newlines. *)

val escape_field : string -> string

val render_line : string list -> string

val read_string : string -> string list list
(** Whole document -> records. Streams across lines with quote-state
    tracking: quoted fields may contain newlines, CR and LF inside quotes
    are preserved, and a CR before an unquoted record-ending LF is stripped
    (CRLF input). Blank lines are skipped. *)

val read_file : string -> string list list

val relation_of_records :
  name:string -> header:bool -> string list list -> Relation.t
(** First record is the header when [header]; otherwise attributes are named
    [c0..cn]. Values are type-inferred via {!Value.of_string}.
    @raise Invalid_argument on empty input with [header] or ragged rows. *)

val write_relation : Relation.t -> string
(** Header + rows as a CSV document. *)
