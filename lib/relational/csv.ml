let parse_line line =
  let buf = Buffer.create 32 in
  let fields = ref [] in
  let n = String.length line in
  let flush () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  (* states: 0 = unquoted, 1 = inside quotes *)
  let rec loop i state =
    if i >= n then flush ()
    else
      let c = line.[i] in
      match state with
      | 0 ->
          if c = ',' then begin
            flush ();
            loop (i + 1) 0
          end
          else if c = '"' && Buffer.length buf = 0 then loop (i + 1) 1
          else begin
            Buffer.add_char buf c;
            loop (i + 1) 0
          end
      | _ ->
          if c = '"' then
            if i + 1 < n && line.[i + 1] = '"' then begin
              Buffer.add_char buf '"';
              loop (i + 2) 1
            end
            else loop (i + 1) 0
          else begin
            Buffer.add_char buf c;
            loop (i + 1) 1
          end
  in
  loop 0 0;
  List.rev !fields

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape_field s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let render_line fields = String.concat "," (List.map escape_field fields)

(* Streaming record reader: newlines only terminate a record when outside
   quotes, so quoted fields may span lines; a CR immediately before an
   unquoted record-ending LF is stripped (CRLF input), while CR/LF inside
   quotes are preserved verbatim. *)
let read_string doc =
  let n = String.length doc in
  let records = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let saw_quote = ref false in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let end_record () =
    (* a record that is a single unquoted blank-ish field is a skipped
       blank line (matching the old line-based reader) *)
    let blank =
      !fields = [] && (not !saw_quote) && String.trim (Buffer.contents buf) = ""
    in
    if blank then Buffer.clear buf
    else begin
      flush_field ();
      records := List.rev !fields :: !records
    end;
    fields := [];
    saw_quote := false
  in
  (* states: 0 = unquoted, 1 = inside quotes *)
  let rec loop i state =
    if i >= n then begin
      if state = 1 || !fields <> [] || Buffer.length buf > 0 || !saw_quote then
        end_record ()
    end
    else
      let c = doc.[i] in
      match state with
      | 0 ->
          if c = ',' then begin
            flush_field ();
            loop (i + 1) 0
          end
          else if c = '"' && Buffer.length buf = 0 then begin
            saw_quote := true;
            loop (i + 1) 1
          end
          else if c = '\r' && i + 1 < n && doc.[i + 1] = '\n' then begin
            (* unquoted CRLF is a record terminator; a CR that arrived
               inside quotes is data and never reaches this branch *)
            end_record ();
            loop (i + 2) 0
          end
          else if c = '\n' then begin
            end_record ();
            loop (i + 1) 0
          end
          else begin
            Buffer.add_char buf c;
            loop (i + 1) 0
          end
      | _ ->
          if c = '"' then
            if i + 1 < n && doc.[i + 1] = '"' then begin
              Buffer.add_char buf '"';
              loop (i + 2) 1
            end
            else loop (i + 1) 0
          else begin
            Buffer.add_char buf c;
            loop (i + 1) 1
          end
  in
  loop 0 0;
  List.rev !records

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let doc = really_input_string ic len in
  close_in ic;
  read_string doc

let relation_of_records ~name ~header records =
  match (records, header) with
  | [], true -> invalid_arg "Csv.relation_of_records: empty input with header"
  | [], false -> Relation.create ~name (Schema.of_names [])
  | first :: rest, _ ->
      let attrs, rows =
        if header then (first, rest)
        else (List.mapi (fun i _ -> Printf.sprintf "c%d" i) first, records)
      in
      let rel = Relation.create ~name (Schema.of_names attrs) in
      let arity = List.length attrs in
      List.iter
        (fun fields ->
          if List.length fields <> arity then
            invalid_arg
              (Printf.sprintf "Csv.relation_of_records: ragged row in %s" name);
          Relation.insert_strings rel fields)
        rows;
      rel

let write_relation rel =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (render_line (Schema.names (Relation.schema rel)));
  Buffer.add_char buf '\n';
  Relation.iter_rows
    (fun r ->
      Buffer.add_string buf
        (render_line (Array.to_list (Array.map Value.to_string r)));
      Buffer.add_char buf '\n')
    rel;
  Buffer.contents buf
