(** Warehouse search engine (§4.6): full-text over every object's data and
    textual annotation, with focused (vertical/horizontal) variants and
    TF-IDF ranking. *)

open Aladin_links

type t

val build : Profile_list.t -> t
(** Index each primary object: its accession, every field of its primary
    row, and every text field of the rows it owns. Field names in the index
    are ["relation.attribute"]; the accession is also indexed under
    ["accession"]. *)

val object_count : t -> int

type hit = { obj : Objref.t; score : float; matched : string list }
(** [matched] is sorted alphabetically. *)

val search : t -> ?limit:int -> string -> hit list
(** Ranked full-text search. Ordering is fully deterministic: descending
    score, equal scores broken by {!Objref.compare} — never by hash-table
    or schedule order — so the same query returns byte-identical results
    across runs, pool sizes, and cached vs. recomputed responses. *)

val focused :
  t -> ?source:string -> ?field:string -> ?limit:int -> string -> hit list
(** Focused search: [source] restricts horizontally (objects of one
    source), [field] vertically (one ["relation.attribute"]). Same
    deterministic ordering contract as {!search}. *)

val resolve : t -> string -> Objref.t option
(** Exact accession lookup ("known-item" access). *)

val index : t -> Aladin_text.Inverted_index.t
(** The underlying index (for diagnostics). *)
