open Aladin_relational
open Aladin_discovery
open Aladin_links
module Tx = Aladin_text

type t = {
  idx : Tx.Inverted_index.t;
  objects : (string, Objref.t) Hashtbl.t;  (* doc id -> object *)
  by_accession : (string, Objref.t) Hashtbl.t;
}

let build profiles =
  let idx = Tx.Inverted_index.create () in
  let objects = Hashtbl.create 512 in
  let by_accession = Hashtbl.create 512 in
  List.iter
    (fun (e : Profile_list.entry) ->
      let catalog = Profile.catalog e.sp.profile in
      (match Source_profile.primary_accession e.sp with
      | None -> ()
      | Some (prel, pattr) ->
          (* index the primary rows field by field *)
          let rel = Catalog.find_exn catalog prel in
          let schema = Relation.schema rel in
          let acc_i = Schema.index_of_exn schema pattr in
          let source = Source_profile.source e.sp in
          Relation.iter_rows
            (fun row ->
              let accession = Value.to_string row.(acc_i) in
              let obj = Objref.make ~source ~relation:prel ~accession in
              let doc_id = Objref.to_string obj in
              Hashtbl.replace objects doc_id obj;
              Hashtbl.replace by_accession (String.lowercase_ascii accession) obj;
              Tx.Inverted_index.add idx ~doc_id ~field:"accession" accession;
              List.iteri
                (fun i attr ->
                  if i <> acc_i then
                    let v = row.(i) in
                    if not (Value.is_null v) then
                      Tx.Inverted_index.add idx ~doc_id
                        ~field:(prel ^ "." ^ attr)
                        (Value.to_string v))
                (Schema.names schema))
            rel);
      (* index owned text fields of secondary relations *)
      Profile.all_stats e.sp.profile
      |> List.iter (fun (cs : Col_stats.t) ->
             let is_primary_rel =
               match Source_profile.primary_relation e.sp with
               | Some p -> String.lowercase_ascii p = String.lowercase_ascii cs.relation
               | None -> false
             in
             if (not is_primary_rel) && Prune.is_text_field cs then begin
               let rel = Catalog.find_exn catalog cs.relation in
               let ai = Schema.index_of_exn (Relation.schema rel) cs.attribute in
               Relation.iteri_rows
                 (fun row_i row ->
                   let v = row.(ai) in
                   if not (Value.is_null v) then
                     List.iter
                       (fun obj ->
                         Tx.Inverted_index.add idx
                           ~doc_id:(Objref.to_string obj)
                           ~field:(cs.relation ^ "." ^ cs.attribute)
                           (Value.to_string v))
                       (Owner_map.object_of_row e.owner ~relation:cs.relation
                          ~row:row_i))
                 rel
             end))
    (Profile_list.entries profiles);
  { idx; objects; by_accession }

let object_count t = Hashtbl.length t.objects

type hit = { obj : Objref.t; score : float; matched : string list }

(* descending score, ties broken by the full Objref order (source,
   relation, accession) — never by hash-table or schedule order — so a
   result list is byte-identical across runs, domain counts, and cached
   vs. recomputed responses *)
let compare_hits a b =
  match Float.compare b.score a.score with
  | 0 -> Objref.compare a.obj b.obj
  | c -> c

let to_hits t results =
  List.filter_map
    (fun (r : Tx.Inverted_index.query_result) ->
      Hashtbl.find_opt t.objects r.doc_id
      |> Option.map (fun obj ->
             { obj; score = r.score; matched = List.sort String.compare r.matched }))
    results
  |> List.sort compare_hits

let search t ?(limit = 20) query =
  to_hits t (Tx.Inverted_index.search t.idx ~limit query)

let focused t ?source ?field ?(limit = 20) query =
  let raw = Tx.Inverted_index.search t.idx ?field ~limit:(limit * 4) query in
  to_hits t raw
  |> List.filter (fun h ->
         match source with
         | Some s -> h.obj.Objref.source = s
         | None -> true)
  |> List.filteri (fun i _ -> i < limit)

let resolve t accession =
  Hashtbl.find_opt t.by_accession (String.lowercase_ascii accession)

let index t = t.idx
