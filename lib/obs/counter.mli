(** A named monotonically-increasing event count (pairs considered, pairs
    pruned, candidates accepted, ...). Counters live inside a {!Trace} and
    are exported by {!Sink}. *)

type t

val create : unit -> t

val incr : ?by:int -> t -> unit
(** Default increment 1. *)

val value : t -> int

val reset : t -> unit
