(** One timed operation inside a trace: a name, a wall-clock interval from
    {!Clock}, string attributes, and child spans. Spans are created and
    closed by {!Trace}; consumers (tests, {!Sink}) only read them. *)

type t

val make : name:string -> start:float -> t
(** An open span. *)

val close : t -> at:float -> unit
(** Idempotent; [at] is clamped to [start] so durations are never
    negative. *)

val is_open : t -> bool

val name : t -> string

val start : t -> float
(** Absolute seconds ({!Clock} domain). *)

val finish : t -> float
(** Equals [start] while the span is open. *)

val duration : t -> float
(** [finish - start], >= 0. *)

val attrs : t -> (string * string) list
(** In insertion order. *)

val add_attr : t -> string -> string -> unit

val add_child : t -> t -> unit

val children : t -> t list
(** In creation order. *)
