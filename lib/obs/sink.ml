let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  (* JSON has no inf/nan literals *)
  if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.9g" f)
  else Buffer.add_string buf "null"

let add_list buf add_item items =
  Buffer.add_char buf '[';
  List.iteri
    (fun i item ->
      if i > 0 then Buffer.add_char buf ',';
      add_item item)
    items;
  Buffer.add_char buf ']'

let add_obj buf add_pair pairs =
  Buffer.add_char buf '{';
  List.iteri
    (fun i pair ->
      if i > 0 then Buffer.add_char buf ',';
      add_pair pair)
    pairs;
  Buffer.add_char buf '}'

let add_key buf k =
  add_json_string buf k;
  Buffer.add_char buf ':'

let rec add_span buf ~t0 sp =
  Buffer.add_char buf '{';
  add_key buf "name";
  add_json_string buf (Span.name sp);
  Buffer.add_string buf ",";
  add_key buf "start_s";
  add_float buf (Span.start sp -. t0);
  Buffer.add_string buf ",";
  add_key buf "duration_s";
  add_float buf (Span.duration sp);
  Buffer.add_string buf ",";
  add_key buf "attrs";
  add_obj buf
    (fun (k, v) ->
      add_key buf k;
      add_json_string buf v)
    (Span.attrs sp);
  Buffer.add_string buf ",";
  add_key buf "children";
  add_list buf (add_span buf ~t0) (Span.children sp);
  Buffer.add_char buf '}'

let add_histogram buf h =
  Buffer.add_char buf '{';
  add_key buf "count";
  Buffer.add_string buf (string_of_int (Histogram.count h));
  Buffer.add_string buf ",";
  add_key buf "sum_s";
  add_float buf (Histogram.sum h);
  Buffer.add_string buf ",";
  add_key buf "min_s";
  add_float buf (Histogram.min_value h);
  Buffer.add_string buf ",";
  add_key buf "max_s";
  add_float buf (Histogram.max_value h);
  Buffer.add_string buf ",";
  add_key buf "mean_s";
  add_float buf (Histogram.mean h);
  Buffer.add_string buf ",";
  add_key buf "buckets";
  add_list buf
    (fun (bound, n) ->
      Buffer.add_char buf '{';
      add_key buf "le_s";
      add_float buf bound;
      Buffer.add_string buf ",";
      add_key buf "count";
      Buffer.add_string buf (string_of_int n);
      Buffer.add_char buf '}')
    (Histogram.buckets h);
  Buffer.add_char buf '}'

let to_json trace =
  let buf = Buffer.create 4096 in
  let t0 = Trace.started_at trace in
  Buffer.add_char buf '{';
  add_key buf "trace";
  add_json_string buf (Trace.name trace);
  Buffer.add_string buf ",";
  add_key buf "started_at";
  add_float buf t0;
  Buffer.add_string buf ",";
  add_key buf "duration_s";
  add_float buf (Trace.duration trace);
  Buffer.add_string buf ",";
  add_key buf "spans";
  add_list buf (add_span buf ~t0) (Trace.roots trace);
  Buffer.add_string buf ",";
  add_key buf "counters";
  add_obj buf
    (fun (k, v) ->
      add_key buf k;
      Buffer.add_string buf (string_of_int v))
    (Trace.counters trace);
  Buffer.add_string buf ",";
  add_key buf "histograms";
  add_obj buf
    (fun (k, h) ->
      add_key buf k;
      add_histogram buf h)
    (Trace.histograms trace);
  Buffer.add_char buf '}';
  Buffer.contents buf

let write_json trace path =
  let oc = open_out path in
  output_string oc (to_json trace);
  output_char oc '\n';
  close_out oc

let pretty trace =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "trace %S  (%.3f s, %d top-level spans)\n"
    (Trace.name trace) (Trace.duration trace)
    (List.length (Trace.roots trace));
  let rec span indent sp =
    Printf.bprintf buf "%s%-28s %8.3f s%s\n" indent (Span.name sp)
      (Span.duration sp)
      (match Span.attrs sp with
      | [] -> ""
      | attrs ->
          "  ["
          ^ String.concat ", "
              (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) attrs)
          ^ "]");
    List.iter (span (indent ^ "  ")) (Span.children sp)
  in
  List.iter (span "  ") (Trace.roots trace);
  (match Trace.counters trace with
  | [] -> ()
  | cs ->
      Buffer.add_string buf "counters:\n";
      List.iter (fun (k, v) -> Printf.bprintf buf "  %-36s %d\n" k v) cs);
  (match Trace.histograms trace with
  | [] -> ()
  | hs ->
      Buffer.add_string buf "histograms:\n";
      List.iter
        (fun (k, h) ->
          Printf.bprintf buf
            "  %-36s count=%d mean=%.2fms min=%.2fms max=%.2fms\n" k
            (Histogram.count h)
            (1000.0 *. Histogram.mean h)
            (1000.0 *. Histogram.min_value h)
            (1000.0 *. Histogram.max_value h))
        hs);
  Buffer.contents buf
