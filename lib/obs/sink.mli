(** Trace export: a human-readable tree and a self-contained JSON document.

    JSON schema (all times in seconds; span starts are relative to the
    trace start so traces diff cleanly across runs):

    {v
    { "trace": string,
      "started_at": float,          // absolute, Unix epoch
      "duration_s": float,
      "spans": [ { "name": string,
                   "start_s": float,     // relative to trace start
                   "duration_s": float,
                   "attrs": { string: string, ... },
                   "children": [ ...same shape... ] }, ... ],
      "counters": { string: int, ... },
      "histograms": { string: { "count": int, "sum_s": float,
                                "min_s": float, "max_s": float,
                                "mean_s": float,
                                "buckets": [ { "le_s": float|null,
                                               "count": int }, ... ] } } }
    v}

    The final bucket's ["le_s"] is [null] (the overflow bucket). *)

val to_json : Trace.t -> string

val write_json : Trace.t -> string -> unit
(** [write_json trace path]. *)

val pretty : Trace.t -> string
(** Indented span tree with durations and attrs, then counters and
    histogram summaries. *)
