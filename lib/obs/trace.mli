(** The trace collector: a tree of {!Span}s plus named {!Counter}s and
    {!Histogram}s for one pipeline run.

    Two usage styles:

    - {b explicit}: the orchestrator (the warehouse, the CLI, the bench
      harness) holds a [Trace.t] and wraps each step in {!with_span};
    - {b ambient}: deep library code (link passes, FK inference) records
      into whatever trace the orchestrator installed with {!with_ambient}.
      Every [ambient_*] function is a no-op when no trace is installed, so
      instrumented code pays nothing outside a traced run.

    The ambient slot is a plain global — this process is single-threaded;
    revisit if the ROADMAP's parallelism work lands. Span recording is
    exception-safe: a raising body still closes its span. *)

type t

val create : ?name:string -> unit -> t
(** Default name ["trace"]. *)

val name : t -> string

val started_at : t -> float

(** {2 Spans} *)

val with_span : t -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the body inside a new span; nests under the innermost open span,
    or becomes a root span. *)

val timed_span :
  t -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a * float
(** {!with_span} that also returns the span's duration in seconds. *)

val add_attr : t -> string -> string -> unit
(** Attach to the innermost open span; no-op when none is open. *)

val roots : t -> Span.t list
(** Completed top-level spans, in completion order. *)

val duration : t -> float
(** Latest root-span finish minus {!started_at}; 0 with no roots. *)

(** {2 Metrics} *)

val incr : t -> ?by:int -> string -> unit

val observe : t -> string -> float -> unit

val counter_value : t -> string -> int
(** 0 for a name never incremented. *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val histograms : t -> (string * Histogram.t) list
(** Sorted by name. *)

(** {2 Ambient trace} *)

val with_ambient : t -> (unit -> 'a) -> 'a
(** Install [t] as the ambient trace for the body (restoring the previous
    one after, so traced regions nest). *)

val ambient : unit -> t option

val ambient_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** {!with_span} on the ambient trace; just runs the body when none. *)

val ambient_span_timed :
  ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a * float
(** Like {!ambient_span} but always returns the wall-clock duration, with
    or without an ambient trace. *)

val ambient_incr : ?by:int -> string -> unit

val ambient_observe : string -> float -> unit
