(** The trace collector: a tree of {!Span}s plus named {!Counter}s and
    {!Histogram}s for one pipeline run.

    Two usage styles:

    - {b explicit}: the orchestrator (the warehouse, the CLI, the bench
      harness) holds a [Trace.t] and wraps each step in {!with_span};
    - {b ambient}: deep library code (link passes, FK inference) records
      into whatever trace the orchestrator installed with {!with_ambient}.
      Every [ambient_*] function is a no-op when no trace is installed, so
      instrumented code pays nothing outside a traced run.

    The ambient slot is a plain global owned by the orchestrating domain.
    Worker domains must never touch it directly: during a parallel
    fan-out, [Aladin_par.Pool] installs a per-domain {!buffer}
    (domain-local storage) that every [ambient_*] call routes into, and
    merges the buffers back with {!merge_buffer} once the fan-out joins —
    so traces stay exact under parallelism. Span recording is
    exception-safe: a raising body still closes its span. *)

type t

val create : ?name:string -> unit -> t
(** Default name ["trace"]. *)

val name : t -> string

val started_at : t -> float

(** {2 Spans} *)

val with_span : t -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the body inside a new span; nests under the innermost open span,
    or becomes a root span. *)

val timed_span :
  t -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a * float
(** {!with_span} that also returns the span's duration in seconds. *)

val add_attr : t -> string -> string -> unit
(** Attach to the innermost open span; no-op when none is open. *)

val roots : t -> Span.t list
(** Completed top-level spans, in completion order. *)

val duration : t -> float
(** Latest root-span finish minus {!started_at}; 0 with no roots. *)

(** {2 Metrics} *)

val incr : t -> ?by:int -> string -> unit

val observe : t -> string -> float -> unit

val counter_value : t -> string -> int
(** 0 for a name never incremented. *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val histograms : t -> (string * Histogram.t) list
(** Sorted by name. *)

(** {2 Ambient trace} *)

val with_ambient : t -> (unit -> 'a) -> 'a
(** Install [t] as the ambient trace for the body (restoring the previous
    one after, so traced regions nest). *)

val ambient : unit -> t option

val ambient_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** {!with_span} on the ambient trace; just runs the body when none. *)

val ambient_span_timed :
  ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a * float
(** Like {!ambient_span} but always returns the wall-clock duration, with
    or without an ambient trace. *)

val ambient_add_attr : string -> string -> unit
(** {!add_attr} on the innermost open span of the ambient trace (or the
    active per-domain buffer); no-op when nothing is recording. Used to
    stamp a span with its resilience [status] ("ok", "skipped",
    "failed", ...) after the body ran. *)

val ambient_incr : ?by:int -> string -> unit

val ambient_observe : string -> float -> unit

(** {2 Per-domain buffers}

    Worker domains record ambient effects into a private [buffer] instead
    of the shared trace; the pool merges buffers after joining. Counter
    merges are exact (integer sums are order-independent); histogram
    float sums may differ from a sequential run in the last bit. *)

type buffer

val buffer_create : unit -> buffer

val with_buffer : buffer -> (unit -> 'a) -> 'a
(** Route every [ambient_*] call made by this domain during the body into
    [b] (restoring the previous routing after). The buffer takes
    precedence over the ambient trace, so the installing domain's own
    work is buffered too. *)

val merge_buffer : t -> ?spans_into:Span.t -> buffer -> unit
(** Fold a buffer's counters and histograms into the trace, and attach
    its top-level spans as children of [spans_into] when given, else via
    {!attach_span}. The buffer is not cleared; merge each buffer once. *)

val attach_span : t -> Span.t -> unit
(** Attach an externally built (closed) span as a child of the innermost
    open span, or as a root when none is open. *)
