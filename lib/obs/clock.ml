let last = ref 0.0

let now () =
  let t = Unix.gettimeofday () in
  if t > !last then last := t;
  !last

let timed f =
  let t0 = now () in
  let v = f () in
  (v, now () -. t0)
