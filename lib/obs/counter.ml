type t = { mutable n : int }

let create () = { n = 0 }

let incr ?(by = 1) t = t.n <- t.n + by

let value t = t.n

let reset t = t.n <- 0
