(** The pipeline's single time source: a monotonic wall clock.

    [Sys.time] measures CPU time, which silently undercounts I/O waits and
    collapses entirely under parallelism; every step timing and bench number
    in this repo goes through this module instead. The reading is based on
    [Unix.gettimeofday] and clamped to be non-decreasing, so an NTP step
    backwards can never produce a negative duration. *)

val now : unit -> float
(** Seconds since the Unix epoch, non-decreasing across calls. *)

val timed : (unit -> 'a) -> 'a * float
(** [timed f] runs [f] and returns its result with the elapsed wall-clock
    seconds (always >= 0). Not exception-safe by design — use
    {!Trace.with_span} when [f] may raise. *)
