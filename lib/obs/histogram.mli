(** A latency histogram with fixed log-scale buckets (seconds).

    Cheap enough to sit on a hot path: one array index per observation,
    no allocation. Summaries (count / sum / min / max / mean and the
    cumulative-style bucket counts) are exported by {!Sink}. *)

type t

val default_bounds : float array
(** Upper bucket bounds in seconds: 1us, 10us, ... 100s; values above the
    last bound land in an implicit overflow bucket. *)

val create : ?bounds:float array -> unit -> t
(** [bounds] must be sorted ascending. *)

val observe : t -> float -> unit

val count : t -> int

val sum : t -> float

val min_value : t -> float
(** 0.0 when empty. *)

val max_value : t -> float
(** 0.0 when empty. *)

val mean : t -> float
(** 0.0 when empty. *)

val buckets : t -> (float * int) list
(** (upper bound, observations <= bound and > previous bound); the final
    entry has bound [infinity]. Bucket counts sum to {!count}. *)

val merge_into : t -> t -> unit
(** [merge_into dst src] folds [src]'s observations into [dst]: bucket
    counts and totals add, min/max combine. Used to merge per-domain
    buffers after a parallel fan-out. [src] is left untouched.
    @raise Invalid_argument when the two histograms' bounds differ. *)

val reset : t -> unit
