type t = {
  bounds : float array;
  counts : int array; (* length = Array.length bounds + 1; last is overflow *)
  mutable total : int;
  mutable vsum : float;
  mutable vmin : float;
  mutable vmax : float;
}

let default_bounds = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.0; 10.0; 100.0 |]

let create ?(bounds = default_bounds) () =
  {
    bounds;
    counts = Array.make (Array.length bounds + 1) 0;
    total = 0;
    vsum = 0.0;
    vmin = 0.0;
    vmax = 0.0;
  }

let bucket_index bounds v =
  let n = Array.length bounds in
  let rec find i = if i >= n then n else if v <= bounds.(i) then i else find (i + 1) in
  find 0

let observe t v =
  let i = bucket_index t.bounds v in
  t.counts.(i) <- t.counts.(i) + 1;
  if t.total = 0 then begin
    t.vmin <- v;
    t.vmax <- v
  end
  else begin
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v
  end;
  t.total <- t.total + 1;
  t.vsum <- t.vsum +. v

let count t = t.total

let sum t = t.vsum

let min_value t = t.vmin

let max_value t = t.vmax

let mean t = if t.total = 0 then 0.0 else t.vsum /. float_of_int t.total

let buckets t =
  List.init
    (Array.length t.counts)
    (fun i ->
      let bound =
        if i < Array.length t.bounds then t.bounds.(i) else infinity
      in
      (bound, t.counts.(i)))

let merge_into dst src =
  if dst.bounds <> src.bounds then
    invalid_arg "Histogram.merge_into: bucket bounds differ";
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  if src.total > 0 then begin
    if dst.total = 0 then begin
      dst.vmin <- src.vmin;
      dst.vmax <- src.vmax
    end
    else begin
      if src.vmin < dst.vmin then dst.vmin <- src.vmin;
      if src.vmax > dst.vmax then dst.vmax <- src.vmax
    end;
    dst.total <- dst.total + src.total;
    dst.vsum <- dst.vsum +. src.vsum
  end

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.total <- 0;
  t.vsum <- 0.0;
  t.vmin <- 0.0;
  t.vmax <- 0.0
