type t = {
  sname : string;
  sstart : float;
  mutable sfinish : float option;
  mutable sattrs : (string * string) list; (* reversed *)
  mutable schildren : t list; (* reversed *)
}

let make ~name ~start =
  { sname = name; sstart = start; sfinish = None; sattrs = []; schildren = [] }

let close t ~at =
  match t.sfinish with
  | Some _ -> ()
  | None -> t.sfinish <- Some (Float.max at t.sstart)

let is_open t = t.sfinish = None

let name t = t.sname

let start t = t.sstart

let finish t = match t.sfinish with Some f -> f | None -> t.sstart

let duration t = finish t -. t.sstart

let attrs t = List.rev t.sattrs

let add_attr t k v = t.sattrs <- (k, v) :: t.sattrs

let add_child t child = t.schildren <- child :: t.schildren

let children t = List.rev t.schildren
