type t = {
  tname : string;
  started : float;
  mutable open_stack : Span.t list; (* innermost first *)
  mutable finished_roots : Span.t list; (* reversed *)
  tcounters : (string, Counter.t) Hashtbl.t;
  thistograms : (string, Histogram.t) Hashtbl.t;
}

let create ?(name = "trace") () =
  {
    tname = name;
    started = Clock.now ();
    open_stack = [];
    finished_roots = [];
    tcounters = Hashtbl.create 16;
    thistograms = Hashtbl.create 8;
  }

let name t = t.tname

let started_at t = t.started

let finish_span t sp =
  Span.close sp ~at:(Clock.now ());
  (match t.open_stack with
  | s :: rest when s == sp -> t.open_stack <- rest
  | _ -> t.open_stack <- List.filter (fun s -> s != sp) t.open_stack);
  match t.open_stack with
  | parent :: _ -> Span.add_child parent sp
  | [] -> t.finished_roots <- sp :: t.finished_roots

let with_span t ?(attrs = []) sname f =
  let sp = Span.make ~name:sname ~start:(Clock.now ()) in
  List.iter (fun (k, v) -> Span.add_attr sp k v) attrs;
  t.open_stack <- sp :: t.open_stack;
  Fun.protect ~finally:(fun () -> finish_span t sp) f

let timed_span t ?attrs sname f =
  let sp_ref = ref None in
  let v =
    with_span t ?attrs sname (fun () ->
        (match t.open_stack with sp :: _ -> sp_ref := Some sp | [] -> ());
        f ())
  in
  let secs = match !sp_ref with Some sp -> Span.duration sp | None -> 0.0 in
  (v, secs)

let add_attr t k v =
  match t.open_stack with sp :: _ -> Span.add_attr sp k v | [] -> ()

let roots t = List.rev t.finished_roots

let duration t =
  List.fold_left
    (fun acc sp -> Float.max acc (Span.finish sp -. t.started))
    0.0 t.finished_roots

let counter t cname =
  match Hashtbl.find_opt t.tcounters cname with
  | Some c -> c
  | None ->
      let c = Counter.create () in
      Hashtbl.add t.tcounters cname c;
      c

let histogram t hname =
  match Hashtbl.find_opt t.thistograms hname with
  | Some h -> h
  | None ->
      let h = Histogram.create () in
      Hashtbl.add t.thistograms hname h;
      h

let incr t ?by cname = Counter.incr ?by (counter t cname)

let observe t hname v = Histogram.observe (histogram t hname) v

let counter_value t cname =
  match Hashtbl.find_opt t.tcounters cname with
  | Some c -> Counter.value c
  | None -> 0

let by_name l = List.sort (fun (a, _) (b, _) -> String.compare a b) l

let counters t =
  Hashtbl.fold (fun k c acc -> (k, Counter.value c) :: acc) t.tcounters []
  |> by_name

let histograms t =
  Hashtbl.fold (fun k h acc -> (k, h) :: acc) t.thistograms [] |> by_name

let attach_span t sp =
  match t.open_stack with
  | parent :: _ -> Span.add_child parent sp
  | [] -> t.finished_roots <- sp :: t.finished_roots

(* --- per-domain buffers --- *)

type buffer = {
  bcounters : (string, Counter.t) Hashtbl.t;
  bhistograms : (string, Histogram.t) Hashtbl.t;
  mutable bstack : Span.t list; (* innermost first *)
  mutable broots : Span.t list; (* reversed *)
}

let buffer_create () =
  {
    bcounters = Hashtbl.create 8;
    bhistograms = Hashtbl.create 4;
    bstack = [];
    broots = [];
  }

let buffer_key : buffer option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let with_buffer b f =
  let prev = Domain.DLS.get buffer_key in
  Domain.DLS.set buffer_key (Some b);
  Fun.protect ~finally:(fun () -> Domain.DLS.set buffer_key prev) f

let buf_counter b cname =
  match Hashtbl.find_opt b.bcounters cname with
  | Some c -> c
  | None ->
      let c = Counter.create () in
      Hashtbl.add b.bcounters cname c;
      c

let buf_histogram b hname =
  match Hashtbl.find_opt b.bhistograms hname with
  | Some h -> h
  | None ->
      let h = Histogram.create () in
      Hashtbl.add b.bhistograms hname h;
      h

let buffer_span b ?(attrs = []) sname f =
  let sp = Span.make ~name:sname ~start:(Clock.now ()) in
  List.iter (fun (k, v) -> Span.add_attr sp k v) attrs;
  b.bstack <- sp :: b.bstack;
  Fun.protect
    ~finally:(fun () ->
      Span.close sp ~at:(Clock.now ());
      (match b.bstack with
      | s :: rest when s == sp -> b.bstack <- rest
      | _ -> b.bstack <- List.filter (fun s -> s != sp) b.bstack);
      match b.bstack with
      | parent :: _ -> Span.add_child parent sp
      | [] -> b.broots <- sp :: b.broots)
    f

let merge_buffer t ?spans_into b =
  Hashtbl.iter (fun k c -> incr t ~by:(Counter.value c) k) b.bcounters;
  Hashtbl.iter
    (fun k h -> Histogram.merge_into (histogram t k) h)
    b.bhistograms;
  List.iter
    (fun sp ->
      match spans_into with
      | Some parent -> Span.add_child parent sp
      | None -> attach_span t sp)
    (List.rev b.broots)

(* --- ambient trace --- *)

let current : t option ref = ref None

let with_ambient t f =
  let prev = !current in
  current := Some t;
  Fun.protect ~finally:(fun () -> current := prev) f

let ambient () = !current

let ambient_span ?attrs sname f =
  match Domain.DLS.get buffer_key with
  | Some b -> buffer_span b ?attrs sname f
  | None -> (
      match !current with Some t -> with_span t ?attrs sname f | None -> f ())

let ambient_span_timed ?attrs sname f =
  match Domain.DLS.get buffer_key with
  | Some b -> Clock.timed (fun () -> buffer_span b ?attrs sname f)
  | None -> (
      match !current with
      | Some t -> timed_span t ?attrs sname f
      | None -> Clock.timed f)

let ambient_add_attr k v =
  match Domain.DLS.get buffer_key with
  | Some b -> (
      match b.bstack with sp :: _ -> Span.add_attr sp k v | [] -> ())
  | None -> ( match !current with Some t -> add_attr t k v | None -> ())

let ambient_incr ?by cname =
  match Domain.DLS.get buffer_key with
  | Some b -> Counter.incr ?by (buf_counter b cname)
  | None -> ( match !current with Some t -> incr t ?by cname | None -> ())

let ambient_observe hname v =
  match Domain.DLS.get buffer_key with
  | Some b -> Histogram.observe (buf_histogram b hname) v
  | None -> ( match !current with Some t -> observe t hname v | None -> ())
