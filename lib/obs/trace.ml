type t = {
  tname : string;
  started : float;
  mutable open_stack : Span.t list; (* innermost first *)
  mutable finished_roots : Span.t list; (* reversed *)
  tcounters : (string, Counter.t) Hashtbl.t;
  thistograms : (string, Histogram.t) Hashtbl.t;
}

let create ?(name = "trace") () =
  {
    tname = name;
    started = Clock.now ();
    open_stack = [];
    finished_roots = [];
    tcounters = Hashtbl.create 16;
    thistograms = Hashtbl.create 8;
  }

let name t = t.tname

let started_at t = t.started

let finish_span t sp =
  Span.close sp ~at:(Clock.now ());
  (match t.open_stack with
  | s :: rest when s == sp -> t.open_stack <- rest
  | _ -> t.open_stack <- List.filter (fun s -> s != sp) t.open_stack);
  match t.open_stack with
  | parent :: _ -> Span.add_child parent sp
  | [] -> t.finished_roots <- sp :: t.finished_roots

let with_span t ?(attrs = []) sname f =
  let sp = Span.make ~name:sname ~start:(Clock.now ()) in
  List.iter (fun (k, v) -> Span.add_attr sp k v) attrs;
  t.open_stack <- sp :: t.open_stack;
  Fun.protect ~finally:(fun () -> finish_span t sp) f

let timed_span t ?attrs sname f =
  let sp_ref = ref None in
  let v =
    with_span t ?attrs sname (fun () ->
        (match t.open_stack with sp :: _ -> sp_ref := Some sp | [] -> ());
        f ())
  in
  let secs = match !sp_ref with Some sp -> Span.duration sp | None -> 0.0 in
  (v, secs)

let add_attr t k v =
  match t.open_stack with sp :: _ -> Span.add_attr sp k v | [] -> ()

let roots t = List.rev t.finished_roots

let duration t =
  List.fold_left
    (fun acc sp -> Float.max acc (Span.finish sp -. t.started))
    0.0 t.finished_roots

let counter t cname =
  match Hashtbl.find_opt t.tcounters cname with
  | Some c -> c
  | None ->
      let c = Counter.create () in
      Hashtbl.add t.tcounters cname c;
      c

let histogram t hname =
  match Hashtbl.find_opt t.thistograms hname with
  | Some h -> h
  | None ->
      let h = Histogram.create () in
      Hashtbl.add t.thistograms hname h;
      h

let incr t ?by cname = Counter.incr ?by (counter t cname)

let observe t hname v = Histogram.observe (histogram t hname) v

let counter_value t cname =
  match Hashtbl.find_opt t.tcounters cname with
  | Some c -> Counter.value c
  | None -> 0

let by_name l = List.sort (fun (a, _) (b, _) -> String.compare a b) l

let counters t =
  Hashtbl.fold (fun k c acc -> (k, Counter.value c) :: acc) t.tcounters []
  |> by_name

let histograms t =
  Hashtbl.fold (fun k h acc -> (k, h) :: acc) t.thistograms [] |> by_name

(* --- ambient trace --- *)

let current : t option ref = ref None

let with_ambient t f =
  let prev = !current in
  current := Some t;
  Fun.protect ~finally:(fun () -> current := prev) f

let ambient () = !current

let ambient_span ?attrs sname f =
  match !current with Some t -> with_span t ?attrs sname f | None -> f ()

let ambient_span_timed ?attrs sname f =
  match !current with
  | Some t -> timed_span t ?attrs sname f
  | None -> Clock.timed f

let ambient_incr ?by cname =
  match !current with Some t -> incr t ?by cname | None -> ()

let ambient_observe hname v =
  match !current with Some t -> observe t hname v | None -> ()
