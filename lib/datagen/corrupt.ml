let typo rng s =
  let n = String.length s in
  if n < 2 then s
  else
    let b = Bytes.of_string s in
    let i = Rng.int rng (n - 1) in
    (match Rng.int rng 4 with
    | 0 ->
        (* swap *)
        let c = Bytes.get b i in
        Bytes.set b i (Bytes.get b (i + 1));
        Bytes.set b (i + 1) c;
        ()
    | 1 ->
        (* replace *)
        Bytes.set b i (Char.chr (Char.code 'a' + Rng.int rng 26))
    | 2 ->
        (* delete: shift left *)
        Bytes.blit b (i + 1) b i (n - i - 1);
        Bytes.set b (n - 1) ' '
    | _ ->
        (* duplicate char (cheap insert) *)
        Bytes.set b (i + 1) (Bytes.get b i));
    String.trim (Bytes.to_string b)

let value rng ~rate s =
  let rec go s passes =
    if passes >= 3 || not (Rng.chance rng rate) then s
    else go (typo rng s) (passes + 1)
  in
  go s 0

let maybe_drop rng ~rate s = if Rng.chance rng rate then "" else s

let recase rng s =
  match Rng.int rng 3 with
  | 0 -> String.lowercase_ascii s
  | 1 -> String.uppercase_ascii s
  | _ -> s

let flip_bit_at s ~byte ~bit =
  let n = String.length s in
  if n = 0 || byte < 0 || byte >= n then s
  else begin
    let b = Bytes.of_string s in
    let c = Char.code (Bytes.get b byte) in
    Bytes.set b byte (Char.chr (c lxor (1 lsl (bit land 7))));
    Bytes.to_string b
  end

let bit_flip rng s =
  if s = "" then s
  else flip_bit_at s ~byte:(Rng.int rng (String.length s)) ~bit:(Rng.int rng 8)

let truncate_at s n =
  let n = max 0 n in
  if n >= String.length s then s else String.sub s 0 n
