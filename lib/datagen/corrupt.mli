(** Controlled value corruption — duplicate-detection stress (E8) and the
    "differences due to different cleansing procedures" of §5. *)

val typo : Rng.t -> string -> string
(** One random edit: swap, replace, delete or insert a character.
    Strings shorter than 2 are returned unchanged. *)

val value : Rng.t -> rate:float -> string -> string
(** Apply {!typo} repeatedly: each pass happens with probability [rate]
    (max 3 passes). *)

val maybe_drop : Rng.t -> rate:float -> string -> string
(** Return "" (a null) with probability [rate]. *)

val recase : Rng.t -> string -> string
(** Random case change (whole-string upper/lower), a common inter-source
    difference. *)

val flip_bit_at : string -> byte:int -> bit:int -> string
(** Flip bit [bit land 7] of the byte at offset [byte]; out-of-range
    offsets return the string unchanged. Deterministic — the workhorse
    of the store fault-injection tests. *)

val bit_flip : Rng.t -> string -> string
(** Flip one random bit somewhere in the string ("" is unchanged). *)

val truncate_at : string -> int -> string
(** Keep the first [n] bytes (a torn write); [n] past the end is the
    identity. *)
