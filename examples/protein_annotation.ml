(* The COLUMBA scenario (paper §5): annotate protein structures with
   sequence databases, classifications and functional terms.

   A synthetic multi-source world is generated — two overlapping protein
   databases (Swiss-Prot/PIR roles), a structure database (PDB role), a
   gene database, a disease database and an ontology (GO role) — and
   ALADIN integrates all of them hands-off. We then follow a structure to
   everything the warehouse knows about it, exactly the kind of
   protein-structure annotation COLUMBA built by hand.

     dune exec examples/protein_annotation.exe *)

open Aladin
module Dg = Aladin_datagen
module Lk = Aladin_links

let () =
  let corpus =
    Dg.Corpus.generate
      { Dg.Corpus.default_params with
        universe =
          { Dg.Universe.default_params with n_proteins = 60; n_structures = 30;
            n_genes = 25; n_terms = 16; n_diseases = 8; n_families = 8 } }
  in
  let w = Warehouse.integrate corpus.catalogs in
  print_string (Aladin_system.summary w);

  (* one engine handle serves the whole annotation session *)
  let eng = Engine.create w in

  (* pick a structure that has at least one cross-reference link *)
  let structures =
    List.filter
      (fun (o : Lk.Objref.t) -> o.source = "pdb")
      (Engine.objects eng)
  in
  Printf.printf "\n%d structures in the pdb source\n" (List.length structures);
  let with_links =
    List.filter_map
      (fun o ->
        match Engine.view eng o with
        | Some v when v.linked <> [] -> Some v
        | Some _ | None -> None)
      structures
  in
  match with_links with
  | [] -> print_endline "no annotated structures found"
  | view :: _ ->
      Printf.printf "\n=== annotation page for structure %s ===\n"
        (Lk.Objref.to_string view.obj);
      print_string (Aladin_access.Browser.render view);
      (* follow the first link to the protein it annotates *)
      (match Engine.follow eng view 0 with
      | Some protein_view ->
          Printf.printf "\n=== following link 0 -> %s ===\n"
            (Lk.Objref.to_string protein_view.obj);
          print_string (Aladin_access.Browser.render protein_view)
      | None -> ());
      (* rank everything related to this structure by link paths:
         "query results can be ordered based on the number, consistency,
         and length of different paths between two objects" (paper §6) *)
      let ranked = Engine.related eng view.obj in
      print_endline "\ntop related objects by path evidence:";
      List.iteri
        (fun i (o, score) ->
          if i < 8 then
            Printf.printf "  %-24s %.3f\n" (Lk.Objref.to_string o) score)
        ranked
