(* The microarray follow-up scenario (paper §6.2):

   "typical microarray experiments produce a set of 50-100 genes.
   Biologists then manually browse a large number of web sites following
   hyper links for each gene. Such browsing, enriched with many more
   links, reduced redundancy due to duplicate detection, and the full
   capability of SQL queries would be perfectly supported by ALADIN."

   We simulate a hit list of genes from an experiment, then use the
   warehouse to collect for every gene: its own annotation, the proteins
   it links to, duplicates of those proteins in other databases, and
   associated diseases — the whole manual-browsing workflow in one pass.

     dune exec examples/microarray_browse.exe *)

open Aladin
module Dg = Aladin_datagen
module Lk = Aladin_links

let () =
  let corpus = Dg.Corpus.generate Dg.Corpus.default_params in
  let w = Warehouse.integrate corpus.catalogs in
  print_string (Aladin_system.summary w);

  (* the engine facade is the one handle for the whole browsing session *)
  let eng = Engine.create w in
  (* the experiment's hit list: first 10 genes of the gene database *)
  let genes =
    Engine.objects eng
    |> List.filter (fun (o : Lk.Objref.t) -> o.source = "genedb")
    |> List.filteri (fun i _ -> i < 10)
  in
  Printf.printf "\nhit list: %d genes\n" (List.length genes);
  List.iter
    (fun gene ->
      match Engine.view eng gene with
      | None -> ()
      | Some v ->
          let name =
            match List.assoc_opt "name" v.fields with Some n -> n | None -> "?"
          in
          Printf.printf "\n%s (%s)\n" (Lk.Objref.to_string gene) name;
          (* outgoing links grouped by kind *)
          List.iter
            (fun (l : Lk.Link.t) ->
              let other = if Lk.Objref.equal l.src gene then l.dst else l.src in
              Printf.printf "  -[%s %.2f]-> %s\n"
                (Lk.Link.kind_name l.kind) l.confidence
                (Lk.Objref.to_string other))
            (List.filteri (fun i _ -> i < 6) v.linked);
          if List.length v.linked > 6 then
            Printf.printf "  ... and %d more links\n" (List.length v.linked - 6);
          (* duplicates are flagged, never merged *)
          List.iter
            (fun (o, c) ->
              Printf.printf "  = duplicate of %s (%.2f)\n"
                (Lk.Objref.to_string o) c)
            v.duplicates)
    genes;

  (* the same question as one structured query: genes whose description
     ties them to DNA repair, via the warehouse search engine *)
  print_endline "\nfocused search over genedb for \"repair\":";
  let hits = Engine.focused eng ~source:"genedb" "repair" in
  List.iter
    (fun (h : Aladin_access.Search.hit) ->
      Printf.printf "  %s (%.2f)\n" (Lk.Objref.to_string h.obj) h.score)
    (List.filteri (fun i _ -> i < 5) hits)
