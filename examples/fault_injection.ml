(* Fault injection: graceful degradation end to end (the "almost" of the
   paper's title, §6.2, made observable).

   A synthetic corpus is generated, then sabotaged three ways:
   - one source's CSV is corrupted (ragged rows, typo'd values) — the
     importer recovers record by record, and the run report shows the
     import step as "degraded" with each dropped record;
   - one document is pure garbage — import fails, the source is
     quarantined with a report, and every other source still integrates;
   - the homology pass gets a zero budget — it is skipped, recorded as
     such, and the remaining link passes run normally.

     dune exec examples/fault_injection.exe            # exit 0, degraded
     dune exec examples/fault_injection.exe -- --strict  # exit 1 *)

open Aladin
module Dg = Aladin_datagen
module Fm = Aladin_formats
module Report = Aladin_resilience.Run_report

(* corrupt a source: render its largest relation back to CSV, truncate
   random fields off some rows and typo others *)
let corrupted_csv rng catalog =
  let rel =
    List.fold_left
      (fun best r ->
        if Aladin_relational.Relation.cardinality r
           > Aladin_relational.Relation.cardinality best
        then r
        else best)
      (List.hd (Aladin_relational.Catalog.relations catalog))
      (Aladin_relational.Catalog.relations catalog)
  in
  let doc = Aladin_relational.Csv.write_relation rel in
  let lines = String.split_on_char '\n' doc |> List.filter (( <> ) "") in
  let mangled =
    List.mapi
      (fun i line ->
        if i = 0 then line (* keep the header *)
        else if i mod 7 = 3 then
          (* ragged: drop the last field *)
          match String.rindex_opt line ',' with
          | Some j -> String.sub line 0 j
          | None -> line
        else if i mod 5 = 2 then Dg.Corrupt.value rng ~rate:0.8 line
        else line)
      lines
  in
  String.concat "\n" mangled ^ "\n"

let () =
  let strict = Array.exists (( = ) "--strict") Sys.argv in
  let corpus =
    Dg.Corpus.generate
      { Dg.Corpus.default_params with
        universe =
          { Dg.Universe.default_params with n_proteins = 40; n_structures = 15;
            n_genes = 15; n_terms = 10; n_diseases = 5; n_families = 5 } }
  in
  let rng = Dg.Rng.create 7 in
  let victim = List.hd corpus.catalogs in
  let victim_name = Aladin_relational.Catalog.name victim in
  let config =
    { Config.default with
      budgets = { Config.no_budgets with seq_pass = Some 0.0 } }
  in
  let w = Warehouse.create ~config () in

  (* a document no importer recognizes: quarantined at import *)
  (match Fm.Import.import_string ~name:"garbage" "\000\001 not a format" with
  | Ok _ -> prerr_endline "unexpected: garbage imported"
  | Error err -> ignore (Warehouse.report_import_failure w ~source:"garbage" err));

  (* the corrupted source: imported with per-record recovery *)
  (match
     Fm.Import.import_string ~name:victim_name (corrupted_csv rng victim)
   with
  | Ok im ->
      Printf.printf "%s: imported with %d records dropped\n" victim_name
        (List.length im.record_errors);
      ignore (Warehouse.add_source ~import_errors:im.record_errors w im.catalog)
  | Error err ->
      ignore (Warehouse.report_import_failure w ~source:victim_name err));

  (* everything else integrates untouched *)
  List.iter
    (fun c ->
      if Aladin_relational.Catalog.name c <> victim_name then
        ignore (Warehouse.add_source w c))
    corpus.catalogs;

  print_newline ();
  print_string (Aladin_system.summary w);
  print_newline ();
  let reports = Warehouse.run_reports w in
  List.iter (fun r -> print_string (Report.render r)) reports;

  let quarantined =
    List.filter (fun (r : Report.t) -> r.quarantined) reports
  in
  let degraded = List.filter (fun r -> not (Report.is_clean r)) reports in
  Printf.printf
    "\n%d sources reported, %d degraded, %d quarantined; warehouse holds %d\n"
    (List.length reports) (List.length degraded) (List.length quarantined)
    (List.length (Warehouse.sources w));
  if strict && degraded <> [] then begin
    prerr_endline "strict mode: degradation is fatal";
    exit 1
  end
