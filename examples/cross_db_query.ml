(* The paper's flagship query (§6 conclusions):

   "Consider a query for all genes of a certain species on a certain
   chromosome that are connected to a disease via a protein whose
   function is known. [...] no current data integration system is capable
   of dealing with this variability in a transparent fashion."

   ALADIN answers it by combining SQL (to pick the starting genes) with
   traversal of the discovered link graph — here: human genes that reach a
   disease, where the gene also links to a protein carrying a functional
   (ontology) annotation. Finally a false link is rejected via the §6.2
   feedback loop and stays gone after re-analysis.

     dune exec examples/cross_db_query.exe *)

open Aladin
open Aladin_relational
module Dg = Aladin_datagen
module Lk = Aladin_links
module Lq = Aladin_access.Link_query

let () =
  let corpus = Dg.Corpus.generate Dg.Corpus.default_params in
  (* one engine handle answers SQL, traversal, feedback and export *)
  let eng = Engine.integrate corpus.catalogs in
  print_string (Aladin_system.summary (Engine.warehouse eng));
  let sql q =
    match Engine.query eng q with
    | Ok r -> r
    | Error msg ->
        prerr_endline msg;
        exit 1
  in

  (* how are the genes distributed over species? (SQL aggregates) *)
  print_endline "\ngenes per species:";
  print_endline
    (Aladin_access.Sql_eval.render_result
       (sql
          "SELECT organism_name, COUNT(*) FROM genedb.gene JOIN \
           genedb.organism ON genedb.gene.organism_id = \
           genedb.organism.organism_id GROUP BY organism_name \
           ORDER BY organism_name"));

  (* 1. SQL picks the starting objects: human genes *)
  let start_rows =
    sql
      "SELECT accession FROM genedb.gene JOIN genedb.organism ON \
       genedb.gene.organism_id = genedb.organism.organism_id WHERE \
       organism_name = 'Homo sapiens'"
  in
  let start =
    Relation.rows start_rows
    |> List.map (fun row ->
           Lk.Objref.make ~source:"genedb" ~relation:"gene"
             ~accession:(Value.to_string row.(0)))
  in
  Printf.printf "\n%d human genes to start from\n" (List.length start);

  (* 2. traverse: gene -> disease (any link into omim) *)
  let to_disease =
    Engine.traverse eng ~start ~steps:[ Lq.step ~target_source:"omim" () ]
  in
  Printf.printf "%d gene-disease connections found\n" (List.length to_disease);

  (* 3. keep genes whose protein has a known function: the gene links to a
        protein (uniprot) that itself links to an ontology term *)
  let gene_has_functional_protein gene =
    Engine.traverse eng ~start:[ gene ]
      ~steps:
        [ Lq.step ~target_source:"uniprot" ();
          Lq.step ~target_source:"go" () ]
    <> []
  in
  let answers =
    to_disease
    |> List.filter (fun (h : Lq.hit) -> gene_has_functional_protein h.start)
  in
  Printf.printf
    "%d of them go via a protein with functional annotation:\n"
    (List.length answers);
  List.iteri
    (fun i (h : Lq.hit) ->
      if i < 8 then begin
        Printf.printf "  %s -> %s (score %.2f) via\n"
          (Lk.Objref.to_string h.start)
          (Lk.Objref.to_string h.endpoint)
          h.score;
        List.iter
          (fun (l : Lk.Link.t) ->
            Printf.printf "      %s %s -> %s\n" (Lk.Link.kind_name l.kind)
              (Lk.Objref.to_string l.src) (Lk.Objref.to_string l.dst))
          h.path
      end)
    answers;

  (* 4. feedback (§6.2): reject the lowest-confidence discovered link *)
  (match
     List.sort
       (fun (a : Lk.Link.t) b -> Float.compare a.confidence b.confidence)
       (Engine.links eng)
   with
  | weakest :: _ ->
      let before = List.length (Engine.links eng) in
      Engine.reject_link eng weakest;
      Printf.printf
        "\nfeedback: rejected weakest link %s; %d -> %d links \
         (engine epoch %d)\n"
        (Format.asprintf "%a" Lk.Link.pp weakest)
        before
        (List.length (Engine.links eng))
        (Engine.epoch eng)
  | [] -> ());

  (* 5. export the whole warehouse as a browsable static web site *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "aladin_site" in
  let pages = Aladin_access.Html_export.write_site (Engine.browser eng) ~dir in
  Printf.printf "exported %d object pages to %s/index.html\n" pages dir
