(* Quickstart: hands-off integration of two tiny sources.

   Two in-memory "databases" — a Swiss-Prot-style flat file and a
   PDB-style structure file — are imported, and ALADIN discovers
   everything else: primary relations, secondary structure, the
   cross-references between them, and how to browse the result.

     dune exec examples/quickstart.exe

   With --text-heavy, a deterministic block of text-rich entries is
   appended to both sources so the text-similarity pass dominates the
   run; scripts/check.sh byte-diffs that mode across pool sizes to pin
   down the sharded candidate join. *)

open Aladin
open Aladin_relational

let swissprot_flat =
  "ID   KINASE_HUMAN\n\
   AC   P10001;\n\
   DE   Alpha kinase involved in DNA repair and damage signaling pathways.\n\
   OS   Homo sapiens.\n\
   KW   ATP binding; DNA repair.\n\
   DR   PDB; 1AKX.\n\
   DR   GO; GO:0005524.\n\
   RX   MEDLINE; 10000001; Kinase structure and function.\n\
   SQ   SEQUENCE 36 AA\n\
   ..   MKWVTFISLLFLFSSAYSRGVFRRDAHKSEVAHRFK\n\
   //\n\
   ID   TRP_YEAST\n\
   AC   P10002;\n\
   DE   Beta transporter.\n\
   OS   Saccharomyces cerevisiae.\n\
   KW   ion transport.\n\
   DR   PDB; 2TRB.\n\
   SQ   SEQUENCE 30 AA\n\
   ..   ACDEFGHIKLMNPQRSTVWYACDEFGHIKL\n\
   //\n\
   ID   HS_ECOLI\n\
   AC   P10003;\n\
   DE   Heat-shock chaperone of the small HSP family, cytoplasmic form.\n\
   OS   Escherichia coli.\n\
   KW   protein folding; ATP binding.\n\
   RX   MEDLINE; 10000002; Chaperones revisited.\n\
   SQ   SEQUENCE 48 AA\n\
   ..   MSLIPGFSEMFDRMNQEMNRAFDSLVPQFWQPSMSGFAPSMRTDIKE\n\
   //\n\
   ID   POLGAMMA_HUMAN\n\
   AC   P10004;\n\
   DE   Polymerase gamma.\n\
   OS   Homo sapiens.\n\
   KW   DNA repair.\n\
   SQ   SEQUENCE 60 AA\n\
   ..   MARNDCEQGHILKMFPSTWYVARNDCEQGHILKMFPSTWYVARNDCEQGHILKMFPSTW\n\
   //\n"

let pdb_flat =
  "HEADER    TRANSFERASE              1AKX\n\
   TITLE     STRUCTURE OF THE ALPHA KINASE\n\
   COMPND    ALPHA KINASE\n\
   EXPDTA    X-RAY DIFFRACTION\n\
   DBREF     1AKX A SWS P10001\n\
   SEQRES    A MKWVTFISLLFLFSSAYSRGVFRRDAHKSEVAHRFK\n\
   SEQRES    B MKWVTFISLLFLFSSAYSRGVFRRDAH\n\
   END\n\
   HEADER    TRANSPORT PROTEIN              2TRB\n\
   TITLE     CHANNEL\n\
   COMPND    BETA TRANSPORTER\n\
   DBREF     2TRB A SWS P10002\n\
   SEQRES    A ACDEFGHIKLMNPQRSTVWYACDEFGHIKL\n\
   END\n\
   HEADER    CHAPERONE              3HSP\n\
   TITLE     CRYO-EM RECONSTRUCTION OF THE SMALL HEAT SHOCK CHAPERONE\n\
   COMPND    SMALL HSP\n\
   DBREF     3HSP A SWS P10003\n\
   SEQRES    A MSLIPGFSEMFDRMNQEMNRAFDSLVPQFWQPSMSGFAPSMRTDIKE\n\
   END\n\
   HEADER    POLYMERASE              4POL\n\
   TITLE     GAMMA POLYMERASE AT HIGH RESOLUTION IN COMPLEX WITH DNA\n\
   COMPND    POLYMERASE GAMMA\n\
   SEQRES    A MARNDCEQGHILKMFPSTWYVARNDCEQGHILKMFPSTWYVARNDCEQGHILKMFPSTW\n\
   END\n"

(* --text-heavy: four vocabulary clusters; entries within a cluster share
   most of their description terms (cosine well above the 0.5 default),
   entries across clusters share only corpus-wide terms (weight 0 under
   the df ceiling), so the candidate join has real work to prune *)
let themes =
  [| ("KIN", "kinase signaling cascade phosphorylating the catalytic domain");
     ("TRP", "membrane transporter moving ions across the lipid bilayer");
     ("HSP", "chaperone assisting protein folding under heat shock stress");
     ("POL", "polymerase copying the genomic template during replication") |]

(* varying amounts of filler give the description column a wide length
   spread, so it can never out-compete the accession column in primary
   key discovery *)
let filler i = String.concat "" (List.init (i mod 7) (fun _ -> " isoform"))

(* per-entry scrambled sequences: deterministic, pairwise dissimilar, so
   the sequence pass stays quiet and the text pass carries the run *)
let scrambled_seq i =
  let alphabet = "ACDEFGHIKLMNPQRSTVWY" in
  String.init 24 (fun k ->
      alphabet.[((i * 7) + (k * k) + (i * k)) mod String.length alphabet])

let extra_swissprot n =
  let buf = Buffer.create 4096 in
  for i = 0 to n - 1 do
    let tag, theme = themes.(i mod Array.length themes) in
    Buffer.add_string buf
      (Printf.sprintf
         "ID   %s%03d_EXTRA\n\
          AC   Q2%04d;\n\
          DE   Variant %d of the %s%s.\n\
          OS   Homo sapiens.\n\
          SQ   SEQUENCE 24 AA\n\
          ..   %s\n\
          //\n"
         tag i i (i / Array.length themes) theme (filler i) (scrambled_seq i))
  done;
  Buffer.contents buf

let extra_pdb n =
  let buf = Buffer.create 4096 in
  for i = 0 to n - 1 do
    let tag, theme = themes.(i mod Array.length themes) in
    Buffer.add_string buf
      (Printf.sprintf
         "HEADER    EXTRA              EX%02d\n\
          TITLE     MODEL %d OF THE %s%s\n\
          COMPND    %s%03d EXTRA\n\
          SEQRES    A %s\n\
          END\n"
         i (i / Array.length themes)
         (String.uppercase_ascii theme)
         (String.uppercase_ascii (filler i))
         tag i
         (scrambled_seq (i + 1000)))
  done;
  Buffer.contents buf

let () =
  let text_heavy = Array.exists (( = ) "--text-heavy") Sys.argv in
  (* step 1: import — the only step that knows about file formats *)
  let swissprot_flat =
    if text_heavy then swissprot_flat ^ extra_swissprot 48 else swissprot_flat
  in
  let pdb_flat = if text_heavy then pdb_flat ^ extra_pdb 48 else pdb_flat in
  let swissprot = Aladin_formats.Swissprot.parse ~name:"swissprot" swissprot_flat in
  let pdb = Aladin_formats.Pdb_flat.parse ~name:"pdb" pdb_flat in

  (* steps 2-5 are fully automatic *)
  let w = Warehouse.integrate [ swissprot; pdb ] in
  print_string (Aladin_system.summary w);

  (* what did discovery find? *)
  List.iter
    (fun source ->
      match Warehouse.profile w source with
      | Some sp ->
          Format.printf "@.--- discovered structure of %s ---@.%a@." source
            Aladin_discovery.Source_profile.pp sp
      | None -> ())
    (Warehouse.sources w);

  (* all access goes through the engine facade: built once, shared by
     browse, search and SQL *)
  let eng = Engine.create w in

  (* browse an object: its fields, annotations, and discovered links *)
  (match Engine.browse eng ~source:"swissprot" "P10001" with
  | Some view -> print_string (Aladin_access.Browser.render view)
  | None -> print_endline "P10001 not found");

  (* search the whole warehouse *)
  print_endline "\nsearch \"kinase\":";
  List.iter
    (fun (h : Aladin_access.Search.hit) ->
      Printf.printf "  %s (score %.2f)\n"
        (Aladin_links.Objref.to_string h.obj)
        h.score)
    (Engine.search eng "kinase");

  (* and SQL over the imported schemas, across sources *)
  print_endline "\nSQL: accessions of entries with a PDB cross-reference:";
  match
    Engine.query eng
      "SELECT swissprot.bioentry.accession, dbname FROM swissprot.bioentry \
       JOIN swissprot.dbxref ON swissprot.bioentry.bioentry_id = \
       swissprot.dbxref.bioentry_id WHERE dbname = 'PDB' \
       ORDER BY swissprot.bioentry.accession"
  with
  | Ok result ->
      ignore (Relation.cardinality result);
      print_endline (Aladin_access.Sql_eval.render_result result)
  | Error msg -> prerr_endline msg
