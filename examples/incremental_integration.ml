(* Incremental source addition and the change policy (paper §3, §6.2).

   Sources are added one at a time; after each addition the warehouse
   re-links the new source against everything already integrated (the
   per-source statistics are computed once and reused). Then a data
   change below the re-analysis threshold is deferred, and a large one
   triggers re-integration. Finally the metadata repository is saved and
   reloaded, showing that the discovered knowledge is durable.

     dune exec examples/incremental_integration.exe *)

open Aladin
module Dg = Aladin_datagen

let () =
  let corpus =
    Dg.Corpus.generate
      { Dg.Corpus.default_params with
        universe =
          { Dg.Universe.default_params with n_proteins = 50; n_structures = 20;
            n_genes = 20; n_terms = 12; n_diseases = 6; n_families = 6 } }
  in
  let w = Warehouse.create () in
  List.iter
    (fun catalog ->
      let name = Aladin_relational.Catalog.name catalog in
      let report = Warehouse.add_source w catalog in
      Printf.printf "added %-10s -> %4d links in warehouse (%.3fs)\n" name
        (List.length (Warehouse.links w))
        (Warehouse.Run_report.total_seconds report))
    corpus.catalogs;

  (* change policy: a trickle of changes defers, a bulk change reanalyzes *)
  print_endline "\nchange policy (threshold 10% of rows):";
  (match Warehouse.notify_change w ~source:"uniprot" ~changed_rows:2 with
  | `Defer -> print_endline "  2 changed rows -> deferred"
  | `Reanalyze -> print_endline "  2 changed rows -> reanalyze (unexpected)");
  (match Warehouse.catalog w "uniprot" with
  | Some cat -> (
      let bulk = Aladin_relational.Catalog.total_rows cat in
      let upd = Warehouse.update_source w cat ~changed_rows:bulk in
      match upd.Warehouse.outcome with
      | `Reanalyzed (report : Warehouse.Run_report.t) ->
          Printf.printf "  %d changed rows -> reanalyzed (%d steps)\n" bulk
            (List.length report.steps);
          (match upd.Warehouse.delta with
          | Some a ->
              Printf.printf "  delta: %d pairs recomputed, %d reused\n"
                (List.length a.Delta.recomputed_pairs)
                (List.length a.Delta.reused_pairs)
          | None -> ())
      | `Deferred -> print_endline "  bulk change deferred (unexpected)")
  | None -> ());

  (* the metadata repository survives a save/load round trip *)
  let doc = Aladin_metadata.Repository.save (Warehouse.repository w) in
  let reloaded = Aladin_metadata.Repository.load doc in
  Printf.printf "\nrepository: %d bytes, %d sources, %d links after reload\n"
    (String.length doc)
    (List.length (Aladin_metadata.Repository.sources reloaded))
    (List.length (Aladin_metadata.Repository.links reloaded));
  print_endline "\nper-source summary (relations, rows, links touching it):";
  List.iter
    (fun (name, rels, rows, links) ->
      Printf.printf "  %-10s %2d relations %5d rows %5d links\n" name rels rows links)
    (Aladin_metadata.Repository.stats_summary reloaded)
