(* Crash recovery: the warehouse store's durability contract, end to end.

   A warehouse is built and saved, then a second save is killed by fault
   injection at a sweep of byte offsets — mid-member, mid-manifest, and
   right before the commit rename. After every kill the store still
   loads clean and byte-identical to the first snapshot: the atomic
   manifest commit means a crash costs you at most the save in flight,
   never the warehouse.

   Then the committed snapshot itself is damaged (a bit flip in the
   metadata member) to show the other half of the contract: checksums
   catch the damage, the load salvages record by record instead of
   aborting, and the degradation is reported — the same typed-outcome
   discipline as the pipeline's run reports, extended across the
   process boundary.

     dune exec examples/crash_recovery.exe *)

open Aladin
open Aladin_store
module Dg = Aladin_datagen

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let fresh_dir tag =
  let d = Filename.temp_file "aladin" tag in
  Sys.remove d;
  d

(* every committed byte: the manifest plus the generation it names *)
let committed_bytes dir =
  match Snapshot.verify dir with
  | Error msg -> failwith msg
  | Ok report ->
      let sdir =
        Filename.concat dir (Printf.sprintf "snap-%08d" report.generation)
      in
      let rec walk acc path =
        if Sys.is_directory path then
          Array.fold_left
            (fun acc e -> walk acc (Filename.concat path e))
            acc (Sys.readdir path)
        else (path, read_file path) :: acc
      in
      (read_file (Filename.concat dir "MANIFEST"), List.sort compare (walk [] sdir))

let () =
  let corpus =
    Dg.Corpus.generate
      {
        Dg.Corpus.default_params with
        universe =
          { Dg.Universe.default_params with n_proteins = 16; n_genes = 6;
            n_structures = 5; n_diseases = 3; n_terms = 6; n_families = 2 };
      }
  in
  let w = Warehouse.integrate corpus.catalogs in
  let dir = fresh_dir "crash" in
  (match Warehouse.save_dir w dir with
  | Ok () -> Printf.printf "saved %d sources to %s\n" (List.length (Warehouse.sources w)) dir
  | Error msg -> failwith msg);
  let baseline = committed_bytes dir in

  (* 1. kill a second save at a sweep of byte offsets *)
  let kills = ref 0 and budget = ref 0 in
  let finished = ref false in
  while not !finished do
    Fault.arm ~bytes:!budget;
    (match Warehouse.save_dir w dir with
    | exception Fault.Killed ->
        Fault.disarm ();
        incr kills;
        if committed_bytes dir <> baseline then
          failwith (Printf.sprintf "snapshot changed after kill at %d" !budget);
        let _, report = Warehouse.load_dir dir in
        if not (Load_report.is_clean report) then
          failwith (Printf.sprintf "degraded load after kill at %d" !budget)
    | Ok () ->
        Fault.disarm ();
        finished := true
    | Error msg ->
        Fault.disarm ();
        failwith msg);
    budget := !budget + 211
  done;
  Printf.printf
    "torn-write sweep: %d kills, previous snapshot byte-identical every time\n"
    !kills;

  (* 2. bit-flip the committed metadata member; load salvages + reports *)
  let gen =
    match Snapshot.verify dir with
    | Ok r -> r.generation
    | Error msg -> failwith msg
  in
  let victim =
    Filename.concat dir (Printf.sprintf "snap-%08d/metadata.txt" gen)
  in
  let stored = read_file victim in
  write_file victim
    (Dg.Corrupt.flip_bit_at stored ~byte:(String.length stored / 2) ~bit:0);
  let w2, report = Warehouse.load_dir dir in
  Printf.printf "\nafter a bit flip in metadata.txt:\n%s" (Load_report.render report);
  Printf.printf "sources still loaded: %d, records dropped: %d\n"
    (List.length (Warehouse.sources w2))
    (Load_report.records_dropped report);

  (* 3. repair commits the salvage; the store verifies clean again *)
  (match Snapshot.repair dir with
  | Ok _ -> ()
  | Error msg -> failwith msg);
  match Snapshot.verify dir with
  | Ok r when Load_report.is_clean r -> print_endline "after repair: store verifies clean"
  | Ok _ -> failwith "store still damaged after repair"
  | Error msg -> failwith msg
