(* Kill-anywhere resumable integration, demonstrated exhaustively.

   A small corpus is integrated under a write-ahead journal, then the
   same integration is killed at every pipeline step boundary, at a
   sweep of durable-store operation counts, and at a sweep of byte
   offsets inside the journal/store writes. After every kill the run is
   resumed from the journal: committed steps are restored from their
   checkpoints without recomputation, only the in-flight and remaining
   steps re-run, and the final link set is byte-identical to the
   uninterrupted run's — the journal turns "kill -9 anywhere" into "at
   most one step of lost work".

     dune exec examples/kill_resume.exe *)

open Aladin
module Dg = Aladin_datagen
module Fault = Aladin_store.Fault

let corpus =
  Dg.Corpus.generate
    {
      Dg.Corpus.default_params with
      universe =
        { Dg.Universe.default_params with n_proteins = 20; n_genes = 8;
          n_structures = 6; n_diseases = 3; n_terms = 6; n_families = 3 };
      include_diseases = false;
      include_ontology = false;
      include_interactions = false;
    }

let catalogs = corpus.catalogs

let fresh_dir tag =
  let d = Filename.temp_file "aladin-kr" tag in
  Sys.remove d;
  d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let rm_rf path = if Sys.file_exists path then rm_rf path

let links_csv w = Aladin_access.Link_export.to_csv (Warehouse.links w)

let integrate_into dir =
  match Warehouse.integrate_journaled ~journal:dir catalogs with
  | Ok (w, info) -> (w, info)
  | Error e -> failwith e

(* one kill/resume round: arm, expect the kill, disarm, resume, compare *)
let kill_and_resume ~expect_links ~label arm =
  let dir = fresh_dir "kill" in
  Fault.reset_counters ();
  arm ();
  let killed =
    match Warehouse.integrate_journaled ~journal:dir catalogs with
    | Ok _ | Error _ -> false
    | exception Fault.Killed -> true
  in
  Fault.disarm ();
  if not killed then begin
    rm_rf dir;
    false (* the armed budget outlived the run: nothing to resume *)
  end
  else begin
    let w, (info : Warehouse.resume_info) = integrate_into dir in
    let got = links_csv w in
    if got <> expect_links then
      failwith (label ^ ": resumed links differ from the uninterrupted run");
    let covered = info.resumed_sources @ info.executed_sources in
    List.iter
      (fun c ->
        let n = Aladin_relational.Catalog.name c in
        if not (List.mem n covered) then
          failwith (label ^ ": source " ^ n ^ " missing after resume"))
      catalogs;
    rm_rf dir;
    true
  end

let () =
  (* the uninterrupted baseline, with the chaos counters running so we
     know how many step boundaries, ops and bytes a clean run spends *)
  let base_dir = fresh_dir "base" in
  Fault.reset_counters ();
  let w0, _ = integrate_into base_dir in
  let bytes_total, ops_total, steps_total = Fault.counters () in
  let expect_links = links_csv w0 in
  rm_rf base_dir;
  Printf.printf
    "clean run: %d sources, %d step boundaries, %d store ops, %d bytes\n%!"
    (List.length catalogs) steps_total ops_total bytes_total;

  (* 1. every pipeline step boundary *)
  let step_kills = ref 0 in
  for k = 0 to steps_total - 1 do
    if
      kill_and_resume ~expect_links
        ~label:(Printf.sprintf "step %d" k)
        (fun () -> Fault.arm_step ~index:k)
    then incr step_kills
  done;
  Printf.printf "step sweep: %d/%d kill points resumed byte-identical\n%!"
    !step_kills steps_total;

  (* 2. a sweep of durable-operation counts *)
  let op_kills = ref 0 and op_points = 12 in
  for i = 0 to op_points - 1 do
    let k = i * ops_total / op_points in
    if
      kill_and_resume ~expect_links
        ~label:(Printf.sprintf "op %d" k)
        (fun () -> Fault.arm_ops ~ops:k)
    then incr op_kills
  done;
  Printf.printf "op sweep: %d/%d kill points resumed byte-identical\n%!"
    !op_kills op_points;

  (* 3. a sweep of byte offsets inside the journaled writes *)
  let byte_kills = ref 0 and byte_points = 16 in
  for i = 0 to byte_points - 1 do
    let k = i * bytes_total / byte_points in
    if
      kill_and_resume ~expect_links
        ~label:(Printf.sprintf "byte %d" k)
        (fun () -> Fault.arm ~bytes:k)
    then incr byte_kills
  done;
  Printf.printf "byte sweep: %d/%d kill points resumed byte-identical\n%!"
    !byte_kills byte_points;

  Printf.printf
    "kill/resume sweep passed: every kill resumed to byte-identical links\n"
