open Aladin_eval
open Aladin_baselines

let check = Alcotest.check

let metrics_tests =
  [
    Alcotest.test_case "counts" `Quick (fun () ->
        let c =
          Metrics.compare_sets ~expected:[ "a"; "b"; "c" ] ~predicted:[ "b"; "c"; "d" ]
        in
        check Alcotest.int "tp" 2 c.tp;
        check Alcotest.int "fp" 1 c.fp;
        check Alcotest.int "fn" 1 c.fn);
    Alcotest.test_case "scores" `Quick (fun () ->
        let s = Metrics.of_counts { tp = 2; fp = 1; fn = 1 } in
        check (Alcotest.float 0.001) "p" (2.0 /. 3.0) s.precision;
        check (Alcotest.float 0.001) "r" (2.0 /. 3.0) s.recall;
        check (Alcotest.float 0.001) "f1" (2.0 /. 3.0) s.f1);
    Alcotest.test_case "empty conventions" `Quick (fun () ->
        let s = Metrics.evaluate ~expected:[] ~predicted:[] in
        check (Alcotest.float 0.001) "p" 1.0 s.precision;
        check (Alcotest.float 0.001) "r" 1.0 s.recall);
    Alcotest.test_case "duplicates collapse" `Quick (fun () ->
        let c = Metrics.compare_sets ~expected:[ "a"; "a" ] ~predicted:[ "a"; "a" ] in
        check Alcotest.int "tp" 1 c.tp);
    Alcotest.test_case "pair_key symmetric" `Quick (fun () ->
        check Alcotest.string "same" (Metrics.pair_key "x" "y") (Metrics.pair_key "y" "x"));
    Alcotest.test_case "mean" `Quick (fun () ->
        check (Alcotest.float 0.001) "empty" 0.0 (Metrics.mean []);
        check (Alcotest.float 0.001) "avg" 2.0 (Metrics.mean [ 1.0; 2.0; 3.0 ]));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"precision and recall in [0,1]" ~count:100
         QCheck.(pair (list (int_bound 20)) (list (int_bound 20)))
         (fun (e, p) ->
           let s =
             Metrics.evaluate
               ~expected:(List.map string_of_int e)
               ~predicted:(List.map string_of_int p)
           in
           s.precision >= 0.0 && s.precision <= 1.0 && s.recall >= 0.0
           && s.recall <= 1.0));
  ]

let report_tests =
  [
    Alcotest.test_case "render aligned" `Quick (fun () ->
        let r = Report.create ~title:"demo" ~columns:[ "name"; "value" ] in
        Report.add_row r [ "alpha"; "1" ];
        Report.add_row r [ "b"; "22" ];
        let s = Report.render r in
        check Alcotest.bool "title" true
          (Aladin_text.Strdist.contains ~needle:"demo" s);
        check Alcotest.bool "row" true
          (Aladin_text.Strdist.contains ~needle:"alpha" s));
    Alcotest.test_case "column mismatch raises" `Quick (fun () ->
        let r = Report.create ~title:"demo" ~columns:[ "a" ] in
        match Report.add_row r [ "1"; "2" ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "no error");
    Alcotest.test_case "cells" `Quick (fun () ->
        check Alcotest.string "float" "0.500" (Report.cell_f 0.5);
        check Alcotest.string "pct" "50.0%" (Report.cell_pct 0.5));
  ]

(* shared corpus fixture for baseline tests *)
let corpus =
  lazy
    (Aladin_datagen.Corpus.generate
       {
         Aladin_datagen.Corpus.default_params with
         universe =
           { Aladin_datagen.Universe.default_params with n_proteins = 24;
             n_genes = 10; n_structures = 8; n_diseases = 4; n_terms = 8;
             n_families = 3 };
       })

let srs_tests =
  [
    Alcotest.test_case "spec derived from gold" `Quick (fun () ->
        let c = Lazy.force corpus in
        match Srs.spec_of_gold c.gold ~source:"uniprot" c.catalogs with
        | None -> Alcotest.fail "no spec"
        | Some spec ->
            check Alcotest.string "primary" "entry" spec.primary_relation;
            check Alcotest.bool "xrefs tagged" true (spec.xrefs <> []);
            check Alcotest.bool "manual cost > 2" true (Srs.manual_items spec > 2));
    Alcotest.test_case "integrate produces xref links" `Quick (fun () ->
        let c = Lazy.force corpus in
        let specs =
          List.filter_map
            (fun cat ->
              Srs.spec_of_gold c.gold
                ~source:(Aladin_relational.Catalog.name cat)
                c.catalogs)
            c.catalogs
        in
        let links = Srs.integrate c.catalogs specs in
        check Alcotest.bool "links found" true (links <> []);
        check Alcotest.bool "all xref kind" true
          (List.for_all
             (fun (l : Aladin_links.Link.t) -> l.kind = Aladin_links.Link.Xref)
             links));
    Alcotest.test_case "unknown source none" `Quick (fun () ->
        let c = Lazy.force corpus in
        check Alcotest.bool "none" true
          (Srs.spec_of_gold c.gold ~source:"nope" c.catalogs = None));
  ]

let cost_tests =
  [
    Alcotest.test_case "ordering of approaches" `Quick (fun () ->
        let c = Lazy.force corpus in
        let data = Cost_model.data_focused c.catalogs in
        let schema = Cost_model.schema_focused c.catalogs in
        let specs =
          List.filter_map
            (fun cat ->
              Srs.spec_of_gold c.gold
                ~source:(Aladin_relational.Catalog.name cat)
                c.catalogs)
            c.catalogs
        in
        let srs = Cost_model.srs_style specs in
        let aladin = Cost_model.aladin c.catalogs ~n_parsers_needed:1 in
        check Alcotest.bool "data most manual" true
          (data.manual_interventions > schema.manual_interventions);
        check Alcotest.bool "schema > srs-ish" true
          (schema.manual_interventions > aladin.manual_interventions);
        check Alcotest.bool "srs > aladin" true
          (srs.manual_interventions > aladin.manual_interventions));
  ]

let name_matcher_tests =
  [
    Alcotest.test_case "same names matched" `Quick (fun () ->
        let open Aladin_relational in
        let a = Catalog.create ~name:"a" in
        let _ = Catalog.create_relation a ~name:"protein" (Schema.of_names [ "accession"; "description" ]) in
        let b = Catalog.create ~name:"b" in
        let _ = Catalog.create_relation b ~name:"protein" (Schema.of_names [ "accession"; "organism" ]) in
        let ms = Name_matcher.match_attributes a b in
        check Alcotest.bool "accession matched" true
          (List.exists
             (fun (m : Name_matcher.correspondence) ->
               m.src_attribute = "accession" && m.dst_attribute = "accession")
             ms));
    Alcotest.test_case "renamed attribute missed" `Quick (fun () ->
        let open Aladin_relational in
        let a = Catalog.create ~name:"a" in
        let _ = Catalog.create_relation a ~name:"t" (Schema.of_names [ "xkcd" ]) in
        let b = Catalog.create ~name:"b" in
        let _ = Catalog.create_relation b ~name:"u" (Schema.of_names [ "qwerty" ]) in
        check Alcotest.int "no match" 0 (List.length (Name_matcher.match_attributes a b)));
    Alcotest.test_case "corpus all ordered pairs" `Quick (fun () ->
        let open Aladin_relational in
        let mk name =
          let c = Catalog.create ~name in
          let _ = Catalog.create_relation c ~name:"t" (Schema.of_names [ "id" ]) in
          c
        in
        let ms = Name_matcher.match_corpus [ mk "a"; mk "b" ] in
        check Alcotest.int "two directions" 2 (List.length ms));
  ]

let tests =
  [
    ("eval.metrics", metrics_tests);
    ("eval.report", report_tests);
    ("baselines.srs", srs_tests);
    ("baselines.cost_model", cost_tests);
    ("baselines.name_matcher", name_matcher_tests);
  ]
