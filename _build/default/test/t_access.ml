open Aladin_relational
open Aladin_access

let check = Alcotest.check

let lexer_tests =
  [
    Alcotest.test_case "tokens" `Quick (fun () ->
        match Sql_lexer.tokenize "SELECT a, b FROM t WHERE x = 'v'" with
        | [ Kw "SELECT"; Ident "a"; Comma; Ident "b"; Kw "FROM"; Ident "t";
            Kw "WHERE"; Ident "x"; Eq; String_lit "v" ] -> ()
        | _ -> Alcotest.fail "bad tokens");
    Alcotest.test_case "escaped quote in string" `Quick (fun () ->
        match Sql_lexer.tokenize "'it''s'" with
        | [ String_lit "it's" ] -> ()
        | _ -> Alcotest.fail "bad string");
    Alcotest.test_case "numbers" `Quick (fun () ->
        match Sql_lexer.tokenize "42 -3.5" with
        | [ Number_lit a; Number_lit b ] ->
            check (Alcotest.float 0.001) "int" 42.0 a;
            check (Alcotest.float 0.001) "neg float" (-3.5) b
        | _ -> Alcotest.fail "bad numbers");
    Alcotest.test_case "operators" `Quick (fun () ->
        match Sql_lexer.tokenize "<> <= >= < > != =" with
        | [ Neq; Le; Ge; Lt; Gt; Neq; Eq ] -> ()
        | _ -> Alcotest.fail "bad ops");
    Alcotest.test_case "unterminated string raises" `Quick (fun () ->
        match Sql_lexer.tokenize "'oops" with
        | exception Sql_lexer.Lex_error _ -> ()
        | _ -> Alcotest.fail "no error");
    Alcotest.test_case "keywords case-insensitive" `Quick (fun () ->
        match Sql_lexer.tokenize "select From" with
        | [ Kw "SELECT"; Kw "FROM" ] -> ()
        | _ -> Alcotest.fail "bad keywords");
  ]

let parser_tests =
  [
    Alcotest.test_case "full query" `Quick (fun () ->
        let q =
          Sql_parser.parse
            "SELECT t.a, b FROM t JOIN u ON t.a = u.a WHERE b > 3 AND c = 'x' \
             ORDER BY b DESC LIMIT 10"
        in
        check Alcotest.int "projection" 2 (List.length q.projection);
        check Alcotest.string "from" "t" q.from_table;
        check Alcotest.int "joins" 1 (List.length q.joins);
        (match q.where with
        | Some (Sql_parser.And (_, _)) -> ()
        | Some _ | None -> Alcotest.fail "expected conjunction");
        check Alcotest.bool "order desc" true
          (match q.order_by with Some o -> o.descending | None -> false);
        check Alcotest.(option int) "limit" (Some 10) q.limit);
    Alcotest.test_case "star projection" `Quick (fun () ->
        let q = Sql_parser.parse "SELECT * FROM t" in
        check Alcotest.int "empty proj" 0 (List.length q.projection));
    Alcotest.test_case "distinct" `Quick (fun () ->
        check Alcotest.bool "flag" true (Sql_parser.parse "SELECT DISTINCT a FROM t").distinct);
    Alcotest.test_case "is null predicates" `Quick (fun () ->
        let q = Sql_parser.parse "SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL" in
        match q.where with
        | Some (Sql_parser.And (Sql_parser.Is_null _, Sql_parser.Is_not_null _)) -> ()
        | Some _ | None -> Alcotest.fail "bad predicates");
    Alcotest.test_case "or / not / parens precedence" `Quick (fun () ->
        let q = Sql_parser.parse "SELECT * FROM t WHERE a = 1 OR b = 2 AND NOT (c = 3)" in
        match q.where with
        | Some (Sql_parser.Or (Sql_parser.Compare _,
                               Sql_parser.And (Sql_parser.Compare _,
                                               Sql_parser.Not (Sql_parser.Compare _)))) -> ()
        | Some _ | None -> Alcotest.fail "bad precedence");
    Alcotest.test_case "in list" `Quick (fun () ->
        let q = Sql_parser.parse "SELECT * FROM t WHERE a IN ('x', 'y', 3)" in
        match q.where with
        | Some (Sql_parser.In_list (_, [ _; _; _ ])) -> ()
        | Some _ | None -> Alcotest.fail "bad in-list");
    Alcotest.test_case "aggregates and group by" `Quick (fun () ->
        let q =
          Sql_parser.parse
            "SELECT city_id, COUNT(*), AVG(age) FROM people GROUP BY city_id"
        in
        check Alcotest.int "items" 3 (List.length q.projection);
        check Alcotest.int "group cols" 1 (List.length q.group_by);
        match q.projection with
        | [ Sql_parser.Item_col _; Sql_parser.Item_agg Sql_parser.Count_star;
            Sql_parser.Item_agg (Sql_parser.Avg _) ] -> ()
        | _ -> Alcotest.fail "bad projection");
    Alcotest.test_case "qualified column split" `Quick (fun () ->
        let q = Sql_parser.parse "SELECT src.tbl.attr FROM src.tbl" in
        match q.projection with
        | [ Sql_parser.Item_col { table = Some "src.tbl"; attr = "attr" } ] -> ()
        | _ -> Alcotest.fail "bad column");
    Alcotest.test_case "trailing garbage raises" `Quick (fun () ->
        match Sql_parser.parse "SELECT * FROM t extra" with
        | exception Sql_parser.Parse_error _ -> ()
        | _ -> Alcotest.fail "no error");
    Alcotest.test_case "missing from raises" `Quick (fun () ->
        match Sql_parser.parse "SELECT a" with
        | exception Sql_parser.Parse_error _ -> ()
        | _ -> Alcotest.fail "no error");
  ]

let fixture_catalog () =
  let cat = Catalog.create ~name:"db" in
  let people =
    Catalog.create_relation cat ~name:"people"
      (Schema.of_names [ "id"; "name"; "age"; "city_id" ])
  in
  List.iter (Relation.insert people)
    [
      [| Value.Int 1; Value.text "ada"; Value.Int 36; Value.Int 1 |];
      [| Value.Int 2; Value.text "bob"; Value.Int 28; Value.Int 2 |];
      [| Value.Int 3; Value.text "cyd"; Value.Int 41; Value.Int 1 |];
      [| Value.Int 4; Value.text "dee"; Value.Null; Value.Int 2 |];
    ];
  let cities =
    Catalog.create_relation cat ~name:"cities"
      (Schema.of_names [ "id"; "city" ])
  in
  List.iter (Relation.insert cities)
    [ [| Value.Int 1; Value.text "berlin" |]; [| Value.Int 2; Value.text "paris" |] ];
  cat

let run q =
  Sql_eval.run ~resolve:(Catalog.find (fixture_catalog ())) q

let eval_tests =
  [
    Alcotest.test_case "select star" `Quick (fun () ->
        check Alcotest.int "rows" 4 (Relation.cardinality (run "SELECT * FROM people")));
    Alcotest.test_case "where comparison" `Quick (fun () ->
        check Alcotest.int "age > 30" 2
          (Relation.cardinality (run "SELECT * FROM people WHERE age > 30")));
    Alcotest.test_case "where equality string" `Quick (fun () ->
        check Alcotest.int "ada" 1
          (Relation.cardinality (run "SELECT * FROM people WHERE name = 'ada'")));
    Alcotest.test_case "like" `Quick (fun () ->
        check Alcotest.int "names with d" 3
          (Relation.cardinality (run "SELECT * FROM people WHERE name LIKE '%d%'"));
        check Alcotest.int "names ending e" 1
          (Relation.cardinality (run "SELECT * FROM people WHERE name LIKE '%e'")));
    Alcotest.test_case "is null" `Quick (fun () ->
        check Alcotest.int "null age" 1
          (Relation.cardinality (run "SELECT * FROM people WHERE age IS NULL"));
        check Alcotest.int "non-null" 3
          (Relation.cardinality (run "SELECT * FROM people WHERE age IS NOT NULL")));
    Alcotest.test_case "join" `Quick (fun () ->
        let r =
          run "SELECT people.name, cities.city FROM people JOIN cities ON people.city_id = cities.id"
        in
        check Alcotest.int "rows" 4 (Relation.cardinality r);
        check Alcotest.int "cols" 2 (Relation.arity r));
    Alcotest.test_case "join condition reversed" `Quick (fun () ->
        let r =
          run "SELECT * FROM people JOIN cities ON cities.id = people.city_id"
        in
        check Alcotest.int "rows" 4 (Relation.cardinality r));
    Alcotest.test_case "join plus filter" `Quick (fun () ->
        let r =
          run
            "SELECT name FROM people JOIN cities ON people.city_id = cities.id \
             WHERE city = 'berlin'"
        in
        check Alcotest.int "two berliners" 2 (Relation.cardinality r));
    Alcotest.test_case "order by desc limit" `Quick (fun () ->
        let r = run "SELECT name FROM people WHERE age IS NOT NULL ORDER BY age DESC LIMIT 1" in
        check Alcotest.bool "oldest" true ((Relation.row r 0).(0) = Value.Text "cyd"));
    Alcotest.test_case "distinct" `Quick (fun () ->
        check Alcotest.int "cities" 2
          (Relation.cardinality (run "SELECT DISTINCT city_id FROM people")));
    Alcotest.test_case "unknown table" `Quick (fun () ->
        match run "SELECT * FROM nope" with
        | exception Sql_eval.Eval_error _ -> ()
        | _ -> Alcotest.fail "no error");
    Alcotest.test_case "unknown column" `Quick (fun () ->
        match run "SELECT zz FROM people" with
        | exception Sql_eval.Eval_error _ -> ()
        | _ -> Alcotest.fail "no error");
    Alcotest.test_case "ambiguous column" `Quick (fun () ->
        match run "SELECT id FROM people JOIN cities ON people.city_id = cities.id" with
        | exception Sql_eval.Eval_error _ -> ()
        | _ -> Alcotest.fail "no error");
    Alcotest.test_case "or expression" `Quick (fun () ->
        check Alcotest.int "ada or bob" 2
          (Relation.cardinality
             (run "SELECT * FROM people WHERE name = 'ada' OR name = 'bob'")));
    Alcotest.test_case "not expression" `Quick (fun () ->
        check Alcotest.int "not ada" 3
          (Relation.cardinality (run "SELECT * FROM people WHERE NOT name = 'ada'")));
    Alcotest.test_case "parenthesized precedence" `Quick (fun () ->
        check Alcotest.int "and binds tighter" 2
          (Relation.cardinality
             (run
                "SELECT * FROM people WHERE name = 'ada' OR name = 'bob' AND age > 20"));
        check Alcotest.int "parens change it" 1
          (Relation.cardinality
             (run
                "SELECT * FROM people WHERE (name = 'ada' OR name = 'bob') AND age > 30")));
    Alcotest.test_case "in list eval" `Quick (fun () ->
        check Alcotest.int "two" 2
          (Relation.cardinality
             (run "SELECT * FROM people WHERE name IN ('ada', 'cyd')"));
        check Alcotest.int "not in" 2
          (Relation.cardinality
             (run "SELECT * FROM people WHERE name NOT IN ('ada', 'cyd')")));
    Alcotest.test_case "count star" `Quick (fun () ->
        let r = run "SELECT COUNT(*) FROM people" in
        check Alcotest.bool "4" true ((Relation.row r 0).(0) = Value.Int 4));
    Alcotest.test_case "count column skips nulls" `Quick (fun () ->
        let r = run "SELECT COUNT(age) FROM people" in
        check Alcotest.bool "3" true ((Relation.row r 0).(0) = Value.Int 3));
    Alcotest.test_case "sum avg min max" `Quick (fun () ->
        let r = run "SELECT SUM(age), AVG(age), MIN(age), MAX(age) FROM people" in
        let row = Relation.row r 0 in
        check Alcotest.bool "sum" true (row.(0) = Value.Int 105);
        check Alcotest.bool "avg" true (row.(1) = Value.Float 35.0);
        check Alcotest.bool "min" true (row.(2) = Value.Int 28);
        check Alcotest.bool "max" true (row.(3) = Value.Int 41));
    Alcotest.test_case "group by with count" `Quick (fun () ->
        let r =
          run
            "SELECT city_id, COUNT(*) FROM people GROUP BY city_id ORDER BY city_id"
        in
        check Alcotest.int "two groups" 2 (Relation.cardinality r);
        check Alcotest.bool "berlin has 2" true ((Relation.row r 0).(1) = Value.Int 2));
    Alcotest.test_case "non-grouped column rejected" `Quick (fun () ->
        match run "SELECT name, COUNT(*) FROM people GROUP BY city_id" with
        | exception Sql_eval.Eval_error _ -> ()
        | _ -> Alcotest.fail "no error");
    Alcotest.test_case "order by aggregate output" `Quick (fun () ->
        let r =
          run
            "SELECT city_id, COUNT(*) FROM people GROUP BY city_id ORDER BY city_id DESC"
        in
        check Alcotest.bool "paris first" true ((Relation.row r 0).(0) = Value.Int 2));
    Alcotest.test_case "render_result" `Quick (fun () ->
        let s = Sql_eval.render_result (run "SELECT name FROM people LIMIT 1") in
        check Alcotest.bool "has name" true
          (Aladin_text.Strdist.contains ~needle:"ada" s));
  ]

(* reference LIKE implementation: O(n*m) DP over the pattern *)
let like_reference ~pattern s =
  let p = String.lowercase_ascii pattern and s = String.lowercase_ascii s in
  let np = String.length p and ns = String.length s in
  let dp = Array.make_matrix (np + 1) (ns + 1) false in
  dp.(0).(0) <- true;
  for i = 1 to np do
    if p.[i - 1] = '%' then dp.(i).(0) <- dp.(i - 1).(0)
  done;
  for i = 1 to np do
    for j = 1 to ns do
      dp.(i).(j) <-
        (match p.[i - 1] with
        | '%' -> dp.(i - 1).(j) || dp.(i).(j - 1)
        | '_' -> dp.(i - 1).(j - 1)
        | c -> c = s.[j - 1] && dp.(i - 1).(j - 1))
    done
  done;
  dp.(np).(ns)

let like_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"like_match agrees with reference DP" ~count:300
         QCheck.(pair
                   (string_gen_of_size (QCheck.Gen.int_range 0 8)
                      (QCheck.Gen.oneofl [ 'a'; 'b'; '%'; '_' ]))
                   (string_gen_of_size (QCheck.Gen.int_range 0 10)
                      (QCheck.Gen.oneofl [ 'a'; 'b'; 'c' ])))
         (fun (pattern, s) ->
           Sql_eval.like_match ~pattern s = like_reference ~pattern s));
    Alcotest.test_case "like semantics" `Quick (fun () ->
        check Alcotest.bool "prefix" true (Sql_eval.like_match ~pattern:"ab%" "abcdef");
        check Alcotest.bool "suffix" true (Sql_eval.like_match ~pattern:"%def" "abcdef");
        check Alcotest.bool "infix" true (Sql_eval.like_match ~pattern:"%cd%" "abcdef");
        check Alcotest.bool "underscore" true (Sql_eval.like_match ~pattern:"a_c" "abc");
        check Alcotest.bool "exact" true (Sql_eval.like_match ~pattern:"abc" "abc");
        check Alcotest.bool "case-insensitive" true (Sql_eval.like_match ~pattern:"ABC" "abc");
        check Alcotest.bool "no match" false (Sql_eval.like_match ~pattern:"x%" "abc");
        check Alcotest.bool "percent alone" true (Sql_eval.like_match ~pattern:"%" "");
        check Alcotest.bool "too short" false (Sql_eval.like_match ~pattern:"a_c" "ac"));
  ]

(* warehouse-level fixtures reuse the linkdisc mini-sources *)
let mini_profiles () =
  Aladin_links.Profile_list.of_profiles
    [
      Aladin_discovery.Source_profile.analyze (T_linkdisc.source_a ());
      Aladin_discovery.Source_profile.analyze (T_linkdisc.source_b ());
    ]

let search_tests =
  [
    Alcotest.test_case "build and count" `Quick (fun () ->
        let s = Search.build (mini_profiles ()) in
        check Alcotest.int "six objects" 6 (Search.object_count s));
    Alcotest.test_case "find by description word" `Quick (fun () ->
        let s = Search.build (mini_profiles ()) in
        let hits = Search.search s "kinase" in
        check Alcotest.bool "nonempty" true (hits <> []);
        check Alcotest.bool "AX001 or BX901 hit" true
          (List.exists
             (fun (h : Search.hit) ->
               h.obj.Aladin_links.Objref.accession = "AX001"
               || h.obj.Aladin_links.Objref.accession = "BX901")
             hits));
    Alcotest.test_case "focused by source" `Quick (fun () ->
        let s = Search.build (mini_profiles ()) in
        let hits = Search.focused s ~source:"src_b" "kinase" in
        check Alcotest.bool "only src_b" true
          (List.for_all
             (fun (h : Search.hit) -> h.obj.Aladin_links.Objref.source = "src_b")
             hits));
    Alcotest.test_case "resolve accession" `Quick (fun () ->
        let s = Search.build (mini_profiles ()) in
        check Alcotest.bool "found" true (Search.resolve s "ax001" <> None);
        check Alcotest.bool "missing" true (Search.resolve s "nope" = None));
  ]

let path_rank_tests =
  let obj s a = Aladin_links.Objref.make ~source:s ~relation:"r" ~accession:a in
  let link a b c =
    Aladin_links.Link.make ~src:a ~dst:b ~kind:Aladin_links.Link.Xref
      ~confidence:c ~evidence:"t"
  in
  [
    Alcotest.test_case "direct link relatedness" `Quick (fun () ->
        let a = obj "s" "A" and b = obj "s" "B" in
        let pr = Path_rank.build [ link a b 0.8 ] in
        check (Alcotest.float 0.001) "conf" 0.8 (Path_rank.relatedness pr a b));
    Alcotest.test_case "two-hop decays" `Quick (fun () ->
        let a = obj "s" "A" and b = obj "s" "B" and c = obj "s" "C" in
        let pr = Path_rank.build [ link a b 1.0; link b c 1.0 ] in
        check (Alcotest.float 0.001) "decay" 0.5 (Path_rank.relatedness pr a c));
    Alcotest.test_case "parallel paths add up" `Quick (fun () ->
        let a = obj "s" "A" and b = obj "s" "B" and c = obj "s" "C" and d = obj "s" "D" in
        let pr =
          Path_rank.build [ link a b 1.0; link b d 1.0; link a c 1.0; link c d 1.0 ]
        in
        check (Alcotest.float 0.001) "two paths" 1.0 (Path_rank.relatedness pr a d));
    Alcotest.test_case "unconnected zero" `Quick (fun () ->
        let a = obj "s" "A" and b = obj "s" "B" in
        let pr = Path_rank.build [] in
        check (Alcotest.float 0.001) "zero" 0.0 (Path_rank.relatedness pr a b));
    Alcotest.test_case "rank_from orders" `Quick (fun () ->
        let a = obj "s" "A" and b = obj "s" "B" and c = obj "s" "C" in
        let pr = Path_rank.build [ link a b 0.9; link b c 0.9 ] in
        match Path_rank.rank_from pr a with
        | (first, _) :: _ ->
            check Alcotest.string "direct first" "s:B"
              (Aladin_links.Objref.to_string first)
        | [] -> Alcotest.fail "empty");
  ]

let browser_tests =
  let build () =
    let profiles = mini_profiles () in
    let repo = Aladin_metadata.Repository.create () in
    let report = Aladin_links.Linker.discover profiles in
    Aladin_metadata.Repository.set_links repo report.links;
    Browser.create profiles repo
  in
  [
    Alcotest.test_case "view fields" `Quick (fun () ->
        let b = build () in
        match Browser.view_accession b ~source:"src_a" "AX001" with
        | None -> Alcotest.fail "no view"
        | Some v ->
            check Alcotest.bool "accession field" true
              (List.mem ("accession", "AX001") v.fields));
    Alcotest.test_case "annotations present" `Quick (fun () ->
        let b = build () in
        match Browser.view_accession b ~source:"src_a" "AX001" with
        | None -> Alcotest.fail "no view"
        | Some v ->
            check Alcotest.bool "dbxref annotation" true
              (List.exists (fun (a : Browser.annotation) -> a.relation = "dbxref") v.annotations));
    Alcotest.test_case "links attached" `Quick (fun () ->
        let b = build () in
        match Browser.view_accession b ~source:"src_a" "AX001" with
        | None -> Alcotest.fail "no view"
        | Some v -> check Alcotest.bool "linked" true (v.linked <> []));
    Alcotest.test_case "follow link" `Quick (fun () ->
        let b = build () in
        match Browser.view_accession b ~source:"src_a" "AX001" with
        | None -> Alcotest.fail "no view"
        | Some v -> (
            match Browser.follow b v 0 with
            | Some v2 ->
                check Alcotest.bool "landed elsewhere" true
                  (v2.obj.Aladin_links.Objref.accession <> "AX001")
            | None -> Alcotest.fail "follow failed"));
    Alcotest.test_case "unknown object none" `Quick (fun () ->
        let b = build () in
        check Alcotest.bool "none" true
          (Browser.view_accession b ~source:"src_a" "ZZZ" = None));
    Alcotest.test_case "render mentions accession" `Quick (fun () ->
        let b = build () in
        match Browser.view_accession b ~source:"src_a" "AX001" with
        | None -> Alcotest.fail "no view"
        | Some v ->
            check Alcotest.bool "rendered" true
              (Aladin_text.Strdist.contains ~needle:"AX001" (Browser.render v)));
    Alcotest.test_case "objects enumerates all" `Quick (fun () ->
        let b = build () in
        check Alcotest.int "six" 6 (List.length (Browser.objects b)));
    Alcotest.test_case "siblings window" `Quick (fun () ->
        let b = build () in
        match Browser.view_accession b ~source:"src_a" "AX002" with
        | None -> Alcotest.fail "no view"
        | Some v -> check Alcotest.int "two neighbours" 2 (List.length v.siblings));
  ]

let link_query_tests =
  let obj s a = Aladin_links.Objref.make ~source:s ~relation:"r" ~accession:a in
  let link ?(kind = Aladin_links.Link.Xref) ?(conf = 0.9) a b =
    Aladin_links.Link.make ~src:a ~dst:b ~kind ~confidence:conf ~evidence:"t"
  in
  let gene = obj "genes" "G1" in
  let prot = obj "prots" "P1" in
  let disease = obj "dis" "D1" in
  let term = obj "onto" "T1" in
  let graph () =
    Link_query.create
      [ link gene prot; link prot disease;
        link ~kind:Aladin_links.Link.Shared_term ~conf:0.5 prot term ]
  in
  [
    Alcotest.test_case "two-hop traversal" `Quick (fun () ->
        let hits =
          Link_query.run (graph ()) ~start:[ gene ]
            ~steps:[ Link_query.step (); Link_query.step ~target_source:"dis" () ]
        in
        match hits with
        | [ h ] ->
            check Alcotest.string "endpoint" "dis:D1"
              (Aladin_links.Objref.to_string h.endpoint);
            check Alcotest.int "path length" 2 (List.length h.path);
            check (Alcotest.float 0.001) "score" (0.9 *. 0.9) h.score
        | hs -> Alcotest.fail (Printf.sprintf "%d hits" (List.length hs)));
    Alcotest.test_case "kind filter" `Quick (fun () ->
        let hits =
          Link_query.run (graph ()) ~start:[ prot ]
            ~steps:[ Link_query.step ~kinds:[ Aladin_links.Link.Shared_term ] () ]
        in
        check Alcotest.int "only term" 1 (List.length hits));
    Alcotest.test_case "confidence filter" `Quick (fun () ->
        let hits =
          Link_query.run (graph ()) ~start:[ prot ]
            ~steps:[ Link_query.step ~min_confidence:0.8 () ]
        in
        check Alcotest.int "two strong" 2 (List.length hits));
    Alcotest.test_case "no revisit" `Quick (fun () ->
        (* gene -> prot -> back to gene is forbidden *)
        let hits =
          Link_query.run (graph ()) ~start:[ gene ]
            ~steps:[ Link_query.step (); Link_query.step ~target_source:"genes" () ]
        in
        check Alcotest.int "none" 0 (List.length hits));
    Alcotest.test_case "empty steps echo start" `Quick (fun () ->
        let hits = Link_query.run (graph ()) ~start:[ gene ] ~steps:[] in
        check Alcotest.int "one" 1 (List.length hits));
    Alcotest.test_case "best witness kept" `Quick (fun () ->
        let a = obj "s" "A" and b = obj "s" "B" in
        let g = Link_query.create [ link ~conf:0.2 a b; link ~conf:0.9 a b ] in
        match Link_query.run g ~start:[ a ] ~steps:[ Link_query.step () ] with
        | [ h ] -> check (Alcotest.float 0.001) "0.9 wins" 0.9 h.score
        | hs -> Alcotest.fail (Printf.sprintf "%d hits" (List.length hs)));
    Alcotest.test_case "reachable_count" `Quick (fun () ->
        check Alcotest.int "prot degree" 3
          (Link_query.reachable_count (graph ()) prot));
  ]

let html_tests =
  [
    Alcotest.test_case "escape" `Quick (fun () ->
        check Alcotest.string "escaped" "a&amp;b &lt;c&gt; &quot;d&quot;"
          (Html_export.escape_html "a&b <c> \"d\""));
    Alcotest.test_case "filename sanitized" `Quick (fun () ->
        let o =
          Aladin_links.Objref.make ~source:"s/1" ~relation:"r" ~accession:"GO:0001"
        in
        let f = Html_export.page_filename o in
        check Alcotest.bool "no slash" true (not (String.contains f '/'));
        check Alcotest.bool "no colon" true (not (String.contains f ':')));
    Alcotest.test_case "object page wellformed-ish" `Quick (fun () ->
        let profiles = mini_profiles () in
        let repo = Aladin_metadata.Repository.create () in
        let report = Aladin_links.Linker.discover profiles in
        Aladin_metadata.Repository.set_links repo report.links;
        let b = Browser.create profiles repo in
        match Browser.view_accession b ~source:"src_a" "AX001" with
        | None -> Alcotest.fail "no view"
        | Some v ->
            let html = Html_export.object_page b v in
            check Alcotest.bool "has title" true
              (Aladin_text.Strdist.contains ~needle:"AX001" html);
            check Alcotest.bool "closes body" true
              (Aladin_text.Strdist.contains ~needle:"</body>" html));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"escape_html leaves no raw specials" ~count:200
         QCheck.string
         (fun s ->
           let e = Html_export.escape_html s in
           not (String.exists (fun c -> c = '<' || c = '>') e)
           (* every & in the output must start an entity *)
           && (let ok = ref true in
               String.iteri
                 (fun i c ->
                   if c = '&' then
                     let rest = String.sub e i (min 6 (String.length e - i)) in
                     if
                       not
                         (List.exists
                            (fun ent ->
                              String.length rest >= String.length ent
                              && String.sub rest 0 (String.length ent) = ent)
                            [ "&amp;"; "&lt;"; "&gt;"; "&quot;" ])
                     then ok := false)
                 e;
               !ok)));
    Alcotest.test_case "write_site" `Quick (fun () ->
        let profiles = mini_profiles () in
        let repo = Aladin_metadata.Repository.create () in
        let b = Browser.create profiles repo in
        let dir = Filename.temp_file "aladin" "site" in
        Sys.remove dir;
        let n = Html_export.write_site b ~dir in
        check Alcotest.int "six pages" 6 n;
        check Alcotest.bool "index exists" true
          (Sys.file_exists (Filename.concat dir "index.html")));
  ]

let tests =
  [
    ("access.sql_lexer", lexer_tests);
    ("access.sql_parser", parser_tests);
    ("access.sql_eval", eval_tests);
    ("access.like", like_tests);
    ("access.search", search_tests);
    ("access.path_rank", path_rank_tests);
    ("access.browser", browser_tests);
    ("access.link_query", link_query_tests);
    ("access.html_export", html_tests);
  ]

let link_export_tests =
  let obj s acc = Aladin_links.Objref.make ~source:s ~relation:"r" ~accession:acc in
  let link k c a b =
    Aladin_links.Link.make ~src:a ~dst:b ~kind:k ~confidence:c ~evidence:"ev,1"
  in
  let sample =
    [ link Aladin_links.Link.Xref 0.9 (obj "a" "A1") (obj "b" "B1");
      link Aladin_links.Link.Duplicate 0.8 (obj "a" "A1") (obj "b" "B2") ]
  in
  [
    Alcotest.test_case "csv header and quoting" `Quick (fun () ->
        let csv = Link_export.to_csv sample in
        match Aladin_relational.Csv.read_string csv with
        | header :: rows ->
            check Alcotest.int "7 columns" 7 (List.length header);
            check Alcotest.int "2 rows" 2 (List.length rows);
            check Alcotest.bool "evidence with comma survives" true
              (List.for_all (fun r -> List.length r = 7) rows)
        | [] -> Alcotest.fail "empty csv");
    Alcotest.test_case "dot structure" `Quick (fun () ->
        let dot = Link_export.to_dot sample in
        let contains needle = Aladin_text.Strdist.contains ~needle dot in
        check Alcotest.bool "graph" true (contains "graph aladin");
        check Alcotest.bool "clusters" true (contains "subgraph cluster_");
        check Alcotest.bool "edge" true (contains "--");
        check Alcotest.bool "bold duplicate" true (contains "style=bold"));
    Alcotest.test_case "max_links caps edges" `Quick (fun () ->
        let many =
          List.init 20 (fun i ->
              link Aladin_links.Link.Xref (0.5 +. (0.01 *. float_of_int i))
                (obj "a" (Printf.sprintf "A%d" i))
                (obj "b" (Printf.sprintf "B%d" i)))
        in
        let dot = Link_export.to_dot ~max_links:5 many in
        let edge_count =
          String.split_on_char '\n' dot
          |> List.filter (fun l -> Aladin_text.Strdist.contains ~needle:" -- " l)
          |> List.length
        in
        check Alcotest.int "5 edges" 5 edge_count);
  ]

let tests = tests @ [ ("access.link_export", link_export_tests) ]
