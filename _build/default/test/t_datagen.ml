open Aladin_relational
open Aladin_datagen

let check = Alcotest.check

let rng_tests =
  [
    Alcotest.test_case "deterministic" `Quick (fun () ->
        let a = Rng.create 7 and b = Rng.create 7 in
        for _ = 1 to 20 do
          check Alcotest.int "same" (Rng.int a 1000) (Rng.int b 1000)
        done);
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let a = Rng.create 1 and b = Rng.create 2 in
        let sa = List.init 10 (fun _ -> Rng.int a 1000000) in
        let sb = List.init 10 (fun _ -> Rng.int b 1000000) in
        check Alcotest.bool "diverge" true (sa <> sb));
    Alcotest.test_case "copy forks state" `Quick (fun () ->
        let a = Rng.create 3 in
        ignore (Rng.int a 10);
        let b = Rng.copy a in
        check Alcotest.int "same next" (Rng.int a 1000) (Rng.int b 1000));
    Alcotest.test_case "bad bounds raise" `Quick (fun () ->
        let a = Rng.create 1 in
        (match Rng.int a 0 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "no error");
        match Rng.choice a [] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "no error");
    Alcotest.test_case "range inclusive" `Quick (fun () ->
        let a = Rng.create 5 in
        let seen = Hashtbl.create 8 in
        for _ = 1 to 200 do
          Hashtbl.replace seen (Rng.range a 1 3) ()
        done;
        check Alcotest.int "all three" 3 (Hashtbl.length seen));
    Alcotest.test_case "sample distinct" `Quick (fun () ->
        let a = Rng.create 5 in
        let s = Rng.sample a 3 [ 1; 2; 3; 4; 5 ] in
        check Alcotest.int "three" 3 (List.length s);
        check Alcotest.int "distinct" 3 (List.length (List.sort_uniq Int.compare s)));
    Alcotest.test_case "shuffle is permutation" `Quick (fun () ->
        let a = Rng.create 5 in
        let xs = [ 1; 2; 3; 4; 5; 6 ] in
        check Alcotest.(list int) "same elements" xs
          (List.sort Int.compare (Rng.shuffle a xs)));
    Alcotest.test_case "pattern shape" `Quick (fun () ->
        let a = Rng.create 5 in
        let s = Rng.pattern a "P##@@-#" in
        check Alcotest.int "length" 7 (String.length s);
        check Alcotest.bool "prefix" true (s.[0] = 'P');
        check Alcotest.bool "digit" true (s.[1] >= '0' && s.[1] <= '9');
        check Alcotest.bool "letter" true (s.[3] >= 'A' && s.[3] <= 'Z');
        check Alcotest.bool "dash" true (s.[5] = '-'));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"int in bounds" ~count:200
         QCheck.(pair small_int (int_range 1 1000))
         (fun (seed, n) ->
           let r = Rng.create seed in
           let v = Rng.int r n in
           v >= 0 && v < n));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"float in bounds" ~count:200 QCheck.small_int
         (fun seed ->
           let r = Rng.create seed in
           let v = Rng.float r 1.0 in
           v >= 0.0 && v < 1.0));
  ]

let names_tests =
  [
    Alcotest.test_case "gene_symbol shape" `Quick (fun () ->
        let r = Rng.create 1 in
        let s = Names.gene_symbol r in
        check Alcotest.bool "has letter" true
          (String.exists (fun c -> c >= 'A' && c <= 'Z') s);
        check Alcotest.bool "has digit" true
          (String.exists (fun c -> c >= '0' && c <= '9') s));
    Alcotest.test_case "description mentions subject" `Quick (fun () ->
        let r = Rng.create 1 in
        let d = Names.description r "SUBJ99" in
        check Alcotest.bool "subject" true
          (Aladin_text.Strdist.contains ~needle:"SUBJ99" d));
    Alcotest.test_case "description embeds mention" `Quick (fun () ->
        let r = Rng.create 1 in
        let d = Names.description r ~mention:"OTHER1" "SUBJ99" in
        check Alcotest.bool "mention" true
          (Aladin_text.Strdist.contains ~needle:"OTHER1" d));
    Alcotest.test_case "protein_name nonempty" `Quick (fun () ->
        let r = Rng.create 1 in
        check Alcotest.bool "words" true (String.length (Names.protein_name r) > 5));
  ]

let seq_gen_tests =
  [
    Alcotest.test_case "dna alphabet and length" `Quick (fun () ->
        let r = Rng.create 1 in
        let s = Seq_gen.dna r 50 in
        check Alcotest.int "len" 50 (String.length s);
        check Alcotest.bool "alphabet" true
          (Aladin_seq.Alphabet.is_over ~alphabet:Aladin_seq.Alphabet.dna s));
    Alcotest.test_case "protein alphabet" `Quick (fun () ->
        let r = Rng.create 1 in
        check Alcotest.bool "alphabet" true
          (Aladin_seq.Alphabet.is_over ~alphabet:Aladin_seq.Alphabet.protein
             (Seq_gen.protein r 40)));
    Alcotest.test_case "mutate rate zero is identity" `Quick (fun () ->
        let r = Rng.create 1 in
        let s = Seq_gen.dna r 60 in
        check Alcotest.string "same" s (Seq_gen.mutate r ~rate:0.0 s));
    Alcotest.test_case "mutate changes at high rate" `Quick (fun () ->
        let r = Rng.create 1 in
        let s = Seq_gen.dna r 60 in
        check Alcotest.bool "differs" true (Seq_gen.mutate r ~rate:0.5 s <> s));
    Alcotest.test_case "family size and relatedness" `Quick (fun () ->
        let r = Rng.create 1 in
        let fam =
          Seq_gen.family r ~kind:Aladin_seq.Alphabet.Dna ~size:4 ~len:80 ~rate:0.05
        in
        check Alcotest.int "size" 4 (List.length fam);
        match fam with
        | anc :: rest ->
            List.iter
              (fun m ->
                let score = Aladin_seq.Align.local_score anc m in
                check Alcotest.bool "homologous" true (score > 200))
              rest
        | [] -> Alcotest.fail "empty family");
  ]

let universe_tests =
  [
    Alcotest.test_case "counts per kind" `Quick (fun () ->
        let u = Universe.generate Universe.default_params in
        let p = Universe.default_params in
        check Alcotest.int "proteins" p.n_proteins
          (List.length (Universe.of_kind u Universe.Protein));
        check Alcotest.int "genes" p.n_genes
          (List.length (Universe.of_kind u Universe.Gene));
        check Alcotest.int "terms" p.n_terms
          (List.length (Universe.of_kind u Universe.Term));
        check Alcotest.int "total" (Universe.size u) (List.length (Universe.entities u)));
    Alcotest.test_case "related uids valid" `Quick (fun () ->
        let u = Universe.generate Universe.default_params in
        List.iter
          (fun (e : Universe.entity) ->
            List.iter
              (fun uid -> ignore (Universe.entity u uid))
              e.related)
          (Universe.entities u));
    Alcotest.test_case "proteins have sequences and families" `Quick (fun () ->
        let u = Universe.generate Universe.default_params in
        List.iter
          (fun (e : Universe.entity) ->
            check Alcotest.bool "seq" true (e.sequence <> None);
            check Alcotest.bool "family" true (e.family <> None))
          (Universe.of_kind u Universe.Protein));
    Alcotest.test_case "structures reference proteins" `Quick (fun () ->
        let u = Universe.generate Universe.default_params in
        List.iter
          (fun (e : Universe.entity) ->
            match e.related with
            | [ uid ] ->
                check Alcotest.bool "protein" true
                  ((Universe.entity u uid).kind = Universe.Protein)
            | _ -> Alcotest.fail "structure without protein")
          (Universe.of_kind u Universe.Structure));
    Alcotest.test_case "deterministic by seed" `Quick (fun () ->
        let u1 = Universe.generate Universe.default_params in
        let u2 = Universe.generate Universe.default_params in
        check Alcotest.bool "equal" true
          (List.map (fun (e : Universe.entity) -> e.name) (Universe.entities u1)
          = List.map (fun (e : Universe.entity) -> e.name) (Universe.entities u2)));
  ]

let corrupt_tests =
  [
    Alcotest.test_case "typo changes string" `Quick (fun () ->
        let r = Rng.create 1 in
        let s = "abcdefgh" in
        check Alcotest.bool "differs" true (Corrupt.typo r s <> s));
    Alcotest.test_case "short strings unchanged" `Quick (fun () ->
        let r = Rng.create 1 in
        check Alcotest.string "same" "a" (Corrupt.typo r "a"));
    Alcotest.test_case "rate zero identity" `Quick (fun () ->
        let r = Rng.create 1 in
        check Alcotest.string "same" "hello" (Corrupt.value r ~rate:0.0 "hello"));
    Alcotest.test_case "maybe_drop" `Quick (fun () ->
        let r = Rng.create 1 in
        check Alcotest.string "kept" "x" (Corrupt.maybe_drop r ~rate:0.0 "x");
        check Alcotest.string "dropped" "" (Corrupt.maybe_drop r ~rate:1.0 "x"));
  ]

let small_corpus_params =
  {
    Corpus.default_params with
    universe =
      { Universe.default_params with n_proteins = 30; n_genes = 15;
        n_structures = 12; n_diseases = 6; n_terms = 10; n_families = 4 };
  }

let source_gen_tests =
  [
    Alcotest.test_case "catalog shape" `Quick (fun () ->
        let u = Universe.generate Universe.default_params in
        let spec = Source_gen.make_spec ~name:"s" Universe.Protein in
        let assignment = [ ("s", Source_gen.assign_accessions u spec) ] in
        let gold = Gold.create () in
        let cat = Source_gen.build u assignment ~gold spec in
        check Alcotest.bool "entry" true (Catalog.mem cat "entry");
        check Alcotest.bool "sequence_data" true (Catalog.mem cat "sequence_data");
        check Alcotest.bool "comment" true (Catalog.mem cat "comment");
        check Alcotest.bool "keyword" true (Catalog.mem cat "keyword");
        check Alcotest.bool "organism" true (Catalog.mem cat "organism"));
    Alcotest.test_case "accessions unique and patterned" `Quick (fun () ->
        let u = Universe.generate Universe.default_params in
        let spec = Source_gen.make_spec ~name:"s" Universe.Protein in
        let accs = List.map snd (Source_gen.assign_accessions u spec) in
        check Alcotest.int "distinct" (List.length accs)
          (List.length (List.sort_uniq String.compare accs));
        List.iter
          (fun a ->
            check Alcotest.int "len 6" 6 (String.length a);
            check Alcotest.bool "P prefix" true (a.[0] = 'P'))
          accs);
    Alcotest.test_case "gold rows match catalog" `Quick (fun () ->
        let u = Universe.generate Universe.default_params in
        let spec = Source_gen.make_spec ~name:"s" Universe.Protein in
        let assignment = [ ("s", Source_gen.assign_accessions u spec) ] in
        let gold = Gold.create () in
        let cat = Source_gen.build u assignment ~gold spec in
        match Gold.find_source gold "s" with
        | None -> Alcotest.fail "no gold"
        | Some sg ->
            check Alcotest.int "objects = rows"
              (Relation.cardinality (Catalog.find_exn cat "entry"))
              (List.length sg.objects);
            check Alcotest.bool "fks recorded" true (List.length sg.fks >= 4));
    Alcotest.test_case "xrefs written and recorded" `Quick (fun () ->
        let u = Universe.generate Universe.default_params in
        let s1 = Source_gen.make_spec ~name:"s1" Universe.Protein ~seed:11 in
        let s2 =
          Source_gen.make_spec ~name:"s2" Universe.Protein ~seed:22
            ~xref_to:[ "s1" ] ~xref_prob:1.0
        in
        let assignment =
          [ ("s1", Source_gen.assign_accessions u s1);
            ("s2", Source_gen.assign_accessions u s2) ]
        in
        let gold = Gold.create () in
        let _ = Source_gen.build u assignment ~gold s1 in
        let cat2 = Source_gen.build u assignment ~gold s2 in
        let dbx = Catalog.find_exn cat2 "dbxref" in
        check Alcotest.int "rows = gold xrefs" (Relation.cardinality dbx)
          (List.length gold.xrefs);
        check Alcotest.bool "some xrefs" true (gold.xrefs <> []));
    Alcotest.test_case "declare_constraints mode" `Quick (fun () ->
        let u = Universe.generate Universe.default_params in
        let spec =
          Source_gen.make_spec ~name:"s" Universe.Protein
            ~shape:{ Source_gen.default_shape with declare_constraints = true }
        in
        let assignment = [ ("s", Source_gen.assign_accessions u spec) ] in
        let gold = Gold.create () in
        let cat = Source_gen.build u assignment ~gold spec in
        check Alcotest.bool "constraints" true (Catalog.constraints cat <> []));
    Alcotest.test_case "missing assignment raises" `Quick (fun () ->
        let u = Universe.generate Universe.default_params in
        let spec = Source_gen.make_spec ~name:"s" Universe.Protein in
        match Source_gen.build u [] ~gold:(Gold.create ()) spec with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "no error");
  ]

let fk_noise_tests =
  [
    Alcotest.test_case "dangling FKs break referential integrity" `Quick
      (fun () ->
        let u = Universe.generate Universe.default_params in
        let spec =
          Source_gen.make_spec ~name:"s" Universe.Protein ~fk_noise:0.5 ~seed:5
        in
        let assignment = [ ("s", Source_gen.assign_accessions u spec) ] in
        let gold = Gold.create () in
        let cat = Source_gen.build u assignment ~gold spec in
        let comment = Catalog.find_exn cat "comment" in
        let entry_rows = Relation.cardinality (Catalog.find_exn cat "entry") in
        let dangling =
          Relation.fold_rows
            (fun acc row ->
              match row.(1) with
              | Value.Int v when v > entry_rows -> acc + 1
              | _ -> acc)
            0 comment
        in
        check Alcotest.bool "some dangle" true (dangling > 0));
    Alcotest.test_case "zero noise keeps integrity" `Quick (fun () ->
        let u = Universe.generate Universe.default_params in
        let spec = Source_gen.make_spec ~name:"s" Universe.Protein ~seed:5 in
        let assignment = [ ("s", Source_gen.assign_accessions u spec) ] in
        let gold = Gold.create () in
        let cat = Source_gen.build u assignment ~gold spec in
        let comment = Catalog.find_exn cat "comment" in
        let entry_rows = Relation.cardinality (Catalog.find_exn cat "entry") in
        Relation.iter_rows
          (fun row ->
            match row.(1) with
            | Value.Int v ->
                check Alcotest.bool "in range" true (v >= 1 && v <= entry_rows)
            | _ -> Alcotest.fail "non-int fk")
          comment);
    Alcotest.test_case "term source gets isa hierarchy" `Quick (fun () ->
        let u = Universe.generate Universe.default_params in
        let spec =
          Source_gen.make_spec ~name:"go" Universe.Term ~coverage:1.0 ~seed:5
            ~shape:
              { Source_gen.default_shape with primary_name = "term";
                accession_pattern = "GO:00#####"; with_sequence_table = false;
                with_keyword_dictionary = false; with_organism_dictionary = false }
        in
        let assignment = [ ("go", Source_gen.assign_accessions u spec) ] in
        let gold = Gold.create () in
        let cat = Source_gen.build u assignment ~gold spec in
        let isa = Catalog.find_exn cat "term_isa" in
        let terms = Relation.cardinality (Catalog.find_exn cat "term") in
        check Alcotest.int "forest size" (terms - 2) (Relation.cardinality isa));
    Alcotest.test_case "dual primary deterministic" `Quick (fun () ->
        let u = Universe.generate Universe.default_params in
        let c1, _ = Source_gen.build_dual_primary u ~name:"e" in
        let c2, _ = Source_gen.build_dual_primary u ~name:"e" in
        check Alcotest.int "same rows" (Catalog.total_rows c1) (Catalog.total_rows c2));
  ]

let gold_tests =
  [
    Alcotest.test_case "duplicate_pairs cross-source same uid" `Quick (fun () ->
        let g = Gold.create () in
        Gold.add_source g
          { Gold.source = "a"; primary_relation = "p"; accession_attribute = "acc";
            fks = []; objects = [ ("A1", 100); ("A2", 200) ] };
        Gold.add_source g
          { Gold.source = "b"; primary_relation = "p"; accession_attribute = "acc";
            fks = []; objects = [ ("B1", 100); ("B3", 300) ] };
        check Alcotest.(list (pair string string)) "one pair" [ ("a:A1", "b:B1") ]
          (Gold.duplicate_pairs g));
    Alcotest.test_case "entity_of" `Quick (fun () ->
        let g = Gold.create () in
        Gold.add_source g
          { Gold.source = "a"; primary_relation = "p"; accession_attribute = "acc";
            fks = []; objects = [ ("A1", 100) ] };
        check Alcotest.(option int) "uid" (Some 100) (Gold.entity_of g "a:A1");
        check Alcotest.(option int) "missing" None (Gold.entity_of g "a:ZZ"));
  ]

let corpus_tests =
  [
    Alcotest.test_case "default source family" `Quick (fun () ->
        let c = Corpus.generate small_corpus_params in
        let names = Corpus.source_names c in
        List.iter
          (fun n -> check Alcotest.bool n true (List.mem n names))
          [ "go"; "uniprot"; "pir"; "pdb"; "genedb"; "omim" ]);
    Alcotest.test_case "gold covers every source" `Quick (fun () ->
        let c = Corpus.generate small_corpus_params in
        check Alcotest.int "same count"
          (List.length c.catalogs)
          (List.length c.gold.sources));
    Alcotest.test_case "deterministic" `Quick (fun () ->
        let c1 = Corpus.generate small_corpus_params in
        let c2 = Corpus.generate small_corpus_params in
        check Alcotest.int "same xrefs" (List.length c1.gold.xrefs)
          (List.length c2.gold.xrefs));
    Alcotest.test_case "flat file member parses" `Quick (fun () ->
        let c =
          Corpus.generate { small_corpus_params with include_flat_file = true }
        in
        check Alcotest.bool "swissflat" true
          (List.mem "swissflat" (Corpus.source_names c));
        match List.find_opt (fun cat -> Catalog.name cat = "swissflat") c.catalogs with
        | Some cat -> check Alcotest.bool "bioentry" true (Catalog.mem cat "bioentry")
        | None -> Alcotest.fail "missing catalog");
    Alcotest.test_case "duplicates exist between protein sources" `Quick (fun () ->
        let c = Corpus.generate small_corpus_params in
        check Alcotest.bool "gold dups" true (Gold.duplicate_pairs c.gold <> []));
    Alcotest.test_case "family_pairs nonempty" `Quick (fun () ->
        let c = Corpus.generate small_corpus_params in
        check Alcotest.bool "pairs" true (Gold.family_pairs c.universe c.gold <> []));
  ]

let tests =
  [
    ("datagen.rng", rng_tests);
    ("datagen.names", names_tests);
    ("datagen.seq_gen", seq_gen_tests);
    ("datagen.universe", universe_tests);
    ("datagen.corrupt", corrupt_tests);
    ("datagen.source_gen", source_gen_tests);
    ("datagen.fk_noise", fk_noise_tests);
    ("datagen.gold", gold_tests);
    ("datagen.corpus", corpus_tests);
  ]
