open Aladin_seq

let check = Alcotest.check

let alphabet_tests =
  [
    Alcotest.test_case "classify dna" `Quick (fun () ->
        check Alcotest.bool "dna" true
          (Alphabet.classify "ACGTACGTACGT" = Some Alphabet.Dna));
    Alcotest.test_case "classify rna" `Quick (fun () ->
        check Alcotest.bool "rna" true
          (Alphabet.classify "ACGUACGUACGU" = Some Alphabet.Rna));
    Alcotest.test_case "classify protein" `Quick (fun () ->
        check Alcotest.bool "protein" true
          (Alphabet.classify "MKWVTFISLLFL" = Some Alphabet.Protein));
    Alcotest.test_case "short string is not a sequence" `Quick (fun () ->
        check Alcotest.bool "CAT" true (Alphabet.classify "CAT" = None));
    Alcotest.test_case "plain text is not a sequence" `Quick (fun () ->
        check Alcotest.bool "text" true (Alphabet.classify "hello world 123" = None));
    Alcotest.test_case "normalize strips and uppercases" `Quick (fun () ->
        check Alcotest.string "norm" "ACGT" (Alphabet.normalize " ac\ngt "));
    Alcotest.test_case "classify_column majority" `Quick (fun () ->
        let col = [ "ACGTACGTACGTA"; "TTTTAAAACCCCG"; "not a sequence at all!" ] in
        check Alcotest.bool "none at 0.9" true (Alphabet.classify_column col = None);
        check Alcotest.bool "dna at 0.6" true
          (Alphabet.classify_column ~min_frac:0.6 col = Some Alphabet.Dna));
    Alcotest.test_case "classify_column empty" `Quick (fun () ->
        check Alcotest.bool "none" true (Alphabet.classify_column [ ""; " " ] = None));
    Alcotest.test_case "gc_content" `Quick (fun () ->
        check (Alcotest.float 0.001) "half" 0.5 (Alphabet.gc_content "ACGT");
        check (Alcotest.float 0.001) "zero" 0.0 (Alphabet.gc_content ""));
    Alcotest.test_case "reverse_complement" `Quick (fun () ->
        check Alcotest.string "rc" "CGAT" (Alphabet.reverse_complement "ATCG"));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"revcomp involution" ~count:100
         QCheck.(string_gen_of_size (QCheck.Gen.int_range 1 50)
                   (QCheck.Gen.oneofl [ 'A'; 'C'; 'G'; 'T' ]))
         (fun s ->
           Alphabet.reverse_complement (Alphabet.reverse_complement s) = s));
  ]

let subst_tests =
  [
    Alcotest.test_case "nucleotide scores" `Quick (fun () ->
        check Alcotest.int "match" 5 (Subst_matrix.score Subst_matrix.nucleotide 'A' 'a');
        check Alcotest.int "mismatch" (-4)
          (Subst_matrix.score Subst_matrix.nucleotide 'A' 'C'));
    Alcotest.test_case "blosum62 known values" `Quick (fun () ->
        check Alcotest.int "W-W" 11 (Subst_matrix.score Subst_matrix.blosum62 'W' 'W');
        check Alcotest.int "A-A" 4 (Subst_matrix.score Subst_matrix.blosum62 'A' 'A');
        check Alcotest.int "A-R" (-1) (Subst_matrix.score Subst_matrix.blosum62 'A' 'R');
        check Alcotest.int "unknown" (-4) (Subst_matrix.score Subst_matrix.blosum62 'X' 'A'));
    Alcotest.test_case "blosum62 diagonal positive" `Quick (fun () ->
        String.iter
          (fun c ->
            if Subst_matrix.score Subst_matrix.blosum62 c c <= 0 then
              Alcotest.fail (Printf.sprintf "diag %c" c))
          "ACDEFGHIKLMNPQRSTVWY");
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"blosum62 symmetric" ~count:100
         QCheck.(pair (oneofl [ 'A'; 'R'; 'N'; 'D'; 'C'; 'W'; 'Y'; 'V' ])
                   (oneofl [ 'A'; 'R'; 'N'; 'D'; 'C'; 'W'; 'Y'; 'V' ]))
         (fun (a, b) ->
           Subst_matrix.score Subst_matrix.blosum62 a b
           = Subst_matrix.score Subst_matrix.blosum62 b a));
  ]

let align_tests =
  [
    Alcotest.test_case "global identical" `Quick (fun () ->
        let r = Align.global "ACGT" "ACGT" in
        check Alcotest.int "score" 20 r.score;
        check (Alcotest.float 0.001) "identity" 1.0 r.identity);
    Alcotest.test_case "global with gap" `Quick (fun () ->
        let r = Align.global ~gap:(-8) "ACGT" "AGT" in
        check Alcotest.int "score" (15 - 8) r.score;
        check Alcotest.string "q" "ACGT" r.query_aligned;
        check Alcotest.string "s" "A-GT" r.subject_aligned);
    Alcotest.test_case "local finds motif" `Quick (fun () ->
        let r = Align.local "TTTTACGTACGTTTTT" "ACGTACGT" in
        check Alcotest.int "score" 40 r.score;
        check (Alcotest.float 0.001) "identity" 1.0 r.identity);
    Alcotest.test_case "local never negative" `Quick (fun () ->
        let r = Align.local "AAAA" "CCCC" in
        check Alcotest.bool "non-neg" true (r.score >= 0));
    Alcotest.test_case "local span" `Quick (fun () ->
        let r = Align.local "TTACGTTT" "ACG" in
        let qs, qe = r.query_span in
        check Alcotest.int "start" 2 qs;
        check Alcotest.int "end" 5 qe);
    Alcotest.test_case "empty inputs" `Quick (fun () ->
        let r = Align.global "" "" in
        check Alcotest.int "score" 0 r.score;
        check (Alcotest.float 0.001) "identity" 0.0 r.identity);
    Alcotest.test_case "normalized 1.0 identical" `Quick (fun () ->
        let q = "ACGTACGTAC" in
        let r = Align.local q q in
        check (Alcotest.float 0.001) "norm" 1.0
          (Align.normalized_score r ~query:q ~subject:q));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"local_score matches traceback score" ~count:50
         QCheck.(pair
                   (string_gen_of_size (QCheck.Gen.int_range 1 20)
                      (QCheck.Gen.oneofl [ 'A'; 'C'; 'G'; 'T' ]))
                   (string_gen_of_size (QCheck.Gen.int_range 1 20)
                      (QCheck.Gen.oneofl [ 'A'; 'C'; 'G'; 'T' ])))
         (fun (a, b) -> Align.local_score a b = (Align.local a b).score));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"local symmetric score" ~count:50
         QCheck.(pair
                   (string_gen_of_size (QCheck.Gen.int_range 1 15)
                      (QCheck.Gen.oneofl [ 'A'; 'C'; 'G'; 'T' ]))
                   (string_gen_of_size (QCheck.Gen.int_range 1 15)
                      (QCheck.Gen.oneofl [ 'A'; 'C'; 'G'; 'T' ])))
         (fun (a, b) -> Align.local_score a b = Align.local_score b a));
  ]

let kmer_tests =
  [
    Alcotest.test_case "kmers_of" `Quick (fun () ->
        check Alcotest.(list string) "3mers" [ "ACG"; "CGT"; "GTA" ]
          (Kmer_index.kmers_of ~k:3 "ACGTA"));
    Alcotest.test_case "kmers_of short" `Quick (fun () ->
        check Alcotest.(list string) "none" [] (Kmer_index.kmers_of ~k:5 "ACG"));
    Alcotest.test_case "bad k raises" `Quick (fun () ->
        Alcotest.check_raises "k" (Invalid_argument "Kmer_index.create: k must be >= 1")
          (fun () -> ignore (Kmer_index.create ~k:0)));
    Alcotest.test_case "candidates ranked" `Quick (fun () ->
        let idx = Kmer_index.create ~k:3 in
        Kmer_index.add idx ~id:"close" "ACGTACGT";
        Kmer_index.add idx ~id:"far" "TTTTTTTT";
        (match Kmer_index.candidates idx "ACGTACGT" with
        | (best, _) :: _ -> check Alcotest.string "best" "close" best
        | [] -> Alcotest.fail "no candidates"));
    Alcotest.test_case "min_hits filters" `Quick (fun () ->
        let idx = Kmer_index.create ~k:3 in
        Kmer_index.add idx ~id:"one" "ACGTTTTT";
        check Alcotest.int "filtered" 0
          (List.length (Kmer_index.candidates idx ~min_hits:5 "ACGAAAAA")));
    Alcotest.test_case "sequence lookup" `Quick (fun () ->
        let idx = Kmer_index.create ~k:3 in
        Kmer_index.add idx ~id:"x" "acgt";
        check Alcotest.(option string) "normalized" (Some "ACGT")
          (Kmer_index.sequence idx "x");
        check Alcotest.int "size" 1 (Kmer_index.size idx));
  ]

let homology_tests =
  [
    Alcotest.test_case "finds mutated homolog" `Quick (fun () ->
        let t = Homology.create Alphabet.Dna in
        let base = "ACGTACGGTACCATGGCATCGATCGGCTAGCTAGGCT" in
        let mutated = "ACGTACGGTACCATGGCTTCGATCGGCTAGCTAGGCT" in
        Homology.add t ~id:"a" base;
        Homology.add t ~id:"b" mutated;
        Homology.add t ~id:"c" "TTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTT";
        (match Homology.search t ~query_id:"a" base ~min_normalized:0.5 with
        | [ hit ] ->
            check Alcotest.string "subject" "b" hit.subject_id;
            check Alcotest.bool "norm" true (hit.normalized > 0.8)
        | hits -> Alcotest.fail (Printf.sprintf "%d hits" (List.length hits))));
    Alcotest.test_case "self excluded" `Quick (fun () ->
        let t = Homology.create Alphabet.Dna in
        Homology.add t ~id:"a" "ACGTACGTACGTACGTACGT";
        check Alcotest.int "no hits" 0
          (List.length
             (Homology.search t ~query_id:"a" "ACGTACGTACGTACGTACGT"
                ~min_normalized:0.1)));
    Alcotest.test_case "all_pairs canonical" `Quick (fun () ->
        let t = Homology.create Alphabet.Dna in
        let s = "ACGGATTACAGGCATCGATCG" in
        Homology.add t ~id:"a" s;
        Homology.add t ~id:"b" s;
        (match Homology.all_pairs t ~min_normalized:0.9 with
        | [ hit ] ->
            check Alcotest.string "q" "a" hit.query_id;
            check Alcotest.string "s" "b" hit.subject_id
        | hits -> Alcotest.fail (Printf.sprintf "%d pairs" (List.length hits))));
    Alcotest.test_case "threshold excludes weak" `Quick (fun () ->
        let t = Homology.create Alphabet.Dna in
        Homology.add t ~id:"a" "ACGTAACCGGTTACGTACGTA";
        Homology.add t ~id:"b" "ACGTATTTTTTTTTTTTTTTT";
        let weak = Homology.search t ~query_id:"a" "ACGTAACCGGTTACGTACGTA" ~min_normalized:0.9 in
        check Alcotest.int "no strong hit" 0 (List.length weak));
    Alcotest.test_case "protein homology" `Quick (fun () ->
        let t = Homology.create Alphabet.Protein in
        let s = "MKWVTFISLLFLFSSAYSRGVFRRDAH" in
        Homology.add t ~id:"p1" s;
        Homology.add t ~id:"p2" (s ^ "KSEVAH");
        check Alcotest.bool "found" true
          (Homology.search t ~query_id:"p1" s ~min_normalized:0.5 <> []));
  ]

let tests =
  [
    ("seq.alphabet", alphabet_tests);
    ("seq.subst_matrix", subst_tests);
    ("seq.align", align_tests);
    ("seq.kmer_index", kmer_tests);
    ("seq.homology", homology_tests);
  ]
