test/t_metadata.ml: Aladin_discovery Aladin_links Aladin_metadata Alcotest Link List Objref Printf QCheck QCheck_alcotest Repository Serial Source_profile String T_discovery Xref_disc
