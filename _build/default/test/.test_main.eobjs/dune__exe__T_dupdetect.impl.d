test/t_dupdetect.ml: Aladin_dup Aladin_links Aladin_text Alcotest Array Conflict Dup_detect Field_sim Link List Object_sim Objref Printf QCheck QCheck_alcotest String Union_find
