test/t_seq.ml: Aladin_seq Alcotest Align Alphabet Homology Kmer_index List Printf QCheck QCheck_alcotest String Subst_matrix
