test/test_main.ml: Alcotest T_access T_core T_datagen T_discovery T_dupdetect T_eval T_formats T_fuzz T_linkdisc T_metadata T_relational T_seq T_textmine
