test/t_relational.ml: Aladin_relational Alcotest Array Catalog Col_stats Constraint_def Csv Int List Printf QCheck QCheck_alcotest Relation Schema String Table_ops Value Vec Vset
