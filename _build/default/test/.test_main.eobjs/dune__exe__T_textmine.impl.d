test/t_textmine.ml: Aladin_text Alcotest Entity_recog Inverted_index List Printf QCheck QCheck_alcotest Strdist Tfidf Tokenize
