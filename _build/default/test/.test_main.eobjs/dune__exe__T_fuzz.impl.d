test/t_fuzz.ml: Aladin Aladin_access Aladin_formats Aladin_metadata Aladin_relational Dump Fasta Genbank Import List Obo Pdb_flat QCheck QCheck_alcotest Sql_lexer Sql_parser String Swissprot Xml
