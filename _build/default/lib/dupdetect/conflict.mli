(** Data conflicts between flagged duplicates (§4.5).

    "Different sources might contradict each other in the data they store
    about an object. [...] Exploring such contradictions is of great
    interest to biologists." A conflict is a matched field pair whose
    values disagree beyond noise. *)

open Aladin_links

type t = {
  obj_a : Objref.t;
  obj_b : Objref.t;
  attr_a : string;
  attr_b : string;
  value_a : string;
  value_b : string;
  similarity : float;  (** field-value similarity — low but fields matched *)
}

type params = {
  min_name_affinity : float;
      (** fields only conflict when the attribute names correspond
          (default 0.3) *)
  max_value_similarity : float;  (** values more similar than this agree
                                     (default 0.8) *)
}

val default_params : params

val between : ?params:params -> Object_sim.repr -> Object_sim.repr -> t list

val in_duplicates :
  ?params:params -> Object_sim.repr list -> Link.t list -> t list
(** Conflicts inside every [Duplicate] link's pair. *)

val pp : Format.formatter -> t -> unit
