(** Field-level similarity for duplicate detection (§4.5).

    "Literature defines several domain-independent similarity measures
    usually based on edit distance" — the metric is picked by the shape of
    the values: identifiers use edit-based similarity, long text uses token
    overlap, sequences use a cheap identity proxy. *)

type metric = Exact | Edit | Token | Sequence_metric

val choose_metric : string -> string -> metric
(** From the values' shape (length, alphabet). *)

val similarity : string -> string -> float
(** In [0,1], by the chosen metric. Case-insensitive. Empty vs non-empty
    is 0; empty vs empty is 1. *)

val is_sequence_value : string -> bool
(** The cheap sequence tell used by {!choose_metric}: long, letters-only,
    low character diversity. *)

val name_affinity : string -> string -> float
(** Attribute-name compatibility used to decide which fields of two
    heterogeneously-modeled objects to compare (cf. [WN04]): token overlap
    of the names, in [0,1]. *)
