open Aladin_relational
open Aladin_discovery
open Aladin_links

type repr = {
  obj : Objref.t;
  fields : (string * string) list;
}

(* an attribute is bag-worthy when it carries content rather than keys:
   not an FK endpoint shape (pure integers), not null-only *)
let content_attribute (cs : Col_stats.t) = cs.distinct > 0 && cs.numeric_frac < 0.99

let build_reprs ?(max_fields_per_object = 40) ?(exclude_attributes = []) profiles =
  let norm = String.lowercase_ascii in
  let excluded =
    List.map (fun (s, r, a) -> (norm s, norm r, norm a)) exclude_attributes
  in
  let bags : (string, (string * string) list ref) Hashtbl.t = Hashtbl.create 256 in
  let refs : (string, Objref.t) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (e : Profile_list.entry) ->
      let catalog = Profile.catalog e.sp.profile in
      let source = norm (Source_profile.source e.sp) in
      Profile.all_stats e.sp.profile
      |> List.iter (fun (cs : Col_stats.t) ->
             let keep =
               content_attribute cs
               && not
                    (List.mem (source, norm cs.relation, norm cs.attribute)
                       excluded)
             in
             if keep then begin
               let rel = Catalog.find_exn catalog cs.relation in
               let ai = Schema.index_of_exn (Relation.schema rel) cs.attribute in
               let qualified = cs.relation ^ "." ^ cs.attribute in
               Relation.iteri_rows
                 (fun row_i row ->
                   let v = row.(ai) in
                   if not (Value.is_null v) then
                     List.iter
                       (fun obj ->
                         let key = Objref.to_string obj in
                         let bag =
                           match Hashtbl.find_opt bags key with
                           | Some b -> b
                           | None ->
                               let b = ref [] in
                               Hashtbl.add bags key b;
                               Hashtbl.replace refs key obj;
                               b
                         in
                         if List.length !bag < max_fields_per_object then
                           bag := (qualified, Value.to_string v) :: !bag)
                       (Owner_map.object_of_row e.owner ~relation:cs.relation
                          ~row:row_i))
                 rel
             end))
    (Profile_list.entries profiles);
  Hashtbl.fold
    (fun key bag acc -> { obj = Hashtbl.find refs key; fields = List.rev !bag } :: acc)
    bags []
  |> List.sort (fun a b -> Objref.compare a.obj b.obj)

type weights = { w_value : float; w_name : float }

let default_weights = { w_value = 0.8; w_name = 0.2 }

type context = { df : (string, int) Hashtbl.t; n_objects : int }

let context_of reprs =
  let df = Hashtbl.create 1024 in
  List.iter
    (fun r ->
      let seen = Hashtbl.create 16 in
      List.iter
        (fun (_, v) ->
          let v = String.lowercase_ascii v in
          if not (Hashtbl.mem seen v) then begin
            Hashtbl.add seen v ();
            Hashtbl.replace df v (1 + try Hashtbl.find df v with Not_found -> 0)
          end)
        r.fields)
    reprs;
  { df; n_objects = List.length reprs }

let df_of ctx v =
  try Hashtbl.find ctx.df (String.lowercase_ascii v) with Not_found -> 1

(* IDF of the rarer of the two matched values *)
let idf_weight context va vb =
  match context with
  | None -> 1.0
  | Some ctx ->
      let d = min (df_of ctx va) (df_of ctx vb) in
      log (1.0 +. (float_of_int (max 1 ctx.n_objects) /. float_of_int d))

(* a value is "identifying" when only a handful of objects carry it *)
let identity_df_cap ctx = max 8 (ctx.n_objects / 50)

(* anchors must be rare AND distinctive: identifier-shaped (contains a
   digit, like accessions and gene symbols) or substantial text — never a
   short categorical token that happens to have low frequency, never a
   sequence *)
let anchor_match ctx ~name_sim ~vs va vb =
  vs >= 0.85 && name_sim > 0.0
  && min (df_of ctx va) (df_of ctx vb) <= identity_df_cap ctx
  && String.length va >= 4
  && (String.exists (fun c -> c >= '0' && c <= '9') va || String.length va >= 25)
  && (not (Field_sim.is_sequence_value va))
  && not (Field_sim.is_sequence_value vb)

let field_matches a b =
  let smaller, larger =
    if List.length a.fields <= List.length b.fields then (a, b) else (b, a)
  in
  let swapped = smaller != a in
  List.filter_map
    (fun (attr_s, val_s) ->
      let best =
        List.fold_left
          (fun acc (attr_l, val_l) ->
            let vs = Field_sim.similarity val_s val_l in
            match acc with
            | Some (_, _, best_vs) when best_vs >= vs -> acc
            | Some _ | None -> Some (attr_l, val_l, vs))
          None larger.fields
      in
      Option.map
        (fun (attr_l, val_l, vs) ->
          if swapped then (attr_l, val_l, attr_s, val_s, vs)
          else (attr_s, val_s, attr_l, val_l, vs))
        best)
    smaller.fields

let similarity ?(weights = default_weights) ?context a b =
  if a.fields = [] || b.fields = [] then 0.0
  else begin
    let matches = field_matches a b in
    (* Fellegi-Sunter flavour: agreement on a rare value is strong evidence,
       disagreement is weak evidence either way; and a true duplicate must
       agree on at least one identifying (near-unique) value *)
    let identity_agreement = ref false in
    let total, wsum =
      List.fold_left
        (fun (total, wsum) (attr_a, va, attr_b, vb, vs) ->
          let name_sim = Field_sim.name_affinity attr_a attr_b in
          let s = (weights.w_value *. vs) +. (weights.w_name *. name_sim) in
          (* a greedy value match between unrelated attributes (an accession
             landing on "bait") must not be amplified as evidence *)
          let w =
            if vs >= 0.6 && name_sim > 0.0 then idf_weight context va vb
            else 1.0
          in
          (match context with
          | Some ctx when anchor_match ctx ~name_sim ~vs va vb ->
              identity_agreement := true
          | Some _ | None -> ());
          (total +. (w *. s), wsum +. w))
        (0.0, 0.0) matches
    in
    if wsum = 0.0 then 0.0
    else begin
      let base = total /. wsum /. (weights.w_value +. weights.w_name) in
      match context with
      | Some _ when not !identity_agreement -> base *. 0.5
      | Some _ | None -> base
    end
  end

let explain ?(weights = default_weights) ?context a b =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "%s vs %s\n" (Objref.to_string a.obj) (Objref.to_string b.obj);
  List.iter
    (fun (attr_a, va, attr_b, vb, vs) ->
      let name_sim = Field_sim.name_affinity attr_a attr_b in
      let w =
        if vs >= 0.6 && name_sim > 0.0 then idf_weight context va vb else 1.0
      in
      let anchor =
        match context with
        | Some ctx -> anchor_match ctx ~name_sim ~vs va vb
        | None -> false
      in
      let df_str =
        match context with
        | Some ctx -> string_of_int (min (df_of ctx va) (df_of ctx vb))
        | None -> "-"
      in
      let clip s = if String.length s > 30 then String.sub s 0 27 ^ "..." else s in
      add "  vs=%.2f name=%.2f w=%.2f df=%s%s  %s=%S ~ %s=%S\n" vs name_sim w
        df_str
        (if anchor then " ANCHOR" else "")
        attr_a (clip va) attr_b (clip vb))
    (field_matches a b);
  add "similarity = %.3f\n" (similarity ~weights ?context a b);
  Buffer.contents buf
