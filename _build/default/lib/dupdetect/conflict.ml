open Aladin_links

type t = {
  obj_a : Objref.t;
  obj_b : Objref.t;
  attr_a : string;
  attr_b : string;
  value_a : string;
  value_b : string;
  similarity : float;
}

type params = {
  min_name_affinity : float;
  max_value_similarity : float;
}

let default_params = { min_name_affinity = 0.3; max_value_similarity = 0.8 }

let between ?(params = default_params) (a : Object_sim.repr) (b : Object_sim.repr) =
  (* pair up fields by attribute-name affinity, then flag disagreeing values *)
  List.concat_map
    (fun (attr_a, value_a) ->
      List.filter_map
        (fun (attr_b, value_b) ->
          let name_sim = Field_sim.name_affinity attr_a attr_b in
          if name_sim < params.min_name_affinity then None
          else
            let vs = Field_sim.similarity value_a value_b in
            if vs >= params.max_value_similarity then None
            else
              Some
                { obj_a = a.obj; obj_b = b.obj; attr_a; attr_b; value_a;
                  value_b; similarity = vs })
        b.fields)
    a.fields

let in_duplicates ?params reprs links =
  let repr_of : (string, Object_sim.repr) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (r : Object_sim.repr) ->
      Hashtbl.replace repr_of (Objref.to_string r.obj) r)
    reprs;
  List.concat_map
    (fun (l : Link.t) ->
      if l.kind <> Link.Duplicate then []
      else
        match
          ( Hashtbl.find_opt repr_of (Objref.to_string l.src),
            Hashtbl.find_opt repr_of (Objref.to_string l.dst) )
        with
        | Some a, Some b -> between ?params a b
        | (Some _ | None), _ -> [])
    links

let pp ppf c =
  Format.fprintf ppf "%a.%s=%S vs %a.%s=%S (sim %.2f)" Objref.pp c.obj_a
    c.attr_a c.value_a Objref.pp c.obj_b c.attr_b c.value_b c.similarity
