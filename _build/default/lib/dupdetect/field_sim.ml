module Tx = Aladin_text

type metric = Exact | Edit | Token | Sequence_metric

let is_sequence s =
  String.length s >= 30
  && String.for_all
       (fun c ->
         let c = Char.uppercase_ascii c in
         (c >= 'A' && c <= 'Z') || c = ' ' || c = '\n')
       s
  &&
  (* low character diversity is the cheap tell of a sequence *)
  let seen = Hashtbl.create 8 in
  String.iter
    (fun c ->
      let c = Char.uppercase_ascii c in
      if c <> ' ' && c <> '\n' then Hashtbl.replace seen c ())
    s;
  Hashtbl.length seen <= 21

let is_sequence_value = is_sequence

let choose_metric a b =
  if a = b then Exact
  else if is_sequence a && is_sequence b then Sequence_metric
  else if String.length a >= 25 || String.length b >= 25 then Token
  else Edit

let similarity a b =
  let a = String.trim a and b = String.trim b in
  if a = "" && b = "" then 1.0
  else if a = "" || b = "" then 0.0
  else
    let la = String.lowercase_ascii a and lb = String.lowercase_ascii b in
    match choose_metric la lb with
    | Exact -> 1.0
    | Edit -> Tx.Strdist.jaro_winkler la lb
    | Token -> Tx.Tokenize.jaccard la lb
    | Sequence_metric -> Tx.Strdist.dice_bigrams la lb

let name_affinity a b =
  let tokens s =
    String.split_on_char '_' (String.lowercase_ascii s)
    |> List.concat_map (String.split_on_char '.')
    |> List.filter (fun t -> t <> "" && t <> "id")
  in
  let ta = tokens a and tb = tokens b in
  if ta = [] || tb = [] then 0.0
  else begin
    let inter = List.filter (fun t -> List.mem t tb) ta in
    let union = List.length ta + List.length tb - List.length inter in
    if union = 0 then 0.0
    else float_of_int (List.length inter) /. float_of_int union
  end
