lib/dupdetect/union_find.mli:
