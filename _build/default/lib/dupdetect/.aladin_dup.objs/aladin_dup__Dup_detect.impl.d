lib/dupdetect/dup_detect.ml: Aladin_links Aladin_text Hashtbl Link List Object_sim Objref Printf String Union_find
