lib/dupdetect/union_find.ml: Hashtbl List String
