lib/dupdetect/conflict.mli: Aladin_links Format Link Object_sim Objref
