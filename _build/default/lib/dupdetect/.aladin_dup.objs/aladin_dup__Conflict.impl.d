lib/dupdetect/conflict.ml: Aladin_links Field_sim Format Hashtbl Link List Object_sim Objref
