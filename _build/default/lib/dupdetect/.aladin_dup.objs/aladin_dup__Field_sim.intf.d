lib/dupdetect/field_sim.mli:
