lib/dupdetect/object_sim.mli: Aladin_links Objref Profile_list
