lib/dupdetect/field_sim.ml: Aladin_text Char Hashtbl List String
