lib/dupdetect/dup_detect.mli: Aladin_links Link Object_sim Profile_list
