type t = {
  parent : (string, string) Hashtbl.t;
  rank : (string, int) Hashtbl.t;
}

let create () = { parent = Hashtbl.create 64; rank = Hashtbl.create 64 }

let add t x =
  if not (Hashtbl.mem t.parent x) then begin
    Hashtbl.add t.parent x x;
    Hashtbl.add t.rank x 0
  end

let rec find t x =
  add t x;
  let p = Hashtbl.find t.parent x in
  if p = x then x
  else begin
    let root = find t p in
    Hashtbl.replace t.parent x root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then begin
    let ka = Hashtbl.find t.rank ra and kb = Hashtbl.find t.rank rb in
    if ka < kb then Hashtbl.replace t.parent ra rb
    else if ka > kb then Hashtbl.replace t.parent rb ra
    else begin
      Hashtbl.replace t.parent rb ra;
      Hashtbl.replace t.rank ra (ka + 1)
    end
  end

let connected t a b = find t a = find t b

let clusters t =
  let members : (string, string list ref) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun x _ ->
      let root = find t x in
      match Hashtbl.find_opt members root with
      | Some l -> l := x :: !l
      | None -> Hashtbl.add members root (ref [ x ]))
    t.parent;
  Hashtbl.fold
    (fun _ l acc ->
      if List.length !l >= 2 then List.sort String.compare !l :: acc else acc)
    members []
  |> List.sort (fun a b ->
         match (a, b) with
         | x :: _, y :: _ -> String.compare x y
         | [], _ -> -1
         | _, [] -> 1)
