(** Union-find over strings (duplicate clustering). Path compression +
    union by rank. *)

type t

val create : unit -> t

val add : t -> string -> unit
(** Idempotent. *)

val find : t -> string -> string
(** Representative; unknown elements are added first. *)

val union : t -> string -> string -> unit

val connected : t -> string -> string -> bool

val clusters : t -> string list list
(** Only clusters with >= 2 members; members sorted, clusters sorted by
    first member. *)
