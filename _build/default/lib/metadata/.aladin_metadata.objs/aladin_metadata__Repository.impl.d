lib/metadata/repository.ml: Aladin_discovery Aladin_links Aladin_relational Buffer Catalog Col_stats Inclusion Link List Objref Printf Profile Relation Serial Source_profile String Value Xref_disc
