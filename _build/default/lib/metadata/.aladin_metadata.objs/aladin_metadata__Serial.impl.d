lib/metadata/serial.ml: Buffer List Printf String
