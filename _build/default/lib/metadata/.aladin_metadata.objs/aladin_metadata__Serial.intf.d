lib/metadata/serial.mli:
