lib/metadata/repository.mli: Aladin_discovery Aladin_links Aladin_relational Col_stats Inclusion Link Objref Source_profile Xref_disc
