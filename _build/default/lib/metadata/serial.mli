(** Line-oriented serialization for the metadata repository.

    Records are tab-separated fields, one per line, with backslash escaping
    for tab/newline/backslash. *)

val escape : string -> string

val unescape : string -> string

val record : string list -> string
(** Fields -> one line (no trailing newline). *)

val fields : string -> string list
(** Inverse of {!record}. *)

val float_to_string : float -> string
(** Round-trippable float rendering. *)

val float_of_string_exn : string -> float
(** @raise Invalid_argument *)

val int_of_string_exn : string -> int
(** @raise Invalid_argument *)
