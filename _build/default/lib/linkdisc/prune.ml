open Aladin_relational
open Aladin_discovery

type params = {
  min_distinct : int;
  exclude_numeric : bool;
  min_avg_len : float;
  enabled : bool;
}

let default_params =
  { min_distinct = 3; exclude_numeric = true; min_avg_len = 3.0; enabled = true }

let no_pruning =
  { min_distinct = 0; exclude_numeric = false; min_avg_len = 0.0; enabled = false }

let is_link_source params (cs : Col_stats.t) =
  if not params.enabled then cs.distinct > 0
  else
    cs.distinct >= params.min_distinct
    && cs.avg_len >= params.min_avg_len
    && ((not params.exclude_numeric) || cs.numeric_frac < 0.99)

let is_text_field (cs : Col_stats.t) =
  cs.avg_len >= 30.0 && cs.alpha_frac >= 0.9 && cs.distinct > 0

let link_source_attributes params profiles =
  Profile_list.entries profiles
  |> List.concat_map (fun (e : Profile_list.entry) ->
         let source = Source_profile.source e.sp in
         Profile.all_stats e.sp.profile
         |> List.filter (is_link_source params)
         |> List.map (fun cs -> (source, cs)))

let pairs_to_compare params profiles =
  let targets = Profile_list.targets profiles in
  link_source_attributes params profiles
  |> List.fold_left
       (fun acc (source, _) ->
         (* every candidate attribute is compared against the accession
            attribute of every OTHER source's primary relation *)
         acc + List.length (List.filter (fun (s, _, _) -> s <> source) targets))
       0
