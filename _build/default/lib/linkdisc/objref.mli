(** Global references to primary objects: (source, relation, accession).

    Accession numbers are "public, globally unique, and stable identifiers"
    (§4.4), so a primary object is addressed by its source plus accession. *)

type t = { source : string; relation : string; accession : string }

val make : source:string -> relation:string -> accession:string -> t

val compare : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int

val to_string : t -> string
(** ["source:accession"]. *)

val pp : Format.formatter -> t -> unit
