type t = { source : string; relation : string; accession : string }

let make ~source ~relation ~accession = { source; relation; accession }

let compare a b =
  match String.compare a.source b.source with
  | 0 -> (
      match String.compare a.relation b.relation with
      | 0 -> String.compare a.accession b.accession
      | c -> c)
  | c -> c

let equal a b = compare a b = 0

let hash t = Hashtbl.hash (t.source, t.relation, t.accession)

let to_string t = Printf.sprintf "%s:%s" t.source t.accession

let pp ppf t = Format.pp_print_string ppf (to_string t)
