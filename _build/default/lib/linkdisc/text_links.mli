(** Implicit links from text similarity and from entity mentions (§4.4).

    Every primary object gets a document assembled from the text fields of
    the rows it owns; TF-IDF cosine above a threshold links two objects.
    Additionally, gene/protein-style names recognized inside text fields
    are matched against the name-like unique attributes of other sources'
    primary relations ([Entity_mention] links). *)

type params = {
  min_cosine : float;  (** default 0.5 *)
  cross_source_only : bool;  (** default true *)
  mention_min_score : float;  (** entity-recognition threshold (default 1.0
                                  = dictionary matches only) *)
}

val default_params : params

type result = {
  links : Link.t list;
  documents : int;
  mention_links : int;
}

val object_documents : Profile_list.t -> (Objref.t * string) list
(** The assembled per-object documents (exposed for search indexing and
    tests). Sequence-shaped fields are excluded. *)

val discover : ?params:params -> Profile_list.t -> result
