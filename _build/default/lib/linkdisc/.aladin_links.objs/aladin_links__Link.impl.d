lib/linkdisc/link.ml: Format Hashtbl Int List Objref
