lib/linkdisc/prune.ml: Aladin_discovery Aladin_relational Col_stats List Profile Profile_list Source_profile
