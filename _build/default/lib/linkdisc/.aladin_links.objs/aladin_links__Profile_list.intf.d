lib/linkdisc/profile_list.mli: Aladin_discovery Owner_map Source_profile
