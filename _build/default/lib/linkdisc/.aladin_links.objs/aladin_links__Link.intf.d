lib/linkdisc/link.mli: Format Objref
