lib/linkdisc/owner_map.mli: Aladin_discovery Objref Source_profile
