lib/linkdisc/profile_list.ml: Aladin_discovery List Option Owner_map Source_profile
