lib/linkdisc/objref.ml: Format Hashtbl Printf String
