lib/linkdisc/xref_disc.ml: Aladin_discovery Aladin_relational Array Catalog Col_stats Hashtbl Link List Objref Owner_map Printf Profile Profile_list Prune Relation Schema Source_profile String Value
