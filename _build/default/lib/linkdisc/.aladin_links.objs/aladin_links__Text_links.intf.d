lib/linkdisc/text_links.mli: Link Objref Profile_list
