lib/linkdisc/linker.mli: Link Onto_links Profile_list Seq_links Text_links Xref_disc
