lib/linkdisc/xref_disc.mli: Link Profile_list Prune
