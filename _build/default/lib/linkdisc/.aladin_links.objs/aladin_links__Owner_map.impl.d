lib/linkdisc/owner_map.ml: Aladin_discovery Aladin_relational Array Catalog Fk_graph Hashtbl List Objref Profile Relation Schema Secondary Source_profile String Value
