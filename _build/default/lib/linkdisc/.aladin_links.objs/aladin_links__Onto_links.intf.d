lib/linkdisc/onto_links.mli: Link Objref Profile_list
