lib/linkdisc/prune.mli: Aladin_relational Col_stats Profile_list
