lib/linkdisc/linker.ml: Link List Onto_links Seq_links Text_links Xref_disc
