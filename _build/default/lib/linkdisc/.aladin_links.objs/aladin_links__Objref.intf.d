lib/linkdisc/objref.mli: Format
