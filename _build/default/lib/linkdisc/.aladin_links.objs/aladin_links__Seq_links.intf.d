lib/linkdisc/seq_links.mli: Aladin_seq Link Profile_list
