(** Shared-term links (§4.4, third kind): "the resulting values make
    excellent links, connecting proteins with similar function [...],
    provided that the ontologies are themselves integrated as data
    sources."

    When two objects from different sources both cross-reference the same
    third object (typically an ontology term), they get a [Shared_term]
    link carrying the term as evidence. *)

type params = {
  max_fanout : int;
      (** skip hub targets referenced by more objects than this — linking
          all pairs under a giant term is noise (default 25) *)
  min_shared : int;  (** shared targets required per pair (default 1) *)
  parent_depth : int;
      (** how many is_a levels to climb when a term hierarchy is available:
          objects annotated with two siblings of one parent term still share
          that parent (default 2) *)
}

val default_params : params

type result = {
  links : Link.t list;
  hub_targets_skipped : int;
}

val discover :
  ?params:params ->
  ?parents:(Objref.t -> Objref.t list) ->
  xrefs:Link.t list ->
  unit ->
  result
(** Derives shared-term links from already-discovered [Xref] links.
    [parents] gives a term's direct is_a parents; when present, an xref to
    a term also counts (with decayed confidence) as a reference to its
    ancestors up to [parent_depth]. *)

val parents_from_profiles : Profile_list.t -> Objref.t -> Objref.t list
(** Build a parents function from discovered structure: any relation with
    two foreign keys into the same source's primary relation and a
    parent-ish second attribute name ("parent", "isa", "super", "broader")
    is treated as a hierarchy table (the OBO [term_isa] shape). *)
