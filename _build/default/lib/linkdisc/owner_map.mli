(** Mapping rows of any relation to the primary objects that own them.

    Link and duplicate discovery operate on primary objects, but the
    evidence (a cross-reference value, a sequence, a description) often
    lives in a secondary relation. The owner map follows the discovered
    secondary paths (§4.3) back to the primary relation, so every row can
    be attributed to its accession-numbered object. *)

open Aladin_discovery

type t

val build : Source_profile.t -> t
(** Requires a discovered primary relation; otherwise the map is empty. *)

val source : t -> string

val primary_relation : t -> string option

val owners : t -> relation:string -> row:int -> string list
(** Accessions of the primary objects owning this row. The primary
    relation's own rows map to their own accession. Unreachable rows (or an
    unknown relation) yield []. *)

val objref : t -> accession:string -> Objref.t option
(** The {!Objref.t} for a primary accession of this source. *)

val primary_accessions : t -> string list
(** All accessions of the primary relation, in row order. *)

val object_of_row : t -> relation:string -> row:int -> Objref.t list
(** [owners] composed with [objref]. *)
