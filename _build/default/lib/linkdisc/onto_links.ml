open Aladin_relational
open Aladin_discovery

type params = {
  max_fanout : int;
  min_shared : int;
  parent_depth : int;
}

let default_params = { max_fanout = 25; min_shared = 1; parent_depth = 2 }

type result = {
  links : Link.t list;
  hub_targets_skipped : int;
}

module Otbl = Hashtbl.Make (struct
  type t = Objref.t

  let equal = Objref.equal
  let hash = Objref.hash
end)

let parentish attr =
  let a = String.lowercase_ascii attr in
  List.exists
    (fun needle -> Aladin_text.Strdist.contains ~needle a)
    [ "parent"; "isa"; "is_a"; "super"; "broader" ]

(* hierarchy tables: two FKs from one relation into the primary relation of
   the same source, the second with a parent-ish name *)
let parents_from_profiles profiles =
  let table : Objref.t list Otbl.t = Otbl.create 64 in
  List.iter
    (fun (e : Profile_list.entry) ->
      match Source_profile.primary_accession e.sp with
      | None -> ()
      | Some (prel, pacc) ->
          let norm = String.lowercase_ascii in
          let catalog = Profile.catalog e.sp.profile in
          let source = Source_profile.source e.sp in
          (* group this source's FKs into primary by source relation *)
          let into_primary =
            List.filter
              (fun (fk : Inclusion.fk) ->
                norm fk.dst_relation = norm prel
                && norm fk.src_relation <> norm prel)
              e.sp.fks
          in
          let by_rel = Hashtbl.create 8 in
          List.iter
            (fun (fk : Inclusion.fk) ->
              let k = norm fk.src_relation in
              Hashtbl.replace by_rel k
                (fk :: (try Hashtbl.find by_rel k with Not_found -> [])))
            into_primary;
          Hashtbl.iter
            (fun _ fks ->
              match fks with
              | [ a; b ] -> (
                  let child_fk, parent_fk =
                    if parentish a.Inclusion.src_attribute then (b, a)
                    else if parentish b.Inclusion.src_attribute then (a, b)
                    else (a, a)
                  in
                  if child_fk != parent_fk then
                    match Catalog.find catalog child_fk.src_relation with
                    | None -> ()
                    | Some rel ->
                        (* pk value -> accession of the primary relation *)
                        let primary = Catalog.find_exn catalog prel in
                        let pk_attr = child_fk.dst_attribute in
                        let pk_i =
                          Schema.index_of_exn (Relation.schema primary) pk_attr
                        in
                        let acc_i =
                          Schema.index_of_exn (Relation.schema primary) pacc
                        in
                        let acc_of = Hashtbl.create 64 in
                        Relation.iter_rows
                          (fun row ->
                            Hashtbl.replace acc_of
                              (Value.to_string row.(pk_i))
                              (Value.to_string row.(acc_i)))
                          primary;
                        let ci =
                          Schema.index_of_exn (Relation.schema rel)
                            child_fk.src_attribute
                        in
                        let pi =
                          Schema.index_of_exn (Relation.schema rel)
                            parent_fk.src_attribute
                        in
                        Relation.iter_rows
                          (fun row ->
                            match
                              ( Hashtbl.find_opt acc_of (Value.to_string row.(ci)),
                                Hashtbl.find_opt acc_of (Value.to_string row.(pi)) )
                            with
                            | Some child_acc, Some parent_acc
                              when child_acc <> parent_acc ->
                                let child =
                                  Objref.make ~source ~relation:prel
                                    ~accession:child_acc
                                in
                                let parent =
                                  Objref.make ~source ~relation:prel
                                    ~accession:parent_acc
                                in
                                Otbl.replace table child
                                  (parent
                                  :: (try Otbl.find table child
                                      with Not_found -> []))
                            | _ -> ())
                          rel)
              | _ :: _ | [] -> ())
            by_rel)
    (Profile_list.entries profiles);
  fun obj -> try Otbl.find table obj with Not_found -> []

let discover ?(params = default_params) ?parents ~xrefs () =
  (* group xref links by target; with a hierarchy, an xref also vouches for
     the target's ancestors at decayed confidence *)
  let by_target : Link.t list Otbl.t = Otbl.create 256 in
  let record target l =
    Otbl.replace by_target target
      (l :: (try Otbl.find by_target target with Not_found -> []))
  in
  List.iter
    (fun (l : Link.t) ->
      if l.kind = Link.Xref then begin
        record l.dst l;
        match parents with
        | None -> ()
        | Some up ->
            let rec climb node depth conf =
              if depth < params.parent_depth then
                List.iter
                  (fun parent ->
                    let ghost = { l with dst = parent; confidence = conf } in
                    record parent ghost;
                    climb parent (depth + 1) (conf *. 0.7))
                  (up node)
            in
            climb l.dst 0 (l.confidence *. 0.7)
      end)
    xrefs;
  let skipped = ref 0 in
  (* count shared targets per cross-source object pair *)
  let pair_counts : (string * Objref.t * Objref.t) list ref = ref [] in
  Otbl.iter
    (fun target incoming ->
      let sources =
        incoming
        |> List.map (fun (l : Link.t) -> l.src)
        |> List.sort_uniq Objref.compare
      in
      if List.length sources > params.max_fanout then incr skipped
      else
        let rec pairs = function
          | [] -> ()
          | a :: rest ->
              List.iter
                (fun b ->
                  if a.Objref.source <> b.Objref.source then
                    pair_counts :=
                      (Objref.to_string target, a, b) :: !pair_counts)
                rest;
              pairs rest
        in
        pairs sources)
    by_target;
  let grouped : (string, string list ref) Hashtbl.t = Hashtbl.create 256 in
  let reps : (string, Objref.t * Objref.t) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (term, a, b) ->
      let key = Objref.to_string a ^ "\x00" ^ Objref.to_string b in
      (match Hashtbl.find_opt grouped key with
      | Some terms -> terms := term :: !terms
      | None ->
          Hashtbl.add grouped key (ref [ term ]);
          Hashtbl.add reps key (a, b)))
    !pair_counts;
  let links =
    Hashtbl.fold
      (fun key terms acc ->
        if List.length !terms >= params.min_shared then begin
          let a, b = Hashtbl.find reps key in
          let n = List.length !terms in
          let confidence = Float.min 0.9 (0.3 +. (0.15 *. float_of_int n)) in
          Link.make ~src:a ~dst:b ~kind:Link.Shared_term ~confidence
            ~evidence:
              (Printf.sprintf "shared targets: %s"
                 (String.concat ", "
                    (List.filteri (fun i _ -> i < 3) (List.rev !terms))))
          :: acc
        end
        else acc)
      grouped []
  in
  { links = Link.dedup links; hub_targets_skipped = !skipped }
