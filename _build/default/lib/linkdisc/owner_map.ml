open Aladin_relational
open Aladin_discovery

type t = {
  source : string;
  primary : string option;
  primary_attr : string option;
  owners : (string, string list array) Hashtbl.t;  (* relation -> per-row *)
  accession_rows : (string, int) Hashtbl.t;  (* accession -> row in primary *)
  accessions : string list;
}

let norm = String.lowercase_ascii

let empty source =
  {
    source;
    primary = None;
    primary_attr = None;
    owners = Hashtbl.create 4;
    accession_rows = Hashtbl.create 4;
    accessions = [];
  }

(* propagate owners from [from_rel] (already mapped) to [to_rel] joining
   from_attr = to_attr *)
let propagate catalog owners ~from_rel ~from_attr ~to_rel ~to_attr =
  let from_relation = Catalog.find_exn catalog from_rel in
  let to_relation = Catalog.find_exn catalog to_rel in
  let from_owners = Hashtbl.find owners (norm from_rel) in
  let index : (string, string list ref) Hashtbl.t = Hashtbl.create 256 in
  let fi = Schema.index_of_exn (Relation.schema from_relation) from_attr in
  Relation.iteri_rows
    (fun i row ->
      let v = row.(fi) in
      if not (Value.is_null v) then begin
        let key = Value.to_string v in
        let cell =
          match Hashtbl.find_opt index key with
          | Some c -> c
          | None ->
              let c = ref [] in
              Hashtbl.add index key c;
              c
        in
        cell := from_owners.(i) @ !cell
      end)
    from_relation;
  let ti = Schema.index_of_exn (Relation.schema to_relation) to_attr in
  let result = Array.make (Relation.cardinality to_relation) [] in
  Relation.iteri_rows
    (fun i row ->
      let v = row.(ti) in
      if not (Value.is_null v) then
        match Hashtbl.find_opt index (Value.to_string v) with
        | Some cell -> result.(i) <- List.sort_uniq String.compare !cell
        | None -> ())
    to_relation;
  result

let build (sp : Source_profile.t) =
  let catalog = Profile.catalog sp.profile in
  let source = Catalog.name catalog in
  match Source_profile.primary_accession sp with
  | None -> empty source
  | Some (primary_rel, acc_attr) ->
      let owners = Hashtbl.create 16 in
      let accession_rows = Hashtbl.create 256 in
      let primary = Catalog.find_exn catalog primary_rel in
      let ai = Schema.index_of_exn (Relation.schema primary) acc_attr in
      let accs = Array.make (Relation.cardinality primary) [] in
      let acc_list = ref [] in
      Relation.iteri_rows
        (fun i row ->
          let acc = Value.to_string row.(ai) in
          accs.(i) <- [ acc ];
          Hashtbl.replace accession_rows acc i;
          acc_list := acc :: !acc_list)
        primary;
      Hashtbl.replace owners (norm primary_rel) accs;
      (* walk the discovered secondary structure in depth order, mapping
         each relation through the first (shortest) path's last step *)
      (match sp.secondary with
      | None -> ()
      | Some sec ->
          List.iter
            (fun (e : Secondary.entry) ->
              match e.paths with
              | [] -> ()
              | path :: _ -> (
                  match List.rev path with
                  | [] -> ()
                  | (last : Fk_graph.step) :: prefix_rev ->
                      (* the relation before the last step *)
                      let prev_rel =
                        match prefix_rev with
                        | [] -> primary_rel
                        | p :: _ ->
                            if p.forward then p.fk.dst_relation
                            else p.fk.src_relation
                      in
                      let from_rel, from_attr, to_rel, to_attr =
                        if last.forward then
                          (* traversal follows fk src->dst; we come FROM src *)
                          ( last.fk.src_relation, last.fk.src_attribute,
                            last.fk.dst_relation, last.fk.dst_attribute )
                        else
                          ( last.fk.dst_relation, last.fk.dst_attribute,
                            last.fk.src_relation, last.fk.src_attribute )
                      in
                      ignore prev_rel;
                      if
                        Hashtbl.mem owners (norm from_rel)
                        && not (Hashtbl.mem owners (norm to_rel))
                        && norm to_rel = norm e.relation
                      then
                        Hashtbl.replace owners (norm to_rel)
                          (propagate catalog owners ~from_rel ~from_attr ~to_rel
                             ~to_attr)))
            sec.entries);
      {
        source;
        primary = Some primary_rel;
        primary_attr = Some acc_attr;
        owners;
        accession_rows;
        accessions = List.rev !acc_list;
      }

let source t = t.source

let primary_relation t = t.primary

let owners t ~relation ~row =
  match Hashtbl.find_opt t.owners (norm relation) with
  | Some arr when row >= 0 && row < Array.length arr -> arr.(row)
  | Some _ | None -> []

let objref t ~accession =
  match t.primary with
  | None -> None
  | Some relation ->
      if Hashtbl.mem t.accession_rows accession then
        Some (Objref.make ~source:t.source ~relation ~accession)
      else None

let primary_accessions t = t.accessions

let object_of_row t ~relation ~row =
  owners t ~relation ~row
  |> List.filter_map (fun accession -> objref t ~accession)
