(** Candidate pruning for link discovery (§4.4).

    "Conceptually, to discover all such links, we need to look at each pair
    of attributes among two databases. However, substantial pruning can be
    applied based on data characteristics. [...] attributes with few
    distinct values should be excluded from being a link source, as are
    attributes with purely numeric values to avoid misinterpretation of
    surrogate keys." *)

open Aladin_relational

type params = {
  min_distinct : int;  (** default 3 *)
  exclude_numeric : bool;  (** default true *)
  min_avg_len : float;  (** default 3.0 — single letters are not references *)
  enabled : bool;  (** false = no pruning, for the E6/E10 ablation *)
}

val default_params : params

val no_pruning : params

val is_link_source : params -> Col_stats.t -> bool
(** May this attribute hold cross-references? *)

val is_text_field : Col_stats.t -> bool
(** Long, alphabetic, mostly non-unique content — a description field worth
    text mining (avg length >= 30). *)

val link_source_attributes : params -> Profile_list.t -> (string * Col_stats.t) list
(** (source, stats) of every surviving candidate attribute. *)

val pairs_to_compare : params -> Profile_list.t -> int
(** Number of (source attribute) x (foreign primary accession attribute)
    comparisons implied — the work-saved metric of E6. *)
