(** Plain-text table rendering for experiment output (bench/main.exe). *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument on column-count mismatch. *)

val add_float_row : t -> string -> float list -> t
(** First cell verbatim, rest formatted %.3f; returns [t] for chaining. *)

val render : t -> string
(** Title, header, separator, aligned rows. *)

val print : t -> unit

val cell_f : float -> string
(** "%.3f" *)

val cell_pct : float -> string
(** "12.3%" *)
