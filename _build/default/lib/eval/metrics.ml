type counts = { tp : int; fp : int; fn : int }

type scores = { precision : float; recall : float; f1 : float }

let of_counts { tp; fp; fn } =
  let precision =
    if tp + fp = 0 then 1.0 else float_of_int tp /. float_of_int (tp + fp)
  in
  let recall =
    if tp + fn = 0 then 1.0 else float_of_int tp /. float_of_int (tp + fn)
  in
  let f1 =
    if precision +. recall = 0.0 then 0.0
    else 2.0 *. precision *. recall /. (precision +. recall)
  in
  { precision; recall; f1 }

let to_set xs =
  let tbl = Hashtbl.create (List.length xs) in
  List.iter (fun x -> Hashtbl.replace tbl x ()) xs;
  tbl

let compare_sets ~expected ~predicted =
  let e = to_set expected and p = to_set predicted in
  let tp = ref 0 and fp = ref 0 and fn = ref 0 in
  Hashtbl.iter (fun x () -> if Hashtbl.mem e x then incr tp else incr fp) p;
  Hashtbl.iter (fun x () -> if not (Hashtbl.mem p x) then incr fn) e;
  { tp = !tp; fp = !fp; fn = !fn }

let evaluate ~expected ~predicted =
  of_counts (compare_sets ~expected ~predicted)

let pair_key a b = if a <= b then a ^ "\x00" ^ b else b ^ "\x00" ^ a

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let pp_scores ppf s =
  Format.fprintf ppf "P=%.3f R=%.3f F1=%.3f" s.precision s.recall s.f1
