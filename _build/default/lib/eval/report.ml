type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Report.add_row (%s): %d cells, %d columns" t.title
         (List.length row) (List.length t.columns));
  t.rows <- t.rows @ [ row ]

let cell_f f = Printf.sprintf "%.3f" f

let cell_pct f = Printf.sprintf "%.1f%%" (100.0 *. f)

let add_float_row t label floats =
  add_row t (label :: List.map cell_f floats);
  t

let render t =
  let all = t.columns :: t.rows in
  let ncols = List.length t.columns in
  let width i =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all
  in
  let widths = List.init ncols width in
  let line row =
    "| "
    ^ String.concat " | "
        (List.mapi (fun i cell -> Printf.sprintf "%-*s" (List.nth widths i) cell) row)
    ^ " |"
  in
  let sep =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  String.concat "\n"
    ([ ""; "== " ^ t.title ^ " =="; sep; line t.columns; sep ]
    @ List.map line t.rows
    @ [ sep ])

let print t =
  print_endline (render t)
