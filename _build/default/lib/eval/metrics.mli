(** Precision / recall / F1 over sets — the paper's proposed quality
    estimation ("estimate the amount of errors of the system using
    performance measures, such as precision and recall", §3). *)

type counts = { tp : int; fp : int; fn : int }

type scores = { precision : float; recall : float; f1 : float }

val of_counts : counts -> scores
(** Precision 1.0 when nothing was predicted; recall 1.0 when nothing was
    expected. *)

val compare_sets : expected:string list -> predicted:string list -> counts
(** Set semantics (duplicates collapse). Elements are opaque keys. *)

val evaluate : expected:string list -> predicted:string list -> scores

val pair_key : string -> string -> string
(** Canonical unordered-pair key. *)

val mean : float list -> float
(** 0 on []. *)

val pp_scores : Format.formatter -> scores -> unit
