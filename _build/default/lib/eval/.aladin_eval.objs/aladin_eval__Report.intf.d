lib/eval/report.mli:
