lib/eval/metrics.ml: Format Hashtbl List
