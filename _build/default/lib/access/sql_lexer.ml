type token =
  | Ident of string
  | String_lit of string
  | Number_lit of float
  | Comma
  | Star
  | Lparen
  | Rparen
  | Eq
  | Neq
  | Lt
  | Gt
  | Le
  | Ge
  | Kw of string

exception Lex_error of string

let keywords =
  [ "SELECT"; "FROM"; "WHERE"; "JOIN"; "ON"; "AND"; "OR"; "ORDER"; "BY";
    "GROUP"; "LIMIT"; "ASC"; "DESC"; "LIKE"; "DISTINCT"; "NULL"; "IS"; "NOT";
    "IN" ]

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.'

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let rec loop i =
    if i >= n then ()
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> loop (i + 1)
      | ',' -> emit Comma; loop (i + 1)
      | '*' -> emit Star; loop (i + 1)
      | '(' -> emit Lparen; loop (i + 1)
      | ')' -> emit Rparen; loop (i + 1)
      | '=' -> emit Eq; loop (i + 1)
      | '<' ->
          if i + 1 < n && input.[i + 1] = '>' then begin emit Neq; loop (i + 2) end
          else if i + 1 < n && input.[i + 1] = '=' then begin emit Le; loop (i + 2) end
          else begin emit Lt; loop (i + 1) end
      | '>' ->
          if i + 1 < n && input.[i + 1] = '=' then begin emit Ge; loop (i + 2) end
          else begin emit Gt; loop (i + 1) end
      | '!' ->
          if i + 1 < n && input.[i + 1] = '=' then begin emit Neq; loop (i + 2) end
          else raise (Lex_error "stray '!'")
      | '\'' ->
          let buf = Buffer.create 16 in
          let rec str j =
            if j >= n then raise (Lex_error "unterminated string literal")
            else if input.[j] = '\'' then
              if j + 1 < n && input.[j + 1] = '\'' then begin
                Buffer.add_char buf '\'';
                str (j + 2)
              end
              else j + 1
            else begin
              Buffer.add_char buf input.[j];
              str (j + 1)
            end
          in
          let next = str (i + 1) in
          emit (String_lit (Buffer.contents buf));
          loop next
      | c when is_digit c || (c = '-' && i + 1 < n && is_digit input.[i + 1]) ->
          let start = i in
          let j = ref (i + 1) in
          while
            !j < n && (is_digit input.[!j] || input.[!j] = '.' || input.[!j] = 'e'
                       || input.[!j] = 'E' || input.[!j] = '+'
                       || (input.[!j] = '-' && (input.[!j - 1] = 'e' || input.[!j - 1] = 'E')))
          do
            incr j
          done;
          let s = String.sub input start (!j - start) in
          (match float_of_string_opt s with
          | Some f -> emit (Number_lit f)
          | None -> raise (Lex_error (Printf.sprintf "bad number %S" s)));
          loop !j
      | c when is_ident_char c ->
          let start = i in
          let j = ref i in
          while !j < n && is_ident_char input.[!j] do incr j done;
          let word = String.sub input start (!j - start) in
          let upper = String.uppercase_ascii word in
          if List.mem upper keywords then emit (Kw upper) else emit (Ident word);
          loop !j
      | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c))
  in
  loop 0;
  List.rev !tokens

let pp_token ppf = function
  | Ident s -> Format.fprintf ppf "ident(%s)" s
  | String_lit s -> Format.fprintf ppf "string(%S)" s
  | Number_lit f -> Format.fprintf ppf "number(%g)" f
  | Comma -> Format.pp_print_string ppf ","
  | Star -> Format.pp_print_string ppf "*"
  | Lparen -> Format.pp_print_string ppf "("
  | Rparen -> Format.pp_print_string ppf ")"
  | Eq -> Format.pp_print_string ppf "="
  | Neq -> Format.pp_print_string ppf "<>"
  | Lt -> Format.pp_print_string ppf "<"
  | Gt -> Format.pp_print_string ppf ">"
  | Le -> Format.pp_print_string ppf "<="
  | Ge -> Format.pp_print_string ppf ">="
  | Kw k -> Format.pp_print_string ppf k
