open Aladin_relational
open Aladin_discovery
open Aladin_links
open Aladin_metadata
module Dup = Aladin_dup

type annotation = {
  relation : string;
  fields : (string * string) list;
}

type view = {
  obj : Objref.t;
  fields : (string * string) list;
  annotations : annotation list;
  siblings : Objref.t list;
  duplicates : (Objref.t * float) list;
  conflicts : Dup.Conflict.t list;
  linked : Link.t list;
}

type t = {
  profiles : Profile_list.t;
  repository : Repository.t;
  reprs : Dup.Object_sim.repr list Lazy.t;
}

let create profiles repository =
  { profiles; repository;
    reprs = lazy (Dup.Object_sim.build_reprs profiles) }

let entry_of t source = Profile_list.find t.profiles source

let objects t =
  Profile_list.entries t.profiles
  |> List.concat_map (fun (e : Profile_list.entry) ->
         Owner_map.primary_accessions e.owner
         |> List.filter_map (fun accession ->
                Owner_map.objref e.owner ~accession))

let primary_row_fields e (obj : Objref.t) =
  let catalog = Profile.catalog (e : Profile_list.entry).sp.profile in
  match Source_profile.primary_accession e.sp with
  | None -> None
  | Some (prel, pattr) ->
      let rel = Catalog.find_exn catalog prel in
      Relation.find_row rel pattr (Value.text obj.Objref.accession)
      |> Option.map (fun row ->
             List.mapi
               (fun i attr -> (attr, Value.to_string row.(i)))
               (Schema.names (Relation.schema rel)))

let annotations_of e (obj : Objref.t) =
  let catalog = Profile.catalog (e : Profile_list.entry).sp.profile in
  match e.sp.secondary with
  | None -> []
  | Some sec ->
      List.concat_map
        (fun (entry : Secondary.entry) ->
          let rel = Catalog.find_exn catalog entry.relation in
          let attrs = Schema.names (Relation.schema rel) in
          let rows = ref [] in
          Relation.iteri_rows
            (fun row_i row ->
              let owners =
                Owner_map.owners e.owner ~relation:entry.relation ~row:row_i
              in
              if List.mem obj.Objref.accession owners then
                rows :=
                  {
                    relation = entry.relation;
                    fields =
                      List.mapi (fun i a -> (a, Value.to_string row.(i))) attrs;
                  }
                  :: !rows)
            rel;
          List.rev !rows)
        sec.entries

let siblings_of e (obj : Objref.t) =
  let accs = Owner_map.primary_accessions (e : Profile_list.entry).owner in
  let rec find_window prev = function
    | [] -> []
    | acc :: rest when acc = obj.Objref.accession ->
        let nexts = List.filteri (fun i _ -> i < 2) rest in
        (match prev with Some p -> [ p ] | None -> []) @ nexts
    | acc :: rest -> find_window (Some acc) rest
  in
  find_window None accs
  |> List.filter_map (fun accession -> Owner_map.objref e.owner ~accession)

let view t obj =
  match entry_of t obj.Objref.source with
  | None -> None
  | Some e -> (
      match primary_row_fields e obj with
      | None -> None
      | Some fields ->
          let all_links = Repository.links_of t.repository obj in
          let duplicates =
            List.filter_map
              (fun (l : Link.t) ->
                if l.kind = Link.Duplicate then
                  let other = if Objref.equal l.src obj then l.dst else l.src in
                  Some (other, l.confidence)
                else None)
              all_links
          in
          let conflicts =
            if duplicates = [] then []
            else begin
              let reprs = Lazy.force t.reprs in
              let dup_links =
                List.filter (fun (l : Link.t) -> l.kind = Link.Duplicate) all_links
              in
              Dup.Conflict.in_duplicates reprs dup_links
            end
          in
          let linked =
            List.filter (fun (l : Link.t) -> l.kind <> Link.Duplicate) all_links
            |> List.sort (fun (a : Link.t) (b : Link.t) ->
                   Float.compare b.confidence a.confidence)
          in
          Some
            {
              obj;
              fields;
              annotations = annotations_of e obj;
              siblings = siblings_of e obj;
              duplicates;
              conflicts;
              linked;
            })

let view_accession t ~source accession =
  match entry_of t source with
  | None -> None
  | Some e -> (
      match Owner_map.objref e.owner ~accession with
      | None -> None
      | Some obj -> view t obj)

let follow t v i =
  match List.nth_opt v.linked i with
  | None -> None
  | Some l ->
      let other = if Objref.equal l.src v.obj then l.dst else l.src in
      view t other

let render v =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "=== %s ===\n" (Objref.to_string v.obj);
  List.iter
    (fun (attr, value) ->
      let value =
        if String.length value > 70 then String.sub value 0 67 ^ "..." else value
      in
      add "  %-20s %s\n" attr value)
    v.fields;
  if v.annotations <> [] then begin
    add "-- annotations --\n";
    List.iter
      (fun a ->
        add "  [%s] %s\n" a.relation
          (String.concat "; "
             (List.map
                (fun (k, value) ->
                  let value =
                    if String.length value > 30 then String.sub value 0 27 ^ "..."
                    else value
                  in
                  k ^ "=" ^ value)
                a.fields)))
      v.annotations
  end;
  if v.duplicates <> [] then begin
    add "-- duplicates --\n";
    List.iter
      (fun (o, c) -> add "  %s (%.2f)\n" (Objref.to_string o) c)
      v.duplicates
  end;
  if v.conflicts <> [] then begin
    add "-- conflicts (!) --\n";
    List.iter
      (fun c -> add "  %s\n" (Format.asprintf "%a" Dup.Conflict.pp c))
      v.conflicts
  end;
  if v.linked <> [] then begin
    add "-- links --\n";
    List.iteri
      (fun i (l : Link.t) ->
        let other = if Objref.equal l.src v.obj then l.dst else l.src in
        add "  [%d] %s %s (%.2f)\n" i (Link.kind_name l.kind)
          (Objref.to_string other) l.confidence)
      v.linked
  end;
  Buffer.contents buf
