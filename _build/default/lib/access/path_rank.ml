open Aladin_links

module Otbl = Hashtbl.Make (struct
  type t = Objref.t

  let equal = Objref.equal
  let hash = Objref.hash
end)

type t = { adj : (Objref.t * Link.t) list Otbl.t }

let build links =
  let adj = Otbl.create 256 in
  let add k entry =
    Otbl.replace adj k (entry :: (try Otbl.find adj k with Not_found -> []))
  in
  List.iter
    (fun (l : Link.t) ->
      add l.src (l.dst, l);
      add l.dst (l.src, l))
    links;
  { adj }

let neighbors t obj = try Otbl.find t.adj obj with Not_found -> []

(* accumulate path contributions into [sink] for every reachable node *)
let explore ?(max_depth = 3) ?(decay = 0.5) t start =
  let sink : float ref Otbl.t = Otbl.create 64 in
  let rec dfs node visited weight depth =
    if depth < max_depth then
      List.iter
        (fun (next, (l : Link.t)) ->
          if not (List.exists (Objref.equal next) visited) then begin
            let w = weight *. l.confidence *. (decay ** float_of_int depth) in
            (match Otbl.find_opt sink next with
            | Some r -> r := !r +. w
            | None -> Otbl.add sink next (ref w));
            dfs next (next :: visited) (weight *. l.confidence) (depth + 1)
          end)
        (neighbors t node)
  in
  dfs start [ start ] 1.0 0;
  sink

let relatedness ?max_depth ?decay t a b =
  let sink = explore ?max_depth ?decay t a in
  match Otbl.find_opt sink b with Some r -> !r | None -> 0.0

let rank_from ?max_depth ?decay t start =
  let sink = explore ?max_depth ?decay t start in
  Otbl.fold (fun obj r acc -> (obj, !r) :: acc) sink []
  |> List.sort (fun (oa, a) (ob, b) ->
         match Float.compare b a with 0 -> Objref.compare oa ob | c -> c)
