open Aladin_links

type step = {
  kinds : Link.kind list;
  target_source : string option;
  min_confidence : float;
}

let step ?(kinds = []) ?target_source ?(min_confidence = 0.0) () =
  { kinds; target_source; min_confidence }

type hit = {
  endpoint : Objref.t;
  path : Link.t list;
  score : float;
  start : Objref.t;
}

module Otbl = Hashtbl.Make (struct
  type t = Objref.t

  let equal = Objref.equal
  let hash = Objref.hash
end)

type t = { adj : (Objref.t * Link.t) list Otbl.t }

let create links =
  let adj = Otbl.create 256 in
  let add k entry =
    Otbl.replace adj k (entry :: (try Otbl.find adj k with Not_found -> []))
  in
  List.iter
    (fun (l : Link.t) ->
      add l.src (l.dst, l);
      add l.dst (l.src, l))
    links;
  { adj }

let neighbors t o = try Otbl.find t.adj o with Not_found -> []

let step_admits stp (next : Objref.t) (l : Link.t) =
  (stp.kinds = [] || List.mem l.kind stp.kinds)
  && (match stp.target_source with
     | Some s -> next.Objref.source = s
     | None -> true)
  && l.confidence >= stp.min_confidence

(* one partial traversal: current endpoint, path so far (reversed),
   visited set, running score *)
type partial = {
  here : Objref.t;
  rev_path : Link.t list;
  visited : Objref.t list;
  pscore : float;
  origin : Objref.t;
}

let run t ~start ~steps =
  let initial =
    List.map
      (fun o -> { here = o; rev_path = []; visited = [ o ]; pscore = 1.0; origin = o })
      start
  in
  let expand stp partials =
    List.concat_map
      (fun p ->
        neighbors t p.here
        |> List.filter_map (fun (next, l) ->
               if
                 step_admits stp next l
                 && not (List.exists (Objref.equal next) p.visited)
               then
                 Some
                   { here = next; rev_path = l :: p.rev_path;
                     visited = next :: p.visited;
                     pscore = p.pscore *. l.Link.confidence;
                     origin = p.origin }
               else None))
      partials
  in
  let finals = List.fold_left (fun ps stp -> expand stp ps) initial steps in
  (* best witness per (start, endpoint) *)
  let best : (string, hit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun p ->
      let key = Objref.to_string p.origin ^ "\x00" ^ Objref.to_string p.here in
      let hit =
        { endpoint = p.here; path = List.rev p.rev_path; score = p.pscore;
          start = p.origin }
      in
      match Hashtbl.find_opt best key with
      | Some existing when existing.score >= hit.score -> ()
      | Some _ | None -> Hashtbl.replace best key hit)
    finals;
  Hashtbl.fold (fun _ h acc -> h :: acc) best []
  |> List.sort (fun a b ->
         match Float.compare b.score a.score with
         | 0 -> (
             match Objref.compare a.start b.start with
             | 0 -> Objref.compare a.endpoint b.endpoint
             | c -> c)
         | c -> c)

let reachable_count t o = List.length (neighbors t o)
