type column = { table : string option; attr : string }

type operand =
  | Col of column
  | Lit_string of string
  | Lit_number of float

type comparison = Ceq | Cneq | Clt | Cgt | Cle | Cge | Clike

type expr =
  | Compare of column * comparison * operand
  | Is_null of column
  | Is_not_null of column
  | In_list of column * operand list
  | And of expr * expr
  | Or of expr * expr
  | Not of expr

type aggregate = Count_star | Count of column | Sum of column | Avg of column | Min_agg of column | Max_agg of column

type select_item = Item_col of column | Item_agg of aggregate

type order = { order_col : column; descending : bool }

type query = {
  distinct : bool;
  projection : select_item list;
  from_table : string;
  joins : (string * column * column) list;
  where : expr option;
  group_by : column list;
  order_by : order option;
  limit : int option;
}

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type state = { mutable toks : Sql_lexer.token list }

let peek st = match st.toks with [] -> None | t :: _ -> Some t

let next st =
  match st.toks with
  | [] -> fail "unexpected end of query"
  | t :: rest ->
      st.toks <- rest;
      t

let token_str t = Format.asprintf "%a" Sql_lexer.pp_token t

let expect st tok what =
  let got = next st in
  if got <> tok then fail "expected %s, got %s" what (token_str got)

let expect_kw st kw =
  match next st with
  | Sql_lexer.Kw k when k = kw -> ()
  | t -> fail "expected %s, got %s" kw (token_str t)

let accept_kw st kw =
  match peek st with
  | Some (Sql_lexer.Kw k) when k = kw ->
      ignore (next st);
      true
  | Some _ | None -> false

let column_of_ident s =
  match String.rindex_opt s '.' with
  | None -> { table = None; attr = s }
  | Some i ->
      { table = Some (String.sub s 0 i);
        attr = String.sub s (i + 1) (String.length s - i - 1) }

let column_to_string c =
  match c.table with Some t -> t ^ "." ^ c.attr | None -> c.attr

let parse_column st =
  match next st with
  | Sql_lexer.Ident s -> column_of_ident s
  | t -> fail "expected column, got %s" (token_str t)

let aggregate_name = function
  | Count_star -> "count(*)"
  | Count c -> Printf.sprintf "count(%s)" (column_to_string c)
  | Sum c -> Printf.sprintf "sum(%s)" (column_to_string c)
  | Avg c -> Printf.sprintf "avg(%s)" (column_to_string c)
  | Min_agg c -> Printf.sprintf "min(%s)" (column_to_string c)
  | Max_agg c -> Printf.sprintf "max(%s)" (column_to_string c)

let aggregate_keywords = [ "COUNT"; "SUM"; "AVG"; "MIN"; "MAX" ]

let parse_select_item st =
  match peek st with
  | Some (Sql_lexer.Ident s)
    when List.mem (String.uppercase_ascii s) aggregate_keywords -> (
      ignore (next st);
      let kind = String.uppercase_ascii s in
      expect st Sql_lexer.Lparen "(";
      let arg =
        match peek st with
        | Some Sql_lexer.Star ->
            ignore (next st);
            None
        | Some _ | None -> Some (parse_column st)
      in
      expect st Sql_lexer.Rparen ")";
      match (kind, arg) with
      | "COUNT", None -> Item_agg Count_star
      | "COUNT", Some c -> Item_agg (Count c)
      | "SUM", Some c -> Item_agg (Sum c)
      | "AVG", Some c -> Item_agg (Avg c)
      | "MIN", Some c -> Item_agg (Min_agg c)
      | "MAX", Some c -> Item_agg (Max_agg c)
      | _, None -> fail "%s requires a column argument" kind
      | _, Some _ -> fail "unknown aggregate %s" kind)
  | Some _ | None -> Item_col (parse_column st)

let parse_projection st =
  match peek st with
  | Some Sql_lexer.Star ->
      ignore (next st);
      []
  | Some _ | None ->
      let rec items acc =
        let item = parse_select_item st in
        match peek st with
        | Some Sql_lexer.Comma ->
            ignore (next st);
            items (item :: acc)
        | Some _ | None -> List.rev (item :: acc)
      in
      items []

let parse_table st =
  match next st with
  | Sql_lexer.Ident s -> s
  | t -> fail "expected table name, got %s" (token_str t)

let comparison_of_token = function
  | Sql_lexer.Eq -> Some Ceq
  | Sql_lexer.Neq -> Some Cneq
  | Sql_lexer.Lt -> Some Clt
  | Sql_lexer.Gt -> Some Cgt
  | Sql_lexer.Le -> Some Cle
  | Sql_lexer.Ge -> Some Cge
  | Sql_lexer.Kw "LIKE" -> Some Clike
  | _ -> None

let parse_operand st =
  match next st with
  | Sql_lexer.Ident s -> Col (column_of_ident s)
  | Sql_lexer.String_lit s -> Lit_string s
  | Sql_lexer.Number_lit f -> Lit_number f
  | t -> fail "expected operand, got %s" (token_str t)

let parse_predicate st =
  let col = parse_column st in
  match peek st with
  | Some (Sql_lexer.Kw "IS") ->
      ignore (next st);
      if accept_kw st "NOT" then begin
        expect_kw st "NULL";
        Is_not_null col
      end
      else begin
        expect_kw st "NULL";
        Is_null col
      end
  | Some (Sql_lexer.Kw "IN") ->
      ignore (next st);
      expect st Sql_lexer.Lparen "(";
      let rec lits acc =
        let v = parse_operand st in
        match peek st with
        | Some Sql_lexer.Comma ->
            ignore (next st);
            lits (v :: acc)
        | Some _ | None -> List.rev (v :: acc)
      in
      let vs = lits [] in
      expect st Sql_lexer.Rparen ")";
      In_list (col, vs)
  | Some (Sql_lexer.Kw "NOT") ->
      ignore (next st);
      (* col NOT LIKE / NOT IN *)
      (match peek st with
      | Some (Sql_lexer.Kw "LIKE") ->
          ignore (next st);
          Not (Compare (col, Clike, parse_operand st))
      | Some (Sql_lexer.Kw "IN") ->
          ignore (next st);
          expect st Sql_lexer.Lparen "(";
          let rec lits acc =
            let v = parse_operand st in
            match peek st with
            | Some Sql_lexer.Comma ->
                ignore (next st);
                lits (v :: acc)
            | Some _ | None -> List.rev (v :: acc)
          in
          let vs = lits [] in
          expect st Sql_lexer.Rparen ")";
          Not (In_list (col, vs))
      | Some t -> fail "expected LIKE or IN after NOT, got %s" (token_str t)
      | None -> fail "unexpected end after NOT")
  | Some t -> (
      match comparison_of_token t with
      | None -> fail "expected comparison after %s" (column_to_string col)
      | Some cmp ->
          ignore (next st);
          Compare (col, cmp, parse_operand st))
  | None -> fail "unexpected end of predicate"

(* precedence: OR < AND < NOT < atom *)
let rec parse_or st =
  let left = parse_and st in
  if accept_kw st "OR" then Or (left, parse_or st) else left

and parse_and st =
  let left = parse_not st in
  if accept_kw st "AND" then And (left, parse_and st) else left

and parse_not st =
  if accept_kw st "NOT" then Not (parse_not st)
  else
    match peek st with
    | Some Sql_lexer.Lparen ->
        ignore (next st);
        let e = parse_or st in
        expect st Sql_lexer.Rparen ")";
        e
    | Some _ | None -> parse_predicate st

let parse input =
  let st = { toks = Sql_lexer.tokenize input } in
  expect_kw st "SELECT";
  let distinct = accept_kw st "DISTINCT" in
  let projection = parse_projection st in
  expect_kw st "FROM";
  let from_table = parse_table st in
  let joins = ref [] in
  while accept_kw st "JOIN" do
    let table = parse_table st in
    expect_kw st "ON";
    let left = parse_column st in
    expect st Sql_lexer.Eq "= in join condition";
    let right = parse_column st in
    joins := (table, left, right) :: !joins
  done;
  let where = if accept_kw st "WHERE" then Some (parse_or st) else None in
  let group_by =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      let rec cols acc =
        let c = parse_column st in
        match peek st with
        | Some Sql_lexer.Comma ->
            ignore (next st);
            cols (c :: acc)
        | Some _ | None -> List.rev (c :: acc)
      in
      cols []
    end
    else []
  in
  let order_by =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      let order_col = parse_column st in
      let descending =
        if accept_kw st "DESC" then true
        else begin
          ignore (accept_kw st "ASC");
          false
        end
      in
      Some { order_col; descending }
    end
    else None
  in
  let limit =
    if accept_kw st "LIMIT" then
      match next st with
      | Sql_lexer.Number_lit f -> Some (int_of_float f)
      | t -> fail "expected number after LIMIT, got %s" (token_str t)
    else None
  in
  (match st.toks with
  | [] -> ()
  | t :: _ -> fail "trailing token %s" (token_str t));
  {
    distinct;
    projection;
    from_table;
    joins = List.rev !joins;
    where;
    group_by;
    order_by;
    limit;
  }
