(** Evaluator for parsed SQL over warehouse relations.

    Tables are resolved through a callback so the same evaluator works for
    one catalog or for the whole warehouse (where tables are addressed as
    [source.relation]). Supports boolean WHERE expressions (AND/OR/NOT,
    IN, LIKE, IS NULL), GROUP BY and the COUNT/SUM/AVG/MIN/MAX
    aggregates. *)

open Aladin_relational

exception Eval_error of string

val eval : resolve:(string -> Relation.t option) -> Sql_parser.query -> Relation.t
(** @raise Eval_error on unknown tables/columns, ambiguous references, or
    non-grouped columns selected next to aggregates. *)

val eval_catalog : Catalog.t -> Sql_parser.query -> Relation.t

val run : resolve:(string -> Relation.t option) -> string -> Relation.t
(** Parse + eval. *)

val like_match : pattern:string -> string -> bool
(** SQL LIKE with '%' (any run) and '_' (any char), case-insensitive. *)

val render_result : ?max_rows:int -> Relation.t -> string
(** ASCII table for CLI/examples. *)
