lib/access/sql_parser.ml: Format List Printf Sql_lexer String
