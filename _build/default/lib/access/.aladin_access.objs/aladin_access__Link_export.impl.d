lib/access/link_export.ml: Aladin_links Aladin_relational Buffer Float Hashtbl Link List Objref Printf String
