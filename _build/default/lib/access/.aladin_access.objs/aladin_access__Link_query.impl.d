lib/access/link_query.ml: Aladin_links Float Hashtbl Link List Objref
