lib/access/html_export.mli: Aladin_links Browser Objref
