lib/access/search.mli: Aladin_links Aladin_text Objref Profile_list
