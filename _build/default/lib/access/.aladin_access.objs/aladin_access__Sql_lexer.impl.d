lib/access/sql_lexer.ml: Buffer Format List Printf String
