lib/access/link_export.mli: Aladin_links Link
