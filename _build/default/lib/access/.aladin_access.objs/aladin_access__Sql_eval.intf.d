lib/access/sql_eval.mli: Aladin_relational Catalog Relation Sql_parser
