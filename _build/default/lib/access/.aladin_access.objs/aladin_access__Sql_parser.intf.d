lib/access/sql_parser.mli:
