lib/access/html_export.ml: Aladin_dup Aladin_links Browser Buffer Filename Hashtbl Link List Objref Printf String Sys
