lib/access/link_query.mli: Aladin_links Link Objref
