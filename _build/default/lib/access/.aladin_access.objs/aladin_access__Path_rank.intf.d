lib/access/path_rank.mli: Aladin_links Link Objref
