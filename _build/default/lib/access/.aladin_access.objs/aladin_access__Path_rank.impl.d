lib/access/path_rank.ml: Aladin_links Float Hashtbl Link List Objref
