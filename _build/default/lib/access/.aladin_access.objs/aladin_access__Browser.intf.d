lib/access/browser.mli: Aladin_dup Aladin_links Aladin_metadata Link Objref Profile_list Repository
