lib/access/sql_eval.ml: Aladin_relational Array Catalog Float Hashtbl List Printf Relation Schema Sql_parser String Value
