lib/access/sql_lexer.mli: Format
