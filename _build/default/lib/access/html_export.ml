open Aladin_links
module Dup = Aladin_dup

let escape_html s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let sanitize s =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
      then c
      else '_')
    s

let page_filename (o : Objref.t) =
  Printf.sprintf "%s__%s.html" (sanitize o.source) (sanitize o.accession)

let style =
  "body{font-family:sans-serif;max-width:60em;margin:2em auto;color:#222}\n\
   h1{font-size:1.3em} h2{font-size:1.05em;margin-top:1.4em;color:#444}\n\
   table{border-collapse:collapse} td,th{border:1px solid #ccc;padding:2px 8px;\n\
   text-align:left;vertical-align:top} .conflict{background:#ffe8e8}\n\
   .kind{color:#777;font-size:0.85em} a{color:#1552a0}"

let header title =
  Printf.sprintf
    "<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>%s</title>\n\
     <style>%s</style></head><body>\n"
    (escape_html title) style

let footer = "</body></html>\n"

let truncate n s = if String.length s > n then String.sub s 0 (n - 3) ^ "..." else s

let object_page browser (v : Browser.view) =
  ignore browser;
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  Buffer.add_string buf (header (Objref.to_string v.obj));
  add "<p><a href=\"index.html\">&larr; index</a></p>\n";
  add "<h1>%s</h1>\n" (escape_html (Objref.to_string v.obj));
  add "<table>\n";
  List.iter
    (fun (attr, value) ->
      add "<tr><th>%s</th><td>%s</td></tr>\n" (escape_html attr)
        (escape_html (truncate 300 value)))
    v.fields;
  add "</table>\n";
  if v.annotations <> [] then begin
    add "<h2>Annotations (secondary objects)</h2>\n<table>\n";
    List.iter
      (fun (a : Browser.annotation) ->
        add "<tr><th>%s</th><td>%s</td></tr>\n" (escape_html a.relation)
          (escape_html
             (truncate 300
                (String.concat "; "
                   (List.map (fun (k, value) -> k ^ "=" ^ value) a.fields)))))
      v.annotations;
    add "</table>\n"
  end;
  if v.duplicates <> [] then begin
    add "<h2>Duplicates (flagged, not merged)</h2>\n<ul>\n";
    List.iter
      (fun (o, c) ->
        add "<li><a href=\"%s\">%s</a> (similarity %.2f)</li>\n"
          (page_filename o)
          (escape_html (Objref.to_string o))
          c)
      v.duplicates;
    add "</ul>\n"
  end;
  if v.conflicts <> [] then begin
    add "<h2>Conflicting values</h2>\n<table>\n";
    List.iter
      (fun (c : Dup.Conflict.t) ->
        add
          "<tr class=\"conflict\"><td>%s.%s = %s</td><td>%s.%s = %s</td></tr>\n"
          (escape_html (Objref.to_string c.obj_a))
          (escape_html c.attr_a)
          (escape_html (truncate 80 c.value_a))
          (escape_html (Objref.to_string c.obj_b))
          (escape_html c.attr_b)
          (escape_html (truncate 80 c.value_b)))
      v.conflicts;
    add "</table>\n"
  end;
  if v.linked <> [] then begin
    add "<h2>Links</h2>\n<ul>\n";
    List.iter
      (fun (l : Link.t) ->
        let other = if Objref.equal l.src v.obj then l.dst else l.src in
        add
          "<li><span class=\"kind\">[%s %.2f]</span> <a href=\"%s\">%s</a> \
           <span class=\"kind\">%s</span></li>\n"
          (Link.kind_name l.kind) l.confidence (page_filename other)
          (escape_html (Objref.to_string other))
          (escape_html (truncate 80 l.evidence)))
      v.linked;
    add "</ul>\n"
  end;
  if v.siblings <> [] then begin
    add "<h2>Neighbours in the same relation</h2>\n<ul>\n";
    List.iter
      (fun o ->
        add "<li><a href=\"%s\">%s</a></li>\n" (page_filename o)
          (escape_html (Objref.to_string o)))
      v.siblings;
    add "</ul>\n"
  end;
  Buffer.add_string buf footer;
  Buffer.contents buf

let index_page browser =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  Buffer.add_string buf (header "ALADIN warehouse");
  add "<h1>ALADIN warehouse</h1>\n";
  let objects = Browser.objects browser in
  let by_source : (string, Objref.t list ref) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (o : Objref.t) ->
      match Hashtbl.find_opt by_source o.source with
      | Some l -> l := o :: !l
      | None ->
          Hashtbl.add by_source o.source (ref [ o ]);
          order := o.source :: !order)
    objects;
  List.iter
    (fun source ->
      let members = List.rev !(Hashtbl.find by_source source) in
      add "<h2>%s (%d objects)</h2>\n<p>\n" (escape_html source)
        (List.length members);
      List.iter
        (fun o ->
          add "<a href=\"%s\">%s</a>\n" (page_filename o)
            (escape_html o.Objref.accession))
        members;
      add "</p>\n")
    (List.rev !order);
  Buffer.add_string buf footer;
  Buffer.contents buf

let write_site browser ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write name contents =
    let oc = open_out (Filename.concat dir name) in
    output_string oc contents;
    close_out oc
  in
  write "index.html" (index_page browser);
  let count = ref 0 in
  List.iter
    (fun o ->
      match Browser.view browser o with
      | Some v ->
          write (page_filename o) (object_page browser v);
          incr count
      | None -> ())
    (Browser.objects browser);
  !count
