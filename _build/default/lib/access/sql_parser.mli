(** Recursive-descent parser for the SQL subset.

    {v
    SELECT [DISTINCT] (* | item [, item]*)
    FROM table
    [JOIN table ON col = col]*
    [WHERE expr]
    [GROUP BY col [, col]*]
    [ORDER BY col [ASC|DESC]]
    [LIMIT n]

    item  := col | COUNT(*) | COUNT(col) | SUM(col) | AVG(col)
           | MIN(col) | MAX(col)
    expr  := expr OR expr | expr AND expr | NOT expr | ( expr ) | pred
    pred  := col op (literal | col) | col LIKE 'pat'
           | col IS [NOT] NULL | col IN (lit [, lit]*)
    op    := = | <> | != | < | > | <= | >=
    v}

    Columns may be qualified ([table.attr], [source.table.attr]). *)

type column = { table : string option; attr : string }

type operand =
  | Col of column
  | Lit_string of string
  | Lit_number of float

type comparison = Ceq | Cneq | Clt | Cgt | Cle | Cge | Clike

type expr =
  | Compare of column * comparison * operand
  | Is_null of column
  | Is_not_null of column
  | In_list of column * operand list
  | And of expr * expr
  | Or of expr * expr
  | Not of expr

type aggregate = Count_star | Count of column | Sum of column | Avg of column | Min_agg of column | Max_agg of column

type select_item = Item_col of column | Item_agg of aggregate

type order = { order_col : column; descending : bool }

type query = {
  distinct : bool;
  projection : select_item list;  (** [] = SELECT * *)
  from_table : string;
  joins : (string * column * column) list;  (** (table, left col, right col) *)
  where : expr option;
  group_by : column list;
  order_by : order option;
  limit : int option;
}

exception Parse_error of string

val parse : string -> query
(** @raise Parse_error / @raise Sql_lexer.Lex_error *)

val column_to_string : column -> string

val aggregate_name : aggregate -> string
(** Display name, e.g. ["count(*)"], ["sum(x)"]. *)
