(** Export the discovered object web for external tools: CSV for
    spreadsheets/joins, GraphViz DOT for visualization (sources become
    clusters, link kinds become edge styles). *)

open Aladin_links

val to_csv : Link.t list -> string
(** Header + one row per link:
    [src_source,src_accession,dst_source,dst_accession,kind,confidence,evidence]. *)

val to_dot : ?max_links:int -> Link.t list -> string
(** A [graph] document: objects as nodes grouped into per-source
    subgraph clusters; duplicate links drawn bold, xrefs solid, implicit
    links dashed; edges capped at [max_links] (default 500) by descending
    confidence. *)
