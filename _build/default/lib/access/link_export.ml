open Aladin_links
module Csv = Aladin_relational.Csv

let to_csv links =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "src_source,src_accession,dst_source,dst_accession,kind,confidence,evidence\n";
  List.iter
    (fun (l : Link.t) ->
      Buffer.add_string buf
        (Csv.render_line
           [ l.src.Objref.source; l.src.Objref.accession; l.dst.Objref.source;
             l.dst.Objref.accession; Link.kind_name l.kind;
             Printf.sprintf "%.3f" l.confidence; l.evidence ]);
      Buffer.add_char buf '\n')
    links;
  Buffer.contents buf

let node_id (o : Objref.t) =
  "n_"
  ^ String.map
      (fun c ->
        if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
        then c
        else '_')
      (o.source ^ "_" ^ o.accession)

let edge_style = function
  | Link.Duplicate -> "style=bold, color=red"
  | Link.Xref -> "style=solid"
  | Link.Seq_similarity -> "style=dashed, color=blue"
  | Link.Text_similarity -> "style=dashed, color=gray"
  | Link.Shared_term -> "style=dotted"
  | Link.Entity_mention -> "style=dotted, color=gray"

let to_dot ?(max_links = 500) links =
  let links =
    links
    |> List.sort (fun (a : Link.t) (b : Link.t) ->
           Float.compare b.confidence a.confidence)
    |> List.filteri (fun i _ -> i < max_links)
  in
  let by_source : (string, Objref.t list ref) Hashtbl.t = Hashtbl.create 8 in
  let seen = Hashtbl.create 256 in
  let note (o : Objref.t) =
    let key = Objref.to_string o in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      match Hashtbl.find_opt by_source o.source with
      | Some l -> l := o :: !l
      | None -> Hashtbl.add by_source o.source (ref [ o ])
    end
  in
  List.iter
    (fun (l : Link.t) ->
      note l.src;
      note l.dst)
    links;
  let buf = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "graph aladin {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n";
  let sources =
    Hashtbl.fold (fun s _ acc -> s :: acc) by_source [] |> List.sort String.compare
  in
  List.iteri
    (fun i source ->
      add "  subgraph cluster_%d {\n    label=\"%s\";\n" i source;
      let members = !(Hashtbl.find by_source source) in
      List.iter
        (fun (o : Objref.t) ->
          add "    %s [label=\"%s\"];\n" (node_id o) o.accession)
        (List.sort Objref.compare members);
      add "  }\n")
    sources;
  List.iter
    (fun (l : Link.t) ->
      add "  %s -- %s [%s, label=\"%s\", fontsize=7];\n" (node_id l.src)
        (node_id l.dst) (edge_style l.kind) (Link.kind_name l.kind))
    links;
  add "}\n";
  Buffer.contents buf
