open Aladin_relational

exception Eval_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

let like_match ~pattern s =
  let p = String.lowercase_ascii pattern and s = String.lowercase_ascii s in
  let np = String.length p and ns = String.length s in
  (* classic backtracking wildcard match *)
  let rec go i j star_p star_s =
    if j = ns then begin
      let rec only_pct i = i >= np || (p.[i] = '%' && only_pct (i + 1)) in
      only_pct i
    end
    else if i < np && (p.[i] = '_' || p.[i] = s.[j]) then
      go (i + 1) (j + 1) star_p star_s
    else if i < np && p.[i] = '%' then go (i + 1) j i j
    else if star_p >= 0 then go (star_p + 1) (star_s + 1) star_p (star_s + 1)
    else false
  in
  go 0 0 (-1) (-1)

(* working set: qualified column names + rows *)
type env = { cols : string list; rows : Value.t array list }

let norm = String.lowercase_ascii

let resolve_col env (c : Sql_parser.column) =
  let want_attr = norm c.attr in
  let matches =
    List.mapi (fun i name -> (i, name)) env.cols
    |> List.filter (fun (_, name) ->
           match c.table with
           | Some t -> norm name = norm t ^ "." ^ want_attr
           | None -> (
               match String.rindex_opt name '.' with
               | Some k ->
                   norm (String.sub name (k + 1) (String.length name - k - 1))
                   = want_attr
               | None -> norm name = want_attr))
  in
  match matches with
  | [ (i, _) ] -> i
  | [] -> fail "unknown column %s" (Sql_parser.column_to_string c)
  | _ :: _ -> fail "ambiguous column %s" (Sql_parser.column_to_string c)

let load_table resolve name =
  match resolve name with
  | Some rel -> rel
  | None -> fail "unknown table %s" name

let env_of_relation ~as_name rel =
  let cols =
    List.map (fun a -> as_name ^ "." ^ a) (Schema.names (Relation.schema rel))
  in
  { cols; rows = Relation.rows rel }

let join_env env ~right ~left_col ~right_col =
  let li = resolve_col env left_col in
  let ri = resolve_col right right_col in
  let index : (string, Value.t array list ref) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun row ->
      let v = row.(ri) in
      if not (Value.is_null v) then begin
        let k = Value.to_string v in
        match Hashtbl.find_opt index k with
        | Some l -> l := row :: !l
        | None -> Hashtbl.add index k (ref [ row ])
      end)
    right.rows;
  let rows =
    List.concat_map
      (fun lrow ->
        let v = lrow.(li) in
        if Value.is_null v then []
        else
          match Hashtbl.find_opt index (Value.to_string v) with
          | None -> []
          | Some partners ->
              List.rev_map (fun rrow -> Array.append lrow rrow) !partners)
      env.rows
  in
  { cols = env.cols @ right.cols; rows }

let cmp_values op a b =
  let c = Value.compare a b in
  match op with
  | Sql_parser.Ceq -> c = 0
  | Sql_parser.Cneq -> c <> 0
  | Sql_parser.Clt -> c < 0
  | Sql_parser.Cgt -> c > 0
  | Sql_parser.Cle -> c <= 0
  | Sql_parser.Cge -> c >= 0
  | Sql_parser.Clike -> false

(* values compare loosely: a text "42" equals the number 42 *)
let loose_compare op (a : Value.t) (b : Value.t) =
  match op with
  | Sql_parser.Clike -> like_match ~pattern:(Value.to_string b) (Value.to_string a)
  | Sql_parser.Ceq | Sql_parser.Cneq | Sql_parser.Clt | Sql_parser.Cgt
  | Sql_parser.Cle | Sql_parser.Cge -> (
      match (a, b) with
      | Value.Text _, (Value.Int _ | Value.Float _)
      | (Value.Int _ | Value.Float _), Value.Text _ ->
          cmp_values op (Value.of_string (Value.to_string a))
            (Value.of_string (Value.to_string b))
      | _ -> cmp_values op a b)

let value_of_operand env row = function
  | Sql_parser.Lit_string s -> Some (Value.Text s)
  | Sql_parser.Lit_number f ->
      if Float.is_integer f then Some (Value.Int (int_of_float f))
      else Some (Value.Float f)
  | Sql_parser.Col c ->
      let j = resolve_col env c in
      let v = row.(j) in
      if Value.is_null v then None else Some v

let rec eval_expr env row (e : Sql_parser.expr) =
  match e with
  | Sql_parser.Is_null col -> Value.is_null row.(resolve_col env col)
  | Sql_parser.Is_not_null col -> not (Value.is_null row.(resolve_col env col))
  | Sql_parser.Compare (col, op, operand) -> (
      let v = row.(resolve_col env col) in
      if Value.is_null v then false
      else
        match value_of_operand env row operand with
        | Some v2 -> loose_compare op v v2
        | None -> false)
  | Sql_parser.In_list (col, operands) -> (
      let v = row.(resolve_col env col) in
      if Value.is_null v then false
      else
        List.exists
          (fun operand ->
            match value_of_operand env row operand with
            | Some v2 -> loose_compare Sql_parser.Ceq v v2
            | None -> false)
          operands)
  | Sql_parser.And (a, b) -> eval_expr env row a && eval_expr env row b
  | Sql_parser.Or (a, b) -> eval_expr env row a || eval_expr env row b
  | Sql_parser.Not a -> not (eval_expr env row a)

(* --- aggregates --- *)

let numeric_value = function
  | Value.Int i -> Some (float_of_int i)
  | Value.Float f -> Some f
  | Value.Null | Value.Text _ -> None

let float_result f =
  if Float.is_integer f && Float.abs f < 1e15 then Value.Int (int_of_float f)
  else Value.Float f

let compute_aggregate env rows (a : Sql_parser.aggregate) =
  let column_values col =
    let i = resolve_col env col in
    List.filter_map
      (fun row -> if Value.is_null row.(i) then None else Some row.(i))
      rows
  in
  match a with
  | Sql_parser.Count_star -> Value.Int (List.length rows)
  | Sql_parser.Count col -> Value.Int (List.length (column_values col))
  | Sql_parser.Sum col ->
      float_result
        (List.fold_left
           (fun acc v ->
             match numeric_value v with Some f -> acc +. f | None -> acc)
           0.0 (column_values col))
  | Sql_parser.Avg col -> (
      let nums = List.filter_map numeric_value (column_values col) in
      match nums with
      | [] -> Value.Null
      | _ ->
          Value.Float
            (List.fold_left ( +. ) 0.0 nums /. float_of_int (List.length nums)))
  | Sql_parser.Min_agg col -> (
      match column_values col with
      | [] -> Value.Null
      | v :: rest -> List.fold_left (fun m x -> if Value.compare x m < 0 then x else m) v rest)
  | Sql_parser.Max_agg col -> (
      match column_values col with
      | [] -> Value.Null
      | v :: rest -> List.fold_left (fun m x -> if Value.compare x m > 0 then x else m) v rest)

let has_aggregates (q : Sql_parser.query) =
  List.exists
    (function Sql_parser.Item_agg _ -> true | Sql_parser.Item_col _ -> false)
    q.projection

let grouped_output env (q : Sql_parser.query) rows =
  let group_idxs = List.map (resolve_col env) q.group_by in
  (* every plain selected column must be a grouping column *)
  List.iter
    (function
      | Sql_parser.Item_col c ->
          let i = resolve_col env c in
          if not (List.mem i group_idxs) then
            fail "column %s must appear in GROUP BY"
              (Sql_parser.column_to_string c)
      | Sql_parser.Item_agg _ -> ())
    q.projection;
  let groups : (string, Value.t array list ref) Hashtbl.t = Hashtbl.create 64 in
  let group_order = ref [] in
  List.iter
    (fun row ->
      let key =
        String.concat "\x00"
          (List.map (fun i -> Value.to_string row.(i)) group_idxs)
      in
      match Hashtbl.find_opt groups key with
      | Some l -> l := row :: !l
      | None ->
          Hashtbl.add groups key (ref [ row ]);
          group_order := key :: !group_order)
    rows;
  let group_order = List.rev !group_order in
  let out_cols =
    List.map
      (function
        | Sql_parser.Item_col c -> List.nth env.cols (resolve_col env c)
        | Sql_parser.Item_agg a -> Sql_parser.aggregate_name a)
      q.projection
  in
  let out_rows =
    List.map
      (fun key ->
        let members = List.rev !(Hashtbl.find groups key) in
        let rep = match members with r :: _ -> r | [] -> assert false in
        Array.of_list
          (List.map
             (function
               | Sql_parser.Item_col c -> rep.(resolve_col env c)
               | Sql_parser.Item_agg a -> compute_aggregate env members a)
             q.projection))
      group_order
  in
  (out_cols, out_rows)

let eval ~resolve (q : Sql_parser.query) =
  let base = load_table resolve q.from_table in
  let env = ref (env_of_relation ~as_name:q.from_table base) in
  List.iter
    (fun (table, left_col, right_col) ->
      let rel = load_table resolve table in
      let right = env_of_relation ~as_name:table rel in
      (* the join condition may name the sides in either order *)
      let try_join l r =
        try Some (join_env !env ~right ~left_col:l ~right_col:r)
        with Eval_error _ -> None
      in
      match try_join left_col right_col with
      | Some e -> env := e
      | None -> (
          match try_join right_col left_col with
          | Some e -> env := e
          | None ->
              fail "cannot resolve join condition %s = %s"
                (Sql_parser.column_to_string left_col)
                (Sql_parser.column_to_string right_col)))
    q.joins;
  let rows =
    match q.where with
    | None -> !env.rows
    | Some expr -> List.filter (fun row -> eval_expr !env row expr) !env.rows
  in
  let grouping = q.group_by <> [] || has_aggregates q in
  let sort_rows cols rows =
    match q.order_by with
    | None -> rows
    | Some { order_col; descending } ->
        let i = resolve_col { cols; rows } order_col in
        let cmp a b =
          let c = Value.compare a.(i) b.(i) in
          if descending then -c else c
        in
        List.stable_sort cmp rows
  in
  let out_cols, out_rows =
    if grouping then begin
      if q.projection = [] then fail "SELECT * cannot be combined with aggregates";
      (* grouped: ORDER BY applies to the aggregated output *)
      let cols, rows = grouped_output !env q rows in
      (cols, sort_rows cols rows)
    end
    else begin
      (* ungrouped: ORDER BY may use any input column, even unprojected *)
      let rows = sort_rows !env.cols rows in
      match q.projection with
      | [] -> (!env.cols, rows)
      | items ->
          let cols =
            List.map
              (function
                | Sql_parser.Item_col c -> c
                | Sql_parser.Item_agg _ -> assert false)
              items
          in
          let idxs = List.map (resolve_col !env) cols in
          ( List.map (fun i -> List.nth !env.cols i) idxs,
            List.map
              (fun row -> Array.of_list (List.map (fun i -> row.(i)) idxs))
              rows )
    end
  in
  let out_rows =
    if not q.distinct then out_rows
    else begin
      let seen = Hashtbl.create 64 in
      List.filter
        (fun row ->
          let key =
            String.concat "\x00" (Array.to_list (Array.map Value.to_string row))
          in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.add seen key ();
            true
          end)
        out_rows
    end
  in
  let out_rows =
    match q.limit with
    | None -> out_rows
    | Some n -> List.filteri (fun i _ -> i < n) out_rows
  in
  let result = Relation.create ~name:"result" (Schema.of_names out_cols) in
  List.iter (Relation.insert result) out_rows;
  result

let eval_catalog catalog q = eval ~resolve:(Catalog.find catalog) q

let run ~resolve input = eval ~resolve (Sql_parser.parse input)

let render_result ?(max_rows = 25) rel =
  let cols = Schema.names (Relation.schema rel) in
  let rows =
    Relation.rows rel
    |> List.filteri (fun i _ -> i < max_rows)
    |> List.map (fun r -> Array.to_list (Array.map Value.to_string r))
  in
  let all = cols :: rows in
  let ncols = List.length cols in
  let width i =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all
  in
  let widths = List.init ncols width in
  let line row =
    String.concat " | "
      (List.mapi
         (fun i cell ->
           let cell = if String.length cell > 40 then String.sub cell 0 37 ^ "..." else cell in
           Printf.sprintf "%-*s" (min 40 (List.nth widths i)) cell)
         row)
  in
  let sep =
    String.concat "-+-" (List.map (fun w -> String.make (min 40 w) '-') widths)
  in
  let body = List.map line rows in
  let footer =
    if Relation.cardinality rel > max_rows then
      [ Printf.sprintf "... (%d rows total)" (Relation.cardinality rel) ]
    else [ Printf.sprintf "(%d rows)" (Relation.cardinality rel) ]
  in
  String.concat "\n" ((line cols :: sep :: body) @ footer)
