(** Tokenizer for the warehouse's SQL subset (§4.6 "querying allows full
    SQL queries on the schemata as imported" — here: SELECT / JOIN / WHERE /
    ORDER BY / LIMIT). *)

type token =
  | Ident of string  (** possibly qualified: a, t.a, src.t.a *)
  | String_lit of string
  | Number_lit of float
  | Comma
  | Star
  | Lparen
  | Rparen
  | Eq
  | Neq
  | Lt
  | Gt
  | Le
  | Ge
  | Kw of string  (** uppercased keyword: SELECT, FROM, ... *)

exception Lex_error of string

val keywords : string list

val tokenize : string -> token list
(** @raise Lex_error on unterminated strings or stray characters. *)

val pp_token : Format.formatter -> token -> unit
