(** Path-based ranking between objects in the link graph.

    §6: "query results can be ordered based on the number, consistency, and
    length of different paths between two objects" (cf. BioFast
    [BLM+04]). The relatedness of two objects aggregates every simple path
    up to a depth bound: each path contributes the product of its link
    confidences, discounted by length. *)

open Aladin_links

type t

val build : Link.t list -> t
(** Undirected multigraph over the links (all kinds). *)

val neighbors : t -> Objref.t -> (Objref.t * Link.t) list

val relatedness : ?max_depth:int -> ?decay:float -> t -> Objref.t -> Objref.t -> float
(** Sum over simple paths (length <= [max_depth], default 3) of
    [decay^(len-1) * prod confidence] with [decay] default 0.5. 0 when
    unconnected. *)

val rank_from :
  ?max_depth:int -> ?decay:float -> t -> Objref.t -> (Objref.t * float) list
(** All objects reachable within [max_depth], by descending relatedness. *)
