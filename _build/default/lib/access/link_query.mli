(** Queries across the web of objects (§6 conclusions).

    "Consider a query for all genes of a certain species on a certain
    chromosome that are connected to a disease via a protein whose function
    is known." No mediated schema exists, so such queries traverse the
    discovered link graph: start from a set of objects (usually produced by
    SQL or search) and follow a sequence of typed link steps; results carry
    their evidence paths and a confidence score. *)

open Aladin_links

type step = {
  kinds : Link.kind list;  (** acceptable link kinds; [] = any *)
  target_source : string option;  (** restrict the step's endpoint *)
  min_confidence : float;  (** per-link threshold (default 0.0) *)
}

val step : ?kinds:Link.kind list -> ?target_source:string -> ?min_confidence:float -> unit -> step

type hit = {
  endpoint : Objref.t;
  path : Link.t list;  (** one witness path, start -> endpoint *)
  score : float;  (** product of link confidences along the path *)
  start : Objref.t;
}

type t

val create : Link.t list -> t

val run : t -> start:Objref.t list -> steps:step list -> hit list
(** Traverse (links are followed in both directions); objects are never
    revisited within one path. One hit per (start, endpoint) pair, keeping
    the best-scoring witness; descending score. With [steps = []] every
    start object is its own hit. *)

val reachable_count : t -> Objref.t -> int
(** Objects connected by at least one link (degree), for diagnostics. *)
