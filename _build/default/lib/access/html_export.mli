(** Static-site export of the object web.

    §1: "The discovered objects correspond to Web pages, and the discovered
    links correspond to HTML links. Users may traverse this web of
    biological objects using a generic front-end very much like they travel
    the web using their browser." This module materializes that analogy:
    one HTML page per primary object with its fields, annotations,
    duplicates (conflicts highlighted) and hyperlinked discovered links,
    plus an index page per source. *)

open Aladin_links

val page_filename : Objref.t -> string
(** Stable, filesystem-safe file name for an object's page. *)

val object_page : Browser.t -> Browser.view -> string
(** Standalone HTML document for one object. *)

val index_page : Browser.t -> string
(** The site's entry page: objects grouped by source. *)

val write_site : Browser.t -> dir:string -> int
(** Write index.html plus one page per object into [dir] (created when
    missing). Returns the number of object pages written. *)

val escape_html : string -> string
