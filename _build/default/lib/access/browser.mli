(** The generic browsing front-end (§4.6).

    "Users can follow not only cross-references, but all four types of
    relationships between objects: 1. Same relation [...] 2. Dependency
    [...] 3. Duplicates [...] Conflicts are highlighted [...] 4. Linked."

    A {!view} is one object's page: its own fields, its annotations
    (secondary objects), its duplicates with highlighted conflicts, and its
    outgoing links. *)

open Aladin_links
open Aladin_metadata

type annotation = {
  relation : string;
  fields : (string * string) list;  (** (attribute, value) *)
}

type view = {
  obj : Objref.t;
  fields : (string * string) list;  (** the primary row *)
  annotations : annotation list;  (** rows of secondary relations owned *)
  siblings : Objref.t list;  (** neighbours within the same relation *)
  duplicates : (Objref.t * float) list;
  conflicts : Aladin_dup.Conflict.t list;
  linked : Link.t list;  (** non-duplicate links, best first *)
}

type t

val create : Profile_list.t -> Repository.t -> t

val view : t -> Objref.t -> view option
(** [None] for unknown objects. *)

val view_accession : t -> source:string -> string -> view option

val objects : t -> Objref.t list
(** Every browsable primary object. *)

val follow : t -> view -> int -> view option
(** Follow the [i]-th link of a view (0-based into [linked]). *)

val render : view -> string
(** Plain-text "page" for CLI browsing. *)
