(** Steps 2 + 3 of the ALADIN pipeline for one source: profile the data,
    guess constraints, pick the primary relation, and map out the secondary
    structure. The result is what the metadata repository stores per source
    and what link discovery consumes. *)

open Aladin_relational

type t = {
  profile : Profile.t;
  accession_candidates : Accession.candidate list;
  fks : Inclusion.fk list;
  graph : Fk_graph.t;
  primary : Primary.scored option;
  secondary : Secondary.t option;  (** [None] iff [primary] is [None] *)
}

val analyze :
  ?accession_params:Accession.params ->
  ?inclusion_params:Inclusion.params ->
  ?max_path_len:int ->
  Catalog.t ->
  t

val source : t -> string

val primary_relation : t -> string option

val primary_accession : t -> (string * string) option
(** (relation, attribute) of the primary accession number. *)

val unique_attributes : t -> (string * string) list

val with_primary : t -> relation:string -> t
(** Override the primary relation (used by the error-propagation experiment
    and by user feedback, §6.2); recomputes the secondary structure.
    @raise Invalid_argument when the relation lacks an accession candidate
    and has no attributes at all. *)

val pp : Format.formatter -> t -> unit
