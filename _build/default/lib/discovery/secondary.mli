(** Secondary-relation discovery (§4.3, step 3 of Figure 2).

    "We compute the path(s) from the primary relation to each of the other
    relations of the data source using transitivity of relationships,
    ignoring direction and cardinality. [...] If multiple paths exist, all
    are stored." Relations unreachable from the primary relation are
    reported as orphans — the paper expects none in practice. *)

type entry = {
  relation : string;
  paths : Fk_graph.path list;  (** shortest first *)
  depth : int;  (** length of a shortest path *)
  kind : [ `Annotation | `Bridge | `Dictionary ];
      (** [`Bridge]: a bare M:N connector (all attributes are FK endpoints);
          [`Dictionary]: a referenced lookup table (target of an equal-set
          FK); everything else is ordinary [`Annotation]. *)
}

type t = {
  primary : string;
  entries : entry list;  (** by depth, then name *)
  orphans : string list;  (** relations with no path to the primary *)
}

val discover : ?max_len:int -> Fk_graph.t -> primary:string -> t
(** [max_len] (default 6) bounds path search. *)

val annotation_relations : t -> string list

val pp : Format.formatter -> t -> unit
