(** Primary-relation discovery (§4.2, step 2 of Figure 2).

    "We choose as the primary relation the table with highest in-degree of
    all tables containing an accession number candidate." The multi-primary
    variant uses the paper's suggested refinement: relations whose in-degree
    exceeds the average in-degree by a margin. *)

type scored = {
  relation : string;
  accession_attribute : string;
  in_degree : int;
  score : float;  (** in-degree, with row count as a small tie-breaker *)
}

val rank : Fk_graph.t -> Accession.candidate list -> scored list
(** All accession-bearing relations, best first. Deterministic. *)

val choose : Fk_graph.t -> Accession.candidate list -> scored option
(** The single primary relation: the top of {!rank}. *)

val choose_multi :
  ?margin:float -> Fk_graph.t -> Accession.candidate list -> scored list
(** All accession-bearing relations whose in-degree is at least
    [margin] (default 0.5) above the graph's average in-degree; falls back
    to the single best when none clears the bar. For sources like EnsEmbl
    with two primary relations. *)
