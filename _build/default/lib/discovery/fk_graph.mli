(** The directed graph formed by (declared + guessed) foreign keys.

    Primary-relation discovery needs in-degrees ("the table with highest
    in-degree", §4.2); secondary-relation discovery needs paths ignoring
    direction (§4.3). *)

type t

type step = { fk : Inclusion.fk; forward : bool }
(** One traversal step; [forward] follows src -> dst. *)

type path = step list

val build : relations:string list -> Inclusion.fk list -> t

val relations : t -> string list

val fks : t -> Inclusion.fk list

val in_degree : t -> string -> int
(** Number of FK edges pointing at the relation. 0 for unknown names. *)

val out_degree : t -> string -> int

val average_in_degree : t -> float

val neighbors : t -> string -> (string * step) list
(** Adjacent relations ignoring direction, with the step taken. *)

val paths_from : t -> src:string -> max_len:int -> (string * path list) list
(** For every other relation reachable from [src] (ignoring direction): all
    shortest undirected paths, plus any longer simple paths up to
    [max_len]; capped at 8 paths per destination. *)

val connected_components : t -> string list list
(** Partition of the relations; each component sorted, components sorted by
    first member. *)
