open Aladin_relational

type content_class =
  | Surrogate_key
  | Accession_like
  | Foreign_key_like
  | Sequence
  | Long_text
  | Categorical
  | Other

let class_name = function
  | Surrogate_key -> "surrogate-key"
  | Accession_like -> "accession"
  | Foreign_key_like -> "foreign-key"
  | Sequence -> "sequence"
  | Long_text -> "text"
  | Categorical -> "categorical"
  | Other -> "other"

let norm = String.lowercase_ascii

let column_sample profile ~relation ~attribute n =
  let catalog = Profile.catalog profile in
  let rel = Catalog.find_exn catalog relation in
  let ai = Schema.index_of_exn (Relation.schema rel) attribute in
  let out = ref [] and count = ref 0 in
  (try
     Relation.iter_rows
       (fun row ->
         if !count >= n then raise Exit;
         let v = row.(ai) in
         if not (Value.is_null v) then begin
           out := Value.to_string v :: !out;
           incr count
         end)
       rel
   with Exit -> ());
  !out

let classify (sp : Source_profile.t) ~relation ~attribute =
  let cs = Profile.stats sp.profile ~relation ~attribute in
  let is_fk_source =
    List.exists
      (fun (fk : Inclusion.fk) ->
        norm fk.src_relation = norm relation && norm fk.src_attribute = norm attribute)
      sp.fks
  in
  let is_accession =
    List.exists
      (fun (c : Accession.candidate) ->
        norm c.relation = norm relation && norm c.attribute = norm attribute)
      sp.accession_candidates
  in
  (* sequence outranks accession candidacy: a long fixed-alphabet column
     can pass the per-relation accession rules yet clearly hold sequences *)
  if is_fk_source then Foreign_key_like
  else if
    cs.avg_len >= 20.0
    && Aladin_seq.Alphabet.classify_column
         (column_sample sp.profile ~relation ~attribute 50)
       <> None
  then Sequence
  else if is_accession then Accession_like
  else if cs.numeric_frac >= 0.99 && cs.all_unique then Surrogate_key
  else if cs.avg_len >= 30.0 && cs.alpha_frac >= 0.9 then Long_text
  else if cs.distinct > 0 && cs.distinct <= max 2 (cs.rows / 8) then Categorical
  else Other

let render (sp : Source_profile.t) =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let catalog = Profile.catalog sp.profile in
  add "data profile of source %s\n" (Catalog.name catalog);
  List.iter
    (fun rel ->
      let relation = Relation.name rel in
      add "\n%s (%d rows)\n" relation (Relation.cardinality rel);
      add "  %-22s %7s %8s %6s %11s  %s\n" "attribute" "rows" "distinct"
        "null%" "len" "class";
      List.iter
        (fun attribute ->
          let cs = Profile.stats sp.profile ~relation ~attribute in
          let null_pct =
            if cs.rows = 0 then 0.0
            else 100.0 *. float_of_int cs.nulls /. float_of_int cs.rows
          in
          add "  %-22s %7d %8d %5.1f%% %4d..%-4d  %s\n" attribute cs.rows
            cs.distinct null_pct cs.min_len cs.max_len
            (class_name (classify sp ~relation ~attribute)))
        (Schema.names (Relation.schema rel)))
    (Catalog.relations catalog);
  (match Source_profile.primary_accession sp with
  | Some (rel, attr) -> add "\nprimary relation: %s (accession %s)\n" rel attr
  | None -> add "\nprimary relation: NOT FOUND\n");
  (match sp.secondary with
  | Some sec ->
      List.iter
        (fun (e : Secondary.entry) ->
          add "  %-22s depth %d, %d path(s), %s\n" e.relation e.depth
            (List.length e.paths)
            (match e.kind with
            | `Annotation -> "annotation"
            | `Bridge -> "bridge"
            | `Dictionary -> "dictionary"))
        sec.entries;
      List.iter (fun o -> add "  %-22s UNREACHABLE\n" o) sec.orphans
  | None -> ());
  Buffer.contents buf
