type step = { fk : Inclusion.fk; forward : bool }

type path = step list

type t = {
  relations : string list;  (* original casing, insertion order *)
  fks : Inclusion.fk list;
  adj : (string, (string * step) list) Hashtbl.t;  (* normalized name -> nbrs *)
  indeg : (string, int) Hashtbl.t;
  outdeg : (string, int) Hashtbl.t;
}

let norm = String.lowercase_ascii

let build ~relations fks =
  let adj = Hashtbl.create 16 in
  let indeg = Hashtbl.create 16 in
  let outdeg = Hashtbl.create 16 in
  let bump tbl k = Hashtbl.replace tbl k (1 + try Hashtbl.find tbl k with Not_found -> 0) in
  let add_adj k entry =
    Hashtbl.replace adj k (entry :: (try Hashtbl.find adj k with Not_found -> []))
  in
  List.iter
    (fun (fk : Inclusion.fk) ->
      let s = norm fk.src_relation and d = norm fk.dst_relation in
      bump indeg d;
      bump outdeg s;
      add_adj s (d, { fk; forward = true });
      add_adj d (s, { fk; forward = false }))
    fks;
  { relations; fks; adj; indeg; outdeg }

let relations t = t.relations

let fks t = t.fks

let in_degree t rel = try Hashtbl.find t.indeg (norm rel) with Not_found -> 0

let out_degree t rel = try Hashtbl.find t.outdeg (norm rel) with Not_found -> 0

let average_in_degree t =
  match t.relations with
  | [] -> 0.0
  | rels ->
      let total = List.fold_left (fun acc r -> acc + in_degree t r) 0 rels in
      float_of_int total /. float_of_int (List.length rels)

let neighbors t rel =
  try Hashtbl.find t.adj (norm rel) with Not_found -> []

let max_paths_per_dest = 8

(* depth-bounded DFS enumerating simple paths (no relation revisited) *)
let paths_from t ~src ~max_len =
  let found : (string, path list ref) Hashtbl.t = Hashtbl.create 16 in
  let record dest path =
    let entry =
      match Hashtbl.find_opt found dest with
      | Some l -> l
      | None ->
          let l = ref [] in
          Hashtbl.add found dest l;
          l
    in
    if List.length !entry < max_paths_per_dest then entry := path :: !entry
  in
  let rec dfs node visited path_rev depth =
    if depth < max_len then
      List.iter
        (fun (next, step) ->
          if not (List.mem next visited) then begin
            let path = List.rev (step :: path_rev) in
            record next path;
            dfs next (next :: visited) (step :: path_rev) (depth + 1)
          end)
        (neighbors t node)
  in
  let s = norm src in
  dfs s [ s ] [] 0;
  t.relations
  |> List.filter_map (fun rel ->
         let k = norm rel in
         if k = s then None
         else
           match Hashtbl.find_opt found k with
           | Some paths ->
               let sorted =
                 List.sort
                   (fun a b -> Int.compare (List.length a) (List.length b))
                   !paths
               in
               Some (rel, sorted)
           | None -> None)

let connected_components t =
  let seen = Hashtbl.create 16 in
  let component start =
    let members = ref [] in
    let rec visit node =
      if not (Hashtbl.mem seen node) then begin
        Hashtbl.add seen node ();
        members := node :: !members;
        List.iter (fun (next, _) -> visit next) (neighbors t node)
      end
    in
    visit start;
    !members
  in
  t.relations
  |> List.filter_map (fun rel ->
         let k = norm rel in
         if Hashtbl.mem seen k then None
         else begin
           let comp = component k in
           (* map back to original casing *)
           let originals =
             List.filter (fun r -> List.mem (norm r) comp) t.relations
           in
           Some (List.sort String.compare originals)
         end)
  |> List.sort (fun a b ->
         match (a, b) with
         | x :: _, y :: _ -> String.compare x y
         | [], _ -> -1
         | _, [] -> 1)
