open Aladin_relational

type t = {
  profile : Profile.t;
  accession_candidates : Accession.candidate list;
  fks : Inclusion.fk list;
  graph : Fk_graph.t;
  primary : Primary.scored option;
  secondary : Secondary.t option;
}

let analyze ?accession_params ?inclusion_params ?(max_path_len = 6) catalog =
  let profile = Profile.compute catalog in
  let accession_candidates = Accession.candidates ?params:accession_params profile in
  let fks = Inclusion.infer ?params:inclusion_params profile in
  let graph = Fk_graph.build ~relations:(Catalog.relation_names catalog) fks in
  let primary = Primary.choose graph accession_candidates in
  let secondary =
    Option.map
      (fun (p : Primary.scored) ->
        Secondary.discover ~max_len:max_path_len graph ~primary:p.relation)
      primary
  in
  { profile; accession_candidates; fks; graph; primary; secondary }

let source t = Profile.source t.profile

let primary_relation t =
  Option.map (fun (p : Primary.scored) -> p.relation) t.primary

let primary_accession t =
  Option.map
    (fun (p : Primary.scored) -> (p.relation, p.accession_attribute))
    t.primary

let unique_attributes t = Profile.unique_attributes t.profile

let with_primary t ~relation =
  let catalog = Profile.catalog t.profile in
  (match Catalog.find catalog relation with
  | Some _ -> ()
  | None ->
      invalid_arg
        (Printf.sprintf "Source_profile.with_primary: unknown relation %s" relation));
  let accession_attribute =
    match
      List.find_opt
        (fun (c : Accession.candidate) ->
          String.lowercase_ascii c.relation = String.lowercase_ascii relation)
        t.accession_candidates
    with
    | Some c -> c.attribute
    | None -> (
        (* fall back to the first unique attribute, then the first attribute *)
        match
          List.find_opt
            (fun (r, _) -> String.lowercase_ascii r = String.lowercase_ascii relation)
            (unique_attributes t)
        with
        | Some (_, a) -> a
        | None -> (
            match Catalog.find catalog relation with
            | Some rel -> (
                match Schema.names (Relation.schema rel) with
                | a :: _ -> a
                | [] ->
                    invalid_arg
                      "Source_profile.with_primary: relation has no attributes")
            | None -> assert false))
  in
  let primary =
    Some
      {
        Primary.relation;
        accession_attribute;
        in_degree = Fk_graph.in_degree t.graph relation;
        score = 0.0;
      }
  in
  let secondary = Some (Secondary.discover t.graph ~primary:relation) in
  { t with primary; secondary }

let pp ppf t =
  Format.fprintf ppf "@[<v>source %s" (source t);
  (match t.primary with
  | Some p ->
      Format.fprintf ppf "@,primary: %s (accession %s, in-degree %d)" p.relation
        p.accession_attribute p.in_degree
  | None -> Format.fprintf ppf "@,primary: NOT FOUND");
  Format.fprintf ppf "@,accession candidates:";
  List.iter
    (fun (c : Accession.candidate) ->
      Format.fprintf ppf "@,  %s.%s (avg len %.1f)" c.relation c.attribute c.avg_len)
    t.accession_candidates;
  Format.fprintf ppf "@,foreign keys:";
  List.iter (fun fk -> Format.fprintf ppf "@,  %a" Inclusion.pp_fk fk) t.fks;
  (match t.secondary with
  | Some s -> Format.fprintf ppf "@,%a" Secondary.pp s
  | None -> ());
  Format.fprintf ppf "@]"
