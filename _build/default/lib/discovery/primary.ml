type scored = {
  relation : string;
  accession_attribute : string;
  in_degree : int;
  score : float;
}

let rank graph candidates =
  candidates
  |> List.map (fun (c : Accession.candidate) ->
         let in_degree = Fk_graph.in_degree graph c.relation in
         (* the row count nudges ties toward the bigger table, which in
            life-science sources is the entry table, not a dictionary *)
         let score =
           float_of_int in_degree
           +. (float_of_int c.stats.rows /. 1_000_000.0)
         in
         { relation = c.relation; accession_attribute = c.attribute; in_degree; score })
  |> List.sort (fun a b ->
         match Float.compare b.score a.score with
         | 0 -> String.compare a.relation b.relation
         | c -> c)

let choose graph candidates =
  match rank graph candidates with [] -> None | best :: _ -> Some best

let choose_multi ?(margin = 0.5) graph candidates =
  let ranked = rank graph candidates in
  let avg = Fk_graph.average_in_degree graph in
  let above =
    List.filter (fun s -> float_of_int s.in_degree >= avg +. margin) ranked
  in
  match (above, ranked) with
  | [], [] -> []
  | [], best :: _ -> [ best ]
  | picked, _ -> picked
