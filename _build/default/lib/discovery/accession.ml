open Aladin_relational

type params = {
  min_length : int;
  max_length_spread : float;
  min_alpha_frac : float;
}

let default_params = { min_length = 4; max_length_spread = 0.2; min_alpha_frac = 1.0 }

type candidate = {
  relation : string;
  attribute : string;
  avg_len : float;
  stats : Col_stats.t;
}

let attribute_is_candidate ?(params = default_params) profile (cs : Col_stats.t) =
  Profile.is_unique profile ~relation:cs.relation ~attribute:cs.attribute
  && cs.rows > 0
  && cs.nulls = 0
  && cs.min_len >= params.min_length
  && cs.alpha_frac >= params.min_alpha_frac
  && Col_stats.length_spread cs <= params.max_length_spread

let candidates ?(params = default_params) profile =
  let by_relation : (string, candidate) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (cs : Col_stats.t) ->
      if attribute_is_candidate ~params profile cs then begin
        let cand =
          { relation = cs.relation; attribute = cs.attribute;
            avg_len = cs.avg_len; stats = cs }
        in
        match Hashtbl.find_opt by_relation cs.relation with
        | Some existing ->
            (* only the one with the longer average field length survives *)
            if cand.avg_len > existing.avg_len then
              Hashtbl.replace by_relation cs.relation cand
        | None ->
            Hashtbl.add by_relation cs.relation cand;
            order := cs.relation :: !order
      end)
    (Profile.all_stats profile);
  List.rev_map (fun rel -> Hashtbl.find by_relation rel) !order
