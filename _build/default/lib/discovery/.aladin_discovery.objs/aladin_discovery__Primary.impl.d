lib/discovery/primary.ml: Accession Fk_graph Float List String
