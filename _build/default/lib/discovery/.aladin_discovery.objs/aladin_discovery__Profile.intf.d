lib/discovery/profile.mli: Aladin_relational Catalog Col_stats Vset
