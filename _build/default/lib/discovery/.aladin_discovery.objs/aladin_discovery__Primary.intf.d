lib/discovery/primary.mli: Accession Fk_graph
