lib/discovery/profile_report.ml: Accession Aladin_relational Aladin_seq Array Buffer Catalog Inclusion List Printf Profile Relation Schema Secondary Source_profile String Value
