lib/discovery/source_profile.ml: Accession Aladin_relational Catalog Fk_graph Format Inclusion List Option Primary Printf Profile Relation Schema Secondary String
