lib/discovery/secondary.mli: Fk_graph Format
