lib/discovery/source_profile.mli: Accession Aladin_relational Catalog Fk_graph Format Inclusion Primary Profile Secondary
