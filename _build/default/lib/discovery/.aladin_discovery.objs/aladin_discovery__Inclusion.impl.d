lib/discovery/inclusion.ml: Aladin_relational Aladin_text Catalog Col_stats Constraint_def Float Format List Profile String Vset
