lib/discovery/accession.ml: Aladin_relational Col_stats Hashtbl List Profile
