lib/discovery/inclusion.mli: Format Profile
