lib/discovery/accession.mli: Aladin_relational Profile
