lib/discovery/profile.ml: Aladin_relational Catalog Col_stats Hashtbl List Relation String Vset
