lib/discovery/fk_graph.ml: Hashtbl Inclusion Int List String
