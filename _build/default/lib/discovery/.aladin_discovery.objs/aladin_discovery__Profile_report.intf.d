lib/discovery/profile_report.mli: Source_profile
