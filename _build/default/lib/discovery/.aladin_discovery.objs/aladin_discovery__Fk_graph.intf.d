lib/discovery/fk_graph.mli: Inclusion
