lib/discovery/secondary.ml: Fk_graph Format Inclusion Int List String
