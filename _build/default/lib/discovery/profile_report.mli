(** Human-readable data-profiling report for one analyzed source — the
    "statistical metadata" of the repository surfaced for inspection: per
    attribute the §4.2 statistics, key candidacy, and the content class
    link discovery will assign to it. *)

type content_class =
  | Surrogate_key  (** pure integers, unique *)
  | Accession_like  (** passed the accession-number rules *)
  | Foreign_key_like  (** source of an inferred/declared FK *)
  | Sequence  (** fixed biological alphabet *)
  | Long_text  (** description-style prose *)
  | Categorical  (** few distinct values *)
  | Other

val class_name : content_class -> string

val classify :
  Source_profile.t -> relation:string -> attribute:string -> content_class
(** Priority order: FK source > accession > surrogate > sequence > text >
    categorical. @raise Not_found on unknown attributes. *)

val render : Source_profile.t -> string
(** The full report: per relation, one line per attribute with rows,
    distinct count, null fraction, length range and content class; then the
    discovered primary/secondary summary. *)
