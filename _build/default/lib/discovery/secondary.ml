type entry = {
  relation : string;
  paths : Fk_graph.path list;
  depth : int;
  kind : [ `Annotation | `Bridge | `Dictionary ];
}

type t = {
  primary : string;
  entries : entry list;
  orphans : string list;
}

let norm = String.lowercase_ascii

(* a bridge table has >= 2 outgoing FKs and every attribute of it that
   appears in the FK graph is an FK source; we approximate "all attributes"
   with "at least two outgoing and no incoming" *)
let kind_of graph relation =
  let outgoing = Fk_graph.out_degree graph relation in
  let incoming = Fk_graph.in_degree graph relation in
  if outgoing >= 2 && incoming = 0 then `Bridge
  else begin
    let dictionary =
      List.exists
        (fun (fk : Inclusion.fk) ->
          norm fk.dst_relation = norm relation
          && fk.cardinality = Inclusion.One_to_one)
        (Fk_graph.fks graph)
      && outgoing = 0
    in
    if dictionary then `Dictionary else `Annotation
  end

let discover ?(max_len = 6) graph ~primary =
  let reachable = Fk_graph.paths_from graph ~src:primary ~max_len in
  let entries =
    List.map
      (fun (relation, paths) ->
        let depth =
          match paths with [] -> max_len | p :: _ -> List.length p
        in
        { relation; paths; depth; kind = kind_of graph relation })
      reachable
    |> List.sort (fun a b ->
           match Int.compare a.depth b.depth with
           | 0 -> String.compare a.relation b.relation
           | c -> c)
  in
  let covered = norm primary :: List.map (fun e -> norm e.relation) entries in
  let orphans =
    List.filter
      (fun rel -> not (List.mem (norm rel) covered))
      (Fk_graph.relations graph)
    |> List.sort String.compare
  in
  { primary; entries; orphans }

let annotation_relations t =
  List.filter_map
    (fun e -> match e.kind with `Annotation -> Some e.relation | `Bridge | `Dictionary -> None)
    t.entries

let pp ppf t =
  Format.fprintf ppf "@[<v>primary %s" t.primary;
  List.iter
    (fun e ->
      Format.fprintf ppf "@,  %s depth=%d paths=%d kind=%s" e.relation e.depth
        (List.length e.paths)
        (match e.kind with
        | `Annotation -> "annotation"
        | `Bridge -> "bridge"
        | `Dictionary -> "dictionary"))
    t.entries;
  List.iter (fun o -> Format.fprintf ppf "@,  orphan %s" o) t.orphans;
  Format.fprintf ppf "@]"
