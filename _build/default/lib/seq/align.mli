(** Pairwise sequence alignment: Needleman-Wunsch (global) and
    Smith-Waterman (local), with linear gap penalties.

    These are the verification kernels behind homology-based link discovery
    (the paper's BLAST role, §4.4). *)

type result = {
  score : int;
  query_aligned : string;  (** with '-' gaps *)
  subject_aligned : string;
  identity : float;  (** matching positions / alignment length; 0 if empty *)
  query_span : int * int;  (** [start, stop) in the query of the alignment *)
  subject_span : int * int;
}

val global : ?matrix:Subst_matrix.t -> ?gap:int -> string -> string -> result
(** Needleman-Wunsch. [gap] defaults to the matrix's gap-open penalty. *)

val local : ?matrix:Subst_matrix.t -> ?gap:int -> string -> string -> result
(** Smith-Waterman; score is never negative. The default matrix is
    {!Subst_matrix.nucleotide}. *)

val local_score : ?matrix:Subst_matrix.t -> ?gap:int -> string -> string -> int
(** Score-only Smith-Waterman in O(min(n,m)) space — used in the inner loop
    of homology search where the traceback is not needed. *)

val normalized_score : result -> query:string -> subject:string -> float
(** Score divided by the self-alignment score of the shorter input — 1.0 for
    identical sequences, approaching 0 for unrelated ones. *)
