type result = {
  score : int;
  query_aligned : string;
  subject_aligned : string;
  identity : float;
  query_span : int * int;
  subject_span : int * int;
}

type op = Stop | Diag | Up | Left

let identity_of qa sa =
  let n = String.length qa in
  if n = 0 then 0.0
  else begin
    let same = ref 0 in
    for i = 0 to n - 1 do
      if qa.[i] = sa.[i] && qa.[i] <> '-' then incr same
    done;
    float_of_int !same /. float_of_int n
  end

(* Shared dynamic program. [local] selects Smith-Waterman semantics:
   cells clamp at 0 and traceback starts at the best cell. *)
let run ~local ~matrix ~gap q s =
  let n = String.length q and m = String.length s in
  let score = Array.make_matrix (n + 1) (m + 1) 0 in
  let trace = Array.make_matrix (n + 1) (m + 1) Stop in
  if not local then begin
    for i = 1 to n do
      score.(i).(0) <- i * gap;
      trace.(i).(0) <- Up
    done;
    for j = 1 to m do
      score.(0).(j) <- j * gap;
      trace.(0).(j) <- Left
    done
  end;
  let best = ref 0 and best_i = ref 0 and best_j = ref 0 in
  for i = 1 to n do
    for j = 1 to m do
      let d = score.(i - 1).(j - 1) + Subst_matrix.score matrix q.[i - 1] s.[j - 1] in
      let u = score.(i - 1).(j) + gap in
      let l = score.(i).(j - 1) + gap in
      let v, t =
        if d >= u && d >= l then (d, Diag)
        else if u >= l then (u, Up)
        else (l, Left)
      in
      let v, t = if local && v < 0 then (0, Stop) else (v, t) in
      score.(i).(j) <- v;
      trace.(i).(j) <- t;
      if local && v > !best then begin
        best := v;
        best_i := i;
        best_j := j
      end
    done
  done;
  let start_i, start_j, final_score =
    if local then (!best_i, !best_j, !best) else (n, m, score.(n).(m))
  in
  let qa = Buffer.create 32 and sa = Buffer.create 32 in
  let rec back i j =
    match trace.(i).(j) with
    | Stop -> (i, j)
    | Diag ->
        Buffer.add_char qa q.[i - 1];
        Buffer.add_char sa s.[j - 1];
        back (i - 1) (j - 1)
    | Up ->
        Buffer.add_char qa q.[i - 1];
        Buffer.add_char sa '-';
        back (i - 1) j
    | Left ->
        Buffer.add_char qa '-';
        Buffer.add_char sa s.[j - 1];
        back i (j - 1)
  in
  let end_i, end_j = back start_i start_j in
  let rev buf =
    let s = Buffer.contents buf in
    String.init (String.length s) (fun i -> s.[String.length s - 1 - i])
  in
  let query_aligned = rev qa and subject_aligned = rev sa in
  {
    score = final_score;
    query_aligned;
    subject_aligned;
    identity = identity_of query_aligned subject_aligned;
    query_span = (end_i, start_i);
    subject_span = (end_j, start_j);
  }

let global ?(matrix = Subst_matrix.nucleotide) ?gap q s =
  let gap = Option.value gap ~default:(Subst_matrix.gap_open matrix) in
  run ~local:false ~matrix ~gap q s

let local ?(matrix = Subst_matrix.nucleotide) ?gap q s =
  let gap = Option.value gap ~default:(Subst_matrix.gap_open matrix) in
  run ~local:true ~matrix ~gap q s

let local_score ?(matrix = Subst_matrix.nucleotide) ?gap q s =
  let gap = Option.value gap ~default:(Subst_matrix.gap_open matrix) in
  let q, s = if String.length q <= String.length s then (s, q) else (q, s) in
  let tbl = Subst_matrix.table matrix in
  let m = String.length s in
  let prev = Array.make (m + 1) 0 in
  let cur = Array.make (m + 1) 0 in
  let best = ref 0 in
  for i = 1 to String.length q do
    cur.(0) <- 0;
    let qrow = Char.code (String.unsafe_get q (i - 1)) * 256 in
    for j = 1 to m do
      let d =
        Array.unsafe_get prev (j - 1)
        + Array.unsafe_get tbl (qrow + Char.code (String.unsafe_get s (j - 1)))
      in
      let u = Array.unsafe_get prev j + gap in
      let l = Array.unsafe_get cur (j - 1) + gap in
      let v = max 0 (max d (max u l)) in
      Array.unsafe_set cur j v;
      if v > !best then best := v
    done;
    Array.blit cur 0 prev 0 (m + 1)
  done;
  !best

let self_score matrix s =
  let total = ref 0 in
  String.iter (fun c -> total := !total + Subst_matrix.score matrix c c) s;
  !total

let normalized_score result ~query ~subject =
  let shorter =
    if String.length query <= String.length subject then query else subject
  in
  (* normalize against a nucleotide-style perfect score when the result came
     from the default matrix; callers with protein matrices should compare
     normalized scores only among themselves *)
  let denom = self_score Subst_matrix.nucleotide shorter in
  if denom <= 0 then 0.0
  else Float.max 0.0 (float_of_int result.score /. float_of_int denom)
