(** Biological sequence alphabets and sequence-field detection.

    §4.4 of the paper: "Finding sequence fields is simple, as those contain
    only strings over a fixed alphabet (A, C, T, G for genes)." *)

type kind = Dna | Rna | Protein

val dna : string
(** "ACGT" *)

val rna : string
(** "ACGU" *)

val protein : string
(** The 20 standard amino-acid one-letter codes. *)

val normalize : string -> string
(** Uppercase and strip whitespace/newlines — flat files wrap sequences. *)

val is_over : alphabet:string -> string -> bool
(** After normalization, every character is in [alphabet]; empty is false. *)

val classify : ?min_len:int -> string -> kind option
(** Detect the alphabet of a (normalized) string. DNA wins over protein for
    ACGT-only strings; [min_len] (default 10) guards against short words like
    "CAT" being taken for sequences. *)

val classify_column : ?min_len:int -> ?min_frac:float -> string list -> kind option
(** A column is a sequence field when at least [min_frac] (default 0.9) of
    its non-empty values classify to the same kind. *)

val gc_content : string -> float
(** Fraction of G/C in a normalized DNA string; 0 on empty. *)

val reverse_complement : string -> string
(** DNA reverse complement. @raise Invalid_argument on non-DNA letters. *)
