(** Substitution scoring.

    Nucleotides use a simple match/mismatch model (BLASTN defaults);
    proteins use BLOSUM62. *)

type t

val nucleotide : t
(** +5 match / -4 mismatch (BLASTN-like). *)

val blosum62 : t
(** The standard BLOSUM62 matrix over the 20 amino acids. Unknown letters
    score as the worst mismatch (-4). *)

val score : t -> char -> char -> int

val table : t -> int array
(** Flat 256x256 score table ([code a * 256 + code b]), built once per
    matrix — the allocation-free fast path for alignment inner loops. *)

val for_kind : Alphabet.kind -> t

val gap_open : t -> int
(** Suggested gap-open penalty (negative). *)

val gap_extend : t -> int
(** Suggested gap-extension penalty (negative). *)
