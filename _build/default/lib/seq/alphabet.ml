type kind = Dna | Rna | Protein

let dna = "ACGT"

let rna = "ACGU"

let protein = "ACDEFGHIKLMNPQRSTVWY"

let normalize s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\n' | '\r' -> ()
      | 'a' .. 'z' -> Buffer.add_char buf (Char.uppercase_ascii c)
      | _ -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let is_over ~alphabet s =
  let s = normalize s in
  s <> "" && String.for_all (fun c -> String.contains alphabet c) s

let classify ?(min_len = 10) s =
  let s = normalize s in
  if String.length s < min_len then None
  else if is_over ~alphabet:dna s then Some Dna
  else if is_over ~alphabet:rna s then Some Rna
  else if is_over ~alphabet:protein s then Some Protein
  else None

let classify_column ?(min_len = 10) ?(min_frac = 0.9) values =
  let nonempty = List.filter (fun s -> normalize s <> "") values in
  match nonempty with
  | [] -> None
  | _ ->
      let total = List.length nonempty in
      let count k =
        List.length
          (List.filter (fun s -> classify ~min_len s = Some k) nonempty)
      in
      let candidates =
        [ (Dna, count Dna); (Rna, count Rna); (Protein, count Protein) ]
        |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
      in
      (match candidates with
      | (k, n) :: _ when float_of_int n >= min_frac *. float_of_int total ->
          Some k
      | _ -> None)

let gc_content s =
  let s = normalize s in
  if s = "" then 0.0
  else
    let gc = ref 0 in
    String.iter (fun c -> if c = 'G' || c = 'C' then incr gc) s;
    float_of_int !gc /. float_of_int (String.length s)

let reverse_complement s =
  let s = normalize s in
  let n = String.length s in
  String.init n (fun i ->
      match s.[n - 1 - i] with
      | 'A' -> 'T'
      | 'T' -> 'A'
      | 'G' -> 'C'
      | 'C' -> 'G'
      | c -> invalid_arg (Printf.sprintf "Alphabet.reverse_complement: %c" c))
