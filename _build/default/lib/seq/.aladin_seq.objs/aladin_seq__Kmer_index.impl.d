lib/seq/kmer_index.ml: Alphabet Hashtbl Int List String
