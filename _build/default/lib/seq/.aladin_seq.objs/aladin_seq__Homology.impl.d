lib/seq/homology.ml: Align Alphabet Float Kmer_index List Option String Subst_matrix
