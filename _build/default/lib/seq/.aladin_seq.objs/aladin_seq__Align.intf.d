lib/seq/align.mli: Subst_matrix
