lib/seq/alphabet.mli:
