lib/seq/kmer_index.mli:
