lib/seq/alphabet.ml: Buffer Char Int List Printf String
