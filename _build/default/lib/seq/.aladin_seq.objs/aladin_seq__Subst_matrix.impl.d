lib/seq/subst_matrix.ml: Alphabet Array Char String
