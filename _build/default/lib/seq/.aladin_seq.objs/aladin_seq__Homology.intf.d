lib/seq/homology.mli: Alphabet
