lib/seq/align.ml: Array Buffer Char Float Option String Subst_matrix
