lib/seq/subst_matrix.mli: Alphabet
