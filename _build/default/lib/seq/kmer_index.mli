(** K-mer inverted index over a collection of named sequences.

    The seeding stage of homology search: candidate subjects are those
    sharing at least [min_hits] k-mers with the query — only they are
    verified by alignment. *)

type t

val create : k:int -> t
(** @raise Invalid_argument when [k < 1]. *)

val k : t -> int

val add : t -> id:string -> string -> unit
(** Index a sequence under [id]. The sequence is normalized first.
    Sequences shorter than [k] are recorded but produce no k-mers. *)

val size : t -> int
(** Number of indexed sequences. *)

val sequence : t -> string -> string option

val ids : t -> string list

val kmers_of : k:int -> string -> string list
(** All overlapping k-mers of the normalized input (with duplicates). *)

val candidates : t -> ?min_hits:int -> string -> (string * int) list
(** Subjects sharing k-mers with the query, with the number of distinct
    shared k-mer positions, descending. [min_hits] defaults to 1. The query
    itself is included if indexed (callers filter self-hits). *)
