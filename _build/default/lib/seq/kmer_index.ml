type t = {
  k : int;
  postings : (string, string list ref) Hashtbl.t;  (* kmer -> ids *)
  sequences : (string, string) Hashtbl.t;
}

let create ~k =
  if k < 1 then invalid_arg "Kmer_index.create: k must be >= 1";
  { k; postings = Hashtbl.create 1024; sequences = Hashtbl.create 64 }

let k t = t.k

let kmers_of ~k s =
  let s = Alphabet.normalize s in
  let n = String.length s in
  if n < k then []
  else List.init (n - k + 1) (fun i -> String.sub s i k)

let distinct_kmers ~k s =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun km ->
      if Hashtbl.mem seen km then false
      else begin
        Hashtbl.add seen km ();
        true
      end)
    (kmers_of ~k s)

let add t ~id s =
  let s = Alphabet.normalize s in
  Hashtbl.replace t.sequences id s;
  List.iter
    (fun km ->
      match Hashtbl.find_opt t.postings km with
      | Some ids -> if List.hd !ids <> id then ids := id :: !ids
      | None -> Hashtbl.add t.postings km (ref [ id ]))
    (distinct_kmers ~k:t.k s)

let size t = Hashtbl.length t.sequences

let sequence t id = Hashtbl.find_opt t.sequences id

let ids t = Hashtbl.fold (fun id _ acc -> id :: acc) t.sequences []

let candidates t ?(min_hits = 1) query =
  let counts : (string, int ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun km ->
      match Hashtbl.find_opt t.postings km with
      | None -> ()
      | Some ids ->
          List.iter
            (fun id ->
              match Hashtbl.find_opt counts id with
              | Some c -> incr c
              | None -> Hashtbl.add counts id (ref 1))
            !ids)
    (distinct_kmers ~k:t.k query);
  Hashtbl.fold
    (fun id c acc -> if !c >= min_hits then (id, !c) :: acc else acc)
    counts []
  |> List.sort (fun (ida, a) (idb, b) ->
         match Int.compare b a with 0 -> String.compare ida idb | c -> c)
