type t = {
  lookup : char -> char -> int;
  gap_open : int;
  gap_extend : int;
  mutable table_cache : int array option;
}

let nucleotide =
  let lookup a b =
    let a = Char.uppercase_ascii a and b = Char.uppercase_ascii b in
    if a = b then 5 else -4
  in
  { lookup; gap_open = -8; gap_extend = -2; table_cache = None }

(* BLOSUM62, row/column order A R N D C Q E G H I L K M F P S T W Y V. *)
let blosum62_order = "ARNDCQEGHILKMFPSTWYV"

let blosum62_rows =
  [|
    [| 4; -1; -2; -2; 0; -1; -1; 0; -2; -1; -1; -1; -1; -2; -1; 1; 0; -3; -2; 0 |];
    [| -1; 5; 0; -2; -3; 1; 0; -2; 0; -3; -2; 2; -1; -3; -2; -1; -1; -3; -2; -3 |];
    [| -2; 0; 6; 1; -3; 0; 0; 0; 1; -3; -3; 0; -2; -3; -2; 1; 0; -4; -2; -3 |];
    [| -2; -2; 1; 6; -3; 0; 2; -1; -1; -3; -4; -1; -3; -3; -1; 0; -1; -4; -3; -3 |];
    [| 0; -3; -3; -3; 9; -3; -4; -3; -3; -1; -1; -3; -1; -2; -3; -1; -1; -2; -2; -1 |];
    [| -1; 1; 0; 0; -3; 5; 2; -2; 0; -3; -2; 1; 0; -3; -1; 0; -1; -2; -1; -2 |];
    [| -1; 0; 0; 2; -4; 2; 5; -2; 0; -3; -3; 1; -2; -3; -1; 0; -1; -3; -2; -2 |];
    [| 0; -2; 0; -1; -3; -2; -2; 6; -2; -4; -4; -2; -3; -3; -2; 0; -2; -2; -3; -3 |];
    [| -2; 0; 1; -1; -3; 0; 0; -2; 8; -3; -3; -1; -2; -1; -2; -1; -2; -2; 2; -3 |];
    [| -1; -3; -3; -3; -1; -3; -3; -4; -3; 4; 2; -3; 1; 0; -3; -2; -1; -3; -1; 3 |];
    [| -1; -2; -3; -4; -1; -2; -3; -4; -3; 2; 4; -2; 2; 0; -3; -2; -1; -2; -1; 1 |];
    [| -1; 2; 0; -1; -3; 1; 1; -2; -1; -3; -2; 5; -1; -3; -1; 0; -1; -3; -2; -2 |];
    [| -1; -1; -2; -3; -1; 0; -2; -3; -2; 1; 2; -1; 5; 0; -2; -1; -1; -1; -1; 1 |];
    [| -2; -3; -3; -3; -2; -3; -3; -3; -1; 0; 0; -3; 0; 6; -4; -2; -2; 1; 3; -1 |];
    [| -1; -2; -2; -1; -3; -1; -1; -2; -2; -3; -3; -1; -2; -4; 7; -1; -1; -4; -3; -2 |];
    [| 1; -1; 1; 0; -1; 0; 0; 0; -1; -2; -2; 0; -1; -2; -1; 4; 1; -3; -2; -2 |];
    [| 0; -1; 0; -1; -1; -1; -1; -2; -2; -1; -1; -1; -1; -2; -1; 1; 5; -2; -2; 0 |];
    [| -3; -3; -4; -4; -2; -2; -3; -2; -2; -3; -2; -3; -1; 1; -4; -3; -2; 11; 2; -3 |];
    [| -2; -2; -2; -3; -2; -1; -2; -3; 2; -1; -1; -2; -1; 3; -3; -2; -2; 2; 7; -2 |];
    [| 0; -3; -3; -3; -1; -2; -2; -3; -3; 3; 1; -2; 1; -1; -2; -2; 0; -3; -2; 4 |];
  |]

let blosum62 =
  let index = Array.make 256 (-1) in
  String.iteri (fun i c -> index.(Char.code c) <- i) blosum62_order;
  let lookup a b =
    let ia = index.(Char.code (Char.uppercase_ascii a)) in
    let ib = index.(Char.code (Char.uppercase_ascii b)) in
    if ia < 0 || ib < 0 then -4 else blosum62_rows.(ia).(ib)
  in
  { lookup; gap_open = -11; gap_extend = -1; table_cache = None }

let score t a b = t.lookup a b

let table t =
  match t.table_cache with
  | Some tbl -> tbl
  | None ->
      let tbl = Array.make (256 * 256) 0 in
      for a = 0 to 255 do
        for b = 0 to 255 do
          tbl.((a * 256) + b) <- t.lookup (Char.chr a) (Char.chr b)
        done
      done;
      t.table_cache <- Some tbl;
      tbl

let for_kind = function
  | Alphabet.Dna | Alphabet.Rna -> nucleotide
  | Alphabet.Protein -> blosum62

let gap_open t = t.gap_open

let gap_extend t = t.gap_extend
