lib/core/feedback.mli: Aladin_discovery Aladin_links Inclusion Link
