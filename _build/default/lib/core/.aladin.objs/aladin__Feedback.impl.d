lib/core/feedback.ml: Aladin_discovery Aladin_links Aladin_metadata Buffer Hashtbl Inclusion Link List Objref Printf String
