lib/core/aladin_system.ml: Aladin_discovery Aladin_formats Aladin_links Aladin_relational Buffer Catalog Filename Link Linker List Printf Profile Source_profile String Sys Warehouse
