lib/core/config.ml: Accession Aladin_discovery Aladin_dup Aladin_links Dup_detect Inclusion Linker List Printf String
