lib/core/config.mli: Accession Aladin_discovery Aladin_dup Aladin_links Dup_detect Inclusion Linker
