lib/core/shell.mli: Warehouse
