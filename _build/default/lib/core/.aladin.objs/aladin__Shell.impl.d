lib/core/shell.ml: Aladin_access Aladin_links Aladin_metadata Aladin_system Browser Format Link List Objref Printf Search Sql_eval Sql_lexer Sql_parser String Warehouse
