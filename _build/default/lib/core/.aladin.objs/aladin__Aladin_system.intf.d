lib/core/aladin_system.mli: Aladin_relational Catalog Config Warehouse
