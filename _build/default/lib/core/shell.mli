(** The interactive front-end: a small command language over a warehouse
    (the "generic front-end" of §1 in terminal form). Pure interpreter —
    the CLI wraps it in a read-eval-print loop.

    Commands:
    {v
    help                         this list
    sources                      integrated sources + discovered primaries
    view <accession>             an object's page (resolves across sources)
    view <source> <accession>    disambiguated
    follow <n>                   follow link n of the last viewed object
    search <terms...>            ranked full-text search
    sql <query>                  SQL over the warehouse
    links <accession>            links of an object
    dups                         duplicate clusters
    reject <n>                   reject link n of the last viewed object
    save <dir>                   persist the warehouse
    quit                         leave
    v} *)

type t

val create : Warehouse.t -> t

val execute : t -> string -> [ `Output of string | `Quit ]
(** Run one command line; never raises (errors become [`Output]). State
    (the last viewed object) persists across calls. *)

val repl : t -> in_channel -> out_channel -> unit
(** Prompted loop until [quit] or EOF. *)
