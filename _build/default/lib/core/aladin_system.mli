(** Convenience facade: import-from-anything + integrate + report.

    [Aladin.Aladin_system] is what the examples and the CLI use; library
    users wanting control work with {!Warehouse} directly. *)

open Aladin_relational

val import_file : string -> Catalog.t
(** Sniff the format and import (step 1). The source name is the file
    basename without extension; a directory is loaded as a CSV dump. *)

val integrate_paths : ?config:Config.t -> string list -> Warehouse.t

val integrate_catalogs : ?config:Config.t -> Catalog.t list -> Warehouse.t

val summary : Warehouse.t -> string
(** Human-readable integration summary: per source the discovered primary
    relation and structure, then link and duplicate counts. *)

val timings_to_string : Warehouse.timing list -> string
