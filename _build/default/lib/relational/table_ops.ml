let select rel pred =
  let out =
    Relation.create ~name:(Relation.name rel ^ "_sel") (Relation.schema rel)
  in
  Relation.iter_rows (fun r -> if pred r then Relation.insert out r) rel;
  out

let project rel attrs =
  let schema = Relation.schema rel in
  let idxs =
    List.map
      (fun a ->
        match Schema.index_of schema a with
        | Some i -> i
        | None -> raise Not_found)
      attrs
  in
  let out_schema =
    Schema.make
      (List.map (fun i -> Schema.attribute schema i) idxs)
  in
  let out = Relation.create ~name:(Relation.name rel ^ "_proj") out_schema in
  Relation.iter_rows
    (fun r -> Relation.insert out (Array.of_list (List.map (fun i -> r.(i)) idxs)))
    rel;
  out

let distinct_rows rel =
  let seen = Hashtbl.create 64 in
  let out =
    Relation.create ~name:(Relation.name rel ^ "_dist") (Relation.schema rel)
  in
  Relation.iter_rows
    (fun r ->
      let key = String.concat "\x00" (Array.to_list (Array.map Value.to_string r)) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        Relation.insert out r
      end)
    rel;
  out

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

let qualified rel =
  Schema.rename (Relation.schema rel) ~prefix:(Relation.name rel ^ ".")

let hash_join ~left ~right ~on:(lattr, rattr) =
  let li = Schema.index_of_exn (Relation.schema left) lattr in
  let ri = Schema.index_of_exn (Relation.schema right) rattr in
  let index : Value.t array list Vtbl.t = Vtbl.create 256 in
  Relation.iter_rows
    (fun r ->
      let k = r.(ri) in
      if not (Value.is_null k) then
        Vtbl.replace index k (r :: (try Vtbl.find index k with Not_found -> [])))
    right;
  let out_schema = Schema.concat (qualified left) (qualified right) in
  let out =
    Relation.create
      ~name:(Relation.name left ^ "_join_" ^ Relation.name right)
      out_schema
  in
  Relation.iter_rows
    (fun lrow ->
      let k = lrow.(li) in
      if not (Value.is_null k) then
        match Vtbl.find_opt index k with
        | None -> ()
        | Some partners ->
            List.iter
              (fun rrow -> Relation.insert out (Array.append lrow rrow))
              partners)
    left;
  out

let semi_join ~left ~right ~on:(lattr, rattr) =
  let li = Schema.index_of_exn (Relation.schema left) lattr in
  let keys = Vset.of_column (Relation.column right rattr) in
  let out =
    Relation.create ~name:(Relation.name left ^ "_semi") (Relation.schema left)
  in
  Relation.iter_rows
    (fun r ->
      let k = r.(li) in
      if (not (Value.is_null k)) && Vset.mem keys k then Relation.insert out r)
    left;
  out

let union_compatible a b = Schema.equal (Relation.schema a) (Relation.schema b)

let union a b =
  if not (union_compatible a b) then
    invalid_arg "Table_ops.union: schemas are not union-compatible";
  let out =
    Relation.create
      ~name:(Relation.name a ^ "_union_" ^ Relation.name b)
      (Relation.schema a)
  in
  Relation.iter_rows (Relation.insert out) a;
  Relation.iter_rows (Relation.insert out) b;
  out

let sort_by rel attr =
  let i = Schema.index_of_exn (Relation.schema rel) attr in
  let rows = Array.of_list (Relation.rows rel) in
  Array.sort (fun a b -> Value.compare a.(i) b.(i)) rows;
  let out =
    Relation.create ~name:(Relation.name rel ^ "_sorted") (Relation.schema rel)
  in
  Array.iter (Relation.insert out) rows;
  out

let limit rel n =
  let out =
    Relation.create ~name:(Relation.name rel ^ "_limit") (Relation.schema rel)
  in
  (try
     Relation.iteri_rows
       (fun i r -> if i >= n then raise Exit else Relation.insert out r)
       rel
   with Exit -> ());
  out

let group_count rel attr =
  let i = Schema.index_of_exn (Relation.schema rel) attr in
  let counts : int ref Vtbl.t = Vtbl.create 64 in
  Relation.iter_rows
    (fun r ->
      let v = r.(i) in
      if not (Value.is_null v) then
        match Vtbl.find_opt counts v with
        | Some c -> incr c
        | None -> Vtbl.add counts v (ref 1))
    rel;
  Vtbl.fold (fun v c acc -> (v, !c) :: acc) counts []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

let value_set rel attr = Vset.of_column (Relation.column rel attr)
