(** Per-attribute statistics.

    §4.4 of the paper: "These statistics need to be computed only once for
    each data source and can then be reused for subsequently added data
    sources." The stats below feed accession detection, inclusion-dependency
    pruning, and link-discovery pruning. *)

type t = {
  relation : string;
  attribute : string;
  rows : int;  (** total rows, including nulls *)
  nulls : int;
  distinct : int;  (** distinct non-null values *)
  min_len : int;  (** over non-null rendered values; 0 when none *)
  max_len : int;
  avg_len : float;
  numeric_frac : float;  (** fraction of non-null values that are numeric *)
  alpha_frac : float;  (** fraction containing at least one letter *)
  all_unique : bool;  (** non-null values pairwise distinct, >= 1 of them *)
  sample : Value.t list;  (** up to [sample_size] distinct values *)
}

val sample_size : int

val of_column : relation:string -> attribute:string -> Value.t array -> t

val of_relation : Relation.t -> t list
(** One record per attribute, in schema order. *)

val length_spread : t -> float
(** [(max_len - min_len) / max 1 max_len] — the paper's "values differ by at
    most 20 percent in length" test uses this. 0 when the column is empty. *)

val pp : Format.formatter -> t -> unit
