(** In-memory relations (tables).

    A relation owns its schema and a growable set of rows. Rows are value
    arrays positionally aligned with the schema. *)

type t

val create : name:string -> Schema.t -> t

val name : t -> string

val schema : t -> Schema.t

val arity : t -> int

val cardinality : t -> int
(** Number of rows. *)

val insert : t -> Value.t array -> unit
(** @raise Invalid_argument on arity mismatch. *)

val insert_strings : t -> string list -> unit
(** Insert after [Value.of_string] inference on each field. *)

val row : t -> int -> Value.t array
(** @raise Invalid_argument out of bounds. *)

val iter_rows : (Value.t array -> unit) -> t -> unit

val iteri_rows : (int -> Value.t array -> unit) -> t -> unit

val fold_rows : ('acc -> Value.t array -> 'acc) -> 'acc -> t -> 'acc

val rows : t -> Value.t array list

val column : t -> string -> Value.t array
(** All values of the named attribute, in row order.
    @raise Not_found on unknown attribute. *)

val value : t -> int -> string -> Value.t
(** [value r i attr]: field [attr] of row [i]. *)

val find_row : t -> string -> Value.t -> Value.t array option
(** First row whose named attribute equals the value. *)

val distinct : t -> string -> Value.t list
(** Distinct non-null values of the attribute, unordered. *)

val distinct_count : t -> string -> int

val is_unique : t -> string -> bool
(** True when non-null values of the attribute are pairwise distinct and
    there is at least one row. This is the SQL-probe from §4.2 of the paper. *)

val pp : Format.formatter -> t -> unit
(** Render name, schema and up to 10 rows. *)
