type t =
  | Unique of { relation : string; attribute : string }
  | Primary_key of { relation : string; attribute : string }
  | Foreign_key of {
      src_relation : string;
      src_attribute : string;
      dst_relation : string;
      dst_attribute : string;
    }

let equal (a : t) (b : t) = a = b

let pp ppf = function
  | Unique { relation; attribute } ->
      Format.fprintf ppf "UNIQUE %s.%s" relation attribute
  | Primary_key { relation; attribute } ->
      Format.fprintf ppf "PRIMARY KEY %s.%s" relation attribute
  | Foreign_key { src_relation; src_attribute; dst_relation; dst_attribute } ->
      Format.fprintf ppf "FOREIGN KEY %s.%s -> %s.%s" src_relation src_attribute
        dst_relation dst_attribute

let relation_of = function
  | Unique { relation; _ } | Primary_key { relation; _ } -> relation
  | Foreign_key { src_relation; _ } -> src_relation

let is_unique_like = function
  | Unique _ | Primary_key _ -> true
  | Foreign_key _ -> false
