type 'a t = { mutable data : 'a array; mutable len : int }

let create ?(capacity = 16) () =
  { data = [||]; len = 0 }
  |> fun v ->
  ignore capacity;
  v

let length v = v.len

let is_empty v = v.len = 0

let check v i =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Vec: index %d out of bounds (length %d)" i v.len)

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let grow v x =
  let cap = Array.length v.data in
  let cap' = if cap = 0 then 16 else 2 * cap in
  let data = Array.make cap' x in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then None
  else begin
    v.len <- v.len - 1;
    Some v.data.(v.len)
  end

let clear v =
  v.data <- [||];
  v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let map f v =
  let out = create () in
  iter (fun x -> push out (f x)) v;
  out

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let for_all p v = not (exists (fun x -> not (p x)) v)

let filter p v =
  let out = create () in
  iter (fun x -> if p x then push out x) v;
  out

let find_opt p v =
  let rec loop i =
    if i >= v.len then None
    else if p v.data.(i) then Some v.data.(i)
    else loop (i + 1)
  in
  loop 0

let to_list v = List.init v.len (fun i -> v.data.(i))

let of_list xs =
  let v = create () in
  List.iter (push v) xs;
  v

let to_array v = Array.init v.len (fun i -> v.data.(i))

let of_array a =
  let v = create () in
  Array.iter (push v) a;
  v

let append dst src = iter (push dst) src

let sort cmp v =
  let a = to_array v in
  Array.sort cmp a;
  Array.blit a 0 v.data 0 v.len
