type t = {
  name : string;
  order : string Vec.t;
  by_name : (string, Relation.t) Hashtbl.t;
  mutable constraints : Constraint_def.t list;
}

let norm = String.lowercase_ascii

let create ~name =
  { name; order = Vec.create (); by_name = Hashtbl.create 16; constraints = [] }

let name t = t.name

let add t rel =
  let key = norm (Relation.name rel) in
  if Hashtbl.mem t.by_name key then
    invalid_arg
      (Printf.sprintf "Catalog.add: duplicate relation %S in source %s"
         (Relation.name rel) t.name);
  Hashtbl.add t.by_name key rel;
  Vec.push t.order key

let create_relation t ~name schema =
  let rel = Relation.create ~name schema in
  add t rel;
  rel

let find t rel_name = Hashtbl.find_opt t.by_name (norm rel_name)

let find_exn t rel_name =
  match find t rel_name with Some r -> r | None -> raise Not_found

let mem t rel_name = Hashtbl.mem t.by_name (norm rel_name)

let relations t =
  Vec.to_list t.order |> List.map (fun key -> Hashtbl.find t.by_name key)

let relation_names t = List.map Relation.name (relations t)

let check_attr t ~relation ~attribute ctx =
  match find t relation with
  | None ->
      invalid_arg
        (Printf.sprintf "Catalog.declare (%s): unknown relation %S" ctx relation)
  | Some rel ->
      if not (Schema.mem (Relation.schema rel) attribute) then
        invalid_arg
          (Printf.sprintf "Catalog.declare (%s): unknown attribute %s.%s" ctx
             relation attribute)

let declare t c =
  (match c with
  | Constraint_def.Unique { relation; attribute }
  | Constraint_def.Primary_key { relation; attribute } ->
      check_attr t ~relation ~attribute "unique"
  | Constraint_def.Foreign_key
      { src_relation; src_attribute; dst_relation; dst_attribute } ->
      check_attr t ~relation:src_relation ~attribute:src_attribute "fk-src";
      check_attr t ~relation:dst_relation ~attribute:dst_attribute "fk-dst");
  if not (List.exists (Constraint_def.equal c) t.constraints) then
    t.constraints <- c :: t.constraints

let constraints t = List.rev t.constraints

let declared_unique t ~relation ~attribute =
  List.exists
    (function
      | Constraint_def.Unique { relation = r; attribute = a }
      | Constraint_def.Primary_key { relation = r; attribute = a } ->
          norm r = norm relation && norm a = norm attribute
      | Constraint_def.Foreign_key _ -> false)
    t.constraints

let declared_fks t =
  List.filter
    (function Constraint_def.Foreign_key _ -> true | _ -> false)
    (constraints t)

let total_rows t =
  List.fold_left (fun acc r -> acc + Relation.cardinality r) 0 (relations t)

let pp ppf t =
  Format.fprintf ppf "@[<v>source %s (%d relations, %d rows)" t.name
    (List.length (relations t))
    (total_rows t);
  List.iter
    (fun r ->
      Format.fprintf ppf "@,  %s%a [%d]" (Relation.name r) Schema.pp
        (Relation.schema r) (Relation.cardinality r))
    (relations t);
  List.iter
    (fun c -> Format.fprintf ppf "@,  %a" Constraint_def.pp c)
    (constraints t);
  Format.fprintf ppf "@]"
