module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type t = unit Vtbl.t

let create ?(size = 64) () = Vtbl.create size

let add t v = if not (Vtbl.mem t v) then Vtbl.add t v ()

let mem t v = Vtbl.mem t v

let cardinal t = Vtbl.length t

let iter f t = Vtbl.iter (fun v () -> f v) t

let to_list t = Vtbl.fold (fun v () acc -> v :: acc) t []

let of_list vs =
  let t = create () in
  List.iter (add t) vs;
  t

let of_column values =
  let t = create ~size:(Array.length values) () in
  Array.iter (fun v -> if not (Value.is_null v) then add t v) values;
  t

let subset a b =
  cardinal a <= cardinal b
  &&
  let ok = ref true in
  (try iter (fun v -> if not (mem b v) then begin ok := false; raise Exit end) a
   with Exit -> ());
  !ok

let equal a b = cardinal a = cardinal b && subset a b

let inter_count a b =
  let small, large = if cardinal a <= cardinal b then (a, b) else (b, a) in
  let n = ref 0 in
  iter (fun v -> if mem large v then incr n) small;
  !n
