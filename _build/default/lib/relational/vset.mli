(** Hash sets of {!Value.t}, used everywhere value-overlap must be computed
    (inclusion dependencies, link discovery). *)

type t

val create : ?size:int -> unit -> t

val add : t -> Value.t -> unit

val mem : t -> Value.t -> bool

val cardinal : t -> int

val iter : (Value.t -> unit) -> t -> unit

val to_list : t -> Value.t list

val of_list : Value.t list -> t

val of_column : Value.t array -> t
(** Nulls are skipped. *)

val subset : t -> t -> bool
(** [subset a b]: every member of [a] is in [b]. *)

val equal : t -> t -> bool

val inter_count : t -> t -> int
(** Size of the intersection. *)
