type t = { name : string; schema : Schema.t; rows : Value.t array Vec.t }

let create ~name schema = { name; schema; rows = Vec.create () }

let name t = t.name

let schema t = t.schema

let arity t = Schema.arity t.schema

let cardinality t = Vec.length t.rows

let insert t row =
  if Array.length row <> arity t then
    invalid_arg
      (Printf.sprintf "Relation.insert: row arity %d <> schema arity %d in %s"
         (Array.length row) (arity t) t.name);
  Vec.push t.rows row

let insert_strings t fields =
  insert t (Array.of_list (List.map Value.of_string fields))

let row t i = Vec.get t.rows i

let iter_rows f t = Vec.iter f t.rows

let iteri_rows f t = Vec.iteri f t.rows

let fold_rows f acc t = Vec.fold_left f acc t.rows

let rows t = Vec.to_list t.rows

let col_index t attr =
  match Schema.index_of t.schema attr with
  | Some i -> i
  | None -> raise Not_found

let column t attr =
  let i = col_index t attr in
  Array.init (cardinality t) (fun r -> (Vec.get t.rows r).(i))

let value t i attr = (row t i).(col_index t attr)

let find_row t attr v =
  let i = col_index t attr in
  Vec.find_opt (fun r -> Value.equal r.(i) v) t.rows

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

let distinct t attr =
  let i = col_index t attr in
  let seen = Vtbl.create 64 in
  let out = ref [] in
  Vec.iter
    (fun r ->
      let v = r.(i) in
      if (not (Value.is_null v)) && not (Vtbl.mem seen v) then begin
        Vtbl.add seen v ();
        out := v :: !out
      end)
    t.rows;
  !out

let distinct_count t attr = List.length (distinct t attr)

let is_unique t attr =
  let i = col_index t attr in
  let seen = Vtbl.create 64 in
  let dup = ref false in
  let nonnull = ref 0 in
  Vec.iter
    (fun r ->
      let v = r.(i) in
      if not (Value.is_null v) then begin
        incr nonnull;
        if Vtbl.mem seen v then dup := true else Vtbl.add seen v ()
      end)
    t.rows;
  !nonnull > 0 && not !dup

let pp ppf t =
  Format.fprintf ppf "@[<v>%s %a [%d rows]" t.name Schema.pp t.schema (cardinality t);
  let limit = min 10 (cardinality t) in
  for i = 0 to limit - 1 do
    let cells = Array.to_list (row t i) in
    Format.fprintf ppf "@,  %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
         Value.pp)
      cells
  done;
  if cardinality t > limit then Format.fprintf ppf "@,  ...";
  Format.fprintf ppf "@]"
