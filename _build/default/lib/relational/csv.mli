(** Minimal RFC-4180-ish CSV reader/writer (relational dump files). *)

val parse_line : string -> string list
(** Split one record. Handles double-quoted fields with embedded commas and
    escaped quotes (""). Does not handle embedded newlines (dump files from
    the generators never produce them). *)

val escape_field : string -> string

val render_line : string list -> string

val read_string : string -> string list list
(** Whole document -> records. Blank lines are skipped. *)

val read_file : string -> string list list

val relation_of_records :
  name:string -> header:bool -> string list list -> Relation.t
(** First record is the header when [header]; otherwise attributes are named
    [c0..cn]. Values are type-inferred via {!Value.of_string}.
    @raise Invalid_argument on empty input with [header] or ragged rows. *)

val write_relation : Relation.t -> string
(** Header + rows as a CSV document. *)
