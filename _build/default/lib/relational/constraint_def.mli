(** Declared integrity constraints.

    ALADIN exploits constraints when the import parser provides them and
    infers the rest from data (§4.1–4.2). This module is the declared part:
    the data dictionary. *)

type t =
  | Unique of { relation : string; attribute : string }
  | Primary_key of { relation : string; attribute : string }
  | Foreign_key of {
      src_relation : string;
      src_attribute : string;
      dst_relation : string;
      dst_attribute : string;
    }

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val relation_of : t -> string
(** The relation the constraint is attached to (source side for FKs). *)

val is_unique_like : t -> bool
(** [Unique] and [Primary_key] both imply uniqueness. *)
