(** Atomic relational values.

    Life-science sources are text-centric, so parsing is conservative: a
    value only becomes numeric when the whole token is a number. *)

type ty = Tint | Tfloat | Ttext

type t =
  | Null
  | Int of int
  | Float of float
  | Text of string

val ty_of : t -> ty option
(** [None] for [Null]. *)

val ty_name : ty -> string

val compare : t -> t -> int
(** Total order: [Null] first, then ints and floats numerically (mixed
    comparisons are by numeric value), then text lexicographically. *)

val equal : t -> t -> bool

val hash : t -> int

val is_null : t -> bool

val to_string : t -> string
(** [Null] renders as the empty string. *)

val pp : Format.formatter -> t -> unit

val of_string : string -> t
(** Infer the tightest type: empty string and ["\\N"] become [Null], integer
    literals become [Int], float literals become [Float], everything else
    [Text]. Leading/trailing blanks are preserved in [Text]. *)

val text : string -> t
(** [Text s], without inference — for values that must stay strings even when
    they look numeric (e.g. accession numbers like ["1234"]). *)

val as_text : t -> string option

val as_int : t -> int option

val is_numeric : t -> bool
(** True for [Int] and [Float]. *)

val contains_alpha : t -> bool
(** True when the rendered value contains at least one non-digit,
    non-punctuation character — the paper's accession-number signal. *)

val length : t -> int
(** Length of the rendered value; 0 for [Null]. *)
