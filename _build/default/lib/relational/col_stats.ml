type t = {
  relation : string;
  attribute : string;
  rows : int;
  nulls : int;
  distinct : int;
  min_len : int;
  max_len : int;
  avg_len : float;
  numeric_frac : float;
  alpha_frac : float;
  all_unique : bool;
  sample : Value.t list;
}

let sample_size = 20

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

let of_column ~relation ~attribute values =
  let rows = Array.length values in
  let nulls = ref 0 in
  let seen = Vtbl.create 64 in
  let dup = ref false in
  let min_len = ref max_int in
  let max_len = ref 0 in
  let len_sum = ref 0 in
  let numeric = ref 0 in
  let alpha = ref 0 in
  let sample = ref [] in
  let nsample = ref 0 in
  Array.iter
    (fun v ->
      if Value.is_null v then incr nulls
      else begin
        let len = Value.length v in
        if len < !min_len then min_len := len;
        if len > !max_len then max_len := len;
        len_sum := !len_sum + len;
        if Value.is_numeric v then incr numeric;
        if Value.contains_alpha v then incr alpha;
        if Vtbl.mem seen v then dup := true
        else begin
          Vtbl.add seen v ();
          if !nsample < sample_size then begin
            sample := v :: !sample;
            incr nsample
          end
        end
      end)
    values;
  let nonnull = rows - !nulls in
  let frac n = if nonnull = 0 then 0.0 else float_of_int n /. float_of_int nonnull in
  {
    relation;
    attribute;
    rows;
    nulls = !nulls;
    distinct = Vtbl.length seen;
    min_len = (if nonnull = 0 then 0 else !min_len);
    max_len = !max_len;
    avg_len = frac !len_sum;
    numeric_frac = frac !numeric;
    alpha_frac = frac !alpha;
    all_unique = nonnull > 0 && not !dup;
    sample = List.rev !sample;
  }

let of_relation rel =
  let relation = Relation.name rel in
  Schema.names (Relation.schema rel)
  |> List.map (fun attribute ->
         of_column ~relation ~attribute (Relation.column rel attribute))

let length_spread t =
  if t.max_len = 0 then 0.0
  else float_of_int (t.max_len - t.min_len) /. float_of_int t.max_len

let pp ppf t =
  Format.fprintf ppf
    "%s.%s: rows=%d nulls=%d distinct=%d len=[%d..%d avg %.1f] numeric=%.2f alpha=%.2f unique=%b"
    t.relation t.attribute t.rows t.nulls t.distinct t.min_len t.max_len
    t.avg_len t.numeric_frac t.alpha_frac t.all_unique
