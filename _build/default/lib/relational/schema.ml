type attribute = { name : string; ty : Value.ty }

type t = { attrs : attribute array; index : (string, int) Hashtbl.t }

let norm = String.lowercase_ascii

let make attrs =
  let index = Hashtbl.create 16 in
  List.iteri
    (fun i a ->
      let key = norm a.name in
      if Hashtbl.mem index key then
        invalid_arg (Printf.sprintf "Schema.make: duplicate attribute %S" a.name);
      Hashtbl.add index key i)
    attrs;
  { attrs = Array.of_list attrs; index }

let of_names names = make (List.map (fun name -> { name; ty = Value.Ttext }) names)

let arity t = Array.length t.attrs

let attributes t = Array.to_list t.attrs

let names t = List.map (fun a -> a.name) (attributes t)

let attribute t i = t.attrs.(i)

let index_of t name = Hashtbl.find_opt t.index (norm name)

let index_of_exn t name =
  match index_of t name with Some i -> i | None -> raise Not_found

let mem t name = Hashtbl.mem t.index (norm name)

let ty_of t name =
  match index_of t name with Some i -> Some t.attrs.(i).ty | None -> None

let equal a b =
  arity a = arity b
  && Array.for_all2
       (fun x y -> norm x.name = norm y.name && x.ty = y.ty)
       a.attrs b.attrs

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf a -> Format.fprintf ppf "%s:%s" a.name (Value.ty_name a.ty)))
    (attributes t)

let rename t ~prefix =
  make (List.map (fun a -> { a with name = prefix ^ a.name }) (attributes t))

let concat a b = make (attributes a @ attributes b)
