(** A catalog: the relational representation of one imported data source.

    Holds named relations (insertion-ordered) plus whatever integrity
    constraints the importer could declare. *)

type t

val create : name:string -> t

val name : t -> string

val add : t -> Relation.t -> unit
(** @raise Invalid_argument on duplicate relation name. *)

val create_relation : t -> name:string -> Schema.t -> Relation.t
(** Create, register, and return a fresh relation. *)

val find : t -> string -> Relation.t option
(** Case-insensitive by relation name. *)

val find_exn : t -> string -> Relation.t
(** @raise Not_found *)

val mem : t -> string -> bool

val relations : t -> Relation.t list
(** In insertion order. *)

val relation_names : t -> string list

val declare : t -> Constraint_def.t -> unit
(** Record a constraint in the data dictionary. Referenced relations and
    attributes must exist. @raise Invalid_argument otherwise. *)

val constraints : t -> Constraint_def.t list

val declared_unique : t -> relation:string -> attribute:string -> bool
(** True when a UNIQUE or PRIMARY KEY constraint covers the attribute. *)

val declared_fks : t -> Constraint_def.t list
(** Only the foreign-key constraints. *)

val total_rows : t -> int

val pp : Format.formatter -> t -> unit
