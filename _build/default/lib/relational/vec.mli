(** Growable arrays.

    A small dynamic-array substrate used throughout the relational engine to
    accumulate rows without repeated list reversals. Amortized O(1) push. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Fresh empty vector. [capacity] is a hint, default 16. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get v i] is the [i]-th element. @raise Invalid_argument out of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument when out of bounds. *)

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the last element, if any. *)

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val map : ('a -> 'b) -> 'a t -> 'b t

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val for_all : ('a -> bool) -> 'a t -> bool

val filter : ('a -> bool) -> 'a t -> 'a t

val find_opt : ('a -> bool) -> 'a t -> 'a option

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t

val to_array : 'a t -> 'a array

val of_array : 'a array -> 'a t

val append : 'a t -> 'a t -> unit
(** [append dst src] pushes all of [src] onto [dst]. *)

val sort : ('a -> 'a -> int) -> 'a t -> unit
(** In-place sort of the live prefix. *)
