type ty = Tint | Tfloat | Ttext

type t =
  | Null
  | Int of int
  | Float of float
  | Text of string

let ty_of = function
  | Null -> None
  | Int _ -> Some Tint
  | Float _ -> Some Tfloat
  | Text _ -> Some Ttext

let ty_name = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Ttext -> "text"

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | (Int _ | Float _), Text _ -> -1
  | Text _, (Int _ | Float _) -> 1
  | Text x, Text y -> String.compare x y

let equal a b = compare a b = 0

let hash = function
  | Null -> 0
  | Int x -> Hashtbl.hash (1, x)
  | Float x ->
      if Float.is_integer x && Float.abs x < 1e15 then
        Hashtbl.hash (1, int_of_float x)
      else Hashtbl.hash (2, x)
  | Text s -> Hashtbl.hash (3, s)

let is_null = function Null -> true | Int _ | Float _ | Text _ -> false

let to_string = function
  | Null -> ""
  | Int x -> string_of_int x
  | Float x ->
      if Float.is_integer x && Float.abs x < 1e15 then
        Printf.sprintf "%.1f" x
      else string_of_float x
  | Text s -> s

let pp ppf v =
  match v with
  | Null -> Format.pp_print_string ppf "NULL"
  | Text s -> Format.fprintf ppf "%S" s
  | Int _ | Float _ -> Format.pp_print_string ppf (to_string v)

let is_int_literal s =
  let n = String.length s in
  if n = 0 then false
  else
    let start = if s.[0] = '-' || s.[0] = '+' then 1 else 0 in
    start < n
    &&
    let rec loop i = i >= n || (s.[i] >= '0' && s.[i] <= '9' && loop (i + 1)) in
    loop start

let is_float_literal s =
  match float_of_string_opt s with
  | None -> false
  | Some _ ->
      (* reject hex floats and "nan"/"inf" spellings: sources never use them *)
      String.for_all
        (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e' || c = 'E')
        s

let of_string s =
  if s = "" || s = "\\N" then Null
  else if is_int_literal s then
    match int_of_string_opt s with Some i -> Int i | None -> Text s
  else if is_float_literal s then Float (float_of_string s)
  else Text s

let text s = Text s

let as_text = function Text s -> Some s | Null | Int _ | Float _ -> None

let as_int = function Int i -> Some i | Null | Float _ | Text _ -> None

let is_numeric = function Int _ | Float _ -> true | Null | Text _ -> false

let contains_alpha v =
  let s = to_string v in
  String.exists (fun c -> (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) s

let length v = String.length (to_string v)
