(** Relation schemas: named, typed attribute lists. *)

type attribute = { name : string; ty : Value.ty }

type t

val make : attribute list -> t
(** @raise Invalid_argument on duplicate attribute names (case-insensitive). *)

val of_names : string list -> t
(** All attributes typed [Ttext]. *)

val arity : t -> int

val attributes : t -> attribute list

val names : t -> string list

val attribute : t -> int -> attribute

val index_of : t -> string -> int option
(** Case-insensitive lookup. *)

val index_of_exn : t -> string -> int
(** @raise Not_found when the attribute is absent. *)

val mem : t -> string -> bool

val ty_of : t -> string -> Value.ty option

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val rename : t -> prefix:string -> t
(** Prefix every attribute name, as in qualified join outputs. *)

val concat : t -> t -> t
(** Schema of a join output. @raise Invalid_argument on name clash. *)
