(** Relational algebra over {!Relation.t}.

    Every operation produces a fresh relation; inputs are never mutated. *)

val select : Relation.t -> (Value.t array -> bool) -> Relation.t
(** Rows satisfying the predicate; output keeps the input name + ["_sel"]. *)

val project : Relation.t -> string list -> Relation.t
(** Named attributes in the given order. Duplicates are NOT removed (bag
    semantics, like SQL). @raise Not_found on unknown attribute. *)

val distinct_rows : Relation.t -> Relation.t
(** Remove exact duplicate rows. *)

val hash_join :
  left:Relation.t ->
  right:Relation.t ->
  on:(string * string) ->
  Relation.t
(** Equi-join on [left_attr = right_attr]; the output schema qualifies every
    attribute with its relation of origin ("rel.attr"). Null keys never
    join. *)

val semi_join :
  left:Relation.t -> right:Relation.t -> on:(string * string) -> Relation.t
(** Left rows with at least one join partner. Output schema = left schema. *)

val union_compatible : Relation.t -> Relation.t -> bool

val union : Relation.t -> Relation.t -> Relation.t
(** Bag union. @raise Invalid_argument unless union-compatible. *)

val sort_by : Relation.t -> string -> Relation.t
(** Ascending by the named attribute ({!Value.compare}). *)

val limit : Relation.t -> int -> Relation.t

val group_count : Relation.t -> string -> (Value.t * int) list
(** Distinct values of the attribute with their multiplicities, descending
    by count. Nulls excluded. *)

val value_set : Relation.t -> string -> Vset.t
(** Distinct non-null values of a column, as a {!Vset.t}. *)
