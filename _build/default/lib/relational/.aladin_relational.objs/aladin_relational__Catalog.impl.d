lib/relational/catalog.ml: Constraint_def Format Hashtbl List Printf Relation Schema String Vec
