lib/relational/catalog.mli: Constraint_def Format Relation Schema
