lib/relational/constraint_def.mli: Format
