lib/relational/vec.mli:
