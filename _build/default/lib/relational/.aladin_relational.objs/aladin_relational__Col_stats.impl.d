lib/relational/col_stats.ml: Array Format Hashtbl List Relation Schema Value
