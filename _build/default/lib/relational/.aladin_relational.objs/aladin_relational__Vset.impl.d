lib/relational/vset.ml: Array Hashtbl List Value
