lib/relational/table_ops.mli: Relation Value Vset
