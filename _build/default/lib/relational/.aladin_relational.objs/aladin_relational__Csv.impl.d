lib/relational/csv.ml: Array Buffer List Printf Relation Schema String Value
