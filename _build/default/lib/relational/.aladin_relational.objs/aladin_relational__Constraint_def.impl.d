lib/relational/constraint_def.ml: Format
