lib/relational/relation.mli: Format Schema Value
