lib/relational/table_ops.ml: Array Hashtbl Int List Relation Schema String Value Vset
