lib/relational/vset.mli: Value
