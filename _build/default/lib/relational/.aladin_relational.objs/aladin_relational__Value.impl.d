lib/relational/value.ml: Float Format Hashtbl Int Printf String
