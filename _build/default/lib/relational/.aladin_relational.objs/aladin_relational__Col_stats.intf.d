lib/relational/col_stats.mli: Format Relation Value
