type corpus = {
  docs : (string, (string, int) Hashtbl.t) Hashtbl.t;  (* doc -> term counts *)
  df : (string, int) Hashtbl.t;  (* term -> document frequency *)
}

type vector = (string, float) Hashtbl.t

let corpus_create () = { docs = Hashtbl.create 64; df = Hashtbl.create 256 }

let term_counts text =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun w ->
      let c = try Hashtbl.find counts w with Not_found -> 0 in
      Hashtbl.replace counts w (c + 1))
    (Tokenize.terms text);
  counts

let remove_df c counts =
  Hashtbl.iter
    (fun term _ ->
      match Hashtbl.find_opt c.df term with
      | Some 1 -> Hashtbl.remove c.df term
      | Some n -> Hashtbl.replace c.df term (n - 1)
      | None -> ())
    counts

let corpus_add c ~doc_id text =
  (match Hashtbl.find_opt c.docs doc_id with
  | Some old -> remove_df c old
  | None -> ());
  let counts = term_counts text in
  Hashtbl.replace c.docs doc_id counts;
  Hashtbl.iter
    (fun term _ ->
      let d = try Hashtbl.find c.df term with Not_found -> 0 in
      Hashtbl.replace c.df term (d + 1))
    counts

let corpus_size c = Hashtbl.length c.docs

let doc_ids c = Hashtbl.fold (fun id _ acc -> id :: acc) c.docs []

let idf c term =
  let n = float_of_int (max 1 (corpus_size c)) in
  match Hashtbl.find_opt c.df term with
  | Some df when df > 0 -> Float.max 0.0 (log (n /. float_of_int df))
  | Some _ | None -> log (n +. 1.0)

let vector_of_counts c counts =
  let v : vector = Hashtbl.create (Hashtbl.length counts) in
  Hashtbl.iter
    (fun term tf ->
      let w = float_of_int tf *. idf c term in
      if w > 0.0 then Hashtbl.replace v term w)
    counts;
  v

let vector_of_doc c doc_id =
  Option.map (vector_of_counts c) (Hashtbl.find_opt c.docs doc_id)

let vector_of_text c text = vector_of_counts c (term_counts text)

let norm v = sqrt (Hashtbl.fold (fun _ w acc -> acc +. (w *. w)) v 0.0)

let cosine a b =
  let na = norm a and nb = norm b in
  if na = 0.0 || nb = 0.0 then 0.0
  else begin
    let small, large = if Hashtbl.length a <= Hashtbl.length b then (a, b) else (b, a) in
    let dot = ref 0.0 in
    Hashtbl.iter
      (fun term w ->
        match Hashtbl.find_opt large term with
        | Some w' -> dot := !dot +. (w *. w')
        | None -> ())
      small;
    !dot /. (na *. nb)
  end

let similar_docs c ~doc_id ~min_sim =
  match vector_of_doc c doc_id with
  | None -> []
  | Some v ->
      Hashtbl.fold
        (fun other counts acc ->
          if other = doc_id then acc
          else
            let sim = cosine v (vector_of_counts c counts) in
            if sim >= min_sim then (other, sim) :: acc else acc)
        c.docs []
      |> List.sort (fun (ida, a) (idb, b) ->
             match Float.compare b a with
             | 0 -> String.compare ida idb
             | cmp -> cmp)

let top_terms v n =
  Hashtbl.fold (fun term w acc -> (term, w) :: acc) v []
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
  |> List.filteri (fun i _ -> i < n)
