lib/textmine/strdist.mli:
