lib/textmine/entity_recog.ml: Float Hashtbl List String Tokenize
