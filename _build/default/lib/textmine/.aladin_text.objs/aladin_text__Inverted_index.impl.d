lib/textmine/inverted_index.ml: Float Hashtbl List String Tokenize
