lib/textmine/tokenize.mli: Hashtbl
