lib/textmine/tfidf.mli:
