lib/textmine/entity_recog.mli:
