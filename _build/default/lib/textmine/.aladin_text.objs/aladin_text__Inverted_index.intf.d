lib/textmine/inverted_index.mli:
