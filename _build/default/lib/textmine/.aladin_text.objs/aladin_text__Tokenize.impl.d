lib/textmine/tokenize.ml: Buffer Hashtbl List String
