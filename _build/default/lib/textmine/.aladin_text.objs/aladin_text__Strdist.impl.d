lib/textmine/strdist.ml: Array Hashtbl String
