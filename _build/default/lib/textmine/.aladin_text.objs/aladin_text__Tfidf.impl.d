lib/textmine/tfidf.ml: Float Hashtbl List Option String Tokenize
