(** String distances and similarities used by duplicate detection (§4.5)
    and cross-reference normalization (§4.4). *)

val levenshtein : string -> string -> int
(** Edit distance (insert/delete/substitute, unit costs). *)

val levenshtein_bounded : bound:int -> string -> string -> int option
(** [None] when the distance exceeds [bound]; early-exits on the band. *)

val similarity : string -> string -> float
(** [1 - levenshtein/max_len], in [0,1]; 1.0 when both empty. *)

val jaro_winkler : string -> string -> float
(** Jaro-Winkler similarity in [0,1] (prefix scale 0.1, max prefix 4). *)

val dice_bigrams : string -> string -> float
(** Dice coefficient over character bigrams; robust for accession-style
    strings. 1.0 when both have no bigrams. *)

val longest_common_substring : string -> string -> string
(** One longest common substring (leftmost in the first argument). Used to
    dig accession numbers out of encoded cross-references like
    ["Uniprot:P11140"]. *)

val contains : needle:string -> string -> bool
(** Substring test. An empty needle is contained everywhere. *)
