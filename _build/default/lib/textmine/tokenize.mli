(** Tokenization and normalization for description-style text fields. *)

val words : string -> string list
(** Lowercased maximal runs of letters/digits; punctuation splits. *)

val words_raw : string -> string list
(** Like {!words} but preserving case — entity recognition needs casing. *)

val stopword : string -> bool
(** Small English + bio-boilerplate stopword list ("the", "protein", ...). *)

val terms : string -> string list
(** {!words} minus stopwords and one-character tokens. *)

val ngrams : n:int -> string -> string list
(** Character n-grams of the lowercased input (no padding). *)

val token_set : string -> (string, unit) Hashtbl.t

val jaccard : string -> string -> float
(** Jaccard similarity of the {!terms} sets; 1.0 when both are empty. *)
