let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

let split_words s =
  let out = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter (fun c -> if is_word_char c then Buffer.add_char buf c else flush ()) s;
  flush ();
  List.rev !out

let words s = List.map String.lowercase_ascii (split_words s)

let words_raw s = split_words s

let stopwords =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun w -> Hashtbl.replace tbl w ())
    [
      "a"; "an"; "and"; "are"; "as"; "at"; "be"; "by"; "for"; "from"; "has";
      "in"; "is"; "it"; "its"; "of"; "on"; "or"; "that"; "the"; "this"; "to";
      "was"; "which"; "with"; "putative"; "probable"; "predicted";
      "hypothetical"; "uncharacterized"; "fragment"; "precursor";
    ];
  tbl

let stopword w = Hashtbl.mem stopwords (String.lowercase_ascii w)

let terms s =
  List.filter (fun w -> String.length w > 1 && not (stopword w)) (words s)

let ngrams ~n s =
  let s = String.lowercase_ascii s in
  let len = String.length s in
  if len < n then []
  else List.init (len - n + 1) (fun i -> String.sub s i n)

let token_set s =
  let tbl = Hashtbl.create 16 in
  List.iter (fun w -> Hashtbl.replace tbl w ()) (terms s);
  tbl

let jaccard a b =
  let sa = token_set a and sb = token_set b in
  let na = Hashtbl.length sa and nb = Hashtbl.length sb in
  if na = 0 && nb = 0 then 1.0
  else begin
    let inter = ref 0 in
    Hashtbl.iter (fun w () -> if Hashtbl.mem sb w then incr inter) sa;
    float_of_int !inter /. float_of_int (na + nb - !inter)
  end
