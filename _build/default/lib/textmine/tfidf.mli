(** TF-IDF document vectors and cosine similarity.

    Backs implicit text-similarity links (§4.4) and search ranking (§4.6). *)

type corpus

type vector

val corpus_create : unit -> corpus

val corpus_add : corpus -> doc_id:string -> string -> unit
(** Add (or replace) a document. Terms come from {!Tokenize.terms}. *)

val corpus_size : corpus -> int

val doc_ids : corpus -> string list

val vector_of_doc : corpus -> string -> vector option
(** TF-IDF vector of an indexed document. IDF = ln(N / df). *)

val vector_of_text : corpus -> string -> vector
(** Vector of arbitrary text against the corpus statistics; terms unseen in
    the corpus get IDF ln(N+1). *)

val cosine : vector -> vector -> float
(** In [0,1]; 0 when either vector is zero. *)

val similar_docs : corpus -> doc_id:string -> min_sim:float -> (string * float) list
(** Other documents with cosine >= [min_sim], descending. *)

val top_terms : vector -> int -> (string * float) list
(** Heaviest terms of a vector (descending weight). *)
