(** Generate a protein-interaction data source as an XML document (the
    BIND/KEGG import path of §4.1: "Databases exported as XML files can be
    parsed using a generic XML shredder").

    The document shreds into: [interactions] (root), [interaction]
    (primary objects, [acc] attribute), [partner] (cross-references to
    protein sources via the [ref] attribute), [note] (text annotation).
    All structure must then be rediscovered by ALADIN — the scenario where
    "even generic parsers may be used". *)

val document :
  ?seed:int ->
  Universe.t ->
  assignment:Source_gen.assignment ->
  gold:Gold.t ->
  name:string ->
  partner_sources:string list ->
  string
(** Render the XML for source [name] (its interaction accessions must be in
    the assignment). Partner proteins are referenced by their accession in
    the first partner source that contains them; gold xrefs are recorded.
    Appends the source's {!Gold.source_gold} (primary = [interaction]). *)

val expected_fks : Gold.expected_fk list
(** The true structure of the shredded schema. *)
