(** Whole-corpus generation: a universe plus a family of overlapping,
    cross-referencing sources in several formats, with full gold standard.

    The default corpus mirrors the paper's world: two overlapping protein
    databases (Swiss-Prot/PIR-style — duplicates), a protein-structure
    database (PDB-style), a gene database, a disease database, an ontology
    (GO-style), and optionally a flat-file source that is round-tripped
    through the real Swiss-Prot parser. *)

open Aladin_relational

type params = {
  seed : int;
  universe : Universe.params;
  n_protein_sources : int;  (** >= 1; overlapping -> duplicates *)
  include_structures : bool;
  include_genes : bool;
  include_diseases : bool;
  include_ontology : bool;
  include_interactions : bool;
      (** two overlapping XML interaction sources (BIND/MINT roles) imported
          through the generic shredder *)
  include_flat_file : bool;  (** a source parsed from generated flat text *)
  coverage : float;
  xref_prob : float;
  corruption : float;
  fk_noise : float;  (** dangling-FK rate in protein sources' annotations *)
  generic_fk_names : bool;
  declare_constraints : bool;
}

val default_params : params

type t = {
  params : params;
  universe : Universe.t;
  catalogs : Catalog.t list;
  gold : Gold.t;
}

val generate : params -> t

val source_names : t -> string list
