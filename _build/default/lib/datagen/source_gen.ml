open Aladin_relational

type xref_style = Separate_db_column | Encoded

type shape = {
  primary_name : string;
  accession_pattern : string;
  with_sequence_table : bool;
  n_comment_tables : int;
  with_keyword_dictionary : bool;
  with_organism_dictionary : bool;
  xref_style : xref_style;
  generic_fk_names : bool;
  declare_constraints : bool;
}

let default_shape =
  {
    primary_name = "entry";
    accession_pattern = "P#####";
    with_sequence_table = true;
    n_comment_tables = 1;
    with_keyword_dictionary = true;
    with_organism_dictionary = true;
    xref_style = Separate_db_column;
    generic_fk_names = false;
    declare_constraints = false;
  }

type spec = {
  source_name : string;
  kind : Universe.kind;
  coverage : float;
  shape : shape;
  xref_to : string list;
  xref_prob : float;
  corruption : float;
  fk_noise : float;
  seed : int;
}

let make_spec ?(shape = default_shape) ?(coverage = 0.8) ?(xref_to = [])
    ?(xref_prob = 0.8) ?(corruption = 0.0) ?(fk_noise = 0.0) ?(seed = 7) ~name
    kind =
  { source_name = name; kind; coverage; shape; xref_to; xref_prob;
    corruption; fk_noise; seed }

let assign_accessions universe spec =
  let rng = Rng.create (spec.seed * 31 + 1) in
  let pool = Universe.of_kind universe spec.kind in
  let n =
    max 1 (int_of_float (spec.coverage *. float_of_int (List.length pool)))
  in
  let chosen = Rng.sample rng n (List.map (fun e -> e.Universe.uid) pool) in
  let seen = Hashtbl.create 64 in
  List.map
    (fun uid ->
      let rec fresh attempts =
        let acc = Rng.pattern rng spec.shape.accession_pattern in
        if Hashtbl.mem seen acc && attempts < 100 then fresh (attempts + 1)
        else begin
          Hashtbl.replace seen acc ();
          acc
        end
      in
      (uid, fresh 0))
    (List.sort Int.compare chosen)

type assignment = (string * (int * string) list) list

let fk_name shape = if shape.generic_fk_names then "obj_ref" else shape.primary_name ^ "_id"

let corruptv rng rate s = if rate > 0.0 then Corrupt.value rng ~rate s else s

let build universe assignment ~gold spec =
  let rng = Rng.create (spec.seed * 31 + 1000) in
  let shape = spec.shape in
  let own =
    match List.assoc_opt spec.source_name assignment with
    | Some l -> l
    | None ->
        invalid_arg
          (Printf.sprintf "Source_gen.build: %s missing from assignment"
             spec.source_name)
  in
  let cat = Catalog.create ~name:spec.source_name in
  let p = shape.primary_name in
  let pid = p ^ "_id" in
  let fk = fk_name shape in
  let expected_fks = ref [] in
  let expect ~src_relation ~src_attribute ~dst_relation ~dst_attribute =
    expected_fks :=
      { Gold.src_relation; src_attribute; dst_relation; dst_attribute }
      :: !expected_fks
  in
  (* --- primary relation --- *)
  let organism_dict : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let organisms_in_order = ref [] in
  let organism_id name =
    match Hashtbl.find_opt organism_dict name with
    | Some id -> id
    | None ->
        let id = Hashtbl.length organism_dict + 1 in
        Hashtbl.add organism_dict name id;
        organisms_in_order := (id, name) :: !organisms_in_order;
        id
  in
  let primary_cols =
    [ pid; "accession"; "name"; "description" ]
    @ (if shape.with_organism_dictionary then [ "organism_id" ] else [ "organism" ])
  in
  let primary = Catalog.create_relation cat ~name:p (Schema.of_names primary_cols) in
  let row_of_entity i (uid, acc) =
    let e = Universe.entity universe uid in
    let base =
      [ Value.Int (i + 1); Value.text acc;
        Value.text (corruptv rng spec.corruption e.Universe.name);
        Value.text (corruptv rng spec.corruption e.Universe.description) ]
    in
    let tail =
      if shape.with_organism_dictionary then
        [ Value.Int (organism_id e.Universe.organism) ]
      else [ Value.text e.Universe.organism ]
    in
    Array.of_list (base @ tail)
  in
  List.iteri (fun i ea -> Relation.insert primary (row_of_entity i ea)) own;
  (* --- organism dictionary --- *)
  if shape.with_organism_dictionary then begin
    let org =
      Catalog.create_relation cat ~name:"organism"
        (Schema.of_names [ "organism_id"; "organism_name" ])
    in
    List.iter
      (fun (id, name) -> Relation.insert org [| Value.Int id; Value.text name |])
      (List.rev !organisms_in_order);
    expect ~src_relation:p ~src_attribute:"organism_id" ~dst_relation:"organism"
      ~dst_attribute:"organism_id"
  end;
  (* --- 1:1 sequence table --- *)
  if shape.with_sequence_table then begin
    let seqrel =
      Catalog.create_relation cat ~name:"sequence_data"
        (Schema.of_names [ fk; "seq_length"; "seq_text" ])
    in
    List.iteri
      (fun i (uid, _) ->
        let e = Universe.entity universe uid in
        match e.Universe.sequence with
        | Some s ->
            Relation.insert seqrel
              [| Value.Int (i + 1); Value.Int (String.length s); Value.text s |]
        | None -> ())
      own;
    expect ~src_relation:"sequence_data" ~src_attribute:fk ~dst_relation:p
      ~dst_attribute:pid
  end;
  (* --- 1:N comment tables --- *)
  for c = 1 to shape.n_comment_tables do
    let name = if shape.n_comment_tables = 1 then "comment" else Printf.sprintf "comment%d" c in
    let rel =
      Catalog.create_relation cat ~name
        (Schema.of_names [ name ^ "_id"; fk; name ^ "_text" ])
    in
    let next = ref 1 in
    List.iteri
      (fun i (uid, _) ->
        let e = Universe.entity universe uid in
        let n_comments = Rng.range rng 0 3 in
        for _ = 1 to n_comments do
          let mention =
            if e.Universe.related <> [] && Rng.chance rng 0.5 then
              match Universe.entity universe (Rng.choice rng e.Universe.related) with
              | r -> Some r.Universe.name
              | exception Not_found -> None
            else None
          in
          let text = Names.description rng ?mention e.Universe.name in
          let fk_value =
            if spec.fk_noise > 0.0 && Rng.chance rng spec.fk_noise then
              (* dangling reference: no such primary id exists *)
              Value.Int (100000 + !next)
            else Value.Int (i + 1)
          in
          Relation.insert rel
            [| Value.Int !next; fk_value;
               Value.text (corruptv rng spec.corruption text) |];
          incr next
        done)
      own;
    expect ~src_relation:name ~src_attribute:fk ~dst_relation:p ~dst_attribute:pid
  done;
  (* --- keyword dictionary + bridge --- *)
  if shape.with_keyword_dictionary then begin
    let kw_dict : (string, int) Hashtbl.t = Hashtbl.create 32 in
    let kws_in_order = ref [] in
    let kw_id k =
      match Hashtbl.find_opt kw_dict k with
      | Some id -> id
      | None ->
          let id = Hashtbl.length kw_dict + 1 in
          Hashtbl.add kw_dict k id;
          kws_in_order := (id, k) :: !kws_in_order;
          id
    in
    let bridge =
      Catalog.create_relation cat ~name:(p ^ "_keyword")
        (Schema.of_names [ fk; "keyword_id" ])
    in
    List.iteri
      (fun i (uid, _) ->
        let e = Universe.entity universe uid in
        List.iter
          (fun k ->
            Relation.insert bridge [| Value.Int (i + 1); Value.Int (kw_id k) |])
          e.Universe.keywords)
      own;
    let kwrel =
      Catalog.create_relation cat ~name:"keyword"
        (Schema.of_names [ "keyword_id"; "keyword_name" ])
    in
    List.iter
      (fun (id, k) -> Relation.insert kwrel [| Value.Int id; Value.text k |])
      (List.rev !kws_in_order);
    expect ~src_relation:(p ^ "_keyword") ~src_attribute:fk ~dst_relation:p
      ~dst_attribute:pid;
    expect ~src_relation:(p ^ "_keyword") ~src_attribute:"keyword_id"
      ~dst_relation:"keyword" ~dst_attribute:"keyword_id"
  end;
  (* --- is_a hierarchy for ontology-style sources (OBO term_isa shape) --- *)
  if spec.kind = Universe.Term && List.length own >= 3 then begin
    let isa =
      Catalog.create_relation cat ~name:(p ^ "_isa")
        (Schema.of_names [ pid; "parent_id" ])
    in
    (* a forest: every term except the first few points at an earlier one *)
    List.iteri
      (fun i (_, _) ->
        if i >= 2 then
          Relation.insert isa
            [| Value.Int (i + 1); Value.Int (1 + Rng.int rng i) |])
      own;
    expect ~src_relation:(p ^ "_isa") ~src_attribute:pid ~dst_relation:p
      ~dst_attribute:pid;
    expect ~src_relation:(p ^ "_isa") ~src_attribute:"parent_id" ~dst_relation:p
      ~dst_attribute:pid
  end;
  (* --- cross-references --- *)
  if spec.xref_to <> [] then begin
    let cols =
      match shape.xref_style with
      | Separate_db_column -> [ "dbxref_id"; fk; "db_name"; "accession" ]
      | Encoded -> [ "dbxref_id"; fk; "xref" ]
    in
    let xrel = Catalog.create_relation cat ~name:"dbxref" (Schema.of_names cols) in
    let next = ref 1 in
    List.iteri
      (fun i (uid, own_acc) ->
        let e = Universe.entity universe uid in
        List.iter
          (fun target ->
            match List.assoc_opt target assignment with
            | None -> ()
            | Some target_accs ->
                (* candidate uids in the target: self, related, and term
                   entities named by our keywords *)
                let related_uids = uid :: e.Universe.related in
                let keyword_uids =
                  List.filter_map
                    (fun (tuid, _) ->
                      match Universe.entity universe tuid with
                      | te when te.Universe.kind = Universe.Term
                                && List.mem te.Universe.name e.Universe.keywords ->
                          Some tuid
                      | _ -> None
                      | exception Not_found -> None)
                    target_accs
                in
                let candidates =
                  List.sort_uniq Int.compare (related_uids @ keyword_uids)
                in
                List.iter
                  (fun cand_uid ->
                    match List.assoc_opt cand_uid target_accs with
                    | None -> ()
                    | Some target_acc ->
                        if Rng.chance rng spec.xref_prob then begin
                          let row =
                            match shape.xref_style with
                            | Separate_db_column ->
                                [| Value.Int !next; Value.Int (i + 1);
                                   Value.text (String.uppercase_ascii target);
                                   Value.text target_acc |]
                            | Encoded ->
                                [| Value.Int !next; Value.Int (i + 1);
                                   Value.text
                                     (String.uppercase_ascii target ^ ":"
                                     ^ target_acc) |]
                          in
                          Relation.insert xrel row;
                          incr next;
                          Gold.add_xref gold
                            ~src:(Gold.obj_key ~source:spec.source_name
                                    ~accession:own_acc)
                            ~dst:(Gold.obj_key ~source:target
                                    ~accession:target_acc)
                        end)
                  candidates)
          spec.xref_to)
      own;
    expect ~src_relation:"dbxref" ~src_attribute:fk ~dst_relation:p
      ~dst_attribute:pid
  end;
  (* --- declared constraints --- *)
  if shape.declare_constraints then begin
    Catalog.declare cat (Constraint_def.Primary_key { relation = p; attribute = pid });
    Catalog.declare cat (Constraint_def.Unique { relation = p; attribute = "accession" });
    List.iter
      (fun (e : Gold.expected_fk) ->
        Catalog.declare cat
          (Constraint_def.Foreign_key
             { src_relation = e.src_relation; src_attribute = e.src_attribute;
               dst_relation = e.dst_relation; dst_attribute = e.dst_attribute }))
      !expected_fks
  end;
  Gold.add_source gold
    {
      Gold.source = spec.source_name;
      primary_relation = p;
      accession_attribute = "accession";
      fks = List.rev !expected_fks;
      objects = List.map (fun (uid, acc) -> (acc, uid)) own;
    };
  cat

let build_dual_primary ?(seed = 77) universe ~name =
  let rng = Rng.create seed in
  let cat = Catalog.create ~name in
  let genes = Universe.of_kind universe Universe.Gene in
  let n_genes = max 4 (List.length genes) in
  let n_clones = max 3 (n_genes / 2) in
  let clone_rel =
    Catalog.create_relation cat ~name:"clone"
      (Schema.of_names [ "clone_id"; "accession"; "clone_desc" ])
  in
  for i = 1 to n_clones do
    Relation.insert clone_rel
      [| Value.Int i; Value.text (Rng.pattern rng "CL###@@#");
         Value.text (Names.description rng (Printf.sprintf "clone %d" i)) |]
  done;
  let gene_rel =
    Catalog.create_relation cat ~name:"gene"
      (Schema.of_names [ "gene_id"; "accession"; "gene_name"; "gene_desc" ])
  in
  List.iteri
    (fun i (e : Universe.entity) ->
      Relation.insert gene_rel
        [| Value.Int (i + 1); Value.text (Rng.pattern rng "ENSG00####");
           Value.text e.name; Value.text e.description |])
    (if genes = [] then
       List.init n_genes (fun i ->
           { Universe.uid = -i; kind = Universe.Gene;
             name = Names.gene_symbol rng;
             long_name = ""; description = Names.description rng "gene";
             sequence = None; family = None; keywords = []; related = [];
             organism = "" })
     else genes);
  let n_genes = Relation.cardinality gene_rel in
  (* the raison d'etre of the source: which genes lie on which clones *)
  let bridge =
    Catalog.create_relation cat ~name:"clone_gene"
      (Schema.of_names [ "clone_id"; "gene_id" ])
  in
  for g = 1 to n_genes do
    Relation.insert bridge [| Value.Int (1 + Rng.int rng n_clones); Value.Int g |]
  done;
  (* annotations on each primary *)
  let clone_note =
    Catalog.create_relation cat ~name:"clone_note"
      (Schema.of_names [ "clone_note_id"; "clone_id"; "note_text" ])
  in
  for i = 1 to n_clones do
    Relation.insert clone_note
      [| Value.Int i; Value.Int i;
         Value.text (Names.description rng (Printf.sprintf "note %d" i)) |]
  done;
  let gene_note =
    Catalog.create_relation cat ~name:"gene_note"
      (Schema.of_names [ "gene_note_id"; "gene_id"; "note_text" ])
  in
  for i = 1 to n_genes do
    Relation.insert gene_note
      [| Value.Int i; Value.Int (1 + ((i * 3) mod n_genes));
         Value.text (Names.description rng (Printf.sprintf "gene note %d" i)) |]
  done;
  (* a 1:1 sequence for clones keeps their in-degree above average *)
  let clone_seq =
    Catalog.create_relation cat ~name:"clone_seq"
      (Schema.of_names [ "clone_id"; "seq_text" ])
  in
  for i = 1 to n_clones do
    Relation.insert clone_seq
      [| Value.Int i; Value.text (Seq_gen.dna rng (60 + Rng.int rng 120)) |]
  done;
  (cat, [ ("clone", "accession"); ("gene", "accession") ])
