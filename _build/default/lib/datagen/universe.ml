module Sq = Aladin_seq

type kind = Protein | Gene | Structure | Disease | Term | Interaction

let kind_name = function
  | Protein -> "protein"
  | Gene -> "gene"
  | Structure -> "structure"
  | Disease -> "disease"
  | Term -> "term"
  | Interaction -> "interaction"

type entity = {
  uid : int;
  kind : kind;
  name : string;
  long_name : string;
  description : string;
  sequence : string option;
  family : int option;
  keywords : string list;
  related : int list;
  organism : string;
}

type params = {
  seed : int;
  n_proteins : int;
  n_genes : int;
  n_structures : int;
  n_diseases : int;
  n_terms : int;
  n_interactions : int;
  n_families : int;
  seq_len : int;
  mutation_rate : float;
}

let default_params =
  {
    seed = 42;
    n_proteins = 120;
    n_genes = 60;
    n_structures = 50;
    n_diseases = 20;
    n_terms = 24;
    n_interactions = 30;
    n_families = 12;
    seq_len = 120;
    mutation_rate = 0.05;
  }

type t = { params : params; all : entity array; by_uid : (int, entity) Hashtbl.t }

let unique_name rng seen make =
  let rec try_once attempts =
    let name = make () in
    if Hashtbl.mem seen name && attempts < 50 then try_once (attempts + 1)
    else begin
      Hashtbl.replace seen name ();
      name
    end
  in
  ignore rng;
  try_once 0

let generate params =
  let rng = Rng.create params.seed in
  let seen = Hashtbl.create 256 in
  let next_uid = ref 0 in
  let fresh () =
    incr next_uid;
    !next_uid
  in
  let entities = ref [] in
  let push e = entities := e :: !entities in
  (* terms: one per keyword, cycling if needed *)
  let n_kw = Array.length Names.keywords in
  let terms =
    List.init params.n_terms (fun i ->
        let kw = Names.keywords.(i mod n_kw) in
        let name = if i < n_kw then kw else Printf.sprintf "%s %d" kw (i / n_kw) in
        {
          uid = fresh ();
          kind = Term;
          name;
          long_name = name;
          description = Names.go_definition rng name;
          sequence = None;
          family = None;
          keywords = [ name ];
          related = [];
          organism = "";
        })
  in
  List.iter push terms;
  (* protein sequence families; lengths vary per family like real proteins,
     so sequence columns never look like fixed-length accession numbers *)
  let family_seqs =
    Array.init (max 1 params.n_families) (fun _ ->
        let len = max 30 (params.seq_len / 2 + Rng.int rng (max 1 params.seq_len)) in
        Seq_gen.protein rng len)
  in
  let proteins =
    List.init params.n_proteins (fun _ ->
        let fam = Rng.int rng (max 1 params.n_families) in
        let seq = Seq_gen.mutate rng ~rate:params.mutation_rate family_seqs.(fam) in
        let name = unique_name rng seen (fun () -> Names.gene_symbol rng) in
        let keywords =
          Rng.sample rng (Rng.range rng 1 4)
            (List.map (fun (e : entity) -> e.name) terms)
        in
        {
          uid = fresh ();
          kind = Protein;
          name;
          long_name = Names.protein_name rng;
          description = Names.description rng name;
          sequence = Some seq;
          family = Some fam;
          keywords;
          related = [];
          organism = Rng.choice_arr rng Names.species;
        })
  in
  List.iter push proteins;
  let protein_uids = List.map (fun e -> e.uid) proteins in
  (* genes encode proteins; their descriptions mention the protein's name *)
  let genes =
    List.init params.n_genes (fun _ ->
        let prot_uid = Rng.choice rng protein_uids in
        let prot = List.find (fun e -> e.uid = prot_uid) proteins in
        let name = unique_name rng seen (fun () -> Names.gene_symbol rng) in
        {
          uid = fresh ();
          kind = Gene;
          name;
          long_name = "Gene encoding " ^ prot.long_name;
          description = Names.description rng ~mention:prot.name name;
          sequence =
            Some (Seq_gen.dna rng (params.seq_len * 2 + Rng.int rng (max 1 (params.seq_len * 2))));
          family = None;
          keywords = Rng.sample rng 2 prot.keywords;
          related = [ prot_uid ];
          organism = prot.organism;
        })
  in
  List.iter push genes;
  (* structures resolve proteins: almost the protein's sequence *)
  let structures =
    List.init params.n_structures (fun _ ->
        let prot_uid = Rng.choice rng protein_uids in
        let prot = List.find (fun e -> e.uid = prot_uid) proteins in
        let seq =
          match prot.sequence with
          | Some s -> Some (Seq_gen.mutate rng ~rate:0.01 s)
          | None -> None
        in
        let name =
          unique_name rng seen (fun () -> Rng.pattern rng "#@@@")
        in
        {
          uid = fresh ();
          kind = Structure;
          name;
          long_name = "Crystal structure of " ^ prot.long_name;
          description =
            Names.description rng ~mention:prot.name ("Structure " ^ name);
          sequence = seq;
          family = prot.family;
          keywords = Rng.sample rng 1 prot.keywords;
          related = [ prot_uid ];
          organism = prot.organism;
        })
  in
  List.iter push structures;
  (* diseases are caused by genes; human diseases (the OMIM role) prefer
     human genes when any exist *)
  let gene_uids = List.map (fun e -> e.uid) genes in
  let human_gene_uids =
    List.filter_map
      (fun e -> if e.organism = "Homo sapiens" then Some e.uid else None)
      genes
  in
  let disease_pool = if human_gene_uids <> [] then human_gene_uids else gene_uids in
  let diseases =
    List.init params.n_diseases (fun i ->
        let gene_uid = if disease_pool = [] then [] else [ Rng.choice rng disease_pool ] in
        let base = Names.diseases.(i mod Array.length Names.diseases) in
        let name =
          if i < Array.length Names.diseases then base
          else Printf.sprintf "%s type %d" base (i / Array.length Names.diseases + 1)
        in
        {
          uid = fresh ();
          kind = Disease;
          name;
          long_name = String.capitalize_ascii name;
          description = Names.description rng name;
          sequence = None;
          family = None;
          keywords = [];
          related = gene_uid;
          organism = "Homo sapiens";
        })
  in
  List.iter push diseases;
  (* protein-protein interactions (the BIND/MINT role of §4.5) *)
  let interactions =
    List.init params.n_interactions (fun i ->
        match protein_uids with
        | [] -> None
        | _ ->
            let p1 = Rng.choice rng protein_uids in
            let p2 = Rng.choice rng protein_uids in
            if p1 = p2 then None
            else begin
              let e1 = List.find (fun e -> e.uid = p1) proteins in
              let e2 = List.find (fun e -> e.uid = p2) proteins in
              Some
                {
                  uid = fresh ();
                  kind = Interaction;
                  name = Printf.sprintf "INT%04d" (i + 1);
                  long_name =
                    Printf.sprintf "Interaction of %s with %s" e1.name e2.name;
                  description =
                    (let base =
                       Printf.sprintf
                         "Physical interaction between %s and %s observed by %s."
                         e1.name e2.name
                         (Rng.choice rng
                            [ "yeast two-hybrid"; "co-immunoprecipitation";
                              "affinity purification"; "crosslinking" ])
                     in
                     (* real annotations vary widely in length *)
                     if Rng.chance rng 0.5 then
                       base ^ " " ^ Names.description rng e1.name
                     else base);
                  sequence = None;
                  family = None;
                  keywords = Rng.sample rng 1 (e1.keywords @ e2.keywords);
                  related = [ p1; p2 ];
                  organism = e1.organism;
                }
            end)
    |> List.filter_map Fun.id
  in
  List.iter push interactions;
  let all = Array.of_list (List.rev !entities) in
  let by_uid = Hashtbl.create (Array.length all) in
  Array.iter (fun e -> Hashtbl.replace by_uid e.uid e) all;
  { params; all; by_uid }

let params t = t.params

let entities t = Array.to_list t.all

let entity t uid =
  match Hashtbl.find_opt t.by_uid uid with
  | Some e -> e
  | None -> raise Not_found

let of_kind t k = List.filter (fun e -> e.kind = k) (entities t)

let size t = Array.length t.all
