(** Controlled value corruption — duplicate-detection stress (E8) and the
    "differences due to different cleansing procedures" of §5. *)

val typo : Rng.t -> string -> string
(** One random edit: swap, replace, delete or insert a character.
    Strings shorter than 2 are returned unchanged. *)

val value : Rng.t -> rate:float -> string -> string
(** Apply {!typo} repeatedly: each pass happens with probability [rate]
    (max 3 passes). *)

val maybe_drop : Rng.t -> rate:float -> string -> string
(** Return "" (a null) with probability [rate]. *)

val recase : Rng.t -> string -> string
(** Random case change (whole-string upper/lower), a common inter-source
    difference. *)
