open Aladin_relational

type params = {
  seed : int;
  universe : Universe.params;
  n_protein_sources : int;
  include_structures : bool;
  include_genes : bool;
  include_diseases : bool;
  include_ontology : bool;
  include_interactions : bool;
  include_flat_file : bool;
  coverage : float;
  xref_prob : float;
  corruption : float;
  fk_noise : float;
  generic_fk_names : bool;
  declare_constraints : bool;
}

let default_params =
  {
    seed = 42;
    universe = Universe.default_params;
    n_protein_sources = 2;
    include_structures = true;
    include_genes = true;
    include_diseases = true;
    include_ontology = true;
    include_interactions = true;
    include_flat_file = false;
    coverage = 0.7;
    xref_prob = 0.8;
    corruption = 0.0;
    fk_noise = 0.0;
    generic_fk_names = false;
    declare_constraints = false;
  }

type t = {
  params : params;
  universe : Universe.t;
  catalogs : Catalog.t list;
  gold : Gold.t;
}

let protein_patterns = [| "P#####"; "@#####"; "Q#@@##"; "X####@" |]

let protein_source_name i =
  match i with
  | 0 -> "uniprot"
  | 1 -> "pir"
  | n -> Printf.sprintf "protdb%d" n

let shape_for params ~primary_name ~pattern ~with_seq ~with_kw ~with_org =
  {
    Source_gen.primary_name;
    accession_pattern = pattern;
    with_sequence_table = with_seq;
    n_comment_tables = 1;
    with_keyword_dictionary = with_kw;
    with_organism_dictionary = with_org;
    xref_style = Source_gen.Separate_db_column;
    generic_fk_names = params.generic_fk_names;
    declare_constraints = params.declare_constraints;
  }

let generate (params : params) =
  let universe = Universe.generate { params.universe with seed = params.seed } in
  let ontology_name = "go" in
  let protein_names =
    List.init params.n_protein_sources protein_source_name
  in
  let specs = ref [] in
  let push s = specs := s :: !specs in
  (* ontology first: others reference it *)
  if params.include_ontology then
    push
      (Source_gen.make_spec ~name:ontology_name Universe.Term
         ~coverage:1.0 ~xref_prob:params.xref_prob ~seed:(params.seed + 900)
         ~shape:
           { (shape_for params ~primary_name:"term" ~pattern:"GO:00#####"
                ~with_seq:false ~with_kw:false ~with_org:false)
             with n_comment_tables = 1 });
  List.iteri
    (fun i name ->
      let xref_to =
        (if params.include_ontology then [ ontology_name ] else [])
        @ (if params.include_structures && i = 0 then [ "pdb" ] else [])
      in
      push
        (Source_gen.make_spec ~name Universe.Protein ~coverage:params.coverage
           ~xref_to ~xref_prob:params.xref_prob
           ~corruption:params.corruption ~fk_noise:params.fk_noise
           ~seed:(params.seed + 100 + i)
           ~shape:
             (shape_for params ~primary_name:(if i = 0 then "entry" else "protein")
                ~pattern:protein_patterns.(i mod Array.length protein_patterns)
                ~with_seq:true ~with_kw:true ~with_org:true)))
    protein_names;
  if params.include_structures then
    push
      (Source_gen.make_spec ~name:"pdb" Universe.Structure
         ~coverage:params.coverage
         ~xref_to:(List.filteri (fun i _ -> i < 1) protein_names)
         ~xref_prob:params.xref_prob ~corruption:params.corruption
         ~seed:(params.seed + 300)
         ~shape:
           { (shape_for params ~primary_name:"structure" ~pattern:"#@@@"
                ~with_seq:true ~with_kw:false ~with_org:true)
             with xref_style = Source_gen.Encoded });
  if params.include_genes then
    push
      (Source_gen.make_spec ~name:"genedb" Universe.Gene
         ~coverage:params.coverage
         ~xref_to:
           ((match protein_names with p :: _ -> [ p ] | [] -> [])
           @ if params.include_diseases then [ "omim" ] else [])
         ~xref_prob:params.xref_prob ~corruption:params.corruption
         ~seed:(params.seed + 400)
         ~shape:
           (shape_for params ~primary_name:"gene" ~pattern:"ENSG000####"
              ~with_seq:true ~with_kw:true ~with_org:true));
  if params.include_diseases then
    push
      (Source_gen.make_spec ~name:"omim" Universe.Disease ~coverage:1.0
         ~xref_to:(if params.include_genes then [ "genedb" ] else [])
         ~xref_prob:params.xref_prob ~seed:(params.seed + 500)
         ~shape:
           (shape_for params ~primary_name:"disease" ~pattern:"MIM###"
              ~with_seq:false ~with_kw:false ~with_org:false));
  let specs = List.rev !specs in
  (* phase 1: accession assignment for every source *)
  let assignment =
    List.map
      (fun (s : Source_gen.spec) ->
        (s.source_name, Source_gen.assign_accessions universe s))
      specs
  in
  (* the XML interaction sources (BIND/MINT roles) get assignments via
     throwaway specs; their catalogs come from the generic shredder *)
  let interaction_names = if params.include_interactions then [ "bind"; "mint" ] else [] in
  let interaction_patterns = [| "BI####@"; "MT####@" |] in
  let assignment =
    List.mapi
      (fun i iname ->
        let spec =
          Source_gen.make_spec ~name:iname Universe.Interaction
            ~coverage:(Float.min 1.0 (params.coverage +. 0.1))
            ~seed:(params.seed + 800 + i)
            ~shape:
              { Source_gen.default_shape with
                accession_pattern = interaction_patterns.(i mod 2) }
        in
        (iname, Source_gen.assign_accessions universe spec))
      interaction_names
    @ assignment
  in
  (* the flat-file source gets its own assignment *)
  let flat_name = "swissflat" in
  let assignment =
    if params.include_flat_file then begin
      let spec =
        Source_gen.make_spec ~name:flat_name Universe.Protein
          ~coverage:params.coverage ~seed:(params.seed + 600)
          ~shape:
            { Source_gen.default_shape with accession_pattern = "O#####" }
      in
      (flat_name, Source_gen.assign_accessions universe spec) :: assignment
    end
    else assignment
  in
  (* phase 2: build catalogs, recording gold *)
  let gold = Gold.create () in
  let catalogs =
    List.map (fun s -> Source_gen.build universe assignment ~gold s) specs
  in
  let catalogs =
    catalogs
    @ List.mapi
        (fun i iname ->
          let doc =
            Xml_gen.document ~seed:(params.seed + 850 + i) universe ~assignment
              ~gold ~name:iname ~partner_sources:protein_names
          in
          Aladin_formats.Xml_shred.shred_string ~name:iname doc)
        interaction_names
  in
  let catalogs =
    if params.include_flat_file then begin
      let xref_to =
        (if params.include_ontology then [ ontology_name ] else [])
        @ match protein_names with _ :: _ -> [] | [] -> []
      in
      let doc =
        Biosql_gen.flat_file ~seed:(params.seed + 700) universe ~assignment
          ~gold ~name:flat_name ~xref_to
      in
      catalogs @ [ Aladin_formats.Swissprot.parse ~name:flat_name doc ]
    end
    else catalogs
  in
  { params; universe; catalogs; gold }

let source_names t = List.map Catalog.name t.catalogs
