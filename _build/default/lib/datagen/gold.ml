type expected_fk = {
  src_relation : string;
  src_attribute : string;
  dst_relation : string;
  dst_attribute : string;
}

type source_gold = {
  source : string;
  primary_relation : string;
  accession_attribute : string;
  fks : expected_fk list;
  objects : (string * int) list;
}

type t = {
  mutable sources : source_gold list;
  mutable xrefs : (string * string) list;
}

let create () = { sources = []; xrefs = [] }

let add_source t sg = t.sources <- t.sources @ [ sg ]

let add_xref t ~src ~dst = t.xrefs <- (src, dst) :: t.xrefs

let obj_key ~source ~accession = source ^ ":" ^ accession

let find_source t name = List.find_opt (fun s -> s.source = name) t.sources

let canonical (a, b) = if a <= b then (a, b) else (b, a)

let source_of_key key =
  match String.index_opt key ':' with
  | Some i -> String.sub key 0 i
  | None -> key

let duplicate_pairs t =
  let by_uid : (int, string list ref) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun sg ->
      List.iter
        (fun (acc, uid) ->
          let key = obj_key ~source:sg.source ~accession:acc in
          match Hashtbl.find_opt by_uid uid with
          | Some l -> l := key :: !l
          | None -> Hashtbl.add by_uid uid (ref [ key ]))
        sg.objects)
    t.sources;
  let pairs = ref [] in
  Hashtbl.iter
    (fun _ keys ->
      let rec all_pairs = function
        | [] -> ()
        | a :: rest ->
            List.iter
              (fun b ->
                if source_of_key a <> source_of_key b then
                  pairs := canonical (a, b) :: !pairs)
              rest;
            all_pairs rest
      in
      all_pairs !keys)
    by_uid;
  List.sort_uniq compare !pairs

let family_pairs universe t =
  let with_family =
    List.concat_map
      (fun sg ->
        List.filter_map
          (fun (acc, uid) ->
            match Universe.entity universe uid with
            | exception Not_found -> None
            | e -> (
                match (e.Universe.family, e.Universe.sequence) with
                | Some fam, Some _ ->
                    Some (obj_key ~source:sg.source ~accession:acc, fam)
                | (Some _ | None), _ -> None))
          sg.objects)
      t.sources
  in
  let pairs = ref [] in
  let rec loop = function
    | [] -> ()
    | (ka, fa) :: rest ->
        List.iter
          (fun (kb, fb) ->
            if fa = fb && source_of_key ka <> source_of_key kb then
              pairs := canonical (ka, kb) :: !pairs)
          rest;
        loop rest
  in
  loop with_family;
  List.sort_uniq compare !pairs

let entity_of t key =
  let rec search = function
    | [] -> None
    | sg :: rest -> (
        match
          List.find_opt
            (fun (acc, _) -> obj_key ~source:sg.source ~accession:acc = key)
            sg.objects
        with
        | Some (_, uid) -> Some uid
        | None -> search rest)
  in
  search t.sources
