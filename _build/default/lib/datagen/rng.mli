(** Deterministic PRNG (splitmix64) so every generated corpus, test and
    benchmark is reproducible from a seed. *)

type t

val create : int -> t
(** Seeded. *)

val copy : t -> t

val next : t -> int64
(** Raw 64 bits. *)

val int : t -> int -> int
(** [int t n] in [0, n). @raise Invalid_argument when [n <= 0]. *)

val float : t -> float -> float
(** In [0, bound). *)

val bool : t -> bool

val chance : t -> float -> bool
(** True with probability [p]. *)

val range : t -> int -> int -> int
(** [range t lo hi] in [lo, hi] inclusive. *)

val choice : t -> 'a list -> 'a
(** @raise Invalid_argument on []. *)

val choice_arr : t -> 'a array -> 'a

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs]: k distinct elements (all of [xs] when k >= length). *)

val shuffle : t -> 'a list -> 'a list

val digits : t -> int -> string
(** Fixed number of random decimal digits. *)

val letters : t -> int -> string
(** Uppercase letters. *)

val pattern : t -> string -> string
(** Expand '#' to a digit, '@' to an uppercase letter; everything else is
    copied verbatim — accession-number shapes like ["P#####"]. *)
