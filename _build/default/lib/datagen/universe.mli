(** The synthetic "real world": biological entities and their true
    relationships. Sources generated from one universe overlap, contradict
    and cross-reference each other exactly the way §2 describes, and every
    generated fact is traceable back to an entity uid. *)

type kind = Protein | Gene | Structure | Disease | Term | Interaction

val kind_name : kind -> string

type entity = {
  uid : int;
  kind : kind;
  name : string;  (** short unique symbol (gene-style) *)
  long_name : string;
  description : string;
  sequence : string option;
  family : int option;  (** homology family; sequences in one family align *)
  keywords : string list;
  related : int list;  (** uids: structure->protein, gene->protein,
                           disease->gene, interaction->its two proteins *)
  organism : string;
}

type params = {
  seed : int;
  n_proteins : int;
  n_genes : int;
  n_structures : int;
  n_diseases : int;
  n_terms : int;
  n_interactions : int;
  n_families : int;
  seq_len : int;
  mutation_rate : float;
}

val default_params : params
(** 120 proteins, 60 genes, 50 structures, 20 diseases, 24 terms,
    30 interactions, 12 families, 120-residue sequences, 5 % mutation rate,
    seed 42. *)

type t

val generate : params -> t

val params : t -> params

val entities : t -> entity list

val entity : t -> int -> entity
(** By uid. @raise Not_found *)

val of_kind : t -> kind -> entity list

val size : t -> int
