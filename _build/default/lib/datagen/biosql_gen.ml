let expected_fks =
  [
    { Gold.src_relation = "bioentry"; src_attribute = "taxon_id";
      dst_relation = "taxon"; dst_attribute = "taxon_id" };
    { Gold.src_relation = "biosequence"; src_attribute = "bioentry_id";
      dst_relation = "bioentry"; dst_attribute = "bioentry_id" };
    { Gold.src_relation = "dbxref"; src_attribute = "bioentry_id";
      dst_relation = "bioentry"; dst_attribute = "bioentry_id" };
    { Gold.src_relation = "bioentry_term"; src_attribute = "bioentry_id";
      dst_relation = "bioentry"; dst_attribute = "bioentry_id" };
    { Gold.src_relation = "bioentry_term"; src_attribute = "term_id";
      dst_relation = "term"; dst_attribute = "term_id" };
    { Gold.src_relation = "reference"; src_attribute = "bioentry_id";
      dst_relation = "bioentry"; dst_attribute = "bioentry_id" };
  ]

let entry_name (e : Universe.entity) =
  let org =
    match String.split_on_char ' ' e.organism with
    | genus :: rest ->
        let species = match rest with s :: _ -> s | [] -> "sp" in
        String.uppercase_ascii
          (String.sub genus 0 (min 3 (String.length genus))
          ^ String.sub species 0 (min 2 (String.length species)))
    | [] -> "UNKSP"
  in
  String.uppercase_ascii e.name ^ "_" ^ org

let wrap_seq s =
  let rec chunks i acc =
    if i >= String.length s then List.rev acc
    else begin
      let len = min 60 (String.length s - i) in
      chunks (i + len) (String.sub s i len :: acc)
    end
  in
  chunks 0 []

let flat_file ?(seed = 99) universe ~assignment ~gold ~name ~xref_to =
  let rng = Rng.create seed in
  let own =
    match List.assoc_opt name assignment with
    | Some l -> l
    | None -> invalid_arg (Printf.sprintf "Biosql_gen.flat_file: %s not assigned" name)
  in
  let buf = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (uid, acc) ->
      let e = Universe.entity universe uid in
      add "ID   %s\n" (entry_name e);
      add "AC   %s;\n" acc;
      add "DE   %s.\n" e.Universe.long_name;
      add "OS   %s.\n" e.Universe.organism;
      if e.Universe.keywords <> [] then
        add "KW   %s.\n" (String.concat "; " e.Universe.keywords);
      (* cross-references *)
      List.iter
        (fun target ->
          match List.assoc_opt target assignment with
          | None -> ()
          | Some target_accs ->
              let cands =
                uid :: e.Universe.related
                @ List.filter_map
                    (fun (tuid, _) ->
                      match Universe.entity universe tuid with
                      | te when te.Universe.kind = Universe.Term
                                && List.mem te.Universe.name e.Universe.keywords ->
                          Some tuid
                      | _ -> None
                      | exception Not_found -> None)
                    target_accs
                |> List.sort_uniq Int.compare
              in
              List.iter
                (fun cand ->
                  match List.assoc_opt cand target_accs with
                  | Some tacc when Rng.chance rng 0.85 ->
                      add "DR   %s; %s.\n" (String.uppercase_ascii target) tacc;
                      Gold.add_xref gold
                        ~src:(Gold.obj_key ~source:name ~accession:acc)
                        ~dst:(Gold.obj_key ~source:target ~accession:tacc)
                  | Some _ | None -> ())
                cands)
        xref_to;
      add "RX   MEDLINE; %s; %s.\n" (Rng.digits rng 8)
        (Names.description rng e.Universe.name
        |> String.split_on_char '.' |> List.hd);
      (match e.Universe.sequence with
      | Some s ->
          add "SQ   SEQUENCE %d AA\n" (String.length s);
          List.iter (fun chunk -> add "..   %s\n" chunk) (wrap_seq s)
      | None -> ());
      add "//\n")
    own;
  Gold.add_source gold
    {
      Gold.source = name;
      primary_relation = "bioentry";
      accession_attribute = "accession";
      fks = expected_fks;
      objects = List.map (fun (uid, acc) -> (acc, uid)) own;
    };
  Buffer.contents buf
