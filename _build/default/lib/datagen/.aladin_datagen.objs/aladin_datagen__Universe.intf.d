lib/datagen/universe.mli:
