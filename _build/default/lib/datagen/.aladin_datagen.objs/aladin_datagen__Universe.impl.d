lib/datagen/universe.ml: Aladin_seq Array Fun Hashtbl List Names Printf Rng Seq_gen String
