lib/datagen/names.mli: Rng
