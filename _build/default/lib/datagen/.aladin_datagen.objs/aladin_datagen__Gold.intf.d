lib/datagen/gold.mli: Universe
