lib/datagen/corrupt.mli: Rng
