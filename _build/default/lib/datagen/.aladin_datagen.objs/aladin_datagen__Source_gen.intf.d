lib/datagen/source_gen.mli: Aladin_relational Catalog Gold Universe
