lib/datagen/source_gen.ml: Aladin_relational Array Catalog Constraint_def Corrupt Gold Hashtbl Int List Names Printf Relation Rng Schema Seq_gen String Universe Value
