lib/datagen/rng.mli:
