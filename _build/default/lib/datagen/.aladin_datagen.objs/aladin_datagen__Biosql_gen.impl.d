lib/datagen/biosql_gen.ml: Buffer Gold Int List Names Printf Rng String Universe
