lib/datagen/corrupt.ml: Bytes Char Rng String
