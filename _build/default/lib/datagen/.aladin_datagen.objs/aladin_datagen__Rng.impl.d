lib/datagen/rng.ml: Array Char Int64 List String
