lib/datagen/xml_gen.ml: Aladin_formats Buffer Gold List Names Option Printf Rng Universe
