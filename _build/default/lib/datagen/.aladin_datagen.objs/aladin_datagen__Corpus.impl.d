lib/datagen/corpus.ml: Aladin_formats Aladin_relational Array Biosql_gen Catalog Float Gold List Printf Source_gen Universe Xml_gen
