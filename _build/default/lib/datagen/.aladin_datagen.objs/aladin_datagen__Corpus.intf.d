lib/datagen/corpus.mli: Aladin_relational Catalog Gold Universe
