lib/datagen/seq_gen.ml: Aladin_seq Buffer List Rng String
