lib/datagen/gold.ml: Hashtbl List String Universe
