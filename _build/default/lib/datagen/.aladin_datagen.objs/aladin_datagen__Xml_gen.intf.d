lib/datagen/xml_gen.mli: Gold Source_gen Universe
