lib/datagen/biosql_gen.mli: Gold Source_gen Universe
