lib/datagen/seq_gen.mli: Aladin_seq Rng
