lib/datagen/names.ml: List Printf Rng String
