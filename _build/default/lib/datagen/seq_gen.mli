(** Random biological sequences and controlled mutation — used to plant
    homology relationships with a known ground truth. *)

val dna : Rng.t -> int -> string

val protein : Rng.t -> int -> string

val mutate : Rng.t -> rate:float -> string -> string
(** Point-mutate each position with probability [rate]; with rate/10 each,
    positions are deleted or duplicated (small indels). The alphabet is
    inferred from the input. *)

val family : Rng.t -> kind:Aladin_seq.Alphabet.kind -> size:int -> len:int -> rate:float -> string list
(** A family of [size] sequences mutated from one random ancestor. *)
