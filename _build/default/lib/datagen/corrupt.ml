let typo rng s =
  let n = String.length s in
  if n < 2 then s
  else
    let b = Bytes.of_string s in
    let i = Rng.int rng (n - 1) in
    (match Rng.int rng 4 with
    | 0 ->
        (* swap *)
        let c = Bytes.get b i in
        Bytes.set b i (Bytes.get b (i + 1));
        Bytes.set b (i + 1) c;
        ()
    | 1 ->
        (* replace *)
        Bytes.set b i (Char.chr (Char.code 'a' + Rng.int rng 26))
    | 2 ->
        (* delete: shift left *)
        Bytes.blit b (i + 1) b i (n - i - 1);
        Bytes.set b (n - 1) ' '
    | _ ->
        (* duplicate char (cheap insert) *)
        Bytes.set b (i + 1) (Bytes.get b i));
    String.trim (Bytes.to_string b)

let value rng ~rate s =
  let rec go s passes =
    if passes >= 3 || not (Rng.chance rng rate) then s
    else go (typo rng s) (passes + 1)
  in
  go s 0

let maybe_drop rng ~rate s = if Rng.chance rng rate then "" else s

let recase rng s =
  match Rng.int rng 3 with
  | 0 -> String.lowercase_ascii s
  | 1 -> String.uppercase_ascii s
  | _ -> s
