let species =
  [|
    "Homo sapiens"; "Mus musculus"; "Rattus norvegicus"; "Danio rerio";
    "Drosophila melanogaster"; "Caenorhabditis elegans"; "Saccharomyces cerevisiae";
    "Escherichia coli"; "Arabidopsis thaliana"; "Gallus gallus";
    "Xenopus laevis"; "Bos taurus"; "Sus scrofa"; "Canis familiaris";
    "Schizosaccharomyces pombe"; "Plasmodium falciparum";
  |]

let protein_stems =
  [|
    "kinase"; "phosphatase"; "dehydrogenase"; "reductase"; "transferase";
    "hydrolase"; "isomerase"; "ligase"; "synthase"; "polymerase";
    "helicase"; "protease"; "oxidase"; "carboxylase"; "transporter";
    "receptor"; "channel"; "chaperone"; "ribonuclease"; "topoisomerase";
  |]

let adjectives =
  [|
    "serine"; "threonine"; "tyrosine"; "mitochondrial"; "cytoplasmic";
    "nuclear"; "membrane"; "ribosomal"; "zinc"; "calcium"; "heat-shock";
    "ATP-dependent"; "NADH"; "glutamate"; "histone"; "ubiquitin";
    "vacuolar"; "lysosomal"; "peroxisomal"; "secreted";
  |]

let keywords =
  [|
    "ATP binding"; "DNA repair"; "signal transduction"; "apoptosis";
    "cell cycle"; "transcription regulation"; "protein folding";
    "ion transport"; "metabolic process"; "immune response";
    "oxidative stress"; "lipid metabolism"; "RNA splicing"; "translation";
    "proteolysis"; "glycolysis"; "phosphorylation"; "methylation";
    "ubiquitination"; "chromatin remodeling"; "membrane fusion";
    "vesicle transport"; "cell adhesion"; "angiogenesis";
  |]

let diseases =
  [|
    "cystic fibrosis"; "muscular dystrophy"; "retinitis pigmentosa";
    "hereditary anemia"; "familial hypercholesterolemia"; "phenylketonuria";
    "polycystic kidney disease"; "amyotrophic lateral sclerosis";
    "spinal muscular atrophy"; "hemophilia"; "thalassemia"; "galactosemia";
  |]

let filler =
  [|
    "involved in"; "required for"; "essential component of"; "catalyzes";
    "mediates"; "regulates"; "interacts with"; "localizes to";
    "participates in"; "implicated in";
  |]

let gene_symbol rng =
  let len = Rng.range rng 3 5 in
  Rng.letters rng len ^ string_of_int (Rng.range rng 1 19)

let protein_name rng =
  let adj = Rng.choice_arr rng adjectives in
  let stem = Rng.choice_arr rng protein_stems in
  let num = Rng.range rng 1 12 in
  Printf.sprintf "%s%s %s %d"
    (if Rng.chance rng 0.2 then "Putative " else "")
    (String.capitalize_ascii adj) stem num

let sentence rng subject =
  Printf.sprintf "%s %s %s in %s." subject
    (Rng.choice_arr rng filler)
    (String.lowercase_ascii (Rng.choice_arr rng keywords))
    (Rng.choice_arr rng species)

let description rng ?mention subject =
  let n = Rng.range rng 1 3 in
  let sentences = List.init n (fun _ -> sentence rng subject) in
  let sentences =
    match mention with
    | Some name ->
        sentences
        @ [ Printf.sprintf "This protein %s %s."
              (Rng.choice_arr rng filler) name ]
    | None -> sentences
  in
  String.concat " " sentences

let go_definition rng kw =
  Printf.sprintf "Any process by which %s is achieved, %s %s."
    (String.lowercase_ascii kw)
    (Rng.choice_arr rng filler)
    (String.lowercase_ascii (Rng.choice_arr rng keywords))
