(** Generate a Swiss-Prot-style flat file whose parse (via
    {!Aladin_formats.Swissprot}) yields exactly the BioSQL shape of the
    paper's Figure 3 — bioentry, taxon, biosequence, dbxref, term,
    bioentry_term, reference. Used by the E3 case-study experiment and as
    the flat-file member of generated corpora. *)

val expected_fks : Gold.expected_fk list
(** The true FK structure of the parsed BioSQL schema. *)

val flat_file :
  ?seed:int ->
  Universe.t ->
  assignment:Source_gen.assignment ->
  gold:Gold.t ->
  name:string ->
  xref_to:string list ->
  string
(** Render the flat file for the source [name] (whose accessions must be in
    the assignment); records this source's gold (primary = bioentry) and
    the xrefs written as DR lines. *)
