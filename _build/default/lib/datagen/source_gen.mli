(** Generate one relational data source from the universe, together with
    its gold record.

    The schema shape follows the life-science patterns of §1/§4.2: a
    primary relation keyed by an accession number plus an integer surrogate,
    1:1 sequence storage, 1:N annotation tables, keyword dictionary +
    bridge (M:N), organism dictionary (value-restricted attribute — the
    paper's confusion case), and a dbxref table carrying cross-references
    to other sources. *)

open Aladin_relational

type xref_style = Separate_db_column | Encoded

type shape = {
  primary_name : string;  (** e.g. "entry", "protein", "structure" *)
  accession_pattern : string;  (** {!Rng.pattern} shape, e.g. "P#####" *)
  with_sequence_table : bool;
  n_comment_tables : int;
  with_keyword_dictionary : bool;
  with_organism_dictionary : bool;
  xref_style : xref_style;
  generic_fk_names : bool;
      (** name FK columns "obj_ref" instead of "<primary>_id" — stresses
          the name-affinity heuristic *)
  declare_constraints : bool;  (** ship the real data dictionary *)
}

val default_shape : shape

type spec = {
  source_name : string;
  kind : Universe.kind;
  coverage : float;  (** fraction of the kind's entities stored *)
  shape : shape;
  xref_to : string list;  (** other source names to cross-reference *)
  xref_prob : float;  (** probability an applicable xref row is written *)
  corruption : float;  (** field-noise rate *)
  fk_noise : float;
      (** probability that an annotation row's FK value dangles (points at a
          nonexistent id) — dirty referential integrity for the approximate
          inclusion-dependency experiments *)
  seed : int;
}

val make_spec :
  ?shape:shape ->
  ?coverage:float ->
  ?xref_to:string list ->
  ?xref_prob:float ->
  ?corruption:float ->
  ?fk_noise:float ->
  ?seed:int ->
  name:string ->
  Universe.kind ->
  spec

val assign_accessions : Universe.t -> spec -> (int * string) list
(** (uid, accession) for the entities this source will store — computed
    before catalogs so that cross-references can be written. Deterministic
    in the spec seed. *)

type assignment = (string * (int * string) list) list
(** Per source: its accession table. *)

val build :
  Universe.t ->
  assignment ->
  gold:Gold.t ->
  spec ->
  Catalog.t
(** Builds the catalog, appends this source's {!Gold.source_gold} and its
    xrefs to [gold]. The source's own accessions must be present in the
    assignment. *)

val build_dual_primary :
  ?seed:int -> Universe.t -> name:string -> Catalog.t * (string * string) list
(** The EnsEmbl case of §4.2: a source "focused both on sequenced clones and
    the genes lying on those clones" — two accession-bearing central
    relations (clone, gene) joined by a bridge, each with its own
    annotations. Returns the catalog and the expected primaries as
    (relation, accession attribute) pairs. *)
