type t = { mutable state : int64 }

let create seed =
  { state = Int64.add (Int64.of_int seed) 0x9E3779B97F4A7C15L }

let copy t = { state = t.state }

let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the value fits OCaml's 63-bit int non-negatively *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod n

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (v /. 9007199254740992.0)

let bool t = Int64.logand (next t) 1L = 1L

let chance t p = float t 1.0 < p

let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: hi < lo";
  lo + int t (hi - lo + 1)

let choice t = function
  | [] -> invalid_arg "Rng.choice: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let choice_arr t a =
  if Array.length a = 0 then invalid_arg "Rng.choice_arr: empty array";
  a.(int t (Array.length a))

let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let sample t k xs =
  let shuffled = shuffle t xs in
  List.filteri (fun i _ -> i < k) shuffled

let digits t n = String.init n (fun _ -> Char.chr (Char.code '0' + int t 10))

let letters t n = String.init n (fun _ -> Char.chr (Char.code 'A' + int t 26))

let pattern t p =
  String.init (String.length p) (fun i ->
      match p.[i] with
      | '#' -> Char.chr (Char.code '0' + int t 10)
      | '@' -> Char.chr (Char.code 'A' + int t 26)
      | c -> c)
