let expected_fks =
  [
    { Gold.src_relation = "interaction"; src_attribute = "parent_id";
      dst_relation = "interactions"; dst_attribute = "interactions_id" };
    { Gold.src_relation = "partner"; src_attribute = "parent_id";
      dst_relation = "interaction"; dst_attribute = "interaction_id" };
    { Gold.src_relation = "note"; src_attribute = "parent_id";
      dst_relation = "interaction"; dst_attribute = "interaction_id" };
  ]

let escape = Aladin_formats.Xml.escape

let document ?(seed = 311) universe ~assignment ~gold ~name ~partner_sources =
  let rng = Rng.create seed in
  let own =
    match List.assoc_opt name assignment with
    | Some l -> l
    | None -> invalid_arg (Printf.sprintf "Xml_gen.document: %s not assigned" name)
  in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "<?xml version=\"1.0\"?>\n<interactions>\n";
  List.iter
    (fun (uid, acc) ->
      let e = Universe.entity universe uid in
      let detection_method = Rng.choice rng [ "y2h"; "coip"; "tap"; "xlink" ] in
      add "  <interaction acc=\"%s\" itype=\"%s\" desc=\"%s\">\n" (escape acc)
        detection_method
        (escape e.Universe.description);
      List.iteri
        (fun i partner_uid ->
          (* reference the partner in the first source that stores it *)
          let resolved =
            List.find_map
              (fun src ->
                match List.assoc_opt src assignment with
                | None -> None
                | Some accs ->
                    Option.map (fun pacc -> (src, pacc))
                      (List.assoc_opt partner_uid accs))
              partner_sources
          in
          match resolved with
          | Some (src, pacc) ->
              add "    <partner ref=\"%s\" role=\"%s\"/>\n" (escape pacc)
                (if i = 0 then "bait" else "prey");
              Gold.add_xref gold
                ~src:(Gold.obj_key ~source:name ~accession:acc)
                ~dst:(Gold.obj_key ~source:src ~accession:pacc)
          | None -> ())
        e.Universe.related;
      if Rng.chance rng 0.7 then
        add "    <note>%s</note>\n"
          (escape (Names.description rng e.Universe.name));
      add "  </interaction>\n")
    own;
  add "</interactions>\n";
  Gold.add_source gold
    {
      Gold.source = name;
      primary_relation = "interaction";
      accession_attribute = "acc";
      fks = expected_fks;
      objects = List.map (fun (uid, acc) -> (acc, uid)) own;
    };
  Buffer.contents buf
