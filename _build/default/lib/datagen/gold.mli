(** Ground truth recorded during corpus generation — the "existing
    integrated database" the paper proposes as a learning test set (§5:
    "precision and recall methods for finding primary relations, secondary
    relations, cross-references, and duplicates can be derived"). *)

type expected_fk = {
  src_relation : string;
  src_attribute : string;
  dst_relation : string;
  dst_attribute : string;
}

type source_gold = {
  source : string;
  primary_relation : string;
  accession_attribute : string;
  fks : expected_fk list;
  objects : (string * int) list;  (** accession -> entity uid *)
}

type t = {
  mutable sources : source_gold list;
  mutable xrefs : (string * string) list;
      (** directed ("src_source:acc", "dst_source:acc") object pairs whose
          cross-reference was physically written into the data *)
}

val create : unit -> t

val add_source : t -> source_gold -> unit

val add_xref : t -> src:string -> dst:string -> unit
(** Keys are ["source:accession"]. *)

val obj_key : source:string -> accession:string -> string

val find_source : t -> string -> source_gold option

val duplicate_pairs : t -> (string * string) list
(** Unordered canonical pairs of objects in different sources sharing an
    entity uid. *)

val family_pairs : Universe.t -> t -> (string * string) list
(** Cross-source object pairs whose entities belong to the same homology
    family (expected sequence-similarity links). Only entities with
    sequences count. *)

val entity_of : t -> string -> int option
(** Entity uid of an object key. *)
