module Sq = Aladin_seq

let dna rng n =
  String.init n (fun _ -> Sq.Alphabet.dna.[Rng.int rng 4])

let protein rng n =
  String.init n (fun _ -> Sq.Alphabet.protein.[Rng.int rng 20])

let alphabet_of s =
  if Sq.Alphabet.is_over ~alphabet:Sq.Alphabet.dna s then Sq.Alphabet.dna
  else Sq.Alphabet.protein

let mutate rng ~rate s =
  let alphabet = alphabet_of s in
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if Rng.chance rng (rate /. 10.0) then () (* deletion *)
      else begin
        let c' =
          if Rng.chance rng rate then alphabet.[Rng.int rng (String.length alphabet)]
          else c
        in
        Buffer.add_char buf c';
        if Rng.chance rng (rate /. 10.0) then Buffer.add_char buf c' (* duplication *)
      end)
    s;
  Buffer.contents buf

let family rng ~kind ~size ~len ~rate =
  let ancestor =
    match kind with
    | Sq.Alphabet.Dna | Sq.Alphabet.Rna -> dna rng len
    | Sq.Alphabet.Protein -> protein rng len
  in
  List.init size (fun i -> if i = 0 then ancestor else mutate rng ~rate ancestor)
