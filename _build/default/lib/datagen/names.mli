(** Vocabularies and name generators for synthetic life-science content. *)

val species : string array
(** Binomial species names. *)

val protein_stems : string array
(** Protein-family stems ("kinase", "dehydrogenase", ...). *)

val adjectives : string array
(** Descriptive words for annotation text. *)

val keywords : string array
(** Controlled-vocabulary keywords (GO-flavoured). *)

val diseases : string array

val filler : string array
(** Function words for description sentences. *)

val gene_symbol : Rng.t -> string
(** "BRCA2"-style symbols: 3-5 uppercase letters + digit(s). *)

val protein_name : Rng.t -> string
(** e.g. "Putative serine kinase 3". *)

val description : Rng.t -> ?mention:string -> string -> string
(** A 1-3 sentence description around a subject name; [mention] embeds a
    foreign entity name (fuel for entity-mention links). *)

val go_definition : Rng.t -> string -> string
(** Ontology-style definition of a keyword. *)
