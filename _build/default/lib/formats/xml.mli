(** Minimal XML parser for data-exchange documents.

    Supports elements, attributes (single- or double-quoted), text content,
    self-closing tags, comments, processing instructions and the standard
    five entities. No DTDs, namespaces are kept verbatim in names. *)

type node =
  | Element of { tag : string; attrs : (string * string) list; children : node list }
  | Text of string

exception Parse_error of string

val parse : string -> node
(** Parse a document to its root element. @raise Parse_error on malformed
    input or when no root element exists. *)

val text_content : node -> string
(** Concatenated text of the subtree. *)

val children_named : string -> node -> node list
(** Direct child elements with the given tag. *)

val attr : string -> node -> string option

val render : node -> string
(** Serialize (attributes and text escaped). *)

val escape : string -> string
