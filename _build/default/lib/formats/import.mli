(** The data-import component (§4.1): format sniffing + dispatch.

    "A variety of known import procedures can be used" — this module picks
    the right parser from content, so a source directory can be ingested
    without telling ALADIN what is inside. *)

open Aladin_relational

type format = Swissprot_flat | Embl_flat | Genbank_flat | Fasta_format | Obo_format | Pdb_format | Xml_format | Csv_dump

val format_name : format -> string

val sniff : string -> format option
(** Guess the format of a document from its first lines. *)

val import_string : name:string -> string -> Catalog.t
(** Import a document of any recognizable format.
    @raise Invalid_argument when the format cannot be sniffed. *)

val import_path : name:string -> string -> Catalog.t
(** A directory is loaded as a CSV dump; a file is sniffed and parsed. *)
