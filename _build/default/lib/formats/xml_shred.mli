(** Generic XML-to-relational shredding ("generic XML shredder", §4.1;
    cf. the XML wrapper generation of [NJM03]).

    Each element tag becomes a relation named after the tag, with columns:
    a surrogate [<tag>_id], a [parent_id] (surrogate id of the enclosing
    element; NULL for the root), one column per attribute name observed on
    that tag anywhere in the document, and a [content] column holding the
    element's own text. No constraints are declared — discovery must infer
    the structure, which is exactly the paper's scenario for generically
    imported XML sources. *)

open Aladin_relational

val shred : ?name:string -> Xml.node -> Catalog.t

val shred_string : ?name:string -> string -> Catalog.t
(** Parse then shred. @raise Xml.Parse_error *)
