(** OBO-style ontology parser (Gene Ontology flavour).

    [Term] stanzas with [id:], [name:], [def:], [namespace:] and repeated
    [is_a:] tags. Produces a catalog with a [term] relation and a
    [term_isa(term_id, parent_id)] relationship table — ontologies are
    themselves integrated as data sources (§4.4). *)

open Aladin_relational

type term = {
  id : string;
  name : string;
  definition : string;
  namespace : string;
  is_a : string list;
}

val terms : string -> term list

val parse : ?name:string -> string -> Catalog.t

val render : term list -> string
