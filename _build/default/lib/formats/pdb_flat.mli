(** Simplified PDB-style structure file parser.

    Per-structure records:
    {v
    HEADER    <classification>              <PDB-ID>
    TITLE     <title, continuable>
    COMPND    <compound>
    EXPDTA    <method>
    DBREF     <PDB-ID> <chain> <db> <accession>
    SEQRES    <chain> <wrapped sequence>
    END
    v}

    Produces: [structure(structure_id, pdb_acc, classification, title,
    compound, method)], [chain(chain_id, structure_id, chain_name,
    sequence)], [struct_ref(ref_id, structure_id, db, accession)]. *)

open Aladin_relational

val parse : ?name:string -> string -> Catalog.t

val parse_file : ?name:string -> string -> Catalog.t
