open Aladin_relational

type raw = { code : string; payload : string }

let split_records doc =
  let lines = String.split_on_char '\n' doc in
  let finished = ref [] and current = ref [] in
  let flush () =
    if !current <> [] then begin
      finished := List.rev !current :: !finished;
      current := []
    end
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" then ()
      else if line = "END" then flush ()
      else
        match String.index_opt line ' ' with
        | None -> current := { code = line; payload = "" } :: !current
        | Some i ->
            current :=
              { code = String.sub line 0 i;
                payload = String.trim (String.sub line i (String.length line - i)) }
              :: !current)
    lines;
  flush ();
  List.rev !finished

let payloads code lines =
  List.filter_map (fun l -> if l.code = code then Some l.payload else None) lines

let joined code lines = String.concat " " (payloads code lines)

let tokens s =
  String.split_on_char ' ' s |> List.filter (fun t -> t <> "")

let parse ?(name = "pdb") doc =
  let cat = Catalog.create ~name in
  let structure =
    Catalog.create_relation cat ~name:"structure"
      (Schema.of_names
         [ "structure_id"; "pdb_acc"; "classification"; "title"; "compound"; "method" ])
  in
  let chain =
    Catalog.create_relation cat ~name:"chain"
      (Schema.of_names [ "chain_id"; "structure_id"; "chain_name"; "sequence" ])
  in
  let struct_ref =
    Catalog.create_relation cat ~name:"struct_ref"
      (Schema.of_names [ "ref_id"; "structure_id"; "db"; "accession" ])
  in
  let next_chain = ref 1 and next_ref = ref 1 in
  List.iteri
    (fun i lines ->
      let sid = i + 1 in
      let classification, pdb_acc =
        match tokens (joined "HEADER" lines) with
        | [] -> ("", "")
        | toks ->
            let rec split_last acc = function
              | [ last ] -> (List.rev acc, last)
              | x :: rest -> split_last (x :: acc) rest
              | [] -> (List.rev acc, "")
            in
            let cls, acc = split_last [] toks in
            (String.concat " " cls, acc)
      in
      Relation.insert structure
        [| Value.Int sid; Value.text pdb_acc;
           Value.text classification;
           Value.text (joined "TITLE" lines);
           Value.text (joined "COMPND" lines);
           Value.text (joined "EXPDTA" lines) |];
      (* SEQRES lines: first token is the chain name, rest is sequence *)
      let chains : (string, Buffer.t) Hashtbl.t = Hashtbl.create 4 in
      List.iter
        (fun p ->
          match tokens p with
          | cname :: parts ->
              let buf =
                match Hashtbl.find_opt chains cname with
                | Some b -> b
                | None ->
                    let b = Buffer.create 128 in
                    Hashtbl.add chains cname b;
                    b
              in
              List.iter (Buffer.add_string buf) parts
          | [] -> ())
        (payloads "SEQRES" lines);
      Hashtbl.fold (fun cname buf acc -> (cname, Buffer.contents buf) :: acc) chains []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      |> List.iter (fun (cname, seq) ->
             Relation.insert chain
               [| Value.Int !next_chain; Value.Int sid; Value.text cname;
                  Value.text seq |];
             incr next_chain);
      List.iter
        (fun p ->
          match tokens p with
          | _pdb :: _chain :: db :: acc :: _ ->
              Relation.insert struct_ref
                [| Value.Int !next_ref; Value.Int sid; Value.text db; Value.text acc |];
              incr next_ref
          | _ :: _ | [] -> ())
        (payloads "DBREF" lines))
    (split_records doc);
  cat

let parse_file ?name path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let doc = really_input_string ic len in
  close_in ic;
  parse ?name doc
