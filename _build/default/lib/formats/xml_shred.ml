open Aladin_relational

(* First pass: the set of attribute names per tag (document order of first
   sighting), so every relation gets a stable schema. *)
let collect_attrs root =
  let attrs_of_tag : (string, string list ref) Hashtbl.t = Hashtbl.create 16 in
  let order : string list ref = ref [] in
  let rec walk = function
    | Xml.Text _ -> ()
    | Xml.Element { tag; attrs; children } ->
        let known =
          match Hashtbl.find_opt attrs_of_tag tag with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.add attrs_of_tag tag l;
              order := tag :: !order;
              l
        in
        List.iter
          (fun (k, _) -> if not (List.mem k !known) then known := !known @ [ k ])
          attrs;
        List.iter walk children
  in
  walk root;
  (List.rev !order, attrs_of_tag)

let own_text children =
  children
  |> List.filter_map (function Xml.Text s -> Some s | Xml.Element _ -> None)
  |> String.concat " "
  |> String.trim

let shred ?(name = "xml") root =
  let cat = Catalog.create ~name in
  let tags, attrs_of_tag = collect_attrs root in
  let rel_of_tag = Hashtbl.create 16 in
  List.iter
    (fun tag ->
      let attr_cols = !(Hashtbl.find attrs_of_tag tag) in
      let cols = (tag ^ "_id") :: "parent_id" :: (attr_cols @ [ "content" ]) in
      let rel = Catalog.create_relation cat ~name:tag (Schema.of_names cols) in
      Hashtbl.add rel_of_tag tag (rel, attr_cols))
    tags;
  let next_id = ref 0 in
  let rec walk parent = function
    | Xml.Text _ -> ()
    | Xml.Element { tag; attrs; children } ->
        incr next_id;
        let id = !next_id in
        let rel, attr_cols = Hashtbl.find rel_of_tag tag in
        let attr_vals =
          List.map
            (fun col ->
              match List.assoc_opt col attrs with
              | Some v -> Value.of_string v
              | None -> Value.Null)
            attr_cols
        in
        let parent_v =
          match parent with Some p -> Value.Int p | None -> Value.Null
        in
        let content = own_text children in
        let content_v = if content = "" then Value.Null else Value.text content in
        Relation.insert rel
          (Array.of_list ((Value.Int id :: parent_v :: attr_vals) @ [ content_v ]));
        List.iter (walk (Some id)) children
  in
  walk None root;
  cat

let shred_string ?name doc = shred ?name (Xml.parse doc)
