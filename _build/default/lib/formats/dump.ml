open Aladin_relational

let load ~name pairs =
  let cat = Catalog.create ~name in
  List.iter
    (fun (rel_name, doc) ->
      let records = Csv.read_string doc in
      let rel = Csv.relation_of_records ~name:rel_name ~header:true records in
      Catalog.add cat rel)
    pairs;
  cat

let parse_constraints doc =
  String.split_on_char '\n' doc
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.split_on_char ' ' line |> List.filter (( <> ) "") with
           | [ "unique"; relation; attribute ] ->
               Some (Constraint_def.Unique { relation; attribute })
           | [ "pkey"; relation; attribute ] ->
               Some (Constraint_def.Primary_key { relation; attribute })
           | [ "fkey"; src_relation; src_attribute; dst_relation; dst_attribute ] ->
               Some
                 (Constraint_def.Foreign_key
                    { src_relation; src_attribute; dst_relation; dst_attribute })
           | _ ->
               invalid_arg
                 (Printf.sprintf "Dump.parse_constraints: bad line %S" line))

let render_constraints cs =
  cs
  |> List.map (function
       | Constraint_def.Unique { relation; attribute } ->
           Printf.sprintf "unique %s %s" relation attribute
       | Constraint_def.Primary_key { relation; attribute } ->
           Printf.sprintf "pkey %s %s" relation attribute
       | Constraint_def.Foreign_key
           { src_relation; src_attribute; dst_relation; dst_attribute } ->
           Printf.sprintf "fkey %s %s %s %s" src_relation src_attribute
             dst_relation dst_attribute)
  |> String.concat "\n"

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let doc = really_input_string ic len in
  close_in ic;
  doc

let load_dir ~name dir =
  let entries = Sys.readdir dir |> Array.to_list |> List.sort String.compare in
  let csvs =
    List.filter (fun f -> Filename.check_suffix f ".csv") entries
  in
  let cat =
    load ~name
      (List.map
         (fun f -> (Filename.chop_suffix f ".csv", read_file (Filename.concat dir f)))
         csvs)
  in
  let manifest = Filename.concat dir "constraints.txt" in
  if Sys.file_exists manifest then
    List.iter (Catalog.declare cat) (parse_constraints (read_file manifest));
  cat

let save_dir cat dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun rel ->
      let path = Filename.concat dir (Relation.name rel ^ ".csv") in
      let oc = open_out path in
      output_string oc (Csv.write_relation rel);
      close_out oc)
    (Catalog.relations cat);
  match Catalog.constraints cat with
  | [] -> ()
  | cs ->
      let oc = open_out (Filename.concat dir "constraints.txt") in
      output_string oc (render_constraints cs);
      output_string oc "\n";
      close_out oc
