lib/formats/import.mli: Aladin_relational Catalog
