lib/formats/dump.mli: Aladin_relational Catalog Constraint_def
