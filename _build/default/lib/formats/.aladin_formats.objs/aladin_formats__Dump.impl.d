lib/formats/dump.ml: Aladin_relational Array Catalog Constraint_def Csv Filename List Printf Relation String Sys
