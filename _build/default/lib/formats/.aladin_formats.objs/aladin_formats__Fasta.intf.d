lib/formats/fasta.mli: Aladin_relational Catalog
