lib/formats/xml_shred.ml: Aladin_relational Array Catalog Hashtbl List Relation Schema String Value Xml
