lib/formats/obo.ml: Aladin_relational Buffer Catalog Hashtbl List Printf Relation Schema String Value
