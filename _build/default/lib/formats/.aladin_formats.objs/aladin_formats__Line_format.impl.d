lib/formats/line_format.ml: List String
