lib/formats/swissprot.ml: Aladin_relational Catalog Constraint_def Hashtbl Line_format List Option Relation Schema String Value
