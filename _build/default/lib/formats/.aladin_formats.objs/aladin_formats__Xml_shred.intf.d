lib/formats/xml_shred.mli: Aladin_relational Catalog Xml
