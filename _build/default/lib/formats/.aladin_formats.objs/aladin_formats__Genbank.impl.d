lib/formats/genbank.ml: Aladin_relational Buffer Catalog List Printf Relation Schema Seq String Value
