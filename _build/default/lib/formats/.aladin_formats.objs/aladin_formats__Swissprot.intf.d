lib/formats/swissprot.mli: Aladin_relational Catalog
