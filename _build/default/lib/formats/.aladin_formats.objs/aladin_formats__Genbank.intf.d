lib/formats/genbank.mli: Aladin_relational Catalog
