lib/formats/embl.ml: Aladin_relational Buffer Catalog Genbank Line_format List Option Printf Relation Schema Seq String Value
