lib/formats/xml.mli:
