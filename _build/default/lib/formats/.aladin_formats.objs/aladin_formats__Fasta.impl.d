lib/formats/fasta.ml: Aladin_relational Buffer Catalog List Relation Schema String Value
