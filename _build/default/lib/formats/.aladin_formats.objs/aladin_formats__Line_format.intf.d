lib/formats/line_format.mli:
