lib/formats/pdb_flat.mli: Aladin_relational Catalog
