lib/formats/obo.mli: Aladin_relational Catalog
