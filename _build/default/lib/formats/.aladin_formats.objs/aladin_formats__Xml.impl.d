lib/formats/xml.ml: Buffer List Printf String
