lib/formats/embl.mli: Aladin_relational Catalog Genbank
