lib/formats/import.ml: Aladin_relational Catalog Csv Dump Embl Fasta Genbank List Obo Pdb_flat Printf String Swissprot Sys Xml_shred
