lib/formats/pdb_flat.ml: Aladin_relational Buffer Catalog Hashtbl List Relation Schema String Value
