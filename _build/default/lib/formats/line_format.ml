type line = { code : string; payload : string }

let parse_line s =
  let s = if String.length s > 0 && s.[String.length s - 1] = '\r' then String.sub s 0 (String.length s - 1) else s in
  if String.trim s = "" then None
  else
    match String.index_opt s ' ' with
    | None -> Some { code = s; payload = "" }
    | Some i ->
        let code = String.sub s 0 i in
        let payload = String.trim (String.sub s i (String.length s - i)) in
        Some { code; payload }

let records doc =
  let lines = String.split_on_char '\n' doc in
  let finished = ref [] in
  let current = ref [] in
  let flush () =
    if !current <> [] then begin
      finished := List.rev !current :: !finished;
      current := []
    end
  in
  List.iter
    (fun raw ->
      match parse_line raw with
      | None -> ()
      | Some { code = "//"; _ } -> flush ()
      | Some line -> current := line :: !current)
    lines;
  flush ();
  List.rev !finished

let all ~code lines =
  List.filter_map
    (fun l -> if l.code = code then Some l.payload else None)
    lines

let joined ~code lines =
  match all ~code lines with
  | [] -> None
  | payloads -> Some (String.concat " " payloads)

let split_list payload =
  let payload =
    let n = String.length payload in
    if n > 0 && payload.[n - 1] = '.' then String.sub payload 0 (n - 1)
    else payload
  in
  String.split_on_char ';' payload
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")
