open Aladin_relational

let first_semi_token s =
  match String.split_on_char ';' s with
  | t :: _ -> String.trim t
  | [] -> String.trim s

let parse_qualifier line =
  let t = String.trim line in
  if String.length t < 2 || t.[0] <> '/' then None
  else
    let body = String.sub t 1 (String.length t - 1) in
    match String.index_opt body '=' with
    | None -> Some (body, "")
    | Some i ->
        let key = String.sub body 0 i in
        let v = String.sub body (i + 1) (String.length body - i - 1) in
        let v =
          let n = String.length v in
          if n >= 2 && v.[0] = '"' && v.[n - 1] = '"' then String.sub v 1 (n - 2)
          else v
        in
        Some (key, v)

let clean_seq line =
  String.to_seq line
  |> Seq.filter (fun c -> (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'))
  |> String.of_seq

let records doc =
  Line_format.records doc
  |> List.map (fun lines ->
         let locus =
           match Line_format.joined ~code:"ID" lines with
           | Some p -> first_semi_token p
           | None -> ""
         in
         let accession =
           match Line_format.joined ~code:"AC" lines with
           | Some p -> (
               match Line_format.split_list p with a :: _ -> a | [] -> "")
           | None -> ""
         in
         let definition =
           Option.value (Line_format.joined ~code:"DE" lines) ~default:""
         in
         let organism =
           match Line_format.joined ~code:"OS" lines with
           | Some p ->
               let n = String.length p in
               if n > 0 && p.[n - 1] = '.' then String.sub p 0 (n - 1) else p
           | None -> ""
         in
         (* the FT feature table: a new feature starts with a key token; a
            qualifier line starts with '/' *)
         let features = ref [] in
         let current : Genbank.feature option ref = ref None in
         let flush () =
           match !current with
           | Some f ->
               features := f :: !features;
               current := None
           | None -> ()
         in
         List.iter
           (fun (l : Line_format.line) ->
             if l.code = "FT" then begin
               match parse_qualifier l.payload with
               | Some (k, v) -> (
                   match !current with
                   | Some f ->
                       current :=
                         Some { f with Genbank.qualifiers = f.Genbank.qualifiers @ [ (k, v) ] }
                   | None -> ())
               | None -> (
                   match
                     String.split_on_char ' ' l.payload |> List.filter (( <> ) "")
                   with
                   | key :: loc :: _ ->
                       flush ();
                       current := Some { Genbank.key; location = loc; qualifiers = [] }
                   | [ key ] ->
                       flush ();
                       current := Some { Genbank.key; location = ""; qualifiers = [] }
                   | [] -> ())
             end)
           lines;
         flush ();
         (* sequence: lines after SQ; generators and real EMBL indent them,
            so their "codes" are sequence chunks *)
         let after_sq = ref false in
         let seq = Buffer.create 128 in
         List.iter
           (fun (l : Line_format.line) ->
             if l.code = "SQ" then after_sq := true
             else if !after_sq && l.code <> "FT" then begin
               Buffer.add_string seq (clean_seq l.code);
               Buffer.add_string seq (clean_seq l.payload)
             end)
           lines;
         {
           Genbank.locus;
           definition;
           accession;
           organism;
           features = List.rev !features;
           origin = Buffer.contents seq;
         })

let parse ?(name = "embl") doc =
  let cat = Catalog.create ~name in
  let entry =
    Catalog.create_relation cat ~name:"entry"
      (Schema.of_names [ "entry_id"; "accession"; "locus_name"; "definition"; "organism" ])
  in
  let feature_rel =
    Catalog.create_relation cat ~name:"feature"
      (Schema.of_names [ "feature_id"; "entry_id"; "feature_key"; "location" ])
  in
  let qualifier =
    Catalog.create_relation cat ~name:"qualifier"
      (Schema.of_names [ "qualifier_id"; "feature_id"; "qual_key"; "qual_value" ])
  in
  let seqrel =
    Catalog.create_relation cat ~name:"embl_seq"
      (Schema.of_names [ "entry_id"; "sequence" ])
  in
  let next_feature = ref 1 and next_qual = ref 1 in
  List.iteri
    (fun i (r : Genbank.record) ->
      let eid = i + 1 in
      Relation.insert entry
        [| Value.Int eid; Value.text r.accession; Value.text r.locus;
           Value.text r.definition; Value.text r.organism |];
      List.iter
        (fun (ft : Genbank.feature) ->
          let fid = !next_feature in
          incr next_feature;
          Relation.insert feature_rel
            [| Value.Int fid; Value.Int eid; Value.text ft.key; Value.text ft.location |];
          List.iter
            (fun (k, v) ->
              Relation.insert qualifier
                [| Value.Int !next_qual; Value.Int fid; Value.text k; Value.text v |];
              incr next_qual)
            ft.qualifiers)
        r.features;
      if r.origin <> "" then
        Relation.insert seqrel
          [| Value.Int eid; Value.text (String.uppercase_ascii r.origin) |])
    (records doc);
  cat

let render rs =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (r : Genbank.record) ->
      add "ID   %s; SV 1; linear; STD; %d BP.\n" r.locus (String.length r.origin);
      add "AC   %s;\n" r.accession;
      add "DE   %s\n" r.definition;
      add "OS   %s.\n" r.organism;
      List.iter
        (fun (ft : Genbank.feature) ->
          add "FT   %-15s %s\n" ft.key
            (if ft.location = "" then "1" else ft.location);
          List.iter
            (fun (k, v) ->
              if v = "" then add "FT                   /%s\n" k
              else add "FT                   /%s=\"%s\"\n" k v)
            ft.qualifiers)
        r.features;
      if r.origin <> "" then begin
        add "SQ   Sequence %d BP;\n" (String.length r.origin);
        let s = String.lowercase_ascii r.origin in
        let n = String.length s in
        let rec line i =
          if i < n then begin
            add "     %s\n" (String.sub s i (min 60 (n - i)));
            line (i + 60)
          end
        in
        line 0
      end;
      add "//\n")
    rs;
  Buffer.contents buf
