(** Helpers for line-prefixed flat-file formats (Swiss-Prot/EMBL style).

    Records are sequences of lines ["XX   payload"] terminated by ["//"];
    two-letter codes repeat for continuation. *)

type line = { code : string; payload : string }

val parse_line : string -> line option
(** [None] for blank lines. The code is the first whitespace-delimited
    token; the payload is the rest, trimmed. *)

val records : string -> line list list
(** Split a whole document into records at ["//"] terminator lines. A final
    unterminated record is kept. *)

val joined : code:string -> line list -> string option
(** Concatenate (space-separated) the payloads of all lines with [code];
    [None] when the code never occurs. *)

val all : code:string -> line list -> string list
(** Payloads of every line with [code], in order. *)

val split_list : string -> string list
(** Split a payload like ["kw1; kw2; kw3."] on ';', trimming blanks and a
    trailing '.'. *)
