open Aladin_relational

type record = { accession : string; description : string; sequence : string }

let records doc =
  let lines = String.split_on_char '\n' doc in
  let out = ref [] in
  let acc = ref "" and desc = ref "" and seq = Buffer.create 256 in
  let in_record = ref false in
  let flush () =
    if !in_record then begin
      out := { accession = !acc; description = !desc; sequence = Buffer.contents seq } :: !out;
      Buffer.clear seq
    end
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" then ()
      else if line.[0] = '>' then begin
        flush ();
        in_record := true;
        let header = String.sub line 1 (String.length line - 1) in
        match String.index_opt header ' ' with
        | Some i ->
            acc := String.sub header 0 i;
            desc := String.trim (String.sub header i (String.length header - i))
        | None ->
            acc := header;
            desc := ""
      end
      else if !in_record then Buffer.add_string seq line)
    lines;
  flush ();
  List.rev !out

let parse ?(name = "fasta") doc =
  let cat = Catalog.create ~name in
  let rel =
    Catalog.create_relation cat ~name:"entry"
      (Schema.of_names [ "entry_id"; "accession"; "description"; "sequence" ])
  in
  List.iteri
    (fun i r ->
      Relation.insert rel
        [| Value.Int (i + 1); Value.text r.accession; Value.text r.description;
           Value.text r.sequence |])
    (records doc);
  cat

let wrap width s =
  let n = String.length s in
  let rec chunks i acc =
    if i >= n then List.rev acc
    else
      let len = min width (n - i) in
      chunks (i + len) (String.sub s i len :: acc)
  in
  chunks 0 []

let render rs =
  let buf = Buffer.create 1024 in
  List.iter
    (fun r ->
      Buffer.add_char buf '>';
      Buffer.add_string buf r.accession;
      if r.description <> "" then begin
        Buffer.add_char buf ' ';
        Buffer.add_string buf r.description
      end;
      Buffer.add_char buf '\n';
      List.iter
        (fun chunk ->
          Buffer.add_string buf chunk;
          Buffer.add_char buf '\n')
        (wrap 60 r.sequence))
    rs;
  Buffer.contents buf
