type node =
  | Element of { tag : string; attrs : (string * string) list; children : node list }
  | Text of string

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let looking_at c prefix =
  let n = String.length prefix in
  c.pos + n <= String.length c.src && String.sub c.src c.pos n = prefix

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') -> true
    | Some _ | None -> false
  do
    advance c
  done

let is_name_char ch =
  (ch >= 'a' && ch <= 'z')
  || (ch >= 'A' && ch <= 'Z')
  || (ch >= '0' && ch <= '9')
  || ch = '_' || ch = '-' || ch = '.' || ch = ':'

let read_name c =
  let start = c.pos in
  while (match peek c with Some ch -> is_name_char ch | None -> false) do
    advance c
  done;
  if c.pos = start then fail "expected name at offset %d" c.pos;
  String.sub c.src start (c.pos - start)

let decode_entities s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec loop i =
    if i >= n then ()
    else if s.[i] = '&' then begin
      match String.index_from_opt s i ';' with
      | Some j when j - i <= 6 ->
          (match String.sub s (i + 1) (j - i - 1) with
          | "amp" -> Buffer.add_char buf '&'
          | "lt" -> Buffer.add_char buf '<'
          | "gt" -> Buffer.add_char buf '>'
          | "quot" -> Buffer.add_char buf '"'
          | "apos" -> Buffer.add_char buf '\''
          | other -> Buffer.add_string buf ("&" ^ other ^ ";"));
          loop (j + 1)
      | Some _ | None ->
          Buffer.add_char buf '&';
          loop (i + 1)
    end
    else begin
      Buffer.add_char buf s.[i];
      loop (i + 1)
    end
  in
  loop 0;
  Buffer.contents buf

let read_until c stop =
  match String.index_from_opt c.src c.pos stop with
  | None -> fail "unterminated construct at offset %d" c.pos
  | Some j ->
      let s = String.sub c.src c.pos (j - c.pos) in
      c.pos <- j;
      s

let skip_past c marker =
  let rec loop () =
    if looking_at c marker then c.pos <- c.pos + String.length marker
    else if c.pos >= String.length c.src then fail "unterminated %s" marker
    else begin
      advance c;
      loop ()
    end
  in
  loop ()

let read_attrs c =
  let attrs = ref [] in
  let rec loop () =
    skip_ws c;
    match peek c with
    | Some ch when is_name_char ch ->
        let name = read_name c in
        skip_ws c;
        (match peek c with
        | Some '=' ->
            advance c;
            skip_ws c;
            (match peek c with
            | Some (('"' | '\'') as q) ->
                advance c;
                let v = read_until c q in
                advance c;
                attrs := (name, decode_entities v) :: !attrs
            | Some _ | None -> fail "expected quoted attribute value for %s" name)
        | Some _ | None -> attrs := (name, "") :: !attrs);
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  List.rev !attrs

let rec parse_element c =
  (* cursor sits on '<' of an opening tag *)
  advance c;
  let tag = read_name c in
  let attrs = read_attrs c in
  skip_ws c;
  if looking_at c "/>" then begin
    c.pos <- c.pos + 2;
    Element { tag; attrs; children = [] }
  end
  else begin
    (match peek c with
    | Some '>' -> advance c
    | Some ch -> fail "unexpected %c in tag %s" ch tag
    | None -> fail "unexpected end of input in tag %s" tag);
    let children = parse_children c tag in
    Element { tag; attrs; children }
  end

and parse_children c tag =
  let children = ref [] in
  let rec loop () =
    if c.pos >= String.length c.src then fail "missing </%s>" tag
    else if looking_at c "</" then begin
      c.pos <- c.pos + 2;
      let close = read_name c in
      if close <> tag then fail "mismatched </%s>, expected </%s>" close tag;
      skip_ws c;
      match peek c with
      | Some '>' -> advance c
      | Some _ | None -> fail "malformed close tag </%s>" close
    end
    else if looking_at c "<!--" then begin
      skip_past c "-->";
      loop ()
    end
    else if looking_at c "<![CDATA[" then begin
      c.pos <- c.pos + 9;
      let start = c.pos in
      skip_past c "]]>";
      let v = String.sub c.src start (c.pos - start - 3) in
      children := Text v :: !children;
      loop ()
    end
    else if looking_at c "<?" then begin
      skip_past c "?>";
      loop ()
    end
    else if looking_at c "<" then begin
      children := parse_element c :: !children;
      loop ()
    end
    else begin
      let start = c.pos in
      while (match peek c with Some '<' -> false | Some _ -> true | None -> false) do
        advance c
      done;
      let raw = String.sub c.src start (c.pos - start) in
      if String.trim raw <> "" then children := Text (decode_entities raw) :: !children;
      loop ()
    end
  in
  loop ();
  List.rev !children

let parse doc =
  let c = { src = doc; pos = 0 } in
  let rec find_root () =
    skip_ws c;
    if looking_at c "<?" then begin
      skip_past c "?>";
      find_root ()
    end
    else if looking_at c "<!--" then begin
      skip_past c "-->";
      find_root ()
    end
    else if looking_at c "<!" then begin
      skip_past c ">";
      find_root ()
    end
    else if looking_at c "<" then parse_element c
    else fail "no root element"
  in
  find_root ()

let rec text_content = function
  | Text s -> s
  | Element { children; _ } -> String.concat "" (List.map text_content children)

let children_named tag = function
  | Text _ -> []
  | Element { children; _ } ->
      List.filter
        (function Element { tag = t; _ } -> t = tag | Text _ -> false)
        children

let attr name = function
  | Text _ -> None
  | Element { attrs; _ } -> List.assoc_opt name attrs

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec render = function
  | Text s -> escape s
  | Element { tag; attrs; children } ->
      let attrs_s =
        String.concat ""
          (List.map (fun (k, v) -> Printf.sprintf " %s=\"%s\"" k (escape v)) attrs)
      in
      if children = [] then Printf.sprintf "<%s%s/>" tag attrs_s
      else
        Printf.sprintf "<%s%s>%s</%s>" tag attrs_s
          (String.concat "" (List.map render children))
          tag
