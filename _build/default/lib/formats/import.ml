open Aladin_relational

type format = Swissprot_flat | Embl_flat | Genbank_flat | Fasta_format | Obo_format | Pdb_format | Xml_format | Csv_dump

let format_name = function
  | Swissprot_flat -> "swissprot"
  | Embl_flat -> "embl"
  | Genbank_flat -> "genbank"
  | Fasta_format -> "fasta"
  | Obo_format -> "obo"
  | Pdb_format -> "pdb"
  | Xml_format -> "xml"
  | Csv_dump -> "csv"

let first_meaningful_lines doc n =
  String.split_on_char '\n' doc
  |> List.filter_map (fun l ->
         let l = String.trim l in
         if l = "" then None else Some l)
  |> List.filteri (fun i _ -> i < n)

let sniff doc =
  match first_meaningful_lines doc 5 with
  | [] -> None
  | first :: _ as lines ->
      let starts prefix s =
        String.length s >= String.length prefix
        && String.sub s 0 (String.length prefix) = prefix
      in
      if starts ">" first then Some Fasta_format
      else if starts "<" first then Some Xml_format
      else if starts "format-version:" first || List.exists (( = ) "[Term]") lines
      then Some Obo_format
      else if starts "HEADER" first then Some Pdb_format
      else if starts "LOCUS" first then Some Genbank_flat
      else if starts "ID " first || starts "ID\t" first then
        (* both Swiss-Prot and EMBL start with ID; EMBL's ID line is
           ';'-separated and records carry an FT feature table *)
        if String.contains first ';'
           || List.exists (fun l -> starts "FT " l) (first_meaningful_lines doc 40)
        then Some Embl_flat
        else Some Swissprot_flat
      else if String.contains first ',' then Some Csv_dump
      else None

let import_string ~name doc =
  match sniff doc with
  | None -> invalid_arg (Printf.sprintf "Import.import_string: cannot sniff %s" name)
  | Some Swissprot_flat -> Swissprot.parse ~name doc
  | Some Embl_flat -> Embl.parse ~name doc
  | Some Genbank_flat -> Genbank.parse ~name doc
  | Some Fasta_format -> Fasta.parse ~name doc
  | Some Obo_format -> Obo.parse ~name doc
  | Some Pdb_format -> Pdb_flat.parse ~name doc
  | Some Xml_format -> Xml_shred.shred_string ~name doc
  | Some Csv_dump ->
      (* a single CSV becomes a one-relation source named like the source *)
      let records = Csv.read_string doc in
      let cat = Catalog.create ~name in
      Catalog.add cat (Csv.relation_of_records ~name ~header:true records);
      cat

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let doc = really_input_string ic len in
  close_in ic;
  doc

let import_path ~name path =
  if Sys.is_directory path then Dump.load_dir ~name path
  else import_string ~name (read_file path)
