(** EMBL-style flat-file parser (§5: BioSQL stores "imported data from
    Swiss-Prot and EMBL").

    EMBL shares the two-letter line-code family with Swiss-Prot but carries
    a feature table:
    {v
    ID   HSKIN1; SV 1; linear; mRNA; STD; HUM; 60 BP.
    AC   X51234;
    DE   Human alpha kinase mRNA
    OS   Homo sapiens
    FT   source          1..60
    FT                   /organism="Homo sapiens"
    FT   CDS             1..60
    FT                   /gene="KIN1"
    FT                   /db_xref="UniProt:P12345"
    SQ   Sequence 60 BP;
         atggcgatcg atcgatcgta ...
    //
    v}

    Relational mapping mirrors the GenBank shape (entry / feature /
    qualifier / embl_seq), so discovery treats both uniformly. *)

open Aladin_relational

val records : string -> Genbank.record list
(** EMBL text into the shared flat-record representation. *)

val parse : ?name:string -> string -> Catalog.t

val render : Genbank.record list -> string
(** Inverse of {!records}. *)
