(** Relational dump loader: a set of named CSV documents (one per relation)
    plus an optional constraints manifest — the "direct relational dump
    files" import path of §4.1 (Swiss-Prot, GeneOntology, EnsEmbl). *)

open Aladin_relational

val load : name:string -> (string * string) list -> Catalog.t
(** [(relation_name, csv_with_header)] pairs. *)

val load_dir : name:string -> string -> Catalog.t
(** Every [*.csv] in the directory becomes a relation (file basename);
    [constraints.txt], when present, is parsed with {!parse_constraints}. *)

val parse_constraints : string -> Constraint_def.t list
(** One constraint per line:
    {v
    unique <relation> <attribute>
    pkey <relation> <attribute>
    fkey <src_rel> <src_attr> <dst_rel> <dst_attr>
    v}
    Blank lines and [#] comments are skipped.
    @raise Invalid_argument on malformed lines. *)

val render_constraints : Constraint_def.t list -> string

val save_dir : Catalog.t -> string -> unit
(** Write each relation as [<dir>/<relation>.csv] and the declared
    constraints as [constraints.txt]. Creates the directory. *)
